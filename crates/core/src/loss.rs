//! Distributed masked cross-entropy over the final layer's logits layout.
//!
//! The last layer's output is sharded (rows over its R axis, cols over its
//! C axis, replicated over K). Every rank gathers the full class dimension
//! across the C group, masks out padded class columns, computes its row
//! block's loss contribution, and all-reduces the scalar across the R
//! group. The logit gradient is sliced back to this rank's column block —
//! already in the layout the backward pass expects.

use crate::dist::DistContext;
use crate::grid::LayerRoles;
use plexus_comm::{Communicator, ReduceOp};
use plexus_tensor::ops::{logsumexp_rows, softmax_rows};
use plexus_tensor::Matrix;

/// Loss value (global), training accuracy (global) and local `∂L/∂logits`.
pub struct DistLossOutput {
    pub loss: f64,
    pub train_accuracy: f64,
    pub dlogits_local: Matrix,
}

/// Large negative filler for padded class columns: exp(x - max) underflows
/// to exactly 0, so padded classes get zero probability and zero gradient.
const NEG_FILL: f32 = -1.0e30;

/// Compute the distributed masked cross-entropy.
///
/// * `logits_local`: this rank's block (rows = its R-axis row block,
///   cols = its C-axis class block, padded width).
/// * `labels/mask`: this rank's row slice, in the same (permuted, padded)
///   node order as the logits rows.
/// * `num_classes_real`: classes beyond this index are padding.
/// * `total_train`: global training-node count (the averaging denominator).
pub fn dist_masked_cross_entropy<C: Communicator>(
    ctx: &DistContext<C>,
    roles_last: LayerRoles,
    logits_local: &Matrix,
    labels: &[u32],
    mask: &[bool],
    num_classes_real: usize,
    total_train: usize,
) -> DistLossOutput {
    assert_eq!(labels.len(), logits_local.rows(), "dist loss: labels/rows mismatch");
    assert_eq!(mask.len(), labels.len(), "dist loss: mask length mismatch");
    assert!(total_train > 0, "dist loss: zero training nodes");

    // Full class dimension on every rank.
    let mut full = ctx.all_gather_cols(logits_local, roles_last.contract);
    let cp = full.cols();
    assert!(
        num_classes_real <= cp,
        "dist loss: {} real classes exceed padded width {}",
        num_classes_real,
        cp
    );
    for r in 0..full.rows() {
        for v in &mut full.row_mut(r)[num_classes_real..] {
            *v = NEG_FILL;
        }
    }

    let lse = logsumexp_rows(&full);
    let probs = softmax_rows(&full);
    let inv = 1.0 / total_train as f32;

    let mut dlogits_full = Matrix::zeros(full.rows(), cp);
    let mut loss_sum = 0.0f64;
    let mut correct = 0u64;
    for i in 0..labels.len() {
        if !mask[i] {
            continue;
        }
        let y = labels[i] as usize;
        debug_assert!(y < num_classes_real, "label {} out of {} classes", y, num_classes_real);
        loss_sum += (lse[i] - full[(i, y)]) as f64;
        let prow = probs.row(i);
        let drow = dlogits_full.row_mut(i);
        for j in 0..num_classes_real {
            drow[j] = prow[j] * inv;
        }
        drow[y] -= inv;
        // argmax over real classes for accuracy.
        let mut best = 0usize;
        for j in 1..num_classes_real {
            if full[(i, j)] > full[(i, best)] {
                best = j;
            }
        }
        if best == y {
            correct += 1;
        }
    }

    // Row blocks partition the nodes along R; sum across the R group gives
    // the global figures (identical on all ranks afterwards).
    let mut scalars = [loss_sum, correct as f64];
    ctx.group(roles_last.rows).all_reduce(&mut scalars, ReduceOp::Sum);
    let loss = scalars[0] / total_train as f64;
    let train_accuracy = scalars[1] / total_train as f64;

    // Slice the gradient back to this rank's class-column block.
    let width = logits_local.cols();
    let c0 = ctx.coords.along(roles_last.contract) * width;
    let dlogits_local = dlogits_full.col_block(c0, c0 + width);

    DistLossOutput { loss, train_accuracy, dlogits_local }
}
