//! The §5.4 parallel data loader and the out-of-core ingest pipeline.
//!
//! "Plexus implements a parallel data loader ... It shards processed data
//! into 2D files offline (e.g., 8x8), and the data loader for each GPU
//! only loads, merges, and extracts the shards it needs." For
//! ogbn-papers100M on 64 GPUs this cut CPU memory from 146 GB to 9 GB and
//! load time from 139 s to 7 s.
//!
//! Two stages mirror that pipeline:
//!
//! 1. **Offline preprocessing** — [`preprocess_to_store`] applies the §5.1
//!    permutation scheme *while writing* a [`ShardStore`]: both layer
//!    parities of the permuted adjacency (`P_r Â P_cᵀ` and `P_c Â P_rᵀ`)
//!    are emitted row band by row band through
//!    [`plexus_sparse::permute::permuted_row_band`], so at no point do two
//!    full copies of Â coexist (peak extra memory is one band, `~nnz/p`).
//!    Feature row bands, labels/masks in both output orders, and a
//!    versioned manifest with per-shard checksums complete the store.
//! 2. **Per-rank loading** — `load_*` methods read back only the files a
//!    rank's window intersects, skipping non-intersecting files *without
//!    opening them* (sizes come from the manifest) and reporting both
//!    bytes read and bytes skipped in a [`LoadStats`]. A [`MemoryLedger`]
//!    aggregates those stats plus resident/peak adjacency and feature
//!    bytes — the quantities behind the paper's memory reductions.
//!
//! The binary format is versioned ([`FORMAT_VERSION`]) and every file's
//! FNV-1a checksum is recorded in the manifest; a corrupted, truncated, or
//! version-mismatched file surfaces as a typed [`LoaderError`] instead of
//! garbage data.

use crate::setup::PermutationMode;
use plexus_comm::fault::FaultPlan;
use plexus_graph::{LoadedDataset, MappedFile};
use plexus_sparse::permute::{inverse_permutation, permuted_row_band};
use plexus_sparse::shard::split_range;
use plexus_sparse::Csr;
use plexus_tensor::Matrix;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of every Plexus shard-format file ("PLXSSHAR"). Public so
/// downstream artifact formats (the serving freezer) can reuse the header.
pub const MAGIC: u64 = 0x504c5853_53484152;
/// Current on-disk format. Version 2 added the per-file version header,
/// manifest checksums, dual-parity adjacency shards, and label files.
pub const FORMAT_VERSION: u64 = 2;
/// Bounded retry budget for verified reads: one re-read from disk before a
/// checksum/truncation failure becomes the caller's typed [`LoaderError`].
/// Shared with the activation store's spill reloads.
pub(crate) const MAX_READ_RETRIES: u64 = 1;
/// Backoff before a verified-read retry (scaled by the attempt number).
pub(crate) const READ_RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Typed failure of a [`ShardStore`] operation.
#[derive(Debug)]
pub enum LoaderError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the Plexus shard magic.
    BadMagic { file: PathBuf },
    /// The file (or manifest) was written by a different format version.
    VersionMismatch { file: PathBuf, found: u64, expected: u64 },
    /// The file's bytes do not hash to the checksum the manifest recorded.
    ChecksumMismatch { file: PathBuf, stored: u64, computed: u64 },
    /// The file ended before its declared payload.
    Truncated { file: PathBuf },
    /// The manifest is missing, unparsable, or does not list the file.
    BadManifest { reason: String },
    /// The store does not contain the requested component (e.g. labels in
    /// a raw store, or the odd parity in a single-parity store).
    Missing { what: &'static str },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderError::Io(e) => write!(f, "shard store I/O error: {}", e),
            LoaderError::BadMagic { file } => {
                write!(f, "{}: not a Plexus shard file", file.display())
            }
            LoaderError::VersionMismatch { file, found, expected } => {
                write!(
                    f,
                    "{}: format version {} (this build reads {})",
                    file.display(),
                    found,
                    expected
                )
            }
            LoaderError::ChecksumMismatch { file, stored, computed } => write!(
                f,
                "{}: checksum {:016x} does not match manifest {:016x} (corrupted file)",
                file.display(),
                computed,
                stored
            ),
            LoaderError::Truncated { file } => {
                write!(f, "{}: file shorter than its declared payload", file.display())
            }
            LoaderError::BadManifest { reason } => write!(f, "bad shard manifest: {}", reason),
            LoaderError::Missing { what } => write!(f, "store does not contain {}", what),
        }
    }
}

impl std::error::Error for LoaderError {}

impl From<io::Error> for LoaderError {
    fn from(e: io::Error) -> Self {
        LoaderError::Io(e)
    }
}

pub type LoaderResult<T> = Result<T, LoaderError>;

/// Which adjacency permutation variant a file holds: even layers consume
/// `P_r Â P_cᵀ`, odd layers `P_c Â P_rᵀ` (§5.1). Labels follow the same
/// convention — `Even` means the `P_r` output order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parity {
    Even,
    Odd,
}

impl Parity {
    /// The parity layer `l` consumes.
    pub fn for_layer(l: usize) -> Parity {
        if l.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Parity::Even => "e",
            Parity::Odd => "o",
        }
    }
}

/// What one windowed load touched on disk: the §5.4 quantities (bytes a
/// rank actually read vs. the bytes it proved it could skip without
/// opening), plus the transient merge-buffer high-water mark.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadStats {
    pub bytes_read: u64,
    pub bytes_skipped: u64,
    pub files_read: usize,
    pub files_skipped: usize,
    /// Of `bytes_read`, the bytes accessed through a read-only memory
    /// mapping (no heap copy of the file).
    pub bytes_mapped: u64,
    /// Of `bytes_read`, the bytes copied into an owned heap buffer (the
    /// portable fallback when mmap is unavailable).
    pub bytes_copied: u64,
    /// Peak bytes of shard/band buffers alive at once while merging,
    /// beyond the returned object itself.
    pub peak_transient_bytes: u64,
    /// Reads that failed verification once and succeeded on the bounded
    /// re-read (transient-fault recovery; see `ShardStore::read_verified`).
    pub read_retries: u64,
}

impl LoadStats {
    /// Count one verified file, classifying its bytes as mapped or copied
    /// by which path [`MappedFile::open`] took.
    fn note_file_read(&mut self, map: &MappedFile) {
        self.files_read += 1;
        self.bytes_read += map.len() as u64;
        if map.is_mapped() {
            self.bytes_mapped += map.len() as u64;
        } else {
            self.bytes_copied += map.len() as u64;
        }
    }
}

/// Per-rank memory accounting for the ingest pipeline *and* the training
/// loop's activation state: I/O totals from [`LoadStats`], resident/peak
/// adjacency and feature bytes (the §5.4 claim — `~nnz/(G_r·G_c)` per
/// layer for the sharded path against `2·nnz` for the in-memory path),
/// plus the activation-residency counters synced from the trainer's
/// [`ActivationStore`](crate::activation::ActivationStore).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryLedger {
    pub bytes_read: u64,
    pub bytes_skipped: u64,
    pub files_read: usize,
    pub files_skipped: usize,
    /// Of `bytes_read`, bytes served through memory mappings.
    pub bytes_mapped: u64,
    /// Of `bytes_read`, bytes copied into owned heap buffers.
    pub bytes_copied: u64,
    pub adjacency_resident_bytes: u64,
    pub peak_adjacency_bytes: u64,
    pub feature_resident_bytes: u64,
    pub peak_feature_bytes: u64,
    /// Activation bytes currently held by the trainer's activation store.
    pub activation_resident_bytes: u64,
    /// High-water mark of store-held activation bytes across all epochs.
    pub peak_activation_bytes: u64,
    /// Total activation bytes written to spill files.
    pub activation_spilled_bytes: u64,
    /// Total activation bytes read back from spill files.
    pub activation_reloaded_bytes: u64,
    /// Layer caches evicted to disk.
    pub activation_spill_events: u64,
    /// Layer caches re-derived from retained inputs during backward.
    pub activation_recompute_events: u64,
    /// Shard reads that failed verification once and succeeded on the
    /// bounded re-read.
    pub read_retries: u64,
    /// Spill-file reloads that failed verification once and succeeded on
    /// the bounded re-read.
    pub activation_reload_retries: u64,
}

impl MemoryLedger {
    /// Fold a windowed load's I/O counters into the totals.
    pub fn absorb(&mut self, s: &LoadStats) {
        self.bytes_read += s.bytes_read;
        self.bytes_skipped += s.bytes_skipped;
        self.files_read += s.files_read;
        self.files_skipped += s.files_skipped;
        self.bytes_mapped += s.bytes_mapped;
        self.bytes_copied += s.bytes_copied;
        self.read_retries += s.read_retries;
    }

    /// Account `bytes` of adjacency that stay resident after a load.
    pub fn note_adjacency_resident(&mut self, bytes: u64) {
        self.adjacency_resident_bytes += bytes;
        self.peak_adjacency_bytes = self.peak_adjacency_bytes.max(self.adjacency_resident_bytes);
    }

    /// Account a transient adjacency spike of `bytes` on top of what is
    /// currently resident (merge buffers during a windowed load).
    pub fn note_adjacency_transient(&mut self, bytes: u64) {
        self.peak_adjacency_bytes =
            self.peak_adjacency_bytes.max(self.adjacency_resident_bytes + bytes);
    }

    /// Account `bytes` of features that stay resident after a load.
    pub fn note_feature_resident(&mut self, bytes: u64) {
        self.feature_resident_bytes += bytes;
        self.peak_feature_bytes = self.peak_feature_bytes.max(self.feature_resident_bytes);
    }

    /// Account a transient feature spike of `bytes`.
    pub fn note_feature_transient(&mut self, bytes: u64) {
        self.peak_feature_bytes = self.peak_feature_bytes.max(self.feature_resident_bytes + bytes);
    }

    /// Overwrite the activation counters with the store's cumulative
    /// stats. Called by the trainer at the end of every epoch; the peak
    /// only ever ratchets upward.
    pub fn sync_activation_stats(&mut self, s: &crate::activation::ActivationStats) {
        self.activation_resident_bytes = s.resident_bytes;
        self.peak_activation_bytes = self.peak_activation_bytes.max(s.peak_resident_bytes);
        self.activation_spilled_bytes = s.spilled_bytes;
        self.activation_reloaded_bytes = s.reloaded_bytes;
        self.activation_spill_events = s.spill_events;
        self.activation_recompute_events = s.recompute_events;
        self.activation_reload_retries = s.reload_retries;
    }

    /// One-line human summary (the example's per-rank report).
    pub fn summary(&self) -> String {
        format!(
            "read {:>12} B ({} mapped / {} copied), skipped {:>12} B ({:>3}/{:<3} files), peak adj {:>12} B, peak feat {:>12} B, peak act {:>12} B ({} spills, {} recomputes)",
            self.bytes_read,
            self.bytes_mapped,
            self.bytes_copied,
            self.bytes_skipped,
            self.files_read,
            self.files_read + self.files_skipped,
            self.peak_adjacency_bytes,
            self.peak_feature_bytes,
            self.peak_activation_bytes,
            self.activation_spill_events,
            self.activation_recompute_events
        )
    }
}

/// An on-disk 2D-sharded dataset (format v2).
///
/// Raw stores written by [`ShardStore::create`] hold one adjacency parity
/// plus feature bands. Preprocessed stores written by
/// [`preprocess_to_store`] additionally hold the odd parity and
/// labels/masks in both §5.1 output orders, making them sufficient to
/// train from without ever materializing the global problem.
pub struct ShardStore {
    dir: PathBuf,
    pub grid_p: usize,
    pub grid_q: usize,
    pub rows: usize,
    pub cols: usize,
    pub feat_dim: usize,
    /// 1 for raw stores, 2 for preprocessed (even + odd) stores.
    pub parities: usize,
    /// Class count of the source dataset (0 for raw stores).
    pub num_classes: usize,
    /// Number of training nodes (0 for raw stores).
    pub total_train: usize,
    /// §5.1 scheme baked into the shards (`None` for raw stores).
    pub perm_mode: Option<PermutationMode>,
    pub perm_seed: u64,
    /// FNV-1a fingerprint of the source dataset's full contents, so
    /// incremental re-preprocessing never reuses shards of a different
    /// graph (0 for raw stores and pre-fingerprint manifests).
    pub source_fp: u64,
    /// What the preprocessing run that produced this handle did (zeroed
    /// for raw stores and stores reopened via [`ShardStore::open`]; not
    /// persisted in the manifest).
    pub preprocess: PreprocessSummary,
    /// filename -> (fnv1a checksum, file length in bytes).
    files: BTreeMap<String, (u64, u64)>,
    /// Armed fault-injection plan consulted on every verified read (test
    /// harness only; `None` — the production default — costs nothing).
    faults: Option<Arc<FaultPlan>>,
}

/// What one [`preprocess_to_store`] run wrote vs. reused: with an existing
/// up-to-date store in the target directory, matching shard files are
/// verified against the prior manifest's checksums and skipped instead of
/// regenerated (ROADMAP "Incremental / resumable preprocessing").
#[derive(Clone, Copy, Debug, Default)]
pub struct PreprocessSummary {
    pub files_written: usize,
    pub files_skipped: usize,
    pub bytes_written: u64,
    pub bytes_skipped: u64,
}

impl PreprocessSummary {
    /// One-line human summary (the example's preprocess report).
    pub fn report(&self) -> String {
        format!(
            "wrote {} files ({} B), reused {} files ({} B)",
            self.files_written, self.bytes_written, self.files_skipped, self.bytes_skipped
        )
    }
}

fn adj_name(parity: Parity, i: usize, j: usize) -> String {
    format!("adj_{}_{}_{}.plx", parity.tag(), i, j)
}

fn feat_name(i: usize) -> String {
    format!("feat_{}.plx", i)
}

fn labels_name(parity: Parity) -> String {
    format!("labels_{}.plx", parity.tag())
}

impl ShardStore {
    /// Write `a` (adjacency) and `features` into `dir` as a raw `p x q`
    /// shard grid (single parity, no labels). `dir` is created; existing
    /// shard files are overwritten.
    pub fn create(
        dir: &Path,
        a: &Csr,
        features: &Matrix,
        p: usize,
        q: usize,
    ) -> LoaderResult<ShardStore> {
        assert_eq!(a.rows(), features.rows(), "ShardStore: A and F row mismatch");
        assert!(p > 0 && q > 0, "ShardStore: empty grid");
        fs::create_dir_all(dir)?;
        let mut files = BTreeMap::new();
        for i in 0..p {
            let (r0, r1) = split_range(a.rows(), p, i);
            let band = a.block(r0, r1, 0, a.cols());
            write_band_shards(dir, &mut files, &band, Parity::Even, i, a.cols(), q)?;
            let name = feat_name(i);
            let entry = write_matrix(&dir.join(&name), &features.row_block(r0, r1))?;
            files.insert(name, entry);
        }
        let store = ShardStore {
            dir: dir.to_path_buf(),
            grid_p: p,
            grid_q: q,
            rows: a.rows(),
            cols: a.cols(),
            feat_dim: features.cols(),
            parities: 1,
            num_classes: 0,
            total_train: 0,
            perm_mode: None,
            perm_seed: 0,
            source_fp: 0,
            preprocess: PreprocessSummary::default(),
            files,
            faults: None,
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Open an existing store by reading its manifest.
    pub fn open(dir: &Path) -> LoaderResult<ShardStore> {
        let path = dir.join("manifest.txt");
        let text = fs::read_to_string(&path).map_err(|e| LoaderError::BadManifest {
            reason: format!("{}: {}", path.display(), e),
        })?;
        let mut kv: BTreeMap<&str, &str> = BTreeMap::new();
        let mut files = BTreeMap::new();
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else { continue };
            let (key, value) = (key.trim(), value.trim());
            if let Some(name) = key.strip_prefix("file ") {
                let mut parts = value.split_whitespace();
                let entry = (|| {
                    let ck = u64::from_str_radix(parts.next()?, 16).ok()?;
                    let len: u64 = parts.next()?.parse().ok()?;
                    Some((ck, len))
                })()
                .ok_or_else(|| LoaderError::BadManifest {
                    reason: format!("unparsable file entry for {}", name),
                })?;
                files.insert(name.to_string(), entry);
            } else {
                kv.insert(key, value);
            }
        }
        let format: u64 = kv
            .get("format")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| LoaderError::BadManifest { reason: "missing format line".into() })?;
        if format != FORMAT_VERSION {
            return Err(LoaderError::VersionMismatch {
                file: path,
                found: format,
                expected: FORMAT_VERSION,
            });
        }
        let field = |name: &str| -> LoaderResult<usize> {
            kv.get(name).and_then(|v| v.parse().ok()).ok_or_else(|| LoaderError::BadManifest {
                reason: format!("missing or unparsable field {}", name),
            })
        };
        let perm_mode = match kv.get("perm_mode").copied() {
            None | Some("raw") => None,
            Some("none") => Some(PermutationMode::None),
            Some("single") => Some(PermutationMode::Single),
            Some("double") => Some(PermutationMode::Double),
            Some(other) => {
                return Err(LoaderError::BadManifest {
                    reason: format!("unknown perm_mode {}", other),
                })
            }
        };
        // Fingerprints arrived after format v2 shipped; absent means "not
        // recorded", which disables incremental reuse rather than erroring.
        let source_fp =
            kv.get("source_fp").and_then(|v| u64::from_str_radix(v, 16).ok()).unwrap_or(0);
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            grid_p: field("p")?,
            grid_q: field("q")?,
            rows: field("rows")?,
            cols: field("cols")?,
            feat_dim: field("feat_dim")?,
            parities: field("parities")?,
            num_classes: field("classes")?,
            total_train: field("total_train")?,
            perm_mode,
            perm_seed: field("perm_seed")? as u64,
            source_fp,
            preprocess: PreprocessSummary::default(),
            files,
            faults: None,
        })
    }

    /// A second handle onto the same on-disk store with `plan` armed on
    /// its read path: reads consult the plan and can be made to fail with
    /// a synthetic checksum mismatch. The original handle is untouched, so
    /// tests can run a faulted and a clean loader against one store.
    pub fn with_faults(&self, plan: Arc<FaultPlan>) -> ShardStore {
        ShardStore {
            dir: self.dir.clone(),
            grid_p: self.grid_p,
            grid_q: self.grid_q,
            rows: self.rows,
            cols: self.cols,
            feat_dim: self.feat_dim,
            parities: self.parities,
            num_classes: self.num_classes,
            total_train: self.total_train,
            perm_mode: self.perm_mode,
            perm_seed: self.perm_seed,
            source_fp: self.source_fp,
            preprocess: self.preprocess,
            files: self.files.clone(),
            faults: Some(plan),
        }
    }

    fn write_manifest(&self) -> LoaderResult<()> {
        let mut f = BufWriter::new(File::create(self.dir.join("manifest.txt"))?);
        writeln!(f, "format = {}", FORMAT_VERSION)?;
        writeln!(f, "p = {}", self.grid_p)?;
        writeln!(f, "q = {}", self.grid_q)?;
        writeln!(f, "rows = {}", self.rows)?;
        writeln!(f, "cols = {}", self.cols)?;
        writeln!(f, "feat_dim = {}", self.feat_dim)?;
        writeln!(f, "parities = {}", self.parities)?;
        writeln!(f, "classes = {}", self.num_classes)?;
        writeln!(f, "total_train = {}", self.total_train)?;
        let mode = match self.perm_mode {
            None => "raw",
            Some(PermutationMode::None) => "none",
            Some(PermutationMode::Single) => "single",
            Some(PermutationMode::Double) => "double",
        };
        writeln!(f, "perm_mode = {}", mode)?;
        writeln!(f, "perm_seed = {}", self.perm_seed)?;
        writeln!(f, "source_fp = {:016x}", self.source_fp)?;
        for (name, (ck, len)) in &self.files {
            writeln!(f, "file {} = {:016x} {}", name, ck, len)?;
        }
        f.flush()?;
        Ok(())
    }

    /// Total bytes of all shard files (what a naive loader would read on
    /// every rank).
    pub fn total_bytes(&self) -> LoaderResult<u64> {
        Ok(self.files.values().map(|&(_, len)| len).sum())
    }

    /// Cheap integrity check: every manifest entry exists on disk with the
    /// recorded length. Content checksums are verified lazily on load.
    pub fn validate_files(&self) -> LoaderResult<()> {
        for (name, &(_, len)) in &self.files {
            let path = self.dir.join(name);
            let meta =
                fs::metadata(&path).map_err(|_| LoaderError::Truncated { file: path.clone() })?;
            if meta.len() != len {
                return Err(LoaderError::Truncated { file: path });
            }
        }
        Ok(())
    }

    /// Manifest length of `name`, or a `BadManifest` error for unknown files.
    fn file_len(&self, name: &str) -> LoaderResult<u64> {
        self.files
            .get(name)
            .map(|&(_, len)| len)
            .ok_or_else(|| LoaderError::BadManifest { reason: format!("{} not in manifest", name) })
    }

    /// Map and checksum-verify a file; returns the read-only mapping plus
    /// the offset where the payload starts (just past the magic/version
    /// header), so callers decode in place without copying the file.
    ///
    /// A checksum/truncation failure is retried once from disk after a
    /// short backoff before surfacing the typed error: a mismatch can be a
    /// transient fault (torn page cache, mid-flight replacement by an
    /// atomic republish) as easily as real corruption, and a re-read
    /// distinguishes the two for free.
    fn read_verified(&self, name: &str) -> LoaderResult<(MappedFile, usize)> {
        self.read_verified_counted(name).map(|(m, p, _)| (m, p))
    }

    /// [`read_verified`](Self::read_verified) plus the number of re-reads
    /// the bounded retry performed (0 on the clean path).
    fn read_verified_counted(&self, name: &str) -> LoaderResult<(MappedFile, usize, u64)> {
        let path = self.dir.join(name);
        let &(stored_ck, stored_len) = self.files.get(name).ok_or_else(|| {
            LoaderError::BadManifest { reason: format!("{} not in manifest", name) }
        })?;
        let mut retries = 0u64;
        loop {
            let attempt = (|| {
                let map = MappedFile::open(&path)?;
                if let Some(plan) = &self.faults {
                    if plan.shard_read_fails(name) {
                        return Err(LoaderError::ChecksumMismatch {
                            file: path.clone(),
                            stored: stored_ck,
                            computed: !stored_ck, // synthetic injected mismatch
                        });
                    }
                }
                let payload_at = verify_shard_bytes(map.bytes(), &path, stored_ck, stored_len)?;
                Ok((map, payload_at))
            })();
            match attempt {
                Ok((map, payload_at)) => return Ok((map, payload_at, retries)),
                Err(e @ (LoaderError::ChecksumMismatch { .. } | LoaderError::Truncated { .. })) => {
                    if retries >= MAX_READ_RETRIES {
                        return Err(e);
                    }
                    retries += 1;
                    std::thread::sleep(READ_RETRY_BACKOFF * retries as u32);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Public form of the verified-map open, for downstream readers (the
    /// serving artifact keeps every adjacency shard mapped for its whole
    /// lifetime and decodes k-hop rows straight out of the mapping).
    pub fn map_verified(&self, name: &str) -> LoaderResult<(MappedFile, usize)> {
        self.read_verified(name)
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk name of the adjacency shard at grid position `(i, j)`.
    pub fn shard_name(parity: Parity, i: usize, j: usize) -> String {
        adj_name(parity, i, j)
    }

    /// Load the even-parity adjacency window `[r0, r1) x [c0, c1)`,
    /// touching only the shard files it intersects.
    pub fn load_adjacency_window(
        &self,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
    ) -> LoaderResult<(Csr, LoadStats)> {
        self.load_adjacency_window_parity(Parity::Even, r0, r1, c0, c1)
    }

    /// Load an adjacency window of the given parity. Shard files wholly
    /// outside the window are never opened: their manifest-recorded sizes
    /// are reported as `bytes_skipped` instead.
    pub fn load_adjacency_window_parity(
        &self,
        parity: Parity,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
    ) -> LoaderResult<(Csr, LoadStats)> {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols, "window out of bounds");
        if parity == Parity::Odd && self.parities < 2 {
            return Err(LoaderError::Missing { what: "odd-parity adjacency shards" });
        }
        let mut stats = LoadStats::default();
        let mut transient = TransientTracker::default();
        let mut row_bands: Vec<Csr> = Vec::new();
        let mut bands_bytes = 0u64;
        for i in 0..self.grid_p {
            let (sr0, sr1) = split_range(self.rows, self.grid_p, i);
            let row_hit = sr1 > r0 && sr0 < r1;
            let mut band_parts: Vec<(usize, Csr)> = Vec::new();
            let mut parts_bytes = 0u64;
            for j in 0..self.grid_q {
                let (sc0, sc1) = split_range(self.cols, self.grid_q, j);
                let name = adj_name(parity, i, j);
                if !row_hit || sc1 <= c0 || sc0 >= c1 {
                    stats.files_skipped += 1;
                    stats.bytes_skipped += self.file_len(&name)?;
                    continue;
                }
                let (map, payload_at, retries) = self.read_verified_counted(&name)?;
                stats.read_retries += retries;
                stats.note_file_read(&map);
                // Slice to the window intersection, in shard-local coords,
                // decoding only the intersecting rows straight out of the
                // mapping — the shard is never materialized whole.
                let lr0 = r0.max(sr0) - sr0;
                let lr1 = r1.min(sr1) - sr0;
                let lc0 = c0.max(sc0) - sc0;
                let lc1 = c1.min(sc1) - sc0;
                let block = parse_csr_block(
                    &map.bytes()[payload_at..],
                    &self.dir.join(&name),
                    lr0,
                    lr1,
                    lc0,
                    lc1,
                )?;
                parts_bytes += block.mem_bytes();
                transient.probe(bands_bytes + parts_bytes);
                band_parts.push((sc0.max(c0), block));
            }
            if row_hit {
                band_parts.sort_by_key(|&(off, _)| off);
                let band = hstack_blocks(&band_parts, c1 - c0);
                transient.probe(bands_bytes + parts_bytes + band.mem_bytes());
                bands_bytes += band.mem_bytes();
                row_bands.push(band);
            }
        }
        let merged = if row_bands.is_empty() {
            Csr::empty(r1 - r0, c1 - c0)
        } else {
            Csr::vstack(&row_bands)
        };
        transient.probe(bands_bytes + merged.mem_bytes());
        stats.peak_transient_bytes = transient.peak;
        Ok((merged, stats))
    }

    /// Load feature rows `[r0, r1)`, touching only intersecting band files.
    pub fn load_feature_rows(&self, r0: usize, r1: usize) -> LoaderResult<(Matrix, LoadStats)> {
        assert!(r0 <= r1 && r1 <= self.rows, "feature window out of bounds");
        let mut stats = LoadStats::default();
        let mut transient = TransientTracker::default();
        let mut blocks = Vec::new();
        let mut blocks_bytes = 0u64;
        for i in 0..self.grid_p {
            let (sr0, sr1) = split_range(self.rows, self.grid_p, i);
            let name = feat_name(i);
            if sr1 <= r0 || sr0 >= r1 {
                stats.files_skipped += 1;
                stats.bytes_skipped += self.file_len(&name)?;
                continue;
            }
            let (map, payload_at, retries) = self.read_verified_counted(&name)?;
            stats.read_retries += retries;
            stats.note_file_read(&map);
            let block = parse_matrix_rows(
                &map.bytes()[payload_at..],
                &self.dir.join(&name),
                r0.max(sr0) - sr0,
                r1.min(sr1) - sr0,
            )?;
            blocks_bytes += block.mem_bytes();
            transient.probe(blocks_bytes);
            blocks.push(block);
        }
        let merged = if blocks.is_empty() {
            Matrix::zeros(0, self.feat_dim)
        } else {
            Matrix::vstack(&blocks)
        };
        transient.probe(blocks_bytes + merged.mem_bytes());
        stats.peak_transient_bytes = transient.peak;
        Ok((merged, stats))
    }

    /// Load the full label/train-mask vectors in the given §5.1 output
    /// order (`Even` = `P_r`, `Odd` = `P_c`). Only preprocessed stores
    /// carry them.
    pub fn load_labels(&self, parity: Parity) -> LoaderResult<(Vec<u32>, Vec<bool>, LoadStats)> {
        if self.perm_mode.is_none() {
            return Err(LoaderError::Missing { what: "labels (raw store)" });
        }
        let name = labels_name(parity);
        let (map, payload_at, retries) = self.read_verified_counted(&name)?;
        let mut stats = LoadStats::default();
        stats.read_retries += retries;
        stats.note_file_read(&map);
        let path = self.dir.join(&name);
        let mut cur = Cursor { bytes: &map.bytes()[payload_at..], pos: 0, path: &path };
        let n = cur.u64()? as usize;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(cur.u32()?);
        }
        let mut mask = Vec::with_capacity(n);
        for _ in 0..n {
            mask.push(cur.u8()? != 0);
        }
        Ok((labels, mask, stats))
    }
}

/// Offline preprocessing (§5.1 + §5.4): permute `ds`'s adjacency with
/// `mode`/`perm_seed` and write it — both layer parities — plus permuted
/// feature bands and labels/masks into a `p x q` [`ShardStore`] at `dir`,
/// streaming one row band at a time. Peak extra memory over the source
/// dataset is one band (`~nnz/p`) per worker, never a second full copy of
/// Â.
///
/// Row bands are processed in parallel (ROADMAP "Parallel store writes"):
/// each band permutes and writes its shard files under temporary names,
/// and the coordinator renames them into the final manifest order once
/// every band has finished — output is byte-for-byte identical to
/// [`preprocess_to_store_serial`], asserted by the equivalence test.
///
/// Re-preprocessing into a directory that already holds an up-to-date
/// store with the same parameters and the same source fingerprint skips
/// every shard file whose on-disk bytes still hash to the prior manifest's
/// checksum; [`ShardStore::preprocess`] reports what was written vs.
/// reused.
///
/// Training from the resulting store via
/// [`crate::trainer::train_from_source`] is bitwise identical to the
/// in-memory path with the same permutation options.
pub fn preprocess_to_store(
    ds: &LoadedDataset,
    dir: &Path,
    mode: PermutationMode,
    perm_seed: u64,
    p: usize,
    q: usize,
) -> LoaderResult<ShardStore> {
    preprocess_impl(ds, dir, mode, perm_seed, p, q, true)
}

/// [`preprocess_to_store`] with the band loop forced sequential — the
/// reference the parallel writer is checked against (and a debugging aid
/// when filesystem parallelism is suspect).
pub fn preprocess_to_store_serial(
    ds: &LoadedDataset,
    dir: &Path,
    mode: PermutationMode,
    perm_seed: u64,
    p: usize,
    q: usize,
) -> LoaderResult<ShardStore> {
    preprocess_impl(ds, dir, mode, perm_seed, p, q, false)
}

fn preprocess_impl(
    ds: &LoadedDataset,
    dir: &Path,
    mode: PermutationMode,
    perm_seed: u64,
    p: usize,
    q: usize,
    parallel: bool,
) -> LoaderResult<ShardStore> {
    assert!(p > 0 && q > 0, "preprocess_to_store: empty grid");
    let n = ds.num_nodes();
    let (pr, pc) = crate::setup::build_permutations(mode, perm_seed, n);
    fs::create_dir_all(dir)?;
    let source_fp = dataset_fingerprint(ds);
    let prior = reusable_prior_files(dir, mode, perm_seed, p, q, n, ds.features.cols(), source_fp);

    let mut files = BTreeMap::new();
    let mut summary = PreprocessSummary::default();

    // Adjacency, both parities, band by band.
    for (parity, rowp, colp) in [(Parity::Even, &pr, &pc), (Parity::Odd, &pc, &pr)] {
        let inv_row = inverse_permutation(rowp);
        let outs = run_bands(p, parallel, |i| {
            adj_band_files(ds, dir, &prior, &inv_row, colp, parity, i, n, p, q)
        })?;
        collect_band_files(dir, outs, &mut files, &mut summary)?;
    }

    // Features in even-layer input order (`P_c` applied), band by band.
    let inv_pc = inverse_permutation(&pc);
    let outs = run_bands(p, parallel, |i| feat_band_files(ds, dir, &prior, &inv_pc, i, n, p))?;
    collect_band_files(dir, outs, &mut files, &mut summary)?;

    // Labels/masks in both output orders (two small files; serial).
    for (parity, perm) in [(Parity::Even, &pr), (Parity::Odd, &pc)] {
        let name = labels_name(parity);
        let out = if let Some(entry) = verified_prior_entry(dir, &prior, &name) {
            BandFile { name, entry, written: false }
        } else {
            let mut labels = vec![0u32; n];
            let mut mask = vec![false; n];
            for i in 0..n {
                labels[perm[i] as usize] = ds.labels[i];
                mask[perm[i] as usize] = ds.split.train[i];
            }
            let entry = write_labels(&temp_path(dir, &name), &labels, &mask)?;
            BandFile { name, entry, written: true }
        };
        collect_band_files(dir, vec![vec![out]], &mut files, &mut summary)?;
    }

    let store = ShardStore {
        dir: dir.to_path_buf(),
        grid_p: p,
        grid_q: q,
        rows: n,
        cols: n,
        feat_dim: ds.features.cols(),
        parities: 2,
        num_classes: ds.num_classes,
        total_train: ds.split.num_train(),
        perm_mode: Some(mode),
        perm_seed,
        source_fp,
        preprocess: summary,
        files,
        faults: None,
    };
    store.write_manifest()?;
    Ok(store)
}

/// One file a preprocessing band produced: its manifest entry plus whether
/// a fresh temp file awaits renaming (vs. an existing verified file that
/// was reused in place).
struct BandFile {
    name: String,
    entry: (u64, u64),
    written: bool,
}

fn temp_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{}.tmp", name))
}

/// Run `f` over every row band, in parallel (one task per band on the
/// persistent worker pool, each writing its own temp files — no shared
/// mutable state) or sequentially. Under `PLEXUS_THREADS=1` the parallel
/// flag degenerates to the same sequential loop.
fn run_bands<F>(p: usize, parallel: bool, f: F) -> LoaderResult<Vec<Vec<BandFile>>>
where
    F: Fn(usize) -> LoaderResult<Vec<BandFile>> + Sync,
{
    if parallel {
        let mut slots: Vec<Option<LoaderResult<Vec<BandFile>>>> = (0..p).map(|_| None).collect();
        slots.as_mut_slice().par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
            slot[0] = Some(f(i));
        });
        slots.into_iter().map(|s| s.expect("band slot filled")).collect()
    } else {
        (0..p).map(f).collect()
    }
}

/// Land every band's files in deterministic (band-major, then shard) order:
/// fresh temp files are renamed to their final names, reused files are
/// counted as skipped, and all entries join the manifest map.
fn collect_band_files(
    dir: &Path,
    outs: Vec<Vec<BandFile>>,
    files: &mut BTreeMap<String, (u64, u64)>,
    summary: &mut PreprocessSummary,
) -> LoaderResult<()> {
    for band in outs {
        for bf in band {
            if bf.written {
                fs::rename(temp_path(dir, &bf.name), dir.join(&bf.name))?;
                summary.files_written += 1;
                summary.bytes_written += bf.entry.1;
            } else {
                summary.files_skipped += 1;
                summary.bytes_skipped += bf.entry.1;
            }
            files.insert(bf.name, bf.entry);
        }
    }
    Ok(())
}

/// Permute and shard one adjacency row band. When every one of the band's
/// `q` shard files verifies against the prior manifest, the permutation
/// work is skipped entirely; otherwise stale files are rewritten to temp
/// names.
#[allow(clippy::too_many_arguments)]
fn adj_band_files(
    ds: &LoadedDataset,
    dir: &Path,
    prior: &BTreeMap<String, (u64, u64)>,
    inv_row: &[u32],
    colp: &[u32],
    parity: Parity,
    i: usize,
    n: usize,
    p: usize,
    q: usize,
) -> LoaderResult<Vec<BandFile>> {
    let reuse: Vec<Option<(String, (u64, u64))>> = (0..q)
        .map(|j| {
            let name = adj_name(parity, i, j);
            verified_prior_entry(dir, prior, &name).map(|e| (name, e))
        })
        .collect();
    if reuse.iter().all(|r| r.is_some()) {
        return Ok(reuse
            .into_iter()
            .map(|r| {
                let (name, entry) = r.expect("checked all_some");
                BandFile { name, entry, written: false }
            })
            .collect());
    }
    let (r0, r1) = split_range(n, p, i);
    let band = permuted_row_band(&ds.adjacency, inv_row, colp, r0, r1);
    let mut out = Vec::with_capacity(q);
    for (j, r) in reuse.into_iter().enumerate() {
        if let Some((name, entry)) = r {
            out.push(BandFile { name, entry, written: false });
            continue;
        }
        let (c0, c1) = split_range(n, q, j);
        let name = adj_name(parity, i, j);
        let entry = write_csr(&temp_path(dir, &name), &band.block(0, band.rows(), c0, c1))?;
        out.push(BandFile { name, entry, written: true });
    }
    Ok(out)
}

/// Gather and write one feature row band (or verify and reuse it).
fn feat_band_files(
    ds: &LoadedDataset,
    dir: &Path,
    prior: &BTreeMap<String, (u64, u64)>,
    inv_pc: &[u32],
    i: usize,
    n: usize,
    p: usize,
) -> LoaderResult<Vec<BandFile>> {
    let name = feat_name(i);
    if let Some(entry) = verified_prior_entry(dir, prior, &name) {
        return Ok(vec![BandFile { name, entry, written: false }]);
    }
    let (r0, r1) = split_range(n, p, i);
    let rows: Vec<usize> = inv_pc[r0..r1].iter().map(|&x| x as usize).collect();
    let entry = write_matrix(&temp_path(dir, &name), &ds.features.gather_rows(&rows))?;
    Ok(vec![BandFile { name, entry, written: true }])
}

/// The prior manifest entry for `name`, but only when the bytes on disk
/// still hash to it (a tampered or truncated file is rewritten, never
/// trusted).
fn verified_prior_entry(
    dir: &Path,
    prior: &BTreeMap<String, (u64, u64)>,
    name: &str,
) -> Option<(u64, u64)> {
    let &(ck, len) = prior.get(name)?;
    match fs::read(dir.join(name)) {
        Ok(bytes) if bytes.len() as u64 == len && fnv1a(&bytes) == ck => Some((ck, len)),
        _ => None,
    }
}

/// Prior manifest's file map when — and only when — the existing store was
/// produced by an identical preprocessing run: same grid, permutation
/// parameters and source-dataset fingerprint. Anything else (raw store,
/// different seed, different dataset, unreadable manifest) disables reuse.
#[allow(clippy::too_many_arguments)]
fn reusable_prior_files(
    dir: &Path,
    mode: PermutationMode,
    perm_seed: u64,
    p: usize,
    q: usize,
    rows: usize,
    feat_dim: usize,
    source_fp: u64,
) -> BTreeMap<String, (u64, u64)> {
    let Ok(prior) = ShardStore::open(dir) else { return BTreeMap::new() };
    let matches = prior.perm_mode == Some(mode)
        && prior.perm_seed == perm_seed
        && prior.grid_p == p
        && prior.grid_q == q
        && prior.rows == rows
        && prior.cols == rows
        && prior.feat_dim == feat_dim
        && prior.parities == 2
        && source_fp != 0
        && prior.source_fp == source_fp;
    if matches {
        prior.files
    } else {
        BTreeMap::new()
    }
}

/// Running FNV-1a hasher for the dataset fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET_BASIS)
    }

    fn put(&mut self, bytes: &[u8]) {
        self.0 = bytes.iter().fold(self.0, |h, &b| fnv1a_step(h, b));
    }

    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }
}

/// Content fingerprint of everything preprocessing consumes: adjacency
/// structure and values, features, labels, train mask and the shape
/// constants. Recorded in the manifest so incremental re-preprocessing
/// never reuses shards of a different graph that happens to share shapes.
fn dataset_fingerprint(ds: &LoadedDataset) -> u64 {
    let a = &ds.adjacency;
    let mut h = Fnv::new();
    for v in [a.rows(), a.cols(), a.nnz(), ds.features.cols(), ds.num_classes] {
        h.put_u64(v as u64);
    }
    for &ptr in a.row_ptr() {
        h.put_u64(ptr as u64);
    }
    for &c in a.col_idx() {
        h.put(&c.to_le_bytes());
    }
    for &v in a.values() {
        h.put(&v.to_le_bytes());
    }
    for &v in ds.features.as_slice() {
        h.put(&v.to_le_bytes());
    }
    for &l in &ds.labels {
        h.put(&l.to_le_bytes());
    }
    for &m in &ds.split.train {
        h.put(&[m as u8]);
    }
    h.0
}

/// Split a row band into `q` column shards and write them (the raw
/// [`ShardStore::create`] path; preprocessed stores go through
/// [`adj_band_files`]).
fn write_band_shards(
    dir: &Path,
    files: &mut BTreeMap<String, (u64, u64)>,
    band: &Csr,
    parity: Parity,
    i: usize,
    total_cols: usize,
    q: usize,
) -> LoaderResult<()> {
    for j in 0..q {
        let (c0, c1) = split_range(total_cols, q, j);
        let name = adj_name(parity, i, j);
        let entry = write_csr(&dir.join(&name), &band.block(0, band.rows(), c0, c1))?;
        files.insert(name, entry);
    }
    Ok(())
}

/// High-water tracker for merge buffers during a windowed load.
#[derive(Default)]
struct TransientTracker {
    peak: u64,
}

impl TransientTracker {
    fn probe(&mut self, live: u64) {
        self.peak = self.peak.max(live);
    }
}

/// Stitch column-partial CSR blocks (sharing rows) into one block of
/// `total_cols`, given each part's absolute starting column.
fn hstack_blocks(parts: &[(usize, Csr)], total_cols: usize) -> Csr {
    assert!(!parts.is_empty(), "hstack_blocks: no parts");
    let base = parts[0].0;
    let rows = parts[0].1.rows();
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..rows {
        for &(off, ref blk) in parts {
            let (cols, vals) = blk.row_entries(r);
            col_idx.extend(cols.iter().map(|&c| c + (off - base) as u32));
            values.extend_from_slice(vals);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(rows, total_cols, row_ptr, col_idx, values)
}

// ---------------------------------------------------------------------------
// Binary encoding: [MAGIC u64][FORMAT_VERSION u64][payload], little-endian,
// with the whole file's FNV-1a hash recorded in the manifest.

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn fnv1a_step(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3)
}

/// FNV-1a over a byte slice — the manifest checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET_BASIS, |h, &b| fnv1a_step(h, b))
}

/// BufWriter wrapper that FNV-hashes every byte as it passes through.
/// Shared with the activation spill path (`crate::activation`) and the
/// serving artifact freezer, which write the same header + checksum
/// format.
pub struct HashingWriter {
    inner: BufWriter<File>,
    hash: u64,
    written: u64,
}

impl HashingWriter {
    /// Start a checksummed file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self { inner: BufWriter::new(File::create(path)?), hash: FNV_OFFSET_BASIS, written: 0 })
    }

    /// Write `bytes`, folding them into the running FNV-1a hash.
    pub fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash = bytes.iter().fold(self.hash, |h, &b| fnv1a_step(h, b));
        self.written += bytes.len() as u64;
        self.inner.write_all(bytes)
    }

    /// Emit the shared `[MAGIC][FORMAT_VERSION]` header.
    pub fn header(&mut self) -> io::Result<()> {
        self.put(&MAGIC.to_le_bytes())?;
        self.put(&FORMAT_VERSION.to_le_bytes())
    }

    /// Flush and return `(fnv1a checksum, total bytes written)` — the
    /// manifest entry for the file.
    pub fn finish(mut self) -> io::Result<(u64, u64)> {
        self.inner.flush()?;
        Ok((self.hash, self.written))
    }
}

fn write_csr(path: &Path, a: &Csr) -> LoaderResult<(u64, u64)> {
    let mut w = HashingWriter::create(path)?;
    w.header()?;
    w.put(&(a.rows() as u64).to_le_bytes())?;
    w.put(&(a.cols() as u64).to_le_bytes())?;
    w.put(&(a.nnz() as u64).to_le_bytes())?;
    for &p in a.row_ptr() {
        w.put(&(p as u64).to_le_bytes())?;
    }
    for &c in a.col_idx() {
        w.put(&c.to_le_bytes())?;
    }
    for &v in a.values() {
        w.put(&v.to_le_bytes())?;
    }
    Ok(w.finish()?)
}

fn write_matrix(path: &Path, m: &Matrix) -> LoaderResult<(u64, u64)> {
    let mut w = HashingWriter::create(path)?;
    w.header()?;
    w.put(&(m.rows() as u64).to_le_bytes())?;
    w.put(&(m.cols() as u64).to_le_bytes())?;
    for &v in m.as_slice() {
        w.put(&v.to_le_bytes())?;
    }
    Ok(w.finish()?)
}

fn write_labels(path: &Path, labels: &[u32], mask: &[bool]) -> LoaderResult<(u64, u64)> {
    assert_eq!(labels.len(), mask.len(), "write_labels: length mismatch");
    let mut w = HashingWriter::create(path)?;
    w.header()?;
    w.put(&(labels.len() as u64).to_le_bytes())?;
    for &l in labels {
        w.put(&l.to_le_bytes())?;
    }
    for &m in mask {
        w.put(&[m as u8])?;
    }
    Ok(w.finish()?)
}

/// Bounds-checked little-endian reader over an in-memory payload. Shared
/// with the activation spill reload path (`crate::activation`) and the
/// serving artifact reader.
pub struct Cursor<'a> {
    pub bytes: &'a [u8],
    pub pos: usize,
    pub path: &'a Path,
}

impl Cursor<'_> {
    /// The next `n` bytes, or a typed `Truncated` error.
    pub fn take(&mut self, n: usize) -> LoaderResult<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(LoaderError::Truncated { file: self.path.to_path_buf() });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode a little-endian `u64`.
    pub fn u64(&mut self) -> LoaderResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Decode a little-endian `u32`.
    pub fn u32(&mut self) -> LoaderResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Decode a little-endian `f32`.
    pub fn f32(&mut self) -> LoaderResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Decode one byte.
    pub fn u8(&mut self) -> LoaderResult<u8> {
        Ok(self.take(1)?[0])
    }
}

/// Verify a shard-format file's manifest entry (length + FNV-1a checksum)
/// and its `[MAGIC][FORMAT_VERSION]` header against `bytes`, returning the
/// payload offset. This is the one gate every mapped or copied shard file
/// passes through; the serving artifact reuses it for its model files.
pub fn verify_shard_bytes(
    bytes: &[u8],
    path: &Path,
    stored_ck: u64,
    stored_len: u64,
) -> LoaderResult<usize> {
    if bytes.len() as u64 != stored_len {
        return Err(LoaderError::Truncated { file: path.to_path_buf() });
    }
    let computed = fnv1a(bytes);
    if computed != stored_ck {
        return Err(LoaderError::ChecksumMismatch {
            file: path.to_path_buf(),
            stored: stored_ck,
            computed,
        });
    }
    let mut cur = Cursor { bytes, pos: 0, path };
    let magic = cur.u64()?;
    if magic != MAGIC {
        return Err(LoaderError::BadMagic { file: path.to_path_buf() });
    }
    let version = cur.u64()?;
    if version != FORMAT_VERSION {
        return Err(LoaderError::VersionMismatch {
            file: path.to_path_buf(),
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    Ok(cur.pos)
}

/// Geometry of a CSR payload: byte offsets of the row-pointer, column and
/// value arrays, computed once so rows can be decoded in place from a
/// mapping without materializing the shard. Payload layout (after the
/// 16-byte file header): `rows u64, cols u64, nnz u64, row_ptr
/// (rows+1)×u64, col_idx nnz×u32, values nnz×f32`, little-endian.
#[derive(Clone, Copy, Debug)]
pub struct CsrPayload {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    /// Byte offset (within the payload) of `row_ptr[0]`.
    pub row_ptr_at: usize,
    /// Byte offset of `col_idx[0]`.
    pub col_idx_at: usize,
    /// Byte offset of `values[0]`.
    pub values_at: usize,
}

impl CsrPayload {
    /// Parse and bounds-check the header of a CSR payload.
    pub fn parse(payload: &[u8], path: &Path) -> LoaderResult<CsrPayload> {
        if payload.len() < 24 {
            return Err(LoaderError::Truncated { file: path.to_path_buf() });
        }
        let rows = le_u64(payload, 0) as usize;
        let cols = le_u64(payload, 8) as usize;
        let nnz = le_u64(payload, 16) as usize;
        let row_ptr_at = 24;
        let col_idx_at = row_ptr_at + 8 * (rows + 1);
        let values_at = col_idx_at + 4 * nnz;
        if payload.len() < values_at + 4 * nnz {
            return Err(LoaderError::Truncated { file: path.to_path_buf() });
        }
        Ok(CsrPayload { rows, cols, nnz, row_ptr_at, col_idx_at, values_at })
    }

    /// `row_ptr[r]`, decoded from the payload.
    pub fn row_start(&self, payload: &[u8], r: usize) -> usize {
        le_u64(payload, self.row_ptr_at + 8 * r) as usize
    }

    /// Column id of entry `k`.
    pub fn col(&self, payload: &[u8], k: usize) -> u32 {
        le_u32(payload, self.col_idx_at + 4 * k)
    }

    /// Value of entry `k`.
    pub fn val(&self, payload: &[u8], k: usize) -> f32 {
        le_f32(payload, self.values_at + 4 * k)
    }
}

/// Decode the `[r0, r1) x [c0, c1)` block of a CSR payload in place: only
/// the window's row pointers and entry ranges are ever touched, so a
/// mapped shard contributes exactly the pages the window needs.
pub fn parse_csr_block(
    payload: &[u8],
    path: &Path,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
) -> LoaderResult<Csr> {
    let geom = CsrPayload::parse(payload, path)?;
    assert!(
        r0 <= r1 && r1 <= geom.rows && c0 <= c1 && c1 <= geom.cols,
        "parse_csr_block: window out of bounds"
    );
    let mut row_ptr = Vec::with_capacity(r1 - r0 + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in r0..r1 {
        let p0 = geom.row_start(payload, r);
        let p1 = geom.row_start(payload, r + 1);
        if p0 > p1 || p1 > geom.nnz {
            return Err(LoaderError::Truncated { file: path.to_path_buf() });
        }
        // Columns are sorted ascending within the row: binary-search the
        // window's entry range instead of scanning the whole row.
        let s = lower_bound(p0, p1, |k| geom.col(payload, k) < c0 as u32);
        let e = lower_bound(s, p1, |k| geom.col(payload, k) < c1 as u32);
        for k in s..e {
            col_idx.push(geom.col(payload, k) - c0 as u32);
            values.push(geom.val(payload, k));
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Csr::from_raw(r1 - r0, c1 - c0, row_ptr, col_idx, values))
}

/// Decode rows `[r0, r1)` of a matrix payload in place. Payload layout:
/// `rows u64, cols u64, rows·cols×f32` row-major, little-endian.
pub fn parse_matrix_rows(
    payload: &[u8],
    path: &Path,
    r0: usize,
    r1: usize,
) -> LoaderResult<Matrix> {
    if payload.len() < 16 {
        return Err(LoaderError::Truncated { file: path.to_path_buf() });
    }
    let rows = le_u64(payload, 0) as usize;
    let cols = le_u64(payload, 8) as usize;
    if payload.len() < 16 + 4 * rows * cols {
        return Err(LoaderError::Truncated { file: path.to_path_buf() });
    }
    assert!(r0 <= r1 && r1 <= rows, "parse_matrix_rows: window out of bounds");
    let mut data = Vec::with_capacity((r1 - r0) * cols);
    for k in r0 * cols..r1 * cols {
        data.push(le_f32(payload, 16 + 4 * k));
    }
    Ok(Matrix::from_vec(r1 - r0, cols, data))
}

/// Decode a full CSR payload (a [`parse_csr_block`] over the whole shard).
pub fn parse_csr(payload: &[u8], path: &Path) -> LoaderResult<Csr> {
    let geom = CsrPayload::parse(payload, path)?;
    parse_csr_block(payload, path, 0, geom.rows, 0, geom.cols)
}

/// Decode a full matrix payload.
pub fn parse_matrix(payload: &[u8], path: &Path) -> LoaderResult<Matrix> {
    if payload.len() < 16 {
        return Err(LoaderError::Truncated { file: path.to_path_buf() });
    }
    let rows = le_u64(payload, 0) as usize;
    parse_matrix_rows(payload, path, 0, rows)
}

#[inline]
fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("offset bounds-checked by caller"))
}

#[inline]
fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("offset bounds-checked by caller"))
}

#[inline]
fn le_f32(b: &[u8], off: usize) -> f32 {
    f32::from_le_bytes(b[off..off + 4].try_into().expect("offset bounds-checked by caller"))
}

/// First index in `[lo, hi)` for which `below` is false (all `below`
/// entries precede all non-`below` ones — the sorted-columns invariant).
fn lower_bound(mut lo: usize, mut hi: usize, mut below: impl FnMut(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if below(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::permute::apply_permutation;
    use plexus_sparse::Coo;
    use plexus_tensor::uniform_matrix;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plexus_loader_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn random_csr(n: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 5 {
            coo.push(
                rng.random_range(0..n as u32),
                rng.random_range(0..n as u32),
                rng.random_range(-1.0f32..1.0),
            );
        }
        coo.to_csr()
    }

    #[test]
    fn round_trip_whole_matrix() {
        let dir = temp_dir("round");
        let a = random_csr(40, 1);
        let f = uniform_matrix(40, 6, -1.0, 1.0, 2);
        let store = ShardStore::create(&dir, &a, &f, 4, 4).unwrap();
        let (a2, _) = store.load_adjacency_window(0, 40, 0, 40).unwrap();
        assert_eq!(a2, a);
        let (f2, _) = store.load_feature_rows(0, 40).unwrap();
        assert_eq!(f2, f);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn window_load_matches_direct_block() {
        let dir = temp_dir("window");
        let a = random_csr(48, 3);
        let f = uniform_matrix(48, 4, -1.0, 1.0, 4);
        let store = ShardStore::create(&dir, &a, &f, 4, 4).unwrap();
        for (r0, r1, c0, c1) in [(0, 12, 0, 48), (12, 24, 24, 48), (5, 43, 7, 29), (24, 36, 0, 12)]
        {
            let (blk, _) = store.load_adjacency_window(r0, r1, c0, c1).unwrap();
            assert_eq!(blk, a.block(r0, r1, c0, c1), "window {:?}", (r0, r1, c0, c1));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_window_reads_less_and_accounts_skips() {
        // The §5.4 claim in miniature: one rank's window touches a fraction
        // of the files a full load would, and the skipped files' bytes are
        // reported without opening them.
        let dir = temp_dir("partial");
        let a = random_csr(64, 5);
        let f = uniform_matrix(64, 8, -1.0, 1.0, 6);
        let store = ShardStore::create(&dir, &a, &f, 8, 8).unwrap();
        let total = store.total_bytes().unwrap();
        let (_, stats) = store.load_adjacency_window(0, 8, 0, 8).unwrap();
        assert!(
            stats.bytes_read * 8 < total,
            "1/64 window read {} of {} total bytes",
            stats.bytes_read,
            total
        );
        assert_eq!(stats.files_read, 1);
        assert_eq!(stats.files_skipped, 63);
        // Read + skipped cover every adjacency file exactly once.
        let adj_total: u64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| adj_name(Parity::Even, i, j)))
            .map(|n| store.file_len(&n).unwrap())
            .sum();
        assert_eq!(stats.bytes_read + stats.bytes_skipped, adj_total);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_read_byte_is_classified_mapped_or_copied() {
        let dir = temp_dir("mapped");
        let a = random_csr(64, 19);
        let f = uniform_matrix(64, 8, -1.0, 1.0, 20);
        let store = ShardStore::create(&dir, &a, &f, 8, 8).unwrap();
        let mut ledger = MemoryLedger::default();
        let (_, stats) = store.load_adjacency_window(0, 8, 0, 8).unwrap();
        ledger.absorb(&stats);
        let (_, fstats) = store.load_feature_rows(0, 8).unwrap();
        ledger.absorb(&fstats);
        // The mapped/copied split partitions bytes_read exactly, and on
        // x86_64-linux the mmap path serves everything.
        assert_eq!(ledger.bytes_mapped + ledger.bytes_copied, ledger.bytes_read);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(ledger.bytes_copied, 0, "window loads still copy files through the heap");
        assert!(ledger.summary().contains("mapped"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_from_manifest() {
        let dir = temp_dir("reopen");
        let a = random_csr(20, 7);
        let f = uniform_matrix(20, 3, -1.0, 1.0, 8);
        ShardStore::create(&dir, &a, &f, 2, 2).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        assert_eq!((store.grid_p, store.grid_q), (2, 2));
        assert_eq!(store.rows, 20);
        assert_eq!(store.feat_dim, 3);
        assert_eq!(store.parities, 1);
        assert!(store.perm_mode.is_none());
        store.validate_files().unwrap();
        let (a2, _) = store.load_adjacency_window(0, 20, 0, 20).unwrap();
        assert_eq!(a2, a);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feature_window_load() {
        let dir = temp_dir("featwin");
        let a = random_csr(30, 9);
        let f = uniform_matrix(30, 5, -1.0, 1.0, 10);
        let store = ShardStore::create(&dir, &a, &f, 3, 3).unwrap();
        let (blk, stats) = store.load_feature_rows(11, 19).unwrap();
        assert_eq!(blk, f.row_block(11, 19));
        assert!(stats.bytes_read > 0);
        // Rows [11, 19) live entirely inside band 1 of [0,10)/[10,20)/[20,30).
        assert_eq!(stats.files_read, 1);
        assert_eq!(stats.files_skipped, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_shard_is_a_typed_checksum_error() {
        let dir = temp_dir("corrupt");
        let a = random_csr(16, 11);
        let f = uniform_matrix(16, 2, -1.0, 1.0, 12);
        let store = ShardStore::create(&dir, &a, &f, 2, 2).unwrap();
        // Flip one payload byte of a shard the window needs.
        let victim = dir.join(adj_name(Parity::Even, 0, 0));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        match store.load_adjacency_window(0, 16, 0, 16) {
            Err(LoaderError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let dir = temp_dir("version");
        let a = random_csr(16, 13);
        let f = uniform_matrix(16, 2, -1.0, 1.0, 14);
        ShardStore::create(&dir, &a, &f, 1, 1).unwrap();
        // Rewrite a shard with a bumped version header and a manifest-
        // consistent checksum: only the version check can catch it.
        let victim = dir.join(adj_name(Parity::Even, 0, 0));
        let mut bytes = fs::read(&victim).unwrap();
        bytes[8..16].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&victim, &bytes).unwrap();
        let mut patched = ShardStore::open(&dir).unwrap();
        patched.files.insert(adj_name(Parity::Even, 0, 0), (fnv1a(&bytes), bytes.len() as u64));
        match patched.load_adjacency_window(0, 16, 0, 16) {
            Err(LoaderError::VersionMismatch { found, expected, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {:?}", other.map(|_| ())),
        }
        // An old-format manifest is rejected the same way.
        fs::write(dir.join("manifest.txt"), "p = 1\nq = 1\nrows = 16\ncols = 16\nfeat_dim = 2\n")
            .unwrap();
        assert!(matches!(
            ShardStore::open(&dir),
            Err(LoaderError::BadManifest { .. } | LoaderError::VersionMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_a_typed_error() {
        let dir = temp_dir("trunc");
        let a = random_csr(16, 15);
        let f = uniform_matrix(16, 2, -1.0, 1.0, 16);
        let store = ShardStore::create(&dir, &a, &f, 1, 1).unwrap();
        let victim = dir.join(adj_name(Parity::Even, 0, 0));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.load_adjacency_window(0, 16, 0, 16),
            Err(LoaderError::Truncated { .. })
        ));
        assert!(store.validate_files().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn preprocessed_store_round_trips_both_parities() {
        use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(6), 21);
        let n = ds.num_nodes();
        let dir = temp_dir("parity");
        let store = preprocess_to_store(&ds, &dir, PermutationMode::Double, 11, 3, 3).unwrap();
        assert_eq!(store.parities, 2);
        assert_eq!(store.total_train, ds.split.num_train());
        let (pr, pc) = crate::setup::build_permutations(PermutationMode::Double, 11, n);
        let even = apply_permutation(&ds.adjacency, &pr, &pc);
        let odd = apply_permutation(&ds.adjacency, &pc, &pr);
        let (e, _) = store.load_adjacency_window_parity(Parity::Even, 0, n, 0, n).unwrap();
        let (o, _) = store.load_adjacency_window_parity(Parity::Odd, 0, n, 0, n).unwrap();
        assert_eq!(e, even);
        assert_eq!(o, odd);
        // Windows match blocks of the full permuted matrices.
        let (we, _) = store.load_adjacency_window_parity(Parity::Even, 5, n / 2, 7, n - 3).unwrap();
        assert_eq!(we, even.block(5, n / 2, 7, n - 3));
        // Labels in even order are the P_r scatter of the originals.
        let (labels, mask, _) = store.load_labels(Parity::Even).unwrap();
        for i in 0..n {
            assert_eq!(labels[pr[i] as usize], ds.labels[i]);
            assert_eq!(mask[pr[i] as usize], ds.split.train[i]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_preprocess_is_bitwise_identical_to_serial() {
        use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(6), 23);
        let dir_par = temp_dir("par");
        let dir_ser = temp_dir("ser");
        let par = preprocess_to_store(&ds, &dir_par, PermutationMode::Double, 9, 4, 3).unwrap();
        let ser =
            preprocess_to_store_serial(&ds, &dir_ser, PermutationMode::Double, 9, 4, 3).unwrap();
        assert_eq!(par.files, ser.files, "manifest entries differ");
        for name in par.files.keys() {
            let a = fs::read(dir_par.join(name)).unwrap();
            let b = fs::read(dir_ser.join(name)).unwrap();
            assert_eq!(a, b, "{} differs between parallel and serial writers", name);
        }
        // Manifests byte-identical too (same fields, same sorted order).
        assert_eq!(
            fs::read_to_string(dir_par.join("manifest.txt")).unwrap(),
            fs::read_to_string(dir_ser.join("manifest.txt")).unwrap()
        );
        // No stray temp files survive.
        for dir in [&dir_par, &dir_ser] {
            for e in fs::read_dir(dir).unwrap() {
                let name = e.unwrap().file_name();
                assert!(!name.to_string_lossy().ends_with(".tmp"), "leftover temp file {:?}", name);
            }
        }
        fs::remove_dir_all(&dir_par).unwrap();
        fs::remove_dir_all(&dir_ser).unwrap();
    }

    #[test]
    fn incremental_preprocess_skips_matching_files() {
        use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 80, Some(5), 29);
        let dir = temp_dir("incr");
        let total_files = 2 * 3 * 3 + 3 + 2; // two adjacency parities + features + labels
        let first = preprocess_to_store(&ds, &dir, PermutationMode::Double, 7, 3, 3).unwrap();
        assert_eq!(first.preprocess.files_written, total_files);
        assert_eq!(first.preprocess.files_skipped, 0);

        // Same parameters, same dataset: everything verifies and skips.
        let second = preprocess_to_store(&ds, &dir, PermutationMode::Double, 7, 3, 3).unwrap();
        assert_eq!(second.preprocess.files_written, 0, "rewrote up-to-date files");
        assert_eq!(second.preprocess.files_skipped, total_files);
        assert_eq!(second.files, first.files, "reuse changed the manifest");

        // Tamper with one shard: exactly that file is rewritten.
        let victim = adj_name(Parity::Odd, 1, 2);
        let mut bytes = fs::read(dir.join(&victim)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(dir.join(&victim), &bytes).unwrap();
        let third = preprocess_to_store(&ds, &dir, PermutationMode::Double, 7, 3, 3).unwrap();
        assert_eq!(third.preprocess.files_written, 1, "only the tampered file needs rewriting");
        assert_eq!(third.preprocess.files_skipped, total_files - 1);
        assert_eq!(third.files, first.files);
        let n = ds.num_nodes();
        let (a, _) = third.load_adjacency_window_parity(Parity::Odd, 0, n, 0, n).unwrap();
        assert_eq!(a.nnz(), ds.adjacency.nnz(), "rewritten shard corrupt");

        // A different permutation seed invalidates everything.
        let reseeded = preprocess_to_store(&ds, &dir, PermutationMode::Double, 8, 3, 3).unwrap();
        assert_eq!(reseeded.preprocess.files_skipped, 0, "stale-seed files were reused");
        assert_eq!(reseeded.preprocess.files_written, total_files);

        // A different dataset with identical shapes invalidates everything
        // (the source fingerprint, not just the parameters, gates reuse).
        let ds2 = LoadedDataset::generate(OGBN_PRODUCTS, 80, Some(5), 31);
        let refp = preprocess_to_store(&ds2, &dir, PermutationMode::Double, 8, 3, 3).unwrap();
        assert_eq!(refp.preprocess.files_skipped, 0, "different dataset was reused");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_store_rejects_odd_parity_and_labels() {
        let dir = temp_dir("raw");
        let a = random_csr(12, 17);
        let f = uniform_matrix(12, 2, -1.0, 1.0, 18);
        let store = ShardStore::create(&dir, &a, &f, 2, 2).unwrap();
        assert!(matches!(
            store.load_adjacency_window_parity(Parity::Odd, 0, 12, 0, 12),
            Err(LoaderError::Missing { .. })
        ));
        assert!(matches!(store.load_labels(Parity::Even), Err(LoaderError::Missing { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
