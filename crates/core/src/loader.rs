//! The §5.4 parallel data loader.
//!
//! "Plexus implements a parallel data loader ... It shards processed data
//! into 2D files offline (e.g., 8x8), and the data loader for each GPU
//! only loads, merges, and extracts the shards it needs." For
//! ogbn-papers100M on 64 GPUs this cut CPU memory from 146 GB to 9 GB and
//! load time from 139 s to 7 s.
//!
//! [`ShardStore`] is that mechanism over real files: `create` writes a
//! `p x q` grid of adjacency shard files (plus `p` feature row-band
//! files) in a simple length-prefixed little-endian binary format;
//! `load_adjacency_window`/`load_feature_rows` read back only the files a
//! rank's window intersects and report the bytes actually read — the
//! quantity behind the paper's memory/time reductions.

use plexus_sparse::shard::{shard_grid, split_range};
use plexus_sparse::Csr;
use plexus_tensor::Matrix;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: u64 = 0x504c5853_53484152; // "PLXSSHAR"

/// An on-disk 2D-sharded dataset.
pub struct ShardStore {
    dir: PathBuf,
    pub grid_p: usize,
    pub grid_q: usize,
    pub rows: usize,
    pub cols: usize,
    pub feat_dim: usize,
}

impl ShardStore {
    /// Write `a` (adjacency) and `features` into `dir` as a `p x q` shard
    /// grid. `dir` is created; existing shard files are overwritten.
    pub fn create(
        dir: &Path,
        a: &Csr,
        features: &Matrix,
        p: usize,
        q: usize,
    ) -> io::Result<ShardStore> {
        assert_eq!(a.rows(), features.rows(), "ShardStore: A and F row mismatch");
        assert!(p > 0 && q > 0, "ShardStore: empty grid");
        fs::create_dir_all(dir)?;
        let shards = shard_grid(a, p, q);
        for i in 0..p {
            for j in 0..q {
                write_csr(&dir.join(format!("adj_{}_{}.plx", i, j)), &shards[i * q + j])?;
            }
            let (r0, r1) = split_range(a.rows(), p, i);
            write_matrix(&dir.join(format!("feat_{}.plx", i)), &features.row_block(r0, r1))?;
        }
        let store = ShardStore {
            dir: dir.to_path_buf(),
            grid_p: p,
            grid_q: q,
            rows: a.rows(),
            cols: a.cols(),
            feat_dim: features.cols(),
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Open an existing store by reading its manifest.
    pub fn open(dir: &Path) -> io::Result<ShardStore> {
        let text = fs::read_to_string(dir.join("manifest.txt"))?;
        let mut vals = [0usize; 5];
        for (slot, line) in vals.iter_mut().zip(text.lines()) {
            *slot = line
                .split('=')
                .nth(1)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad manifest"))?;
        }
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            grid_p: vals[0],
            grid_q: vals[1],
            rows: vals[2],
            cols: vals[3],
            feat_dim: vals[4],
        })
    }

    fn write_manifest(&self) -> io::Result<()> {
        let mut f = File::create(self.dir.join("manifest.txt"))?;
        writeln!(f, "p = {}", self.grid_p)?;
        writeln!(f, "q = {}", self.grid_q)?;
        writeln!(f, "rows = {}", self.rows)?;
        writeln!(f, "cols = {}", self.cols)?;
        writeln!(f, "feat_dim = {}", self.feat_dim)?;
        Ok(())
    }

    /// Total bytes of all shard files (what a naive loader would read on
    /// every rank).
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "plx") {
                total += entry.metadata()?.len();
            }
        }
        Ok(total)
    }

    /// Load the adjacency window `[r0, r1) x [c0, c1)`, touching only the
    /// shard files it intersects. Returns the block (local indices) and
    /// the bytes read from disk.
    pub fn load_adjacency_window(
        &self,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
    ) -> io::Result<(Csr, u64)> {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols, "window out of bounds");
        let mut bytes = 0u64;
        let mut row_bands: Vec<Csr> = Vec::new();
        for i in 0..self.grid_p {
            let (sr0, sr1) = split_range(self.rows, self.grid_p, i);
            if sr1 <= r0 || sr0 >= r1 {
                continue;
            }
            let mut band_parts: Vec<(usize, Csr)> = Vec::new();
            for j in 0..self.grid_q {
                let (sc0, sc1) = split_range(self.cols, self.grid_q, j);
                if sc1 <= c0 || sc0 >= c1 {
                    continue;
                }
                let path = self.dir.join(format!("adj_{}_{}.plx", i, j));
                bytes += fs::metadata(&path)?.len();
                let shard = read_csr(&path)?;
                // Slice to the window intersection, in shard-local coords.
                let lr0 = r0.max(sr0) - sr0;
                let lr1 = r1.min(sr1) - sr0;
                let lc0 = c0.max(sc0) - sc0;
                let lc1 = c1.min(sc1) - sc0;
                band_parts.push((sc0.max(c0), shard.block(lr0, lr1, lc0, lc1)));
            }
            band_parts.sort_by_key(|&(off, _)| off);
            row_bands.push(hstack_blocks(&band_parts, c1 - c0));
        }
        let merged = if row_bands.is_empty() {
            Csr::empty(r1 - r0, c1 - c0)
        } else {
            Csr::vstack(&row_bands)
        };
        Ok((merged, bytes))
    }

    /// Load feature rows `[r0, r1)`, touching only intersecting band files.
    pub fn load_feature_rows(&self, r0: usize, r1: usize) -> io::Result<(Matrix, u64)> {
        assert!(r0 <= r1 && r1 <= self.rows, "feature window out of bounds");
        let mut bytes = 0u64;
        let mut blocks = Vec::new();
        for i in 0..self.grid_p {
            let (sr0, sr1) = split_range(self.rows, self.grid_p, i);
            if sr1 <= r0 || sr0 >= r1 {
                continue;
            }
            let path = self.dir.join(format!("feat_{}.plx", i));
            bytes += fs::metadata(&path)?.len();
            let band = read_matrix(&path)?;
            blocks.push(band.row_block(r0.max(sr0) - sr0, r1.min(sr1) - sr0));
        }
        let merged = if blocks.is_empty() {
            Matrix::zeros(0, self.feat_dim)
        } else {
            Matrix::vstack(&blocks)
        };
        Ok((merged, bytes))
    }
}

/// Stitch column-partial CSR blocks (sharing rows) into one block of
/// `total_cols`, given each part's absolute starting column.
fn hstack_blocks(parts: &[(usize, Csr)], total_cols: usize) -> Csr {
    assert!(!parts.is_empty(), "hstack_blocks: no parts");
    let base = parts[0].0;
    let rows = parts[0].1.rows();
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..rows {
        for &(off, ref blk) in parts {
            let (cols, vals) = blk.row_entries(r);
            col_idx.extend(cols.iter().map(|&c| c + (off - base) as u32));
            values.extend_from_slice(vals);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(rows, total_cols, row_ptr, col_idx, values)
}

fn write_csr(path: &Path, a: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&(a.rows() as u64).to_le_bytes())?;
    w.write_all(&(a.cols() as u64).to_le_bytes())?;
    w.write_all(&(a.nnz() as u64).to_le_bytes())?;
    for &p in a.row_ptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &c in a.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    for &v in a.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

fn read_csr(path: &Path) -> io::Result<Csr> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_u64(&mut r)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a Plexus shard file"));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    let mut row_ptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        row_ptr.push(read_u64(&mut r)? as usize);
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(read_u32(&mut r)?);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(f32::from_le_bytes(read_array(&mut r)?));
    }
    Ok(Csr::from_raw(rows, cols, row_ptr, col_idx, values))
}

fn write_matrix(path: &Path, m: &Matrix) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &v in m.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

fn read_matrix(path: &Path) -> io::Result<Matrix> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_u64(&mut r)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a Plexus matrix file"));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(f32::from_le_bytes(read_array(&mut r)?));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

fn read_array<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::Coo;
    use plexus_tensor::uniform_matrix;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plexus_loader_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn random_csr(n: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 5 {
            coo.push(
                rng.random_range(0..n as u32),
                rng.random_range(0..n as u32),
                rng.random_range(-1.0f32..1.0),
            );
        }
        coo.to_csr()
    }

    #[test]
    fn round_trip_whole_matrix() {
        let dir = temp_dir("round");
        let a = random_csr(40, 1);
        let f = uniform_matrix(40, 6, -1.0, 1.0, 2);
        let store = ShardStore::create(&dir, &a, &f, 4, 4).unwrap();
        let (a2, _) = store.load_adjacency_window(0, 40, 0, 40).unwrap();
        assert_eq!(a2, a);
        let (f2, _) = store.load_feature_rows(0, 40).unwrap();
        assert_eq!(f2, f);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn window_load_matches_direct_block() {
        let dir = temp_dir("window");
        let a = random_csr(48, 3);
        let f = uniform_matrix(48, 4, -1.0, 1.0, 4);
        let store = ShardStore::create(&dir, &a, &f, 4, 4).unwrap();
        for (r0, r1, c0, c1) in [(0, 12, 0, 48), (12, 24, 24, 48), (5, 43, 7, 29), (24, 36, 0, 12)]
        {
            let (blk, _) = store.load_adjacency_window(r0, r1, c0, c1).unwrap();
            assert_eq!(blk, a.block(r0, r1, c0, c1), "window {:?}", (r0, r1, c0, c1));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_window_reads_less_than_everything() {
        // The §5.4 claim in miniature: one rank's window touches a fraction
        // of the files a full load would.
        let dir = temp_dir("partial");
        let a = random_csr(64, 5);
        let f = uniform_matrix(64, 8, -1.0, 1.0, 6);
        let store = ShardStore::create(&dir, &a, &f, 8, 8).unwrap();
        let total = store.total_bytes().unwrap();
        let (_, window_bytes) = store.load_adjacency_window(0, 8, 0, 8).unwrap();
        assert!(
            window_bytes * 8 < total,
            "1/64 window read {} of {} total bytes",
            window_bytes,
            total
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_from_manifest() {
        let dir = temp_dir("reopen");
        let a = random_csr(20, 7);
        let f = uniform_matrix(20, 3, -1.0, 1.0, 8);
        ShardStore::create(&dir, &a, &f, 2, 2).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        assert_eq!((store.grid_p, store.grid_q), (2, 2));
        assert_eq!(store.rows, 20);
        assert_eq!(store.feat_dim, 3);
        let (a2, _) = store.load_adjacency_window(0, 20, 0, 20).unwrap();
        assert_eq!(a2, a);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feature_window_load() {
        let dir = temp_dir("featwin");
        let a = random_csr(30, 9);
        let f = uniform_matrix(30, 5, -1.0, 1.0, 10);
        let store = ShardStore::create(&dir, &a, &f, 3, 3).unwrap();
        let (blk, bytes) = store.load_feature_rows(11, 19).unwrap();
        assert_eq!(blk, f.row_block(11, 19));
        assert!(bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let dir = temp_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.plx"), [0u8; 64]).unwrap();
        assert!(read_csr(&dir.join("bad.plx")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
