//! The distributed GCN layer: Algorithm 1 (forward) and Algorithm 2
//! (backward) from the paper, generalized over the per-layer axis roles of
//! §3.2.
//!
//! For layer 0 the roles are (R=Z, C=X, K=Y) and the code below reads
//! exactly like the paper's pseudocode: all-gather F across Z, SpMM,
//! all-reduce H across X, all-gather W across Z, SGEMM, all-reduce Q across
//! Y; backward mirrors it with the reduce-scatters across Z.

use crate::dist::DistContext;
use crate::grid::LayerRoles;
use plexus_sparse::blocked::RowBlocks;
use plexus_sparse::{spmm, Csr};
use plexus_tensor::ops::{relu, relu_backward_inplace};
use plexus_tensor::{gemm, Matrix, Trans};
use std::time::Instant;

/// How `∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q)` is computed (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmTuning {
    /// The straightforward TN-mode kernel (slow strided reads — the
    /// behaviour the paper observed on Frontier at ≥512 GCDs).
    Default,
    /// Reorder so only fast-mode kernels run: materialize Hᵀ once
    /// (O(N·D) copy) and use the NN kernel (O(N·D²) work). This is this
    /// codebase's equivalent of the paper's
    /// `∂L/∂W = (SGEMM(∂L/∂Qᵀ, H))ᵀ` trick — both replace a
    /// transposed-operand kernel with a fast-path one.
    Reordered,
}

/// Aggregation strategy (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// One SpMM over the whole shard, one all-reduce of the whole H.
    Unblocked,
    /// Split the shard into `n` row blocks; all-reduce each block right
    /// after its SpMM. Bitwise identical results, smoother per-op sizes.
    Blocked(usize),
}

/// Wall-time split of an operation sequence, used for the Fig. 9-style
/// communication/computation breakdowns.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeSplit {
    pub compute_s: f64,
    pub comm_s: f64,
}

impl TimeSplit {
    pub fn add(&mut self, other: TimeSplit) {
        self.compute_s += other.compute_s;
        self.comm_s += other.comm_s;
    }

    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// One rank's share of one GCN layer.
pub struct DistLayer {
    pub layer_idx: usize,
    pub roles: LayerRoles,
    pub a_shard: Csr,
    pub a_shard_t: Csr,
    /// Row-blocked view of `a_shard` when blocked aggregation is on.
    blocks: Option<RowBlocks>,
    pub tuning: GemmTuning,
}

/// Forward-pass cache (post-all-reduce H and Q, plus the gathered W).
pub struct DistLayerCache {
    pub h: Matrix,
    pub q: Matrix,
    pub w_full: Matrix,
    pub activated: bool,
}

/// Backward outputs: the gradient flowing to the previous layer and the
/// weight gradient already reduce-scattered onto this rank's stored shard.
pub struct DistLayerGrads {
    pub df: Matrix,
    pub dw_stored: Matrix,
}

impl DistLayer {
    pub fn new(
        layer_idx: usize,
        roles: LayerRoles,
        a_shard: Csr,
        a_shard_t: Csr,
        aggregation: Aggregation,
        tuning: GemmTuning,
    ) -> Self {
        let blocks = match aggregation {
            Aggregation::Unblocked => None,
            Aggregation::Blocked(n) => {
                assert!(n >= 1, "Aggregation::Blocked needs >= 1 block");
                Some(RowBlocks::split(&a_shard, n.min(a_shard.rows().max(1))))
            }
        };
        Self { layer_idx, roles, a_shard, a_shard_t, blocks, tuning }
    }

    /// Algorithm 1, lines 2–12, for this layer's roles. `f_full` is the
    /// layer input after any required all-gather (the trainer performs the
    /// layer-0 gather of the Z-sharded trainable features). `w_stored` is
    /// the R-axis shard of W. Returns (output, cache, timing).
    pub fn forward(
        &self,
        ctx: &DistContext,
        f_full: &Matrix,
        w_stored: &Matrix,
        activated: bool,
    ) -> (Matrix, DistLayerCache, TimeSplit) {
        let mut t = TimeSplit::default();

        // Step 1: aggregation. H = SpMM(A, F); all-reduce across C.
        let h = match &self.blocks {
            None => {
                let t0 = Instant::now();
                let mut h = spmm(&self.a_shard, f_full);
                t.compute_s += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                ctx.all_reduce_sum(&mut h, self.roles.contract);
                t.comm_s += t1.elapsed().as_secs_f64();
                h
            }
            Some(blocks) => {
                // §5.2: per-block SpMM + immediate all-reduce of the block.
                let mut outs = Vec::with_capacity(blocks.num_blocks());
                for (blk, _) in blocks.iter() {
                    let t0 = Instant::now();
                    let mut partial = spmm(blk, f_full);
                    t.compute_s += t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    ctx.all_reduce_sum(&mut partial, self.roles.contract);
                    t.comm_s += t1.elapsed().as_secs_f64();
                    outs.push(partial);
                }
                Matrix::vstack(&outs)
            }
        };

        // Step 2: combination. All-gather W across R, SGEMM, all-reduce Q
        // across K.
        let t1 = Instant::now();
        let w_full = ctx.all_gather_rows(w_stored, self.roles.rows);
        t.comm_s += t1.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut q = Matrix::zeros(h.rows(), w_full.cols());
        gemm(&mut q, &h, Trans::N, &w_full, Trans::N, 1.0, 0.0);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        ctx.all_reduce_sum(&mut q, self.roles.feat);
        t.comm_s += t1.elapsed().as_secs_f64();

        // Step 3: activation.
        let t0 = Instant::now();
        let out = if activated { relu(&q) } else { q.clone() };
        t.compute_s += t0.elapsed().as_secs_f64();

        (out, DistLayerCache { h, q, w_full, activated }, t)
    }

    /// Algorithm 2 for this layer's roles. `dout` is `∂L/∂(layer output)`
    /// in this rank's block layout. `df_scatter` selects the final step for
    /// `∂L/∂F`: `true` = reduce-scatter across R (layer 0, where F is
    /// stored Z-sharded), `false` = all-reduce across R (all other layers).
    pub fn backward(
        &self,
        ctx: &DistContext,
        cache: &DistLayerCache,
        mut dout: Matrix,
        df_scatter: bool,
    ) -> (DistLayerGrads, TimeSplit) {
        let mut t = TimeSplit::default();

        // ∂L/∂Q = ∂L/∂F' ⊙ σ'(Q).
        let t0 = Instant::now();
        if cache.activated {
            relu_backward_inplace(&mut dout, &cache.q);
        }
        let dq = dout;

        // ∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q), tuned or not (§5.3).
        let mut dw_full = Matrix::zeros(cache.w_full.rows(), cache.w_full.cols());
        match self.tuning {
            GemmTuning::Default => {
                gemm(&mut dw_full, &cache.h, Trans::T, &dq, Trans::N, 1.0, 0.0);
            }
            GemmTuning::Reordered => {
                let ht = cache.h.transposed();
                gemm(&mut dw_full, &ht, Trans::N, &dq, Trans::N, 1.0, 0.0);
            }
        }
        t.compute_s += t0.elapsed().as_secs_f64();

        // Reduce-scatter ∂L/∂W across R onto the stored shard.
        let t1 = Instant::now();
        let dw_stored = ctx.reduce_scatter_rows(&dw_full, self.roles.rows);
        t.comm_s += t1.elapsed().as_secs_f64();

        // ∂L/∂H = SGEMM(∂L/∂Q, Wᵀ); all-reduce across C.
        let t0 = Instant::now();
        let mut dh = Matrix::zeros(cache.h.rows(), cache.h.cols());
        gemm(&mut dh, &dq, Trans::N, &cache.w_full, Trans::T, 1.0, 0.0);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        ctx.all_reduce_sum(&mut dh, self.roles.contract);
        t.comm_s += t1.elapsed().as_secs_f64();

        // ∂L/∂F = SpMM(Aᵀ, ∂L/∂H); reduce over R (scatter at layer 0).
        let t0 = Instant::now();
        let df_partial = spmm(&self.a_shard_t, &dh);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let df = if df_scatter {
            ctx.reduce_scatter_rows(&df_partial, self.roles.rows)
        } else {
            let mut d = df_partial;
            ctx.all_reduce_sum(&mut d, self.roles.rows);
            d
        };
        t.comm_s += t1.elapsed().as_secs_f64();

        (DistLayerGrads { df, dw_stored }, t)
    }
}
