//! The distributed GCN layer: Algorithm 1 (forward) and Algorithm 2
//! (backward) from the paper, generalized over the per-layer axis roles of
//! §3.2.
//!
//! For layer 0 the roles are (R=Z, C=X, K=Y) and the code below reads
//! exactly like the paper's pseudocode: all-gather F across Z, SpMM,
//! all-reduce H across X, all-gather W across Z, SGEMM, all-reduce Q across
//! Y; backward mirrors it with the reduce-scatters across Z.
//!
//! With [`CommOverlap::Overlapped`] the layer uses the nonblocking
//! collectives ([`Communicator::start_all_reduce`] /
//! [`PendingCollective`]) to hide communication behind compute:
//!
//! * blocked aggregation pipelines each row block's C-axis all-reduce
//!   behind the next block's SpMM (§5.2);
//! * the combination GEMM is row-tiled and each tile's K-axis all-reduce
//!   is launched before the next tile's GEMM finishes;
//! * backward launches the R-axis reduce-scatter of `∂L/∂W` and overlaps
//!   it with the `∂L/∂H` GEMM and the `∂L/∂F` SpMM.
//!
//! Overlapped results are **bitwise identical** to blocking: every element
//! is reduced over the same contributions in the same ascending-rank
//! order. The collective *granularity* can differ — the tiled combination
//! path records `Q_TILES` per-tile all-reduce events where blocking
//! records one — so ledger event counts (not byte totals) depend on the
//! mode.
//!
//! # Workspace discipline
//!
//! Every kernel output in both passes (`H`, `Q`, the activation, `∂L/∂W`,
//! `∂L/∂H`, `∂L/∂F`, the `Hᵀ` scratch, SpMM partials and GEMM tiles) is
//! taken from the layer's [`KernelWorkspace`] and recycled as soon as its
//! last reader is done — [`DistLayer::backward`] consumes the forward
//! cache by value for exactly that reason. After the first epoch has
//! sized the pool, forward+backward run with **zero** per-call heap
//! allocations for kernel outputs (asserted by the engine's warmup test);
//! only the communicator's own result buffers are allocated per call, and
//! even those are recycled into the pool once copied out.

use crate::dist::DistContext;
use crate::grid::LayerRoles;
use plexus_comm::{Communicator, PendingCollective, ReduceOp};
use plexus_graph::RowRequestPlan;
use plexus_sparse::blocked::RowBlocks;
use plexus_sparse::{spmm_into, Csr};
use plexus_tensor::ops::{relu_backward_inplace, relu_into};
use plexus_tensor::{
    gemm_nn_cached_b, gemm_nt_cached_b, gemm_reference_tn, gemm_ws, KernelWorkspace, Matrix, Trans,
};
use std::time::Instant;

/// How `∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q)` is computed (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmTuning {
    /// The straightforward strided TN kernel ([`gemm_reference_tn`] — the
    /// behaviour the paper observed on Frontier at ≥512 GCDs). Since the
    /// production [`gemm`](plexus_tensor::gemm::gemm) now routes TN through
    /// operand packing, the reference kernel is what keeps this arm an
    /// honest reproduction of the §5.3 effect.
    Default,
    /// Reorder so only fast-mode kernels run: materialize Hᵀ once
    /// (O(N·D) copy) and use the NN kernel (O(N·D²) work). This is this
    /// codebase's equivalent of the paper's
    /// `∂L/∂W = (SGEMM(∂L/∂Qᵀ, H))ᵀ` trick — both replace a
    /// transposed-operand kernel with a fast-path one.
    Reordered,
}

/// Aggregation strategy (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// One SpMM over the whole shard, one all-reduce of the whole H.
    Unblocked,
    /// Split the shard into `n` row blocks; all-reduce each block right
    /// after its SpMM. Bitwise identical results, smoother per-op sizes —
    /// and under [`CommOverlap::Overlapped`] each block's all-reduce hides
    /// behind the next block's SpMM.
    Blocked(usize),
}

/// Whether collectives block inline or overlap with compute (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommOverlap {
    /// Every collective completes before the next kernel starts.
    Blocking,
    /// Reductions are launched nonblocking and waited as late as the data
    /// dependences allow. Bitwise identical to `Blocking`.
    Overlapped,
}

/// How the layer-0 feature gather moves rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommPlan {
    /// Dense all-gather of every owner's full feature block — the paper's
    /// Algorithm 1 line 3 as written.
    #[default]
    Dense,
    /// Row-indexed sparse gather driven by a cached [`RowRequestPlan`]:
    /// only the rows in the adjacency shard's column support travel; all
    /// other rows of the gathered input are zero-filled and — because the
    /// SpMM reads exactly the support columns — never touched. Bitwise
    /// identical losses to `Dense`.
    SparseRows,
}

/// Row-tile count for the overlapped combination GEMM: enough tiles to
/// pipeline, few enough that per-tile collectives stay large.
const Q_TILES: usize = 4;

/// Wall-time split of an operation sequence, used for the Fig. 9-style
/// communication/computation breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeSplit {
    pub compute_s: f64,
    pub comm_s: f64,
}

impl TimeSplit {
    pub fn add(&mut self, other: TimeSplit) {
        self.compute_s += other.compute_s;
        self.comm_s += other.comm_s;
    }

    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// An in-flight all-reduce of one matrix tile: the pending handle plus the
/// destination row offset and shape needed to land it on completion.
struct PendingTile<'c> {
    pending: PendingCollective<'c, f32>,
    r0: usize,
    rows: usize,
    cols: usize,
}

impl<'c> PendingTile<'c> {
    fn start<C: Communicator>(group: &'c C, tile: &Matrix, r0: usize, op: ReduceOp) -> Self {
        Self {
            pending: group.start_all_reduce(tile.as_slice(), op),
            r0,
            rows: tile.rows(),
            cols: tile.cols(),
        }
    }

    /// Wait, write the reduced tile into `dst` at the recorded row offset,
    /// and recycle the transport buffer into `ws`.
    fn land(self, dst: &mut Matrix, ws: &mut KernelWorkspace) {
        let m = Matrix::from_vec(self.rows, self.cols, self.pending.wait());
        dst.set_block(self.r0, 0, &m);
        ws.recycle(m);
    }
}

/// One rank's share of one GCN layer.
pub struct DistLayer {
    pub layer_idx: usize,
    pub roles: LayerRoles,
    pub a_shard: Csr,
    pub a_shard_t: Csr,
    /// Row-blocked view of `a_shard` when blocked aggregation is on.
    blocks: Option<RowBlocks>,
    pub tuning: GemmTuning,
    pub overlap: CommOverlap,
    /// Reusable kernel buffers; sized by the first epoch, stable after.
    ws: KernelWorkspace,
    /// Version key of this layer's stored weights for the combination
    /// GEMM's packed-operand cache: the gathered `W_full` is packed once
    /// per version and every further combination under the same version —
    /// later row tiles, recompute-mode rebuilds — reuses the panels. The
    /// trainer bumps it after each optimizer step.
    weights_version: u64,
}

/// Forward-pass cache, split into the individually managed segments the
/// [`ActivationStore`](crate::activation::ActivationStore) governs:
///
/// | segment  | contents                  | rebuild recipe                 |
/// |----------|---------------------------|--------------------------------|
/// | `h`      | post-all-reduce SpMM out  | [`DistLayer::aggregate`]       |
/// | `q`      | post-all-reduce GEMM out  | [`DistLayer::combine`]         |
/// | `w_full` | R-axis-gathered weights   | [`DistLayer::gather_weights`]  |
///
/// Under `Resident`/`Spill` residency the whole cache is retained (in RAM
/// or on disk); under `Recompute` all three segments are dropped after
/// forward and re-derived by [`DistLayer::rebuild_cache`], which replays
/// the same recipes on the retained layer input. Consumed by
/// [`DistLayer::backward`], which recycles the buffers.
pub struct DistLayerCache {
    pub h: Matrix,
    pub q: Matrix,
    pub w_full: Matrix,
    pub activated: bool,
}

/// Backward outputs: the gradient flowing to the previous layer and the
/// weight gradient already reduce-scattered onto this rank's stored shard.
pub struct DistLayerGrads {
    pub df: Matrix,
    pub dw_stored: Matrix,
}

impl DistLayer {
    pub fn new(
        layer_idx: usize,
        roles: LayerRoles,
        a_shard: Csr,
        a_shard_t: Csr,
        aggregation: Aggregation,
        tuning: GemmTuning,
        overlap: CommOverlap,
    ) -> Self {
        let blocks = match aggregation {
            Aggregation::Unblocked => None,
            Aggregation::Blocked(n) => {
                assert!(n >= 1, "Aggregation::Blocked needs >= 1 block");
                Some(RowBlocks::split(&a_shard, n.min(a_shard.rows().max(1))))
            }
        };
        Self {
            layer_idx,
            roles,
            a_shard,
            a_shard_t,
            blocks,
            tuning,
            overlap,
            ws: KernelWorkspace::new(),
            weights_version: 0,
        }
    }

    /// Allocator interactions of this layer's workspace so far. Flat
    /// across epochs once warmed up.
    pub fn workspace_alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    /// Hand a no-longer-needed matrix (e.g. a consumed activation) back to
    /// this layer's buffer pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.ws.recycle(m);
    }

    /// Mutable access to this layer's kernel-buffer pool; the trainer
    /// routes the activation store's policy-driven recycling through it.
    pub fn workspace_mut(&mut self) -> &mut KernelWorkspace {
        &mut self.ws
    }

    /// Invalidate the combination GEMM's packed-weight cache. The trainer
    /// calls this after every optimizer step on this layer's weights.
    pub fn bump_weights_version(&mut self) {
        self.weights_version += 1;
    }

    /// Layer-0 input gather (Algorithm 1 line 3) under the configured
    /// [`CommPlan`]. `f_stored` is this rank's stored span of the trainable
    /// features; the result is the full `rows_total x fcols` input block
    /// shared by the rank's whole (x, y) plane.
    ///
    /// * `plan == None` (dense): all-gather every owner's block across the
    ///   feature-owner group.
    /// * `plan == Some(..)` (sparse): `start_all_gather_rows` fetches only
    ///   the plan's support rows; while they are in flight the scatter
    ///   target is taken from the workspace and zero-filled (that fill is
    ///   the compute hidden behind the collective under
    ///   [`CommOverlap::Overlapped`]), then each returned row lands at its
    ///   global position. Rows outside the support stay zero and are never
    ///   read by the SpMM, so downstream results are bitwise identical to
    ///   the dense path.
    pub fn gather_input<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        f_stored: &Matrix,
        plan: Option<&RowRequestPlan>,
        t: &mut TimeSplit,
    ) -> Matrix {
        let group = ctx.feature_owner_group();
        let width = f_stored.cols();
        let Some(plan) = plan else {
            let t1 = Instant::now();
            let data = group.all_gather(f_stored.as_slice());
            let x = Matrix::from_vec(f_stored.rows() * group.size(), width, data);
            t.comm_s += t1.elapsed().as_secs_f64();
            return x;
        };
        assert_eq!(
            plan.rows_per_owner,
            f_stored.rows(),
            "gather_input: plan block size {} != stored feature rows {}",
            plan.rows_per_owner,
            f_stored.rows()
        );
        assert_eq!(
            plan.requests.len(),
            group.size(),
            "gather_input: plan built for {} owners, group has {}",
            plan.requests.len(),
            group.size()
        );
        let t1 = Instant::now();
        let pending = group.start_all_gather_rows(f_stored.as_slice(), &plan.row_ids, width);
        t.comm_s += t1.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut x = self.ws.take_scratch(plan.rows_total(), width);
        x.as_mut_slice().fill(0.0);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let rows = pending.wait();
        t.comm_s += t1.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for (i, &g) in plan.row_ids.iter().enumerate() {
            x.row_mut(g as usize).copy_from_slice(&rows[i * width..(i + 1) * width]);
        }
        t.compute_s += t0.elapsed().as_secs_f64();
        x
    }

    /// Algorithm 1, lines 2–12, for this layer's roles. `f_full` is the
    /// layer input after any required all-gather (the trainer performs the
    /// layer-0 gather of the Z-sharded trainable features). `w_stored` is
    /// the R-axis shard of W. Returns (output, cache, timing).
    ///
    /// The body is a composition of the public recipe methods
    /// ([`Self::aggregate`], [`Self::gather_weights`], [`Self::combine`])
    /// that [`Self::rebuild_cache`] replays for recompute-mode residency —
    /// one code path, so forward and rebuild are bitwise identical by
    /// construction.
    pub fn forward<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        f_full: &Matrix,
        w_stored: &Matrix,
        activated: bool,
    ) -> (Matrix, DistLayerCache, TimeSplit) {
        // Fault-injection hook: a `LayerPanic` armed for this rank/layer
        // fires on entry. A single `None` branch when injection is off.
        if let Some(plan) = &ctx.faults {
            plan.layer_tick(ctx.world.rank(), self.layer_idx);
        }
        let mut t = TimeSplit::default();
        let h = self.aggregate(ctx, f_full, &mut t);
        let w_full = self.gather_weights(ctx, w_stored, &mut t);
        let q = self.combine(ctx, &h, &w_full, &mut t);

        // Activation: F' = σ(Q) (the final layer emits raw logits).
        let t0 = Instant::now();
        let mut out = self.ws.take_scratch(q.rows(), q.cols());
        if activated {
            relu_into(&q, &mut out);
        } else {
            out.as_mut_slice().copy_from_slice(q.as_slice());
        }
        t.compute_s += t0.elapsed().as_secs_f64();

        (out, DistLayerCache { h, q, w_full, activated }, t)
    }

    /// Re-derive a dropped forward cache from the retained layer `input` —
    /// the `Recompute` residency recipe. Replays the exact aggregation /
    /// gather / combination steps of [`Self::forward`] (same kernels, same
    /// deterministic collective order), so the rebuilt segments are
    /// bitwise identical to the originals. The activation output itself is
    /// never rebuilt: backward does not read it.
    pub fn rebuild_cache<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        input: &Matrix,
        w_stored: &Matrix,
        activated: bool,
    ) -> (DistLayerCache, TimeSplit) {
        let mut t = TimeSplit::default();
        let h = self.aggregate(ctx, input, &mut t);
        let w_full = self.gather_weights(ctx, w_stored, &mut t);
        let q = self.combine(ctx, &h, &w_full, &mut t);
        (DistLayerCache { h, q, w_full, activated }, t)
    }

    /// Aggregation recipe (Algorithm 1 step 1): `H = SpMM(A, F)`,
    /// all-reduced across the contract axis — unblocked or per-block, with
    /// the block all-reduces optionally overlapped behind the next block's
    /// SpMM (§5.2).
    pub fn aggregate<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        f_full: &Matrix,
        t: &mut TimeSplit,
    ) -> Matrix {
        let Self { ws, blocks, a_shard, roles, overlap, .. } = self;
        let (roles, overlap) = (*roles, *overlap);
        let n = f_full.cols();
        match blocks {
            None => {
                let t0 = Instant::now();
                let mut h = ws.take_scratch(a_shard.rows(), n);
                spmm_into(a_shard, f_full, &mut h);
                t.compute_s += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                ctx.all_reduce_sum(&mut h, roles.contract);
                t.comm_s += t1.elapsed().as_secs_f64();
                h
            }
            Some(blocks) => {
                // §5.2: per-block SpMM + all-reduce of the block. With
                // overlap on, block i's all-reduce is in flight while
                // block i+1's SpMM runs.
                let group = ctx.group(roles.contract);
                // A size-1 group has nothing to hide the reduce behind.
                let overlapped = overlap == CommOverlap::Overlapped && group.size() > 1;
                let mut h = ws.take_scratch(blocks.total_rows(), n);
                let mut pending: Option<PendingTile<'_>> = None;
                for (blk, (r0, _)) in blocks.iter() {
                    let t0 = Instant::now();
                    let mut partial = ws.take_scratch(blk.rows(), n);
                    spmm_into(blk, f_full, &mut partial);
                    t.compute_s += t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    if overlapped {
                        if let Some(p) = pending.take() {
                            p.land(&mut h, ws);
                        }
                        pending = Some(PendingTile::start(group, &partial, r0, ReduceOp::Sum));
                        ws.recycle(partial);
                    } else {
                        ctx.all_reduce_sum(&mut partial, roles.contract);
                        h.set_block(r0, 0, &partial);
                        ws.recycle(partial);
                    }
                    t.comm_s += t1.elapsed().as_secs_f64();
                }
                let t1 = Instant::now();
                if let Some(p) = pending.take() {
                    p.land(&mut h, ws);
                }
                t.comm_s += t1.elapsed().as_secs_f64();
                h
            }
        }
    }

    /// Weight-gather recipe (Algorithm 1 step 2a): all-gather the R-axis
    /// shard of `W` into the full per-plane weight matrix.
    pub fn gather_weights<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        w_stored: &Matrix,
        t: &mut TimeSplit,
    ) -> Matrix {
        let t1 = Instant::now();
        let w_full = ctx.all_gather_rows(w_stored, self.roles.rows);
        t.comm_s += t1.elapsed().as_secs_f64();
        w_full
    }

    /// Combination recipe (Algorithm 1 step 2b): `Q = SGEMM(H, W_full)`,
    /// all-reduced across the feat axis — row-tiled with overlapped
    /// per-tile reductions under [`CommOverlap::Overlapped`] (§5.2). The
    /// GEMM runs through the version-keyed packed-weight cache
    /// ([`gemm_nn_cached_b`]), so an unchanged `W_full` is packed once per
    /// optimizer step no matter how many tiles or rebuilds consume it.
    pub fn combine<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        h: &Matrix,
        w_full: &Matrix,
        t: &mut TimeSplit,
    ) -> Matrix {
        let Self { ws, roles, overlap, weights_version, .. } = self;
        let (roles, overlap, wv) = (*roles, *overlap, *weights_version);
        // Tiling only pays when there is a K-axis reduction to hide; on a
        // size-1 feat group fall through to the single in-place GEMM.
        if overlap == CommOverlap::Overlapped
            && h.rows() >= Q_TILES
            && ctx.group(roles.feat).size() > 1
        {
            // Row-tile the GEMM; each tile's K-axis all-reduce is launched
            // before the next tile's GEMM finishes. Same contributions,
            // same reduction order per element: bitwise identical.
            let group = ctx.group(roles.feat);
            let bounds = tile_bounds(h.rows(), Q_TILES);
            let mut q = ws.take_scratch(h.rows(), w_full.cols());
            let mut pending: Option<PendingTile<'_>> = None;
            for &(r0, r1) in &bounds {
                let t0 = Instant::now();
                let mut h_tile = ws.take_scratch(r1 - r0, h.cols());
                h_tile.as_mut_slice().copy_from_slice(&h.as_slice()[r0 * h.cols()..r1 * h.cols()]);
                let mut q_tile = ws.take_scratch(r1 - r0, w_full.cols());
                gemm_nn_cached_b(ws, &mut q_tile, &h_tile, w_full, wv, 1.0, 0.0);
                ws.recycle(h_tile);
                t.compute_s += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                if let Some(p) = pending.take() {
                    p.land(&mut q, ws);
                }
                pending = Some(PendingTile::start(group, &q_tile, r0, ReduceOp::Sum));
                ws.recycle(q_tile);
                t.comm_s += t1.elapsed().as_secs_f64();
            }
            let t1 = Instant::now();
            pending.take().expect("at least one tile").land(&mut q, ws);
            t.comm_s += t1.elapsed().as_secs_f64();
            q
        } else {
            let t0 = Instant::now();
            let mut q = ws.take_scratch(h.rows(), w_full.cols());
            gemm_nn_cached_b(ws, &mut q, h, w_full, wv, 1.0, 0.0);
            t.compute_s += t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            ctx.all_reduce_sum(&mut q, roles.feat);
            t.comm_s += t1.elapsed().as_secs_f64();
            q
        }
    }

    /// Algorithm 2 for this layer's roles. `dout` is `∂L/∂(layer output)`
    /// in this rank's block layout; both it and the forward `cache` are
    /// consumed (their buffers are recycled into the workspace).
    /// `df_scatter` selects the final step for `∂L/∂F`: `true` =
    /// reduce-scatter across R (layer 0, where F is stored Z-sharded),
    /// `false` = all-reduce across R (all other layers).
    pub fn backward<C: Communicator>(
        &mut self,
        ctx: &DistContext<C>,
        cache: DistLayerCache,
        mut dout: Matrix,
        df_scatter: bool,
    ) -> (DistLayerGrads, TimeSplit) {
        let Self { ws, a_shard_t, roles, overlap, tuning, weights_version, .. } = self;
        let wv = *weights_version;
        let (roles, overlap, tuning) = (*roles, *overlap, *tuning);
        let DistLayerCache { h, q, w_full, activated } = cache;
        let mut t = TimeSplit::default();
        let r_group = ctx.group(roles.rows);
        // A size-1 R group reduces to a copy; nothing to overlap.
        let overlapped = overlap == CommOverlap::Overlapped && r_group.size() > 1;

        // ∂L/∂Q = ∂L/∂F' ⊙ σ'(Q).
        let t0 = Instant::now();
        if activated {
            relu_backward_inplace(&mut dout, &q);
        }
        let dq = dout;
        ws.recycle(q);

        // ∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q), tuned or not (§5.3).
        let (h_rows, h_cols) = h.shape();
        let mut dw_full = ws.take_scratch(w_full.rows(), w_full.cols());
        match tuning {
            GemmTuning::Default => {
                gemm_reference_tn(&mut dw_full, &h, &dq, 1.0, 0.0);
            }
            GemmTuning::Reordered => {
                let mut ht = ws.take_scratch(h.cols(), h.rows());
                h.transpose_into(&mut ht);
                gemm_ws(ws, &mut dw_full, &ht, Trans::N, &dq, Trans::N, 1.0, 0.0);
                ws.recycle(ht);
            }
        }
        ws.recycle(h);
        t.compute_s += t0.elapsed().as_secs_f64();

        // Reduce-scatter ∂L/∂W across R onto the stored shard. With
        // overlap on, it stays in flight through the ∂L/∂H GEMM, its
        // C-axis all-reduce and the ∂L/∂F SpMM; it must be waited before
        // the ∂L/∂F collective because that runs on the same R group.
        let t1 = Instant::now();
        let (dw_rows, dw_cols) = dw_full.shape();
        let mut dw_pending: Option<PendingCollective<'_, f32>> = None;
        let mut dw_stored = Matrix::zeros(0, 0);
        if overlapped {
            // The raw collective only checks flat-length divisibility;
            // whole rows must land on each rank for the shard reassembly.
            assert_eq!(
                dw_rows % r_group.size(),
                0,
                "backward: {} dW rows not divisible by R group size {}",
                dw_rows,
                r_group.size()
            );
            dw_pending = Some(r_group.start_reduce_scatter(dw_full.as_slice(), ReduceOp::Sum));
        } else {
            dw_stored = ctx.reduce_scatter_rows(&dw_full, roles.rows);
        }
        ws.recycle(dw_full);
        t.comm_s += t1.elapsed().as_secs_f64();

        // ∂L/∂H = SGEMM(∂L/∂Q, Wᵀ); all-reduce across C. The transposed
        // weight pack is cached under the same per-layer version the
        // forward pack uses, so steady-state backward never repacks.
        let t0 = Instant::now();
        let mut dh = ws.take_scratch(h_rows, h_cols);
        gemm_nt_cached_b(ws, &mut dh, &dq, &w_full, wv, 1.0, 0.0);
        ws.recycle(dq);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        ctx.all_reduce_sum(&mut dh, roles.contract);
        t.comm_s += t1.elapsed().as_secs_f64();

        // ∂L/∂F = SpMM(Aᵀ, ∂L/∂H); reduce over R (scatter at layer 0).
        let t0 = Instant::now();
        let mut df_partial = ws.take_scratch(a_shard_t.rows(), dh.cols());
        spmm_into(a_shard_t, &dh, &mut df_partial);
        ws.recycle(dh);
        ws.recycle(w_full);
        t.compute_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        if let Some(p) = dw_pending.take() {
            dw_stored = Matrix::from_vec(dw_rows / r_group.size(), dw_cols, p.wait());
        }
        let df = if df_scatter {
            // Layer 0: land the feature gradient on the stored span. Under
            // replication this completes the R-axis sum in two stages
            // (scatter across owners, all-reduce across replicas); with
            // c = 1 it is exactly the reduce-scatter across R.
            let df = ctx.reduce_scatter_feature_rows(&df_partial);
            ws.recycle(df_partial);
            df
        } else {
            let mut d = df_partial;
            ctx.all_reduce_sum(&mut d, roles.rows);
            d
        };
        t.comm_s += t1.elapsed().as_secs_f64();

        (DistLayerGrads { df, dw_stored }, t)
    }
}

/// Split `rows` into `n` contiguous tiles (first tiles one row larger when
/// `rows % n != 0`). Identical on every rank of a group, as the SPMD
/// contract requires.
fn tile_bounds(rows: usize, n: usize) -> Vec<(usize, usize)> {
    let base = rows / n;
    let extra = rows % n;
    let mut bounds = Vec::with_capacity(n);
    let mut r0 = 0;
    for i in 0..n {
        let r1 = r0 + base + usize::from(i < extra);
        bounds.push((r0, r1));
        r0 = r1;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_bounds_cover_exactly() {
        assert_eq!(tile_bounds(8, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(tile_bounds(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        let b = tile_bounds(7, 4);
        assert_eq!(b.first().unwrap().0, 0);
        assert_eq!(b.last().unwrap().1, 7);
        for w in b.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
