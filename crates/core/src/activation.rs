//! Out-of-core activation state: the residency-policy engine that owns
//! every inter-layer cache the distributed trainer produces.
//!
//! PR 3 bounded *adjacency/feature* residency via the [`ShardStore`]
//! window loads, but the per-layer forward caches (`H`, `Q`, the gathered
//! `W` — `~n_pad/G_r x d_pad` each) still lived in RAM for the whole
//! forward pass. This module makes that residency a first-class,
//! budget-driven policy choice, the Dorylus-style trade of staged I/O and
//! recomputation for memory:
//!
//! * [`ResidencyPolicy::Resident`] — every cache stays in RAM until its
//!   backward pass consumes it. Today's behavior; the bitwise baseline.
//! * [`ResidencyPolicy::Spill`] — caches stay resident up to a byte
//!   budget; beyond it, least-recently-inserted layer caches are evicted
//!   to checksummed spill files (the [`ShardStore`] v2 header + FNV-1a
//!   checksum format) and reloaded — checksum-verified — when
//!   backward reaches their layer. Reload buffers come from the store's
//!   own [`KernelWorkspace`], so the zero-alloc-after-warmup invariant
//!   survives.
//! * [`ResidencyPolicy::Recompute`] — the cheap-to-rebuild SpMM/gather
//!   intermediates (`H`, `Q`, `W_full`) are dropped outright; only the
//!   layer *input* is retained, and backward re-derives the cache through
//!   the layer's own forward recipes
//!   ([`DistLayer::rebuild_cache`](crate::layer::DistLayer::rebuild_cache)).
//!
//! All three policies produce **bitwise-identical** losses and gradients:
//! spilling writes and reloads exact f32 bits, and recomputation replays
//! the very kernels (and deterministic collectives) the forward pass ran.
//!
//! The store is communication-free by design: [`ActivationStore::fetch`]
//! returns either a materialized cache or a [`Fetched::Rebuild`] order
//! carrying the retained input, and the *trainer* — which owns the
//! communicator — executes the rebuild. That keeps the store testable in
//! isolation (the spill round-trip proptest) and keeps every collective
//! call site inside [`DistLayer`](crate::layer::DistLayer).
//!
//! [`ShardStore`]: crate::loader::ShardStore

use crate::layer::DistLayerCache;
use crate::loader::{
    fnv1a, Cursor, LoaderError, LoaderResult, FORMAT_VERSION, MAX_READ_RETRIES, READ_RETRY_BACKOFF,
};
use plexus_comm::fault::FaultPlan;
use plexus_tensor::{KernelWorkspace, Matrix};
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How inter-layer activation state is kept between forward and backward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResidencyPolicy {
    /// Keep every layer cache in RAM (the bitwise baseline; the budget
    /// concept does not apply).
    Resident,
    /// Keep caches in RAM up to `budget_bytes`; evict
    /// least-recently-inserted layer caches to checksummed spill files
    /// beyond it and reload them on backward.
    Spill { budget_bytes: u64 },
    /// Drop the recomputable segments (`H`, `Q`, `W_full`) after every
    /// layer's forward, retain only the layer input, and re-derive the
    /// cache during backward. Peak store residency is the sum of layer
    /// inputs — roughly half the resident baseline for equal-width layers.
    Recompute,
}

/// Cumulative counters of one store's activity, synced into the per-rank
/// [`MemoryLedger`](crate::loader::MemoryLedger) after every epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActivationStats {
    /// Bytes currently held by the store (caches + retained inputs).
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`, including a just-reloaded
    /// cache at the instant it is handed back.
    pub peak_resident_bytes: u64,
    /// Total bytes written to spill files.
    pub spilled_bytes: u64,
    /// Total bytes read back from spill files.
    pub reloaded_bytes: u64,
    /// Layer caches evicted to disk.
    pub spill_events: u64,
    /// Layer caches reloaded from disk.
    pub reload_events: u64,
    /// Reloads that failed verification once and succeeded on the bounded
    /// re-read (transient-fault recovery).
    pub reload_retries: u64,
    /// Layer caches scheduled for re-derivation during backward.
    pub recompute_events: u64,
    /// Wall seconds spent writing and reading spill files.
    pub spill_io_s: f64,
}

/// What [`ActivationStore::fetch`] hands back for one layer.
pub enum Fetched {
    /// The materialized cache (resident, or reloaded and
    /// checksum-verified from a spill file).
    Cache(DistLayerCache),
    /// The `Recompute` order: the retained layer input plus the activation
    /// flag; the caller re-derives the cache through the layer's forward
    /// recipes and recycles `input` afterwards.
    Rebuild { input: Matrix, activated: bool },
}

/// On-disk location + integrity metadata of one spilled layer cache.
struct SpillFile {
    path: PathBuf,
    checksum: u64,
    len: u64,
}

enum Slot {
    Empty,
    Resident { cache: DistLayerCache, stamp: u64 },
    Spilled { file: SpillFile, activated: bool },
    Dropped { input: Matrix, activated: bool },
}

/// Unique suffix for each store's spill directory, so concurrent ranks
/// (and concurrent tests) never collide.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns all inter-layer activation state of one rank's trainer and
/// enforces the configured [`ResidencyPolicy`] across layers and epochs.
pub struct ActivationStore {
    policy: ResidencyPolicy,
    slots: Vec<Slot>,
    dir: PathBuf,
    dir_created: bool,
    /// Buffer pool for spill-eviction recycling and reload allocation;
    /// sized by the first spilling epoch, stable after.
    ws: KernelWorkspace,
    /// Reusable raw-byte buffer for reload I/O.
    io_buf: Vec<u8>,
    stats: ActivationStats,
    clock: u64,
    /// Armed fault-injection plan consulted on every spill reload (test
    /// harness only; `None` costs nothing).
    faults: Option<Arc<FaultPlan>>,
}

fn cache_bytes(cache: &DistLayerCache) -> u64 {
    cache.h.mem_bytes() + cache.q.mem_bytes() + cache.w_full.mem_bytes()
}

impl ActivationStore {
    pub fn new(policy: ResidencyPolicy) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "plexus_act_{}_{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Self {
            policy,
            slots: Vec::new(),
            dir,
            dir_created: false,
            ws: KernelWorkspace::new(),
            io_buf: Vec::new(),
            stats: ActivationStats::default(),
            clock: 0,
            faults: None,
        }
    }

    pub fn policy(&self) -> ResidencyPolicy {
        self.policy
    }

    /// Arm `plan` on this store's reload path (fault-injection tests).
    pub fn set_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// The spill directory (created lazily on first eviction).
    pub fn spill_dir(&self) -> &Path {
        &self.dir
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> ActivationStats {
        self.stats
    }

    /// Allocator interactions of the store's reload workspace — included
    /// in the trainer's zero-alloc-after-warmup accounting.
    pub fn alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    /// Take custody of layer `layer`'s forward cache and its consumed
    /// input, applying the policy: recycle what the policy drops into
    /// `layer_ws`, spill what the budget cannot hold, retain the rest.
    pub fn insert(
        &mut self,
        layer: usize,
        cache: DistLayerCache,
        input: Matrix,
        layer_ws: &mut KernelWorkspace,
    ) -> LoaderResult<()> {
        if self.slots.len() <= layer {
            self.slots.resize_with(layer + 1, || Slot::Empty);
        }
        assert!(
            matches!(self.slots[layer], Slot::Empty),
            "ActivationStore: layer {} already has a cache this step",
            layer
        );
        match self.policy {
            ResidencyPolicy::Resident => {
                layer_ws.recycle(input);
                self.park(layer, cache);
            }
            ResidencyPolicy::Spill { budget_bytes } => {
                layer_ws.recycle(input);
                let incoming = cache_bytes(&cache);
                if incoming > budget_bytes {
                    // A cache that alone busts the budget spills directly,
                    // never entering the resident accounting: evicting
                    // peers could not have made it fit, and nothing reads
                    // it again until backward. Its transit still caps the
                    // probed peak at one whole cache.
                    self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(incoming);
                    self.spill_cache(layer, cache)?;
                } else {
                    // Make room *before* the cache lands, so the probed
                    // peak never exceeds max(budget, one cache).
                    self.make_room(budget_bytes, incoming)?;
                    self.park(layer, cache);
                }
            }
            ResidencyPolicy::Recompute => {
                let DistLayerCache { h, q, w_full, activated } = cache;
                layer_ws.recycle(h);
                layer_ws.recycle(q);
                layer_ws.recycle(w_full);
                self.stats.resident_bytes += input.mem_bytes();
                self.probe_peak(0);
                self.slots[layer] = Slot::Dropped { input, activated };
            }
        }
        Ok(())
    }

    /// Surrender layer `layer`'s state for the backward pass: a resident
    /// cache directly, a spilled one after a checksum-verified reload, or
    /// a [`Fetched::Rebuild`] order under `Recompute`.
    pub fn fetch(&mut self, layer: usize) -> LoaderResult<Fetched> {
        let slot = std::mem::replace(&mut self.slots[layer], Slot::Empty);
        match slot {
            Slot::Empty => panic!("ActivationStore: no activation state for layer {}", layer),
            Slot::Resident { cache, .. } => {
                self.probe_peak(0);
                self.stats.resident_bytes -= cache_bytes(&cache);
                Ok(Fetched::Cache(cache))
            }
            Slot::Spilled { file, activated } => {
                let cache = self.reload(&file, activated)?;
                self.probe_peak(cache_bytes(&cache));
                Ok(Fetched::Cache(cache))
            }
            Slot::Dropped { input, activated } => {
                self.stats.recompute_events += 1;
                self.stats.resident_bytes -= input.mem_bytes();
                Ok(Fetched::Rebuild { input, activated })
            }
        }
    }

    /// Debug check between epochs: every slot must have been fetched.
    pub fn assert_drained(&self) {
        debug_assert!(
            self.slots.iter().all(|s| matches!(s, Slot::Empty)),
            "ActivationStore: undrained slots at epoch end"
        );
        debug_assert_eq!(self.stats.resident_bytes, 0, "resident bytes leaked across epochs");
    }

    fn park(&mut self, layer: usize, cache: DistLayerCache) {
        self.stats.resident_bytes += cache_bytes(&cache);
        self.probe_peak(0);
        self.clock += 1;
        self.slots[layer] = Slot::Resident { cache, stamp: self.clock };
    }

    fn probe_peak(&mut self, extra: u64) {
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.stats.resident_bytes + extra);
    }

    /// Evict least-recently-inserted resident caches until `incoming` more
    /// bytes fit under `budget` (or nothing is left to evict). Callers
    /// route caches larger than the whole budget straight to disk instead
    /// — evicting peers that do fit would only churn spill/reload I/O.
    fn make_room(&mut self, budget: u64, incoming: u64) -> LoaderResult<()> {
        debug_assert!(incoming <= budget, "oversized caches bypass make_room");
        while self.stats.resident_bytes + incoming > budget {
            let lru = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(l, s)| match s {
                    Slot::Resident { stamp, .. } => Some((*stamp, l)),
                    _ => None,
                })
                .min();
            match lru {
                Some((_, l)) => self.spill_slot(l)?,
                None => break,
            }
        }
        Ok(())
    }

    /// Evict a parked slot: remove it from the resident accounting and
    /// write it out via [`Self::spill_cache`].
    fn spill_slot(&mut self, layer: usize) -> LoaderResult<()> {
        let Slot::Resident { cache, .. } = std::mem::replace(&mut self.slots[layer], Slot::Empty)
        else {
            unreachable!("spill_slot called on a non-resident slot")
        };
        self.stats.resident_bytes -= cache_bytes(&cache);
        self.spill_cache(layer, cache)
    }

    /// Write a cache to layer `layer`'s spill file — the v2 header +
    /// FNV-1a checksum format, assembled in the reusable I/O buffer and
    /// hashed/written in one pass (this runs in the per-epoch hot loop,
    /// unlike the offline store writers) — then recycle the buffers into
    /// the store's pool.
    fn spill_cache(&mut self, layer: usize, cache: DistLayerCache) -> LoaderResult<()> {
        if !self.dir_created {
            fs::create_dir_all(&self.dir)?;
            self.dir_created = true;
        }
        let t0 = std::time::Instant::now();
        let path = self.dir.join(format!("act_l{}.plx", layer));
        self.io_buf.clear();
        self.io_buf.extend_from_slice(&crate::loader::MAGIC.to_le_bytes());
        self.io_buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for m in [&cache.h, &cache.q, &cache.w_full] {
            self.io_buf.extend_from_slice(&(m.rows() as u64).to_le_bytes());
            self.io_buf.extend_from_slice(&(m.cols() as u64).to_le_bytes());
            for &v in m.as_slice() {
                self.io_buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a(&self.io_buf);
        let len = self.io_buf.len() as u64;
        fs::write(&path, &self.io_buf)?;
        let DistLayerCache { h, q, w_full, activated } = cache;
        self.ws.recycle(h);
        self.ws.recycle(q);
        self.ws.recycle(w_full);
        self.stats.spilled_bytes += len;
        self.stats.spill_events += 1;
        self.stats.spill_io_s += t0.elapsed().as_secs_f64();
        self.slots[layer] = Slot::Spilled { file: SpillFile { path, checksum, len }, activated };
        Ok(())
    }

    /// One read + length/checksum verification attempt into `io_buf`.
    fn read_spill_verified(&mut self, file: &SpillFile) -> LoaderResult<()> {
        self.io_buf.clear();
        File::open(&file.path)?.read_to_end(&mut self.io_buf)?;
        if let Some(plan) = &self.faults {
            if plan.shard_read_fails(&file.path.to_string_lossy()) {
                return Err(LoaderError::ChecksumMismatch {
                    file: file.path.clone(),
                    stored: file.checksum,
                    computed: !file.checksum, // synthetic injected mismatch
                });
            }
        }
        if self.io_buf.len() as u64 != file.len {
            return Err(LoaderError::Truncated { file: file.path.clone() });
        }
        let computed = fnv1a(&self.io_buf);
        if computed != file.checksum {
            return Err(LoaderError::ChecksumMismatch {
                file: file.path.clone(),
                stored: file.checksum,
                computed,
            });
        }
        Ok(())
    }

    /// Read a spill file back, verify length + checksum + header, and
    /// rebuild the cache in workspace buffers. Like the shard loader's
    /// verified reads, a checksum/truncation failure is re-read once from
    /// disk (bounded backoff) before the typed error surfaces.
    fn reload(&mut self, file: &SpillFile, activated: bool) -> LoaderResult<DistLayerCache> {
        let t0 = std::time::Instant::now();
        let mut retries = 0u64;
        loop {
            match self.read_spill_verified(file) {
                Ok(()) => break,
                Err(e @ (LoaderError::ChecksumMismatch { .. } | LoaderError::Truncated { .. })) => {
                    if retries >= MAX_READ_RETRIES {
                        return Err(e);
                    }
                    retries += 1;
                    std::thread::sleep(READ_RETRY_BACKOFF * retries as u32);
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.reload_retries += retries;
        let mut cur = Cursor { bytes: &self.io_buf, pos: 0, path: &file.path };
        let magic = cur.u64()?;
        if magic != crate::loader::MAGIC {
            return Err(LoaderError::BadMagic { file: file.path.clone() });
        }
        let version = cur.u64()?;
        if version != FORMAT_VERSION {
            return Err(LoaderError::VersionMismatch {
                file: file.path.clone(),
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let mut mats = Vec::with_capacity(3);
        for _ in 0..3 {
            let rows = cur.u64()? as usize;
            let cols = cur.u64()? as usize;
            let mut m = self.ws.take_scratch(rows, cols);
            // Bulk-decode the payload: one bounds check per matrix, not
            // one per element (this is the per-epoch hot loop).
            let payload = cur.take(rows * cols * 4)?;
            for (dst, src) in m.as_mut_slice().iter_mut().zip(payload.chunks_exact(4)) {
                *dst = f32::from_le_bytes(src.try_into().expect("chunk width"));
            }
            mats.push(m);
        }
        let w_full = mats.pop().expect("three matrices");
        let q = mats.pop().expect("three matrices");
        let h = mats.pop().expect("three matrices");
        self.stats.reloaded_bytes += file.len;
        self.stats.reload_events += 1;
        self.stats.spill_io_s += t0.elapsed().as_secs_f64();
        Ok(DistLayerCache { h, q, w_full, activated })
    }
}

impl Drop for ActivationStore {
    fn drop(&mut self) {
        if self.dir_created {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cache(seed: f32, rows: usize, cols: usize) -> DistLayerCache {
        let gen = |r: usize, c: usize, s: f32| {
            Matrix::from_fn(r, c, |i, j| ((i * 13 + j * 7) as f32 * 0.01 + s).sin())
        };
        DistLayerCache {
            h: gen(rows, cols, seed),
            q: gen(rows, cols + 1, seed + 0.5),
            w_full: gen(cols, cols + 1, seed + 1.0),
            activated: rows.is_multiple_of(2),
        }
    }

    fn clone_cache(c: &DistLayerCache) -> DistLayerCache {
        DistLayerCache {
            h: c.h.clone(),
            q: c.q.clone(),
            w_full: c.w_full.clone(),
            activated: c.activated,
        }
    }

    fn assert_cache_eq(a: &DistLayerCache, b: &DistLayerCache) {
        assert_eq!(a.h, b.h);
        assert_eq!(a.q, b.q);
        assert_eq!(a.w_full, b.w_full);
        assert_eq!(a.activated, b.activated);
    }

    #[test]
    fn resident_policy_round_trips_without_files() {
        let mut store = ActivationStore::new(ResidencyPolicy::Resident);
        let mut ws = KernelWorkspace::new();
        let c0 = test_cache(0.1, 6, 4);
        let keep = clone_cache(&c0);
        store.insert(0, c0, Matrix::zeros(2, 2), &mut ws).unwrap();
        assert!(store.stats().resident_bytes > 0);
        match store.fetch(0).unwrap() {
            Fetched::Cache(c) => assert_cache_eq(&c, &keep),
            Fetched::Rebuild { .. } => panic!("resident policy must not order rebuilds"),
        }
        assert_eq!(store.stats().resident_bytes, 0);
        assert_eq!(store.stats().spill_events, 0);
        assert!(!store.spill_dir().exists(), "resident policy must not touch disk");
    }

    #[test]
    fn zero_budget_spills_everything_and_reloads_bitwise() {
        let mut store = ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: 0 });
        let mut ws = KernelWorkspace::new();
        let caches: Vec<DistLayerCache> = (0..3).map(|l| test_cache(l as f32, 5 + l, 3)).collect();
        let keeps: Vec<DistLayerCache> = caches.iter().map(clone_cache).collect();
        for (l, c) in caches.into_iter().enumerate() {
            store.insert(l, c, Matrix::zeros(1, 1), &mut ws).unwrap();
        }
        assert_eq!(store.stats().spill_events, 3);
        assert_eq!(store.stats().resident_bytes, 0);
        for l in (0..3).rev() {
            match store.fetch(l).unwrap() {
                Fetched::Cache(c) => assert_cache_eq(&c, &keeps[l]),
                Fetched::Rebuild { .. } => panic!("spill policy must not order rebuilds"),
            }
        }
        let s = store.stats();
        assert_eq!(s.reload_events, 3);
        assert_eq!(s.spilled_bytes, s.reloaded_bytes);
        store.assert_drained();
    }

    #[test]
    fn budget_keeps_newest_and_spills_oldest_first() {
        let c = test_cache(0.0, 8, 4);
        let one = cache_bytes(&c);
        // Budget fits two caches: inserting three must spill exactly the
        // oldest (layer 0).
        let mut store = ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: 2 * one });
        let mut ws = KernelWorkspace::new();
        store.insert(0, c, Matrix::zeros(1, 1), &mut ws).unwrap();
        store.insert(1, test_cache(1.0, 8, 4), Matrix::zeros(1, 1), &mut ws).unwrap();
        store.insert(2, test_cache(2.0, 8, 4), Matrix::zeros(1, 1), &mut ws).unwrap();
        let s = store.stats();
        assert_eq!(s.spill_events, 1, "exactly the LRU cache spills");
        assert_eq!(s.resident_bytes, 2 * one);
        assert!(s.peak_resident_bytes <= 2 * one, "peak {} above budget", s.peak_resident_bytes);
        // Backward order: 2 and 1 are resident, 0 reloads.
        assert!(matches!(store.fetch(2).unwrap(), Fetched::Cache(_)));
        assert!(matches!(store.fetch(1).unwrap(), Fetched::Cache(_)));
        assert_eq!(store.stats().reload_events, 0);
        assert!(matches!(store.fetch(0).unwrap(), Fetched::Cache(_)));
        assert_eq!(store.stats().reload_events, 1);
    }

    #[test]
    fn oversized_cache_spills_itself_not_its_peers() {
        let small = test_cache(0.0, 4, 3);
        let small_bytes = cache_bytes(&small);
        let mut store =
            ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: 2 * small_bytes });
        let mut ws = KernelWorkspace::new();
        store.insert(0, small, Matrix::zeros(1, 1), &mut ws).unwrap();
        // A cache bigger than the whole budget spills directly; evicting
        // the fitting peer could not have helped and must not happen.
        store.insert(1, test_cache(1.0, 32, 16), Matrix::zeros(1, 1), &mut ws).unwrap();
        let s = store.stats();
        assert_eq!(s.spill_events, 1, "only the oversized cache spills");
        assert_eq!(s.resident_bytes, small_bytes, "the fitting peer was evicted");
        assert!(matches!(store.fetch(1).unwrap(), Fetched::Cache(_)));
        assert_eq!(store.stats().reload_events, 1);
        assert!(matches!(store.fetch(0).unwrap(), Fetched::Cache(_)));
        assert_eq!(store.stats().reload_events, 1, "layer 0 should come back without disk I/O");
    }

    #[test]
    fn recompute_retains_inputs_and_orders_rebuilds() {
        let mut store = ActivationStore::new(ResidencyPolicy::Recompute);
        let mut ws = KernelWorkspace::new();
        let input = Matrix::from_fn(4, 3, |i, j| (i + j) as f32);
        let keep = input.clone();
        let c = test_cache(0.3, 6, 4);
        store.insert(0, c, input, &mut ws).unwrap();
        // Only the input is resident; the cache segments went to the pool.
        assert_eq!(store.stats().resident_bytes, keep.mem_bytes());
        match store.fetch(0).unwrap() {
            Fetched::Rebuild { input, activated } => {
                assert_eq!(input, keep);
                assert!(activated);
            }
            Fetched::Cache(_) => panic!("recompute policy must order rebuilds"),
        }
        assert_eq!(store.stats().recompute_events, 1);
        assert_eq!(store.stats().resident_bytes, 0);
    }

    #[test]
    fn corrupted_spill_file_is_a_typed_checksum_error() {
        let mut store = ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: 0 });
        let mut ws = KernelWorkspace::new();
        store.insert(0, test_cache(0.7, 5, 3), Matrix::zeros(1, 1), &mut ws).unwrap();
        let victim = store.spill_dir().join("act_l0.plx");
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        match store.fetch(0) {
            Err(LoaderError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn reload_buffers_come_from_the_pool_after_warmup() {
        let mut store = ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: 0 });
        let mut ws = KernelWorkspace::new();
        for _ in 0..2 {
            store.insert(0, test_cache(0.2, 16, 8), Matrix::zeros(1, 1), &mut ws).unwrap();
            match store.fetch(0).unwrap() {
                Fetched::Cache(c) => {
                    // The trainer recycles consumed caches into layer
                    // workspaces; mirror that by recycling into the store.
                    store.ws.recycle(c.h);
                    store.ws.recycle(c.q);
                    store.ws.recycle(c.w_full);
                }
                Fetched::Rebuild { .. } => unreachable!(),
            }
        }
        let warmed = store.alloc_events();
        for _ in 0..3 {
            store.insert(0, test_cache(0.2, 16, 8), Matrix::zeros(1, 1), &mut ws).unwrap();
            match store.fetch(0).unwrap() {
                Fetched::Cache(c) => {
                    store.ws.recycle(c.h);
                    store.ws.recycle(c.q);
                    store.ws.recycle(c.w_full);
                }
                Fetched::Rebuild { .. } => unreachable!(),
            }
        }
        assert_eq!(store.alloc_events(), warmed, "reload allocated after warmup");
    }
}
