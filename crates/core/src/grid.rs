//! The 3D virtual GPU grid and the per-layer axis-role rotation.
//!
//! §3.1: GPUs are arranged into a `Gx x Gy x Gz` grid; each matrix of a
//! layer is sharded over two grid axes and (for parameters) further over
//! the third. §3.2: consecutive layers use adjacency shards on rotating
//! planes — ZX for layer 0, YZ for layer 1, XY for layer 2, then the cycle
//! repeats — so the output layout of one layer is exactly the input layout
//! of the next with zero redistribution.

/// One axis of the 3D grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    pub fn name(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

/// Grid shape `Gx x Gy x Gz`. Ranks are laid out x-fastest:
/// `rank = x + y*Gx + z*Gx*Gy`, mirroring how the paper packs
/// consecutive-rank GPUs into nodes (Y innermost priority is handled by the
/// performance model's bandwidth rule, not by the rank layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridConfig {
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
}

impl GridConfig {
    pub fn new(gx: usize, gy: usize, gz: usize) -> Self {
        assert!(gx >= 1 && gy >= 1 && gz >= 1, "GridConfig: dims must be >= 1");
        Self { gx, gy, gz }
    }

    /// Total GPU count `G = Gx * Gy * Gz`.
    pub fn total(&self) -> usize {
        self.gx * self.gy * self.gz
    }

    pub fn dim(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.gx,
            Axis::Y => self.gy,
            Axis::Z => self.gz,
        }
    }

    /// Coordinates of a rank.
    pub fn coords(&self, rank: usize) -> GridCoords {
        assert!(rank < self.total(), "rank {} outside grid of {}", rank, self.total());
        GridCoords {
            x: rank % self.gx,
            y: (rank / self.gx) % self.gy,
            z: rank / (self.gx * self.gy),
        }
    }

    /// Rank of given coordinates.
    pub fn rank_of(&self, c: GridCoords) -> usize {
        debug_assert!(c.x < self.gx && c.y < self.gy && c.z < self.gz);
        c.x + c.y * self.gx + c.z * self.gx * self.gy
    }

    /// Number of distinct 1D/2D/3D classes this config belongs to (how many
    /// axes exceed 1) — Fig. 5 colors points by this.
    pub fn dimensionality(&self) -> usize {
        [self.gx, self.gy, self.gz].iter().filter(|&&d| d > 1).count()
    }

    /// Compact display form matching the paper's Fig. 7 legend ("X2Y4Z2").
    pub fn label(&self) -> String {
        format!("X{}Y{}Z{}", self.gx, self.gy, self.gz)
    }

    /// Every (Gx, Gy, Gz) factorization of `g` — the search space of the
    /// performance model (§4.3 evaluates all of them for Fig. 5).
    pub fn enumerate(g: usize) -> Vec<GridConfig> {
        let mut out = Vec::new();
        for gx in 1..=g {
            if !g.is_multiple_of(gx) {
                continue;
            }
            let rest = g / gx;
            for gy in 1..=rest {
                if !rest.is_multiple_of(gy) {
                    continue;
                }
                out.push(GridConfig::new(gx, gy, rest / gy));
            }
        }
        out
    }
}

/// A grid shape plus the 1.5D-style replication factor.
///
/// `replication = c` makes each rank store the feature rows of its whole
/// *cluster* of `c` consecutive Z-ranks (layer 0's row axis is always Z),
/// trading `c`× feature/optimizer memory for an epoch feature gather that
/// runs over `Gz / c` owners instead of `Gz` — fewer, larger blocks, so a
/// ring moves `(G/c-1)/(G/c)` of the volume instead of `(G-1)/G`, and a
/// sparse row plan splits its requests across `c`× fewer owners. `c = 1`
/// is exactly the unreplicated engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridSpec {
    pub grid: GridConfig,
    /// Replication factor `c >= 1`; must divide `Gz`.
    pub replication: usize,
}

impl GridSpec {
    /// The plain, unreplicated spec for `grid`.
    pub fn new(grid: GridConfig) -> Self {
        Self { grid, replication: 1 }
    }

    /// Set the replication factor. Panics unless `1 <= c` and `c | Gz`.
    pub fn with_replication(mut self, c: usize) -> Self {
        assert!(c >= 1, "GridSpec: replication factor must be >= 1");
        assert!(
            self.grid.gz.is_multiple_of(c),
            "GridSpec: replication {} does not divide Gz = {}",
            c,
            self.grid.gz
        );
        self.replication = c;
        self
    }

    /// Owners of the layer-0 feature row space under this spec
    /// (`Gz / replication`).
    pub fn feature_owners(&self) -> usize {
        self.grid.gz / self.replication
    }
}

impl From<GridConfig> for GridSpec {
    fn from(grid: GridConfig) -> Self {
        Self::new(grid)
    }
}

/// A rank's grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridCoords {
    pub x: usize,
    pub y: usize,
    pub z: usize,
}

impl GridCoords {
    pub fn along(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }
}

/// The axis roles of one layer:
///
/// * `rows` (R) — A's rows and the layer output's rows are split over it;
/// * `contract` (C) — A's columns / F's rows are split over it; the SpMM
///   partial sums are all-reduced over this axis;
/// * `feat` (K) — F's columns are split over it; the GEMM partial sums are
///   all-reduced over this axis.
///
/// Parameters (W always, F only at layer 0) are stored further sharded
/// over the layer's `rows` axis — for layer 0 that is Z, matching the
/// paper's "also further across the Z-parallel process group".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerRoles {
    pub rows: Axis,
    pub contract: Axis,
    pub feat: Axis,
}

/// Role assignment of layer `l`. Layer 0 is (R=Z, C=X, K=Y) — the paper's
/// "A sharded across the ZX-plane" — and each next layer rotates
/// (R,C,K) -> (K,R,C), yielding the ZX -> YZ -> XY plane cycle of Fig. 4.
pub fn roles_for_layer(l: usize) -> LayerRoles {
    match l % 3 {
        0 => LayerRoles { rows: Axis::Z, contract: Axis::X, feat: Axis::Y },
        1 => LayerRoles { rows: Axis::Y, contract: Axis::Z, feat: Axis::X },
        _ => LayerRoles { rows: Axis::X, contract: Axis::Y, feat: Axis::Z },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_round_trip() {
        let g = GridConfig::new(2, 3, 4);
        for rank in 0..g.total() {
            assert_eq!(g.rank_of(g.coords(rank)), rank);
        }
        assert_eq!(g.total(), 24);
    }

    #[test]
    fn coords_layout_is_x_fastest() {
        let g = GridConfig::new(2, 2, 2);
        assert_eq!(g.coords(0), GridCoords { x: 0, y: 0, z: 0 });
        assert_eq!(g.coords(1), GridCoords { x: 1, y: 0, z: 0 });
        assert_eq!(g.coords(2), GridCoords { x: 0, y: 1, z: 0 });
        assert_eq!(g.coords(4), GridCoords { x: 0, y: 0, z: 1 });
    }

    #[test]
    fn role_rotation_matches_paper_planes() {
        // Layer 0: A on ZX (rows Z, cols X). Layer 1: YZ. Layer 2: XY.
        let r0 = roles_for_layer(0);
        assert_eq!((r0.rows, r0.contract, r0.feat), (Axis::Z, Axis::X, Axis::Y));
        let r1 = roles_for_layer(1);
        assert_eq!((r1.rows, r1.contract, r1.feat), (Axis::Y, Axis::Z, Axis::X));
        let r2 = roles_for_layer(2);
        assert_eq!((r2.rows, r2.contract, r2.feat), (Axis::X, Axis::Y, Axis::Z));
        // Cycle of three.
        assert_eq!(roles_for_layer(3), r0);
        assert_eq!(roles_for_layer(5), r2);
    }

    #[test]
    fn layout_chain_is_consistent() {
        // Output of layer l is (rows over R_l, cols over C_l, replicated
        // over K_l); the input of layer l+1 needs (rows over C_{l+1}, cols
        // over K_{l+1}, replicated over R_{l+1}).
        for l in 0..6 {
            let cur = roles_for_layer(l);
            let next = roles_for_layer(l + 1);
            assert_eq!(cur.rows, next.contract, "layer {} rows -> next contract", l);
            assert_eq!(cur.contract, next.feat, "layer {} contract -> next feat", l);
            assert_eq!(cur.feat, next.rows, "layer {} feat -> next rows", l);
        }
    }

    #[test]
    fn enumerate_covers_all_factorizations() {
        let configs = GridConfig::enumerate(8);
        assert!(configs.iter().all(|c| c.total() == 8));
        // 8 = product of three ordered factors: 10 factorizations.
        assert_eq!(configs.len(), 10);
        assert!(configs.contains(&GridConfig::new(2, 2, 2)));
        assert!(configs.contains(&GridConfig::new(8, 1, 1)));
    }

    #[test]
    fn grid_spec_validates_replication() {
        let spec = GridSpec::new(GridConfig::new(2, 2, 4)).with_replication(2);
        assert_eq!(spec.replication, 2);
        assert_eq!(spec.feature_owners(), 2);
        assert_eq!(GridSpec::from(GridConfig::new(2, 2, 4)).replication, 1);
        let bad = std::panic::catch_unwind(|| {
            GridSpec::new(GridConfig::new(2, 2, 4)).with_replication(3)
        });
        assert!(bad.is_err(), "replication must divide Gz");
    }

    #[test]
    fn dimensionality_classes() {
        assert_eq!(GridConfig::new(8, 1, 1).dimensionality(), 1);
        assert_eq!(GridConfig::new(4, 2, 1).dimensionality(), 2);
        assert_eq!(GridConfig::new(2, 2, 2).dimensionality(), 3);
        assert_eq!(GridConfig::new(2, 2, 2).label(), "X2Y2Z2");
    }
}
