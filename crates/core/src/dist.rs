//! Per-rank distributed context: the X/Y/Z process groups plus
//! matrix-shaped wrappers over the raw collectives.
//!
//! [`DistContext`] is generic over the [`Communicator`] backend: the
//! thread world ([`plexus_comm::ThreadComm`], the default) moves real
//! data for correctness runs, while `plexus_simnet::SimComm` runs the same
//! per-rank program as a single-process cost study at grid sizes no one
//! machine can execute.

use crate::grid::{Axis, GridConfig, GridCoords, GridSpec};
use plexus_comm::{Communicator, FaultPlan, ReduceOp, ThreadComm};
use plexus_tensor::Matrix;
use std::sync::Arc;

/// Everything a rank needs to communicate inside the 3D grid.
///
/// The default backend is the thread world; `DistContext<SimComm>` is the
/// cost-only variant.
pub struct DistContext<C: Communicator = ThreadComm> {
    pub grid: GridConfig,
    /// 1.5D replication factor over the layer-0 feature axis (Z); 1 means
    /// no replication (see [`GridSpec`]).
    pub replication: usize,
    pub coords: GridCoords,
    pub world: C,
    x_group: C,
    y_group: C,
    z_group: C,
    /// The `replication`-sized group of replicas inside one Z-cluster
    /// (ranks sharing `x`, `y`, `z / c`). Present only when `c > 1`.
    intra_replica: Option<C>,
    /// The `Gz / replication` feature *owners* (ranks sharing `x`, `y`,
    /// `z % c`); the epoch feature gather runs over this group. Present
    /// only when `c > 1`.
    cross_replica: Option<C>,
    /// Deterministic fault-injection hooks (layer-entry panics). `None` in
    /// production: the per-layer check is a single branch on a `None`.
    pub faults: Option<Arc<FaultPlan>>,
}

/// The cost-only variant of [`DistContext`], for perf-model studies on
/// simulated grids (see [`plexus_simnet::SimComm`]).
pub type SimDistContext = DistContext<plexus_simnet::SimComm>;

impl<C: Communicator> DistContext<C> {
    /// Build the three axis groups from the world communicator. Must be
    /// called collectively by every rank. Panics if the world size does not
    /// match the grid.
    pub fn new(world: C, grid: GridConfig) -> Self {
        Self::with_spec(world, GridSpec::new(grid))
    }

    /// [`new`](DistContext::new) plus the spec's replication groups: when
    /// `spec.replication > 1`, additionally splits the Z axis into the
    /// intra-cluster replica group and the cross-cluster owner group the
    /// 1.5D feature path communicates over. `replication = 1` builds
    /// exactly what [`new`](DistContext::new) builds.
    pub fn with_spec(world: C, spec: GridSpec) -> Self {
        let grid = spec.grid;
        assert!(
            grid.gz.is_multiple_of(spec.replication),
            "DistContext: replication {} does not divide Gz = {}",
            spec.replication,
            grid.gz
        );
        assert_eq!(
            world.size(),
            grid.total(),
            "DistContext: world has {} ranks but grid {} needs {}",
            world.size(),
            grid.label(),
            grid.total()
        );
        let c = grid.coords(world.rank());
        // A group along an axis = ranks sharing the other two coordinates.
        // The color/key maps are pure functions of the world rank, which
        // lets single-process backends compute exact memberships.
        let x_group = world.split_by(
            |r| {
                let rc = grid.coords(r);
                ((rc.y + rc.z * grid.gy) as u64, rc.x as u64)
            },
            "x",
        );
        let y_group = world.split_by(
            |r| {
                let rc = grid.coords(r);
                ((rc.x + rc.z * grid.gx) as u64, rc.y as u64)
            },
            "y",
        );
        let z_group = world.split_by(
            |r| {
                let rc = grid.coords(r);
                ((rc.x + rc.y * grid.gx) as u64, rc.z as u64)
            },
            "z",
        );
        debug_assert_eq!(x_group.size(), grid.gx);
        debug_assert_eq!(y_group.size(), grid.gy);
        debug_assert_eq!(z_group.size(), grid.gz);
        debug_assert_eq!(x_group.rank(), c.x);
        debug_assert_eq!(y_group.rank(), c.y);
        debug_assert_eq!(z_group.rank(), c.z);
        let rep = spec.replication;
        let (intra_replica, cross_replica) = if rep > 1 {
            // Clusters of `rep` consecutive Z-ranks. Intra: same cluster,
            // ordered by member index. Cross: same member index, ordered
            // by cluster — so cross rank r owns feature span r.
            let intra = world.split_by(
                |r| {
                    let rc = grid.coords(r);
                    ((rc.x + (rc.y + (rc.z / rep) * grid.gy) * grid.gx) as u64, (rc.z % rep) as u64)
                },
                "zr",
            );
            let cross = world.split_by(
                |r| {
                    let rc = grid.coords(r);
                    ((rc.x + (rc.y + (rc.z % rep) * grid.gy) * grid.gx) as u64, (rc.z / rep) as u64)
                },
                "zc",
            );
            debug_assert_eq!(intra.size(), rep);
            debug_assert_eq!(cross.size(), grid.gz / rep);
            debug_assert_eq!(intra.rank(), c.z % rep);
            debug_assert_eq!(cross.rank(), c.z / rep);
            (Some(intra), Some(cross))
        } else {
            (None, None)
        };
        Self {
            grid,
            replication: rep,
            coords: c,
            world,
            x_group,
            y_group,
            z_group,
            intra_replica,
            cross_replica,
            faults: None,
        }
    }

    /// The process group along `axis`.
    pub fn group(&self, axis: Axis) -> &C {
        match axis {
            Axis::X => &self.x_group,
            Axis::Y => &self.y_group,
            Axis::Z => &self.z_group,
        }
    }

    /// The group the epoch feature gather (and the feature-gradient
    /// scatter's second stage) runs over: the cross-cluster owner group
    /// under replication, the plain Z group otherwise.
    pub fn feature_owner_group(&self) -> &C {
        self.cross_replica.as_ref().unwrap_or(&self.z_group)
    }

    /// The intra-cluster replica group, when `replication > 1`.
    pub fn replica_group(&self) -> Option<&C> {
        self.intra_replica.as_ref()
    }

    /// Sum-all-reduce a matrix in place across the `axis` group.
    pub fn all_reduce_sum(&self, m: &mut Matrix, axis: Axis) {
        self.group(axis).all_reduce(m.as_mut_slice(), ReduceOp::Sum);
    }

    /// All-gather row blocks across the `axis` group: each rank contributes
    /// its `rows x cols` shard; the result stacks them in group-rank order.
    pub fn all_gather_rows(&self, m: &Matrix, axis: Axis) -> Matrix {
        let group = self.group(axis);
        let data = group.all_gather(m.as_slice());
        Matrix::from_vec(m.rows() * group.size(), m.cols(), data)
    }

    /// All-gather column blocks across the `axis` group: result places each
    /// rank's columns side by side in group-rank order.
    pub fn all_gather_cols(&self, m: &Matrix, axis: Axis) -> Matrix {
        let group = self.group(axis);
        // Column shards of one logical matrix are equal-shaped by
        // construction, so the fixed-size gather applies (no per-shard
        // boxing, length checked inside the collective).
        let data = group.all_gather(m.as_slice());
        let g = group.size();
        let shard = m.rows() * m.cols();
        let mut out = Matrix::zeros(m.rows(), m.cols() * g);
        for gr in 0..g {
            let part = &data[gr * shard..(gr + 1) * shard];
            for r in 0..m.rows() {
                let src = &part[r * m.cols()..(r + 1) * m.cols()];
                out.row_mut(r)[gr * m.cols()..(gr + 1) * m.cols()].copy_from_slice(src);
            }
        }
        out
    }

    /// Reduce-scatter the layer-0 feature-gradient block onto this rank's
    /// stored feature rows. Without replication this is exactly
    /// [`reduce_scatter_rows`](Self::reduce_scatter_rows) over Z. Under
    /// replication the sum over the Z axis completes in two stages:
    /// scatter across the feature owners (same cluster position, different
    /// clusters), then all-reduce the span chunk across the cluster's
    /// replicas — every replica ends with the identical full-sum span
    /// gradient, which is what keeps the redundant optimizer states in
    /// lockstep.
    pub fn reduce_scatter_feature_rows(&self, m: &Matrix) -> Matrix {
        let owners = self.feature_owner_group();
        assert_eq!(
            m.rows() % owners.size(),
            0,
            "reduce_scatter_feature_rows: {} rows not divisible by {} owners",
            m.rows(),
            owners.size()
        );
        let chunk = owners.reduce_scatter(m.as_slice(), ReduceOp::Sum);
        let mut out = Matrix::from_vec(m.rows() / owners.size(), m.cols(), chunk);
        if let Some(replicas) = self.replica_group() {
            replicas.all_reduce(out.as_mut_slice(), ReduceOp::Sum);
        }
        out
    }

    /// Reduce-scatter row blocks: sum the full matrix across the group,
    /// return this rank's row chunk (`rows / group_size` rows).
    pub fn reduce_scatter_rows(&self, m: &Matrix, axis: Axis) -> Matrix {
        let group = self.group(axis);
        assert_eq!(
            m.rows() % group.size(),
            0,
            "reduce_scatter_rows: {} rows not divisible by group size {}",
            m.rows(),
            group.size()
        );
        let chunk = group.reduce_scatter(m.as_slice(), ReduceOp::Sum);
        Matrix::from_vec(m.rows() / group.size(), m.cols(), chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_comm::run_world;
    use plexus_simnet::{SimComm, SimCostModel};

    #[test]
    fn groups_have_grid_shapes() {
        let grid = GridConfig::new(2, 2, 2);
        run_world(8, |world| {
            let rank = world.rank();
            let ctx = DistContext::new(world.split(0, rank as u64, "clone"), grid);
            assert_eq!(ctx.group(Axis::X).size(), 2);
            assert_eq!(ctx.group(Axis::Y).size(), 2);
            assert_eq!(ctx.group(Axis::Z).size(), 2);
            assert_eq!(ctx.group(Axis::X).rank(), ctx.coords.x);
        });
    }

    #[test]
    fn axis_reduce_sums_over_correct_peers() {
        // Grid 2x2x1: all-reduce over X must sum pairs {0,1} and {2,3}.
        let grid = GridConfig::new(2, 2, 1);
        let results = run_world(4, |world| {
            let rank = world.rank();
            let ctx = DistContext::new(world.split(0, rank as u64, "w"), grid);
            let mut m = Matrix::full(1, 1, (rank + 1) as f32);
            ctx.all_reduce_sum(&mut m, Axis::X);
            m[(0, 0)]
        });
        assert_eq!(results, vec![3.0, 3.0, 7.0, 7.0]);
    }

    #[test]
    fn gather_rows_and_cols_reassemble() {
        let grid = GridConfig::new(2, 1, 1);
        let results = run_world(2, |world| {
            let rank = world.rank();
            let ctx = DistContext::new(world.split(0, rank as u64, "w"), grid);
            let local = Matrix::from_fn(2, 3, |i, j| (rank * 100 + i * 3 + j) as f32);
            let rows = ctx.all_gather_rows(&local, Axis::X);
            let cols = ctx.all_gather_cols(&local, Axis::X);
            (rows, cols)
        });
        let (rows, cols) = &results[0];
        assert_eq!(rows.shape(), (4, 3));
        assert_eq!(rows[(2, 0)], 100.0); // rank 1's first row comes after rank 0's block
        assert_eq!(cols.shape(), (2, 6));
        assert_eq!(cols[(0, 3)], 100.0); // rank 1's first column after rank 0's
        assert_eq!(cols[(1, 5)], 105.0);
    }

    #[test]
    fn reduce_scatter_rows_chunks_by_rank() {
        let grid = GridConfig::new(1, 1, 2);
        let results = run_world(2, |world| {
            let rank = world.rank();
            let ctx = DistContext::new(world.split(0, rank as u64, "w"), grid);
            let m = Matrix::from_fn(4, 2, |i, _| (i + rank) as f32);
            ctx.reduce_scatter_rows(&m, Axis::Z)
        });
        // Sum over both ranks of row i = 2*i + 1.
        assert_eq!(results[0].as_slice(), &[1.0, 1.0, 3.0, 3.0]);
        assert_eq!(results[1].as_slice(), &[5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn replication_groups_decompose_the_z_axis() {
        // 1x2x4 grid, c = 2: Z splits into 2 clusters of 2 replicas. The
        // intra group pairs the replicas of one cluster; the cross group
        // pairs same-position members of different clusters (the feature
        // owners).
        let grid = GridConfig::new(1, 2, 4);
        let spec = GridSpec::new(grid).with_replication(2);
        let results = run_world(8, |world| {
            let rank = world.rank();
            let ctx = DistContext::with_spec(world.split(0, rank as u64, "w"), spec);
            let intra = ctx.replica_group().expect("c > 1 must build the replica group");
            let owners = ctx.feature_owner_group();
            (intra.size(), intra.rank(), owners.size(), owners.rank(), owners.label())
        });
        for (rank, &(isz, irk, osz, ork, olabel)) in results.iter().enumerate() {
            let z = rank / 2;
            assert_eq!((isz, osz), (2, 2));
            assert_eq!(irk, z % 2, "rank {} intra position", rank);
            assert_eq!(ork, z / 2, "rank {} cluster index", rank);
            assert_eq!(olabel, "zc");
        }
    }

    #[test]
    fn unreplicated_feature_owners_are_the_z_group() {
        let grid = GridConfig::new(2, 1, 2);
        run_world(4, |world| {
            let rank = world.rank();
            let ctx = DistContext::new(world.split(0, rank as u64, "w"), grid);
            assert_eq!(ctx.replication, 1);
            assert!(ctx.replica_group().is_none());
            assert_eq!(ctx.feature_owner_group().label(), "z");
            assert_eq!(ctx.feature_owner_group().size(), 2);
        });
    }

    #[test]
    fn sim_backend_builds_exact_axis_groups_at_scale() {
        // 16x8x8 = 1024 simulated ranks: the axis groups must have the
        // true grid sizes and ranks even though only one rank executes.
        let grid = GridConfig::new(16, 8, 8);
        let world = SimComm::world_rank(
            1024,
            grid.rank_of(GridCoords { x: 3, y: 5, z: 6 }),
            SimCostModel::new(25e9, 1e-6),
        );
        let ctx: SimDistContext = DistContext::new(world, grid);
        assert_eq!(ctx.group(Axis::X).size(), 16);
        assert_eq!(ctx.group(Axis::Y).size(), 8);
        assert_eq!(ctx.group(Axis::Z).size(), 8);
        assert_eq!(ctx.coords, GridCoords { x: 3, y: 5, z: 6 });
        assert_eq!(ctx.group(Axis::X).rank(), 3);
        assert_eq!(ctx.group(Axis::Y).rank(), 5);
        assert_eq!(ctx.group(Axis::Z).rank(), 6);
    }

    #[test]
    fn sim_backend_matrix_collectives_are_shape_faithful() {
        let grid = GridConfig::new(4, 2, 1);
        let ctx = DistContext::new(SimComm::world(8, SimCostModel::new(25e9, 1e-6)), grid);
        let m = Matrix::full(4, 3, 1.0);
        assert_eq!(ctx.all_gather_rows(&m, Axis::X).shape(), (16, 3));
        assert_eq!(ctx.all_gather_cols(&m, Axis::Y).shape(), (4, 6));
        assert_eq!(ctx.reduce_scatter_rows(&m, Axis::X).shape(), (1, 3));
        assert!(ctx.world.elapsed() > 0.0, "collectives must charge the clock");
    }
}
