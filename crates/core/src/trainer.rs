//! The distributed trainer: per-rank state, the epoch loop, and the
//! orchestration entry points — [`train_distributed`] executes for real on
//! the thread world, [`simulate_epochs`] runs the same per-rank program on
//! the cost-only [`SimComm`] backend at grid sizes no machine can run.

use crate::activation::{ActivationStore, Fetched, ResidencyPolicy};
use crate::checkpoint::{self, Checkpoint, CheckpointPolicy, ParamState, RankState};
use crate::dist::DistContext;
use crate::grid::{roles_for_layer, GridConfig, GridSpec};
use crate::layer::{Aggregation, CommOverlap, CommPlan, DistLayer, GemmTuning, TimeSplit};
use crate::loader::{fnv1a, LoaderError, LoaderResult, MemoryLedger, ShardStore};
use crate::loss::dist_masked_cross_entropy;
use crate::setup::{GlobalProblem, PermutationMode, ProblemMeta, RankData};
use plexus_comm::{run_world_faulted, CommEvent, Communicator, FaultPlan, ThreadComm};
use plexus_gnn::{Adam, AdamConfig};
use plexus_graph::{LoadedDataset, RowRequestPlan};
use plexus_simnet::{SimComm, SimCostModel};
use plexus_tensor::Matrix;
use std::fmt;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Engine options (model hyperparameters plus the §5 optimizations).
#[derive(Clone, Debug)]
pub struct DistTrainOptions {
    pub hidden_dim: usize,
    pub num_layers: usize,
    pub adam: AdamConfig,
    /// Model-weight seed; must equal the serial baseline's seed for the
    /// Fig. 7 equivalence checks.
    pub model_seed: u64,
    pub permutation: PermutationMode,
    pub perm_seed: u64,
    pub aggregation: Aggregation,
    pub tuning: GemmTuning,
    /// §5.2 comm/compute overlap via nonblocking collectives. Bitwise
    /// identical to `Blocking`; only the waiting moves.
    pub overlap: CommOverlap,
    /// How inter-layer activation caches are kept between forward and
    /// backward (resident / spilled under a byte budget / recomputed).
    /// All three settings are bitwise identical; only residency moves.
    pub residency: ResidencyPolicy,
    /// How the layer-0 feature gather moves rows: dense all-gather or the
    /// row-indexed sparse exchange driven by a cached [`RowRequestPlan`].
    /// Bitwise identical losses; only the bytes on the wire change.
    pub comm_plan: CommPlan,
    /// 1.5D-style replication factor `c` for the layer-0 features (must
    /// divide `Gz`): each rank stores its whole cluster's `c x` feature
    /// span so the epoch gather runs over `Gz / c` owners. `1` is the
    /// plain engine; `c > 1` reassociates the feature-gradient sum, so it
    /// matches to tolerance rather than bitwise.
    pub replication: usize,
    /// Periodic checkpointing and crash recovery. When set,
    /// [`train_from_source`] snapshots every rank's state at the policy's
    /// epoch cadence, catches a poisoned world at the world boundary,
    /// rebuilds it, and resumes from the last published checkpoint —
    /// bitwise-identically to an uninterrupted run. `None` (the default)
    /// runs the engine exactly as before: no snapshot I/O, no panic
    /// catching.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Deterministic fault injection for robustness tests: epoch/layer
    /// panics, collective aborts, and shard-read corruption, threaded
    /// through the loader, the communicator, and the layers. `None`
    /// disables every hook (a single branch each).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for DistTrainOptions {
    fn default() -> Self {
        Self {
            hidden_dim: 128,
            num_layers: 3,
            adam: AdamConfig::default(),
            model_seed: 0,
            permutation: PermutationMode::Double,
            perm_seed: 0x5eed,
            aggregation: Aggregation::Unblocked,
            tuning: GemmTuning::Reordered,
            overlap: CommOverlap::Overlapped,
            residency: ResidencyPolicy::Resident,
            comm_plan: CommPlan::Dense,
            replication: 1,
            checkpoint: None,
            faults: None,
        }
    }
}

impl DistTrainOptions {
    /// The [`GridSpec`] this configuration induces for `grid`.
    pub fn grid_spec(&self, grid: GridConfig) -> GridSpec {
        GridSpec::new(grid).with_replication(self.replication)
    }
}

/// Per-epoch results (identical on every rank by construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistEpochStats {
    pub loss: f64,
    pub train_accuracy: f64,
    pub timing: TimeSplit,
}

/// One rank's training state, generic over the communication backend (the
/// thread world by default; `RankTrainer<SimComm>` for cost-only runs).
pub struct RankTrainer<C: Communicator = ThreadComm> {
    ctx: DistContext<C>,
    layers: Vec<DistLayer>,
    /// Owns all inter-layer state between forward and backward, under the
    /// configured residency policy.
    acts: ActivationStore,
    /// Per-rank memory accounting: ingest I/O and residency from the load
    /// path plus activation counters synced after every epoch.
    ledger: MemoryLedger,
    w_stored: Vec<Matrix>,
    w_opts: Vec<Adam>,
    /// Stored feature rows: this rank's Z-shard, or — under replication —
    /// its whole cluster's span (gathered once at construction).
    f_stored: Matrix,
    f_opt: Adam,
    /// Cached once-per-epoch row-request sets for the sparse layer-0
    /// gather; `None` under [`CommPlan::Dense`]. The adjacency is static
    /// across epochs, so "recomputed each epoch" degenerates to
    /// construction time.
    row_plan: Option<RowRequestPlan>,
    labels_local: Vec<u32>,
    mask_local: Vec<bool>,
    num_classes_real: usize,
    total_train: usize,
    num_layers: usize,
}

impl<C: Communicator> RankTrainer<C> {
    /// Assemble this rank's trainer from the shared preprocessed problem.
    pub fn new(gp: &GlobalProblem, ctx: DistContext<C>, opts: &DistTrainOptions) -> Self {
        let rd = RankData::extract(gp, ctx.world.rank());
        Self::from_parts(&gp.meta, ctx, rd, opts)
    }

    /// Assemble this rank's trainer straight from a preprocessed
    /// [`ShardStore`], loading only the shard files this rank's windows
    /// intersect (the out-of-core ingest path). The load's I/O accounting
    /// seeds the trainer's [`MemoryLedger`] (see [`Self::ledger`]).
    pub fn from_store(
        store: &ShardStore,
        meta: &ProblemMeta,
        ctx: DistContext<C>,
        opts: &DistTrainOptions,
    ) -> LoaderResult<Self> {
        let (rd, ledger) =
            RankData::load_from_store(store, meta, ctx.world.rank(), opts.model_seed)?;
        let mut rt = Self::from_parts(meta, ctx, rd, opts);
        rt.ledger = ledger;
        Ok(rt)
    }

    pub fn from_parts(
        meta: &ProblemMeta,
        ctx: DistContext<C>,
        rd: RankData,
        opts: &DistTrainOptions,
    ) -> Self {
        let RankData { a_shards, a_shards_t, f_stored, w_stored, labels_local, mask_local } = rd;
        let layers: Vec<DistLayer> = a_shards
            .into_iter()
            .zip(a_shards_t)
            .enumerate()
            .map(|(l, (a, at))| {
                DistLayer::new(
                    l,
                    roles_for_layer(l),
                    a,
                    at,
                    opts.aggregation,
                    opts.tuning,
                    opts.overlap,
                )
            })
            .collect();
        let w_opts = w_stored.iter().map(|w| Adam::new(w.rows(), w.cols(), opts.adam)).collect();
        // Under replication every rank widens its stored features to the
        // cluster's span once, at construction: an all-gather across the
        // replica group (its ranks hold consecutive Z-shards of the span).
        // The optimizer is sized for the span; the replicas apply bitwise
        // identical updates every epoch, so they never diverge.
        let f_stored = match ctx.replica_group() {
            Some(replicas) => {
                let data = replicas.all_gather(f_stored.as_slice());
                Matrix::from_vec(f_stored.rows() * replicas.size(), f_stored.cols(), data)
            }
            None => f_stored,
        };
        let f_opt = Adam::new(f_stored.rows(), f_stored.cols(), opts.adam);
        let row_plan = match opts.comm_plan {
            CommPlan::Dense => None,
            CommPlan::SparseRows => Some(RowRequestPlan::from_column_support(
                &layers[0].a_shard,
                ctx.feature_owner_group().size(),
            )),
        };
        Self {
            ctx,
            layers,
            acts: ActivationStore::new(opts.residency),
            ledger: MemoryLedger::default(),
            w_stored,
            w_opts,
            f_stored,
            f_opt,
            row_plan,
            labels_local,
            mask_local,
            num_classes_real: meta.num_classes_real,
            total_train: meta.total_train,
            num_layers: meta.num_layers,
        }
    }

    /// One full-graph epoch: forward, loss, backward, Adam on the weight
    /// shards and the feature shard.
    ///
    /// All inter-layer state flows through the [`ActivationStore`]: each
    /// layer's forward cache (and, under `Recompute`, its consumed input)
    /// is handed over after the layer runs, and backward fetches it back —
    /// resident, reloaded from a checksummed spill file, or re-derived via
    /// [`DistLayer::rebuild_cache`]. Every policy is bitwise identical.
    ///
    /// Consumed activations and gradients are recycled into the layers'
    /// kernel workspaces, so after the first (warmup) epoch the whole
    /// loop performs no per-call heap allocations for kernel outputs
    /// (see [`Self::kernel_alloc_events`]).
    pub fn train_epoch(&mut self) -> DistEpochStats {
        let mut timing = TimeSplit::default();
        let rank = self.ctx.world.rank();

        // Layer-0 input: gather the stored trainable features (Algorithm 1
        // line 3) — dense all-gather across the feature owners, or the
        // row-indexed sparse exchange over the cached RowRequestPlan.
        let mut x = self.layers[0].gather_input(
            &self.ctx,
            &self.f_stored,
            self.row_plan.as_ref(),
            &mut timing,
        );

        // Forward through all layers; the activation store takes custody
        // of each cache and the consumed input under the residency policy.
        for l in 0..self.num_layers {
            let activated = l + 1 < self.num_layers;
            let (out, cache, t) =
                self.layers[l].forward(&self.ctx, &x, &self.w_stored[l], activated);
            timing.add(t);
            let input = std::mem::replace(&mut x, out);
            self.acts
                .insert(l, cache, input, self.layers[l].workspace_mut())
                .unwrap_or_else(|e| panic!("rank {}: activation spill failed: {}", rank, e));
        }

        // Distributed loss.
        let t1 = std::time::Instant::now();
        let roles_last = roles_for_layer(self.num_layers - 1);
        let loss_out = dist_masked_cross_entropy(
            &self.ctx,
            roles_last,
            &x,
            &self.labels_local,
            &self.mask_local,
            self.num_classes_real,
            self.total_train,
        );
        timing.comm_s += t1.elapsed().as_secs_f64();
        self.layers[self.num_layers - 1].recycle(x);

        // Backward through all layers (states fetched back in reverse).
        let mut carried = loss_out.dlogits_local;
        let mut df_stored: Option<Matrix> = None;
        for l in (0..self.num_layers).rev() {
            let df_scatter = l == 0;
            let dout = std::mem::replace(&mut carried, Matrix::zeros(0, 0));
            let fetched = self
                .acts
                .fetch(l)
                .unwrap_or_else(|e| panic!("rank {}: activation reload failed: {}", rank, e));
            let cache = match fetched {
                Fetched::Cache(cache) => cache,
                Fetched::Rebuild { input, activated } => {
                    let (cache, t) = self.layers[l].rebuild_cache(
                        &self.ctx,
                        &input,
                        &self.w_stored[l],
                        activated,
                    );
                    timing.add(t);
                    self.layers[l].recycle(input);
                    cache
                }
            };
            let (grads, t) = self.layers[l].backward(&self.ctx, cache, dout, df_scatter);
            timing.add(t);
            self.w_opts[l].step(&mut self.w_stored[l], &grads.dw_stored);
            self.layers[l].bump_weights_version();
            self.layers[l].recycle(grads.dw_stored);
            if l == 0 {
                df_stored = Some(grads.df);
            } else {
                carried = grads.df;
            }
        }
        let df_stored = df_stored.expect("layer 0 must produce a feature grad");
        self.f_opt.step(&mut self.f_stored, &df_stored);
        self.layers[0].recycle(df_stored);

        self.acts.assert_drained();
        self.ledger.sync_activation_stats(&self.acts.stats());

        DistEpochStats { loss: loss_out.loss, train_accuracy: loss_out.train_accuracy, timing }
    }

    /// Total allocator interactions across the layers' kernel workspaces
    /// and the activation store's reload pool. Stable across epochs once
    /// the first epoch has sized the pools.
    pub fn kernel_alloc_events(&self) -> u64 {
        self.layers.iter().map(|l| l.workspace_alloc_events()).sum::<u64>()
            + self.acts.alloc_events()
    }

    /// This rank's memory ledger: ingest I/O + residency counters, with
    /// activation stats synced after every epoch.
    pub fn ledger(&self) -> &MemoryLedger {
        &self.ledger
    }

    pub fn ledger_mut(&mut self) -> &mut MemoryLedger {
        &mut self.ledger
    }

    pub fn ctx(&self) -> &DistContext<C> {
        &self.ctx
    }

    /// Install the fault plan's spill-read hooks on the activation store
    /// (the shard-read hooks ride in via [`ShardStore::with_faults`], the
    /// layer/collective hooks via the context and the communicator).
    pub(crate) fn set_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.acts.set_faults(plan);
    }

    /// Snapshot everything that determines this rank's continuation: the
    /// stored weight/feature shards with their Adam moments, the epoch
    /// history, and the ledger counters.
    pub(crate) fn export_state(
        &self,
        config_fp: u64,
        epochs_done: usize,
        history: Vec<DistEpochStats>,
    ) -> RankState {
        let param = |value: &Matrix, opt: &Adam| {
            let (m, v, t) = opt.state();
            ParamState { value: value.clone(), m: m.clone(), v: v.clone(), t }
        };
        RankState {
            config_fp,
            epochs_done,
            history,
            layers: self.w_stored.iter().zip(&self.w_opts).map(|(w, o)| param(w, o)).collect(),
            features: param(&self.f_stored, &self.f_opt),
            ledger: self.ledger.clone(),
        }
    }

    /// Restore a state captured by [`export_state`](Self::export_state).
    /// Training continues bitwise-identically to the run that produced the
    /// snapshot. The ledger is replaced wholesale, so a recovery attempt's
    /// re-ingest I/O is not double-counted against the original run's.
    pub(crate) fn restore_state(&mut self, st: RankState) {
        assert_eq!(st.layers.len(), self.w_stored.len(), "checkpoint layer count mismatch");
        for (l, p) in st.layers.into_iter().enumerate() {
            assert_eq!(
                p.value.shape(),
                self.w_stored[l].shape(),
                "checkpoint weight shape mismatch at layer {}",
                l
            );
            self.w_stored[l] = p.value;
            self.w_opts[l].restore(p.m, p.v, p.t);
            // Restored weights invalidate any packed-B kernel caches.
            self.layers[l].bump_weights_version();
        }
        assert_eq!(
            st.features.value.shape(),
            self.f_stored.shape(),
            "checkpoint feature shape mismatch"
        );
        self.f_stored = st.features.value;
        self.f_opt.restore(st.features.m, st.features.v, st.features.t);
        self.ledger = st.ledger;
    }
}

/// Result of a distributed run: rank-0 epoch stats (all ranks agree
/// bitwise) plus each rank's collective-traffic ledger and memory ledger.
#[derive(Debug)]
pub struct DistRunResult {
    pub grid: GridConfig,
    pub epochs: Vec<DistEpochStats>,
    pub traffic: Vec<Vec<CommEvent>>,
    /// Per-rank ingest memory accounting. The in-memory path charges every
    /// rank the shared global problem plus its shards; the sharded path
    /// charges only what each rank loaded from the store.
    pub memory: Vec<MemoryLedger>,
    /// World rebuilds performed by checkpoint-based crash recovery. `0`
    /// for an uninterrupted run (and always `0` without a checkpoint
    /// policy, where a rank failure propagates as a panic instead).
    pub recoveries: usize,
}

impl DistRunResult {
    pub fn losses(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.loss).collect()
    }

    /// Worst per-rank peak resident adjacency bytes during ingest.
    pub fn peak_adjacency_bytes(&self) -> u64 {
        self.memory.iter().map(|m| m.peak_adjacency_bytes).max().unwrap_or(0)
    }

    /// Worst per-rank peak store-held activation bytes across the run.
    pub fn peak_activation_bytes(&self) -> u64 {
        self.memory.iter().map(|m| m.peak_activation_bytes).max().unwrap_or(0)
    }
}

/// Where the per-rank training data comes from — the switch between the
/// materialize-then-slice path and the §5.4 out-of-core path.
#[derive(Clone, Copy)]
pub enum ProblemSource<'a> {
    /// Build the [`GlobalProblem`] in RAM and let every rank slice it.
    InMemory(&'a LoadedDataset),
    /// Each rank opens the preprocessed store and loads/merges only the
    /// shard files its windows intersect. The store's baked-in permutation
    /// is used; `DistTrainOptions::permutation`/`perm_seed` are ignored.
    Sharded(&'a ShardStore),
}

/// Typed failure of a distributed training run.
#[derive(Debug)]
pub enum TrainError {
    /// A structural or ingest problem surfaced outside the rank threads:
    /// store validation, or a checkpoint that is corrupt/incompatible with
    /// this run's configuration.
    Loader(LoaderError),
    /// Checkpoint-based recovery exhausted its retry budget: the initial
    /// attempt and every retry died. `last_panic` is the final attempt's
    /// originating panic message.
    Unrecoverable { attempts: usize, last_panic: String },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Loader(e) => write!(f, "training ingest failed: {}", e),
            TrainError::Unrecoverable { attempts, last_panic } => write!(
                f,
                "training unrecoverable after {} attempt(s); last failure: {}",
                attempts, last_panic
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Loader(e) => Some(e),
            TrainError::Unrecoverable { .. } => None,
        }
    }
}

impl From<LoaderError> for TrainError {
    fn from(e: LoaderError) -> Self {
        TrainError::Loader(e)
    }
}

/// The ingest work that survives across recovery attempts: built once,
/// before the first world, so a retry re-fans rank threads without
/// re-preprocessing.
enum Prepared<'a> {
    InMemory { gp: Arc<GlobalProblem>, global_adj: u64, global_feat: u64 },
    Sharded { store: &'a ShardStore, meta: ProblemMeta },
}

/// Stable tag for the permutation configuration (including "raw store").
fn perm_tag(mode: Option<PermutationMode>) -> u64 {
    match mode {
        None => 0,
        Some(PermutationMode::None) => 1,
        Some(PermutationMode::Single) => 2,
        Some(PermutationMode::Double) => 3,
    }
}

/// Fingerprint of everything that pins a run's trajectory: grid shape,
/// replication, model hyperparameters, the weight/permutation seeds, and
/// the ingest source. Stored in every checkpoint rank file; resuming under
/// a different fingerprint is refused. This is also what makes seeds the
/// only "RNG state" a checkpoint needs — every random quantity in the
/// engine is derived from them.
fn config_fingerprint(
    grid: GridConfig,
    opts: &DistTrainOptions,
    perm_tag: u64,
    perm_seed: u64,
    source_fp: u64,
) -> u64 {
    let mut buf = Vec::with_capacity(14 * 8);
    for v in [
        grid.gx as u64,
        grid.gy as u64,
        grid.gz as u64,
        opts.replication as u64,
        opts.hidden_dim as u64,
        opts.num_layers as u64,
        opts.model_seed,
        perm_tag,
        perm_seed,
        source_fp,
        opts.adam.lr.to_bits() as u64,
        opts.adam.beta1.to_bits() as u64,
        opts.adam.beta2.to_bits() as u64,
        opts.adam.eps.to_bits() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(&buf)
}

/// Extract the originating panic message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolve the checkpoint to resume from, validating it against this
/// run's world size and config fingerprint before any rank thread starts.
fn preflight_resume(
    opts: &DistTrainOptions,
    grid: GridConfig,
    config_fp: u64,
) -> Result<Option<Arc<Checkpoint>>, TrainError> {
    let Some(policy) = &opts.checkpoint else { return Ok(None) };
    let Some(ck) = Checkpoint::latest(&policy.dir)? else { return Ok(None) };
    if ck.world_size() != grid.total() {
        return Err(LoaderError::BadManifest {
            reason: format!(
                "checkpoint {} was taken on a {}-rank world; this run needs {}",
                ck.dir().display(),
                ck.world_size(),
                grid.total()
            ),
        }
        .into());
    }
    // Probe one rank file: its fingerprint stands for all of them (every
    // rank writes the same fp), and corruption surfaces as a typed error
    // here rather than as a mid-world panic.
    let probe = ck.load_rank(0)?;
    if probe.config_fp != config_fp {
        return Err(LoaderError::BadManifest {
            reason: format!(
                "checkpoint {} fingerprint {:016x} does not match this run's {:016x} \
                 (different grid, hyperparameters, seeds, or ingest source)",
                ck.dir().display(),
                probe.config_fp,
                config_fp
            ),
        }
        .into());
    }
    Ok(Some(Arc::new(ck)))
}

/// Snapshot the run after `epochs_done` completed epochs. Collective:
/// every rank writes its own file atomically, the world gathers the
/// `(checksum, length)` entries, and rank 0 publishes the manifest and
/// repoints `latest.txt` — all behind tmp + rename, so a crash at any
/// point leaves the previous checkpoint intact.
fn save_checkpoint<C: Communicator>(
    policy: &CheckpointPolicy,
    config_fp: u64,
    rt: &RankTrainer<C>,
    rank: usize,
    world: usize,
    epochs_done: usize,
    history: &[DistEpochStats],
) -> LoaderResult<()> {
    let epoch_dir = policy.dir.join(checkpoint::epoch_dir_name(epochs_done));
    fs::create_dir_all(&epoch_dir)?;
    let state = rt.export_state(config_fp, epochs_done, history.to_vec());
    let entry = checkpoint::write_rank_state(&epoch_dir, rank, world, &state)?;
    // The gather doubles as a barrier: no rank reaches the manifest until
    // every rank's file is renamed into place.
    let entries = rt.ctx().world.all_gather(&[entry.0, entry.1]);
    if rank == 0 {
        let pairs: Vec<(u64, u64)> = entries.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        checkpoint::publish_manifest(&epoch_dir, epochs_done, &pairs)?;
        checkpoint::publish_latest(&policy.dir, &checkpoint::epoch_dir_name(epochs_done))?;
    }
    // Hold every rank until the manifest and pointer are published, so a
    // fault in the next epoch can only ever see a complete checkpoint.
    rt.ctx().world.barrier();
    Ok(())
}

/// Per-rank `(epoch stats, ledger)` pairs plus each rank's comm trace —
/// what one world attempt hands back to the recovery loop.
type AttemptOutput = (Vec<(Vec<DistEpochStats>, MemoryLedger)>, Vec<Vec<CommEvent>>);

/// One world attempt: fan out the rank threads, optionally resume from a
/// validated checkpoint, and run the epoch loop with the fault hooks and
/// the checkpoint cadence installed. Panics if any rank fails (the world
/// is poisoned); [`train_from_source`] decides whether that is caught.
fn run_attempt(
    prepared: &Prepared<'_>,
    grid: GridConfig,
    opts: &DistTrainOptions,
    epochs: usize,
    config_fp: u64,
    resume: Option<Arc<Checkpoint>>,
) -> AttemptOutput {
    run_world_faulted(grid.total(), opts.faults.clone(), |comm| {
        let rank = comm.rank();
        // Duplicate the world communicator so the context can own it.
        let world = comm.split(0, rank as u64, "world");
        let mut ctx = DistContext::with_spec(world, opts.grid_spec(grid));
        ctx.faults = opts.faults.clone();
        let mut rt = match prepared {
            Prepared::InMemory { gp, global_adj, global_feat } => {
                let rd = RankData::extract(gp, ctx.world.rank());
                let rank_adj: u64 =
                    rd.a_shards.iter().chain(&rd.a_shards_t).map(|a| a.mem_bytes()).sum();
                // Replication widens the stored span (and optimizer) c-fold.
                let rank_feat = rd.f_stored.mem_bytes() * opts.replication as u64;
                let mut rt = RankTrainer::from_parts(&gp.meta, ctx, rd, opts);
                // The Arc'd global problem stays resident on every rank for
                // the whole run — the 2·nnz footprint §5.4 attacks.
                rt.ledger_mut().note_adjacency_resident(global_adj + rank_adj);
                rt.ledger_mut().note_feature_resident(global_feat + rank_feat);
                rt
            }
            Prepared::Sharded { store, meta } => {
                // Content checksums are verified during the loads; a fault
                // plan rides in on a cloned store handle.
                match &opts.faults {
                    Some(plan) => {
                        RankTrainer::from_store(&store.with_faults(plan.clone()), meta, ctx, opts)
                    }
                    None => RankTrainer::from_store(store, meta, ctx, opts),
                }
                .unwrap_or_else(|e| panic!("rank {}: shard load failed: {}", rank, e))
            }
        };
        rt.set_faults(opts.faults.clone());
        let mut history: Vec<DistEpochStats> = Vec::new();
        let mut start = 0usize;
        if let Some(ck) = &resume {
            let mut st = ck
                .load_rank(rank)
                .unwrap_or_else(|e| panic!("rank {}: checkpoint load failed: {}", rank, e));
            start = st.epochs_done.min(epochs);
            history = std::mem::take(&mut st.history);
            history.truncate(start);
            rt.restore_state(st);
        }
        for e in start..epochs {
            // Fault-injection hook: a `RankPanic` armed for (rank, e)
            // fires at the top of the epoch.
            if let Some(plan) = &opts.faults {
                plan.epoch_tick(rank, e);
            }
            history.push(rt.train_epoch());
            if let Some(policy) = &opts.checkpoint {
                if (e + 1) % policy.every == 0 {
                    save_checkpoint(policy, config_fp, &rt, rank, grid.total(), e + 1, &history)
                        .unwrap_or_else(|err| {
                            panic!("rank {}: checkpoint write failed: {}", rank, err)
                        });
                }
            }
        }
        (history, rt.ledger().clone())
    })
}

/// Train `epochs` on a `grid.total()`-rank world from either ingest path.
/// With the same permutation options the two paths produce bitwise
/// identical losses; only the memory ledgers differ.
///
/// Structural store problems — a raw (labelless, single-parity) store, or
/// files missing/mis-sized against the manifest — surface as
/// [`TrainError::Loader`] before any rank thread starts, as do corrupt or
/// configuration-incompatible checkpoints.
///
/// **Without** `opts.checkpoint`: corruption discovered *during* the
/// per-rank window loads (checksum/version failures on an individual
/// shard) panics the failing rank, which poisons the world: ranks cannot
/// return early individually without deadlocking their peers' collectives.
/// The poison propagates out of this call as a panic, exactly as before.
///
/// **With** `opts.checkpoint`: the poisoned world is caught at this
/// boundary, the world is rebuilt, and the run resumes from the last
/// published checkpoint (or from scratch if none exists yet) — up to the
/// policy's `max_retries` times, after which the typed
/// [`TrainError::Unrecoverable`] carries the final panic message. A
/// recovered run is bitwise-identical to an uninterrupted one:
/// checkpoints capture the weights, both Adam states, the epoch counter
/// and history, and the ledger counters, while every random quantity is
/// seed-derived and pinned by the checkpoint's config fingerprint.
pub fn train_from_source(
    source: ProblemSource<'_>,
    grid: GridConfig,
    opts: &DistTrainOptions,
    epochs: usize,
) -> Result<DistRunResult, TrainError> {
    let prepared = match source {
        ProblemSource::InMemory(ds) => {
            let gp = Arc::new(GlobalProblem::build(
                ds,
                grid,
                opts.hidden_dim,
                opts.num_layers,
                opts.model_seed,
                opts.permutation,
                opts.perm_seed,
            ));
            let global_adj = gp.adjacency_footprint_bytes();
            let global_feat = gp.features_perm.mem_bytes();
            Prepared::InMemory { gp, global_adj, global_feat }
        }
        ProblemSource::Sharded(store) => {
            // Catch structural problems before fanning out rank threads.
            if store.parities < 2 || store.perm_mode.is_none() {
                return Err(LoaderError::Missing {
                    what: "preprocessed store (raw stores lack the odd parity and labels)",
                }
                .into());
            }
            store.validate_files()?;
            let meta = ProblemMeta::from_store(store, grid, opts.hidden_dim, opts.num_layers);
            Prepared::Sharded { store, meta }
        }
    };
    // The sharded fingerprint pins the *store's* permutation and source
    // (opts.permutation is ignored on that path), so a checkpoint can
    // never be resumed against a different store.
    let config_fp = match &prepared {
        Prepared::InMemory { .. } => {
            config_fingerprint(grid, opts, perm_tag(Some(opts.permutation)), opts.perm_seed, 0)
        }
        Prepared::Sharded { store, .. } => config_fingerprint(
            grid,
            opts,
            perm_tag(store.perm_mode),
            store.perm_seed,
            store.source_fp,
        ),
    };

    let attempts = 1 + opts.checkpoint.as_ref().map_or(0, |p| p.max_retries);
    let mut last_panic = String::new();
    for attempt in 0..attempts {
        let resume = preflight_resume(opts, grid, config_fp)?;
        let outcome = if opts.checkpoint.is_some() {
            // Only the checkpoint-enabled path catches rank panics;
            // without a policy a crash propagates exactly as it always
            // has (the `else` arm never unwinds into a catch).
            panic::catch_unwind(AssertUnwindSafe(|| {
                run_attempt(&prepared, grid, opts, epochs, config_fp, resume)
            }))
        } else {
            Ok(run_attempt(&prepared, grid, opts, epochs, config_fp, resume))
        };
        let (per_rank, traffic) = match outcome {
            Ok(r) => r,
            Err(payload) => {
                last_panic = panic_message(payload);
                continue;
            }
        };
        let (per_rank, memory): (Vec<Vec<DistEpochStats>>, Vec<MemoryLedger>) =
            per_rank.into_iter().unzip();
        // Every rank must report identical losses (deterministic
        // collectives).
        let reference: Vec<f64> = per_rank[0].iter().map(|e| e.loss).collect();
        for (rank, stats) in per_rank.iter().enumerate().skip(1) {
            for (e, (s, &r)) in stats.iter().zip(&reference).enumerate() {
                assert!(
                    (s.loss - r).abs() < 1e-12,
                    "rank {} epoch {} loss {} differs from rank 0's {}",
                    rank,
                    e,
                    s.loss,
                    r
                );
            }
        }
        return Ok(DistRunResult {
            grid,
            epochs: per_rank.into_iter().next().unwrap(),
            traffic,
            memory,
            recoveries: attempt,
        });
    }
    Err(TrainError::Unrecoverable { attempts, last_panic })
}

/// Resume an interrupted run: [`train_from_source`] with the additional
/// requirement that `opts.checkpoint` is set **and** a published
/// checkpoint already exists under its root — a missing checkpoint is a
/// typed error instead of a silent from-scratch restart. The continued
/// run is bitwise-identical to one that was never interrupted.
pub fn resume_from_checkpoint(
    source: ProblemSource<'_>,
    grid: GridConfig,
    opts: &DistTrainOptions,
    epochs: usize,
) -> Result<DistRunResult, TrainError> {
    let policy = opts.checkpoint.as_ref().ok_or(LoaderError::Missing {
        what: "checkpoint policy (set DistTrainOptions::checkpoint to resume)",
    })?;
    if Checkpoint::latest(&policy.dir)?.is_none() {
        return Err(LoaderError::Missing {
            what: "checkpoint (no published epoch under the checkpoint root)",
        }
        .into());
    }
    train_from_source(source, grid, opts, epochs)
}

/// Preprocess `ds` in RAM and train it for `epochs` on a
/// `grid.total()`-rank world. This is the main entry point of the engine;
/// [`train_from_source`] is the generalization that can also stream from a
/// [`ShardStore`].
pub fn train_distributed(
    ds: &LoadedDataset,
    grid: GridConfig,
    opts: &DistTrainOptions,
    epochs: usize,
) -> DistRunResult {
    train_from_source(ProblemSource::InMemory(ds), grid, opts, epochs)
        .expect("in-memory ingest cannot fail")
}

/// Result of a cost-only simulated run (see [`simulate_epochs`]).
pub struct SimRunReport {
    pub grid: GridConfig,
    /// Wall-clock stats of the simulated rank's local compute. Loss and
    /// accuracy values are **not meaningful** under SimComm's mirror
    /// semantics; the shapes and the schedule are.
    pub epochs: Vec<DistEpochStats>,
    /// Simulated communication seconds charged by the §4 ring equations.
    pub sim_comm_s: f64,
    /// The simulated rank's collective-traffic events.
    pub traffic: Vec<CommEvent>,
}

/// Run `epochs` of the per-rank training program on the cost-only
/// [`SimComm`] backend: one representative rank (rank 0) executes with its
/// true shard shapes while every collective charges the §4 ring-cost
/// equations at `cost`'s bandwidths. This makes grids far beyond one
/// machine — `GridConfig::new(16, 8, 8)`, 1024 "GPUs" — runnable as
/// perf-model studies in milliseconds.
///
/// The returned losses are not meaningful (peers don't execute; see the
/// `plexus_simnet::simcomm` docs); `sim_comm_s` and `traffic` are the
/// outputs that matter.
pub fn simulate_epochs(
    ds: &LoadedDataset,
    grid: GridConfig,
    opts: &DistTrainOptions,
    epochs: usize,
    cost: SimCostModel,
) -> SimRunReport {
    let gp = GlobalProblem::build(
        ds,
        grid,
        opts.hidden_dim,
        opts.num_layers,
        opts.model_seed,
        opts.permutation,
        opts.perm_seed,
    );
    let world = SimComm::world(grid.total(), cost);
    let clock = world.clock();
    let ctx = DistContext::with_spec(world, opts.grid_spec(grid));
    let mut rt = RankTrainer::new(&gp, ctx, opts);
    let stats: Vec<DistEpochStats> = (0..epochs).map(|_| rt.train_epoch()).collect();
    let traffic = rt.ctx().world.ledger().snapshot();
    SimRunReport { grid, epochs: stats, sim_comm_s: clock.elapsed(), traffic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_comm::CollOp;
    use plexus_gnn::{SerialTrainer, TrainConfig};
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_ds(nodes: usize, seed: u64) -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes,
            edges: nodes * 8,
            nonzeros: nodes * 17,
            features: 12,
            classes: 6,
        };
        LoadedDataset::generate(spec, nodes, Some(12), seed)
    }

    fn serial_losses(ds: &LoadedDataset, hidden: usize, epochs: usize, seed: u64) -> Vec<f64> {
        let cfg = TrainConfig { hidden_dim: hidden, num_layers: 3, seed, ..Default::default() };
        let mut t = SerialTrainer::new(ds, &cfg);
        t.train(epochs).iter().map(|s| s.loss).collect()
    }

    fn assert_losses_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len());
        for (e, (x, y)) in a.iter().zip(b).enumerate() {
            let denom = x.abs().max(y.abs()).max(1e-9);
            assert!(
                ((x - y) / denom).abs() < tol,
                "{}: epoch {} loss {} vs {} (rel {:.2e})",
                what,
                e,
                x,
                y,
                ((x - y) / denom).abs()
            );
        }
    }

    #[test]
    fn single_rank_grid_matches_serial_exactly() {
        let ds = tiny_ds(96, 5);
        let serial = serial_losses(&ds, 8, 4, 7);
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 7,
            permutation: PermutationMode::None,
            ..Default::default()
        };
        let dist = train_distributed(&ds, GridConfig::new(1, 1, 1), &opts, 4);
        assert_losses_close(&dist.losses(), &serial, 1e-6, "1x1x1 vs serial");
    }

    #[test]
    fn full_3d_grid_matches_serial() {
        // The Fig. 7 check: a 2x2x2 grid with double permutation must
        // produce the serial loss trajectory (up to f32 reassociation).
        let ds = tiny_ds(128, 9);
        let serial = serial_losses(&ds, 8, 5, 3);
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 3,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let dist = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, 5);
        assert_losses_close(&dist.losses(), &serial, 5e-3, "2x2x2 vs serial");
    }

    #[test]
    fn anisotropic_grids_match_serial() {
        let ds = tiny_ds(96, 11);
        let serial = serial_losses(&ds, 8, 3, 1);
        for (gx, gy, gz) in [(4, 1, 1), (1, 4, 1), (1, 1, 4), (2, 2, 1), (1, 2, 2)] {
            let opts = DistTrainOptions {
                hidden_dim: 8,
                model_seed: 1,
                permutation: PermutationMode::Double,
                ..Default::default()
            };
            let dist = train_distributed(&ds, GridConfig::new(gx, gy, gz), &opts, 3);
            assert_losses_close(
                &dist.losses(),
                &serial,
                5e-3,
                &format!("{}x{}x{} vs serial", gx, gy, gz),
            );
        }
    }

    #[test]
    fn blocked_aggregation_is_bitwise_identical() {
        let ds = tiny_ds(96, 13);
        let base = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let unblocked = train_distributed(&ds, GridConfig::new(2, 1, 2), &base, 3);
        let blocked_opts =
            DistTrainOptions { aggregation: Aggregation::Blocked(4), ..base.clone() };
        let blocked = train_distributed(&ds, GridConfig::new(2, 1, 2), &blocked_opts, 3);
        for (a, b) in unblocked.losses().iter().zip(blocked.losses()) {
            assert_eq!(*a, b, "blocked aggregation changed the result");
        }
    }

    #[test]
    fn gemm_tuning_is_bitwise_identical() {
        let ds = tiny_ds(96, 17);
        let base = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Single,
            tuning: GemmTuning::Default,
            ..Default::default()
        };
        let plain = train_distributed(&ds, GridConfig::new(2, 2, 1), &base, 3);
        let tuned_opts = DistTrainOptions { tuning: GemmTuning::Reordered, ..base.clone() };
        let tuned = train_distributed(&ds, GridConfig::new(2, 2, 1), &tuned_opts, 3);
        for (a, b) in plain.losses().iter().zip(tuned.losses()) {
            // Reordered GEMM reassociates nothing: the inner loop order is
            // identical, so results must match bitwise.
            assert_eq!(*a, b, "GEMM tuning changed the result");
        }
    }

    #[test]
    fn overlapped_collectives_are_bitwise_identical() {
        // The §5.2 overlap moves waiting, not data: Blocking and
        // Overlapped must agree bitwise, with and without blocked
        // aggregation.
        let ds = tiny_ds(96, 29);
        for aggregation in [Aggregation::Unblocked, Aggregation::Blocked(4)] {
            let base = DistTrainOptions {
                hidden_dim: 8,
                model_seed: 5,
                permutation: PermutationMode::Double,
                aggregation,
                overlap: CommOverlap::Blocking,
                ..Default::default()
            };
            let blocking = train_distributed(&ds, GridConfig::new(2, 2, 2), &base, 3);
            let overlapped_opts =
                DistTrainOptions { overlap: CommOverlap::Overlapped, ..base.clone() };
            let overlapped = train_distributed(&ds, GridConfig::new(2, 2, 2), &overlapped_opts, 3);
            for (a, b) in blocking.losses().iter().zip(overlapped.losses()) {
                assert_eq!(*a, b, "overlap changed the result under {:?}", aggregation);
            }
        }
    }

    #[test]
    fn residency_policies_are_bitwise_identical() {
        // The activation-residency contract: Resident, Spill and
        // Recompute produce the same losses bit for bit — across
        // aggregation and overlap modes — while the ledger proves the
        // policies actually moved or dropped state.
        use crate::activation::ResidencyPolicy;
        let ds = tiny_ds(96, 53);
        for (aggregation, overlap) in [
            (Aggregation::Unblocked, CommOverlap::Blocking),
            (Aggregation::Unblocked, CommOverlap::Overlapped),
            (Aggregation::Blocked(3), CommOverlap::Overlapped),
        ] {
            let base = DistTrainOptions {
                hidden_dim: 8,
                model_seed: 5,
                permutation: PermutationMode::Double,
                aggregation,
                overlap,
                ..Default::default()
            };
            let grid = GridConfig::new(2, 1, 2);
            let resident = train_distributed(&ds, grid, &base, 3);
            let baseline_peak = resident.peak_activation_bytes();
            assert!(baseline_peak > 0, "resident runs must account activation bytes");

            let budget = baseline_peak / 2;
            let spill_opts = DistTrainOptions {
                residency: ResidencyPolicy::Spill { budget_bytes: budget },
                ..base.clone()
            };
            let spill = train_distributed(&ds, grid, &spill_opts, 3);
            assert_eq!(
                resident.losses(),
                spill.losses(),
                "spill diverged under {:?}/{:?}",
                aggregation,
                overlap
            );
            for (rank, m) in spill.memory.iter().enumerate() {
                assert!(m.activation_spill_events > 0, "rank {} never spilled", rank);
                assert_eq!(m.activation_spilled_bytes, m.activation_reloaded_bytes);
                assert!(
                    m.peak_activation_bytes <= budget,
                    "rank {} peak {} above budget {}",
                    rank,
                    m.peak_activation_bytes,
                    budget
                );
            }

            let recompute_opts =
                DistTrainOptions { residency: ResidencyPolicy::Recompute, ..base.clone() };
            let recompute = train_distributed(&ds, grid, &recompute_opts, 3);
            assert_eq!(
                resident.losses(),
                recompute.losses(),
                "recompute diverged under {:?}/{:?}",
                aggregation,
                overlap
            );
            for (rank, m) in recompute.memory.iter().enumerate() {
                assert!(m.activation_recompute_events > 0, "rank {} never recomputed", rank);
            }
            assert!(
                recompute.peak_activation_bytes() < baseline_peak,
                "recompute peak {} not below resident baseline {}",
                recompute.peak_activation_bytes(),
                baseline_peak
            );
        }
    }

    #[test]
    fn sparse_comm_plan_is_bitwise_identical() {
        // The sparse gather ships only the column support; rows outside it
        // are zero-filled and never read, so the loss trajectory must
        // match the dense plan bit for bit.
        let ds = tiny_ds(96, 59);
        let base = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let grid = GridConfig::new(2, 1, 2);
        let dense = train_distributed(&ds, grid, &base, 3);
        let sparse_opts = DistTrainOptions { comm_plan: CommPlan::SparseRows, ..base.clone() };
        let sparse = train_distributed(&ds, grid, &sparse_opts, 3);
        assert_eq!(dense.losses(), sparse.losses(), "sparse gather changed the result");
        // The ledger must show the plan actually ran: sparse-gather events
        // replace the layer-0 dense all-gathers.
        let ops: Vec<_> = sparse.traffic[0].iter().map(|e| format!("{:?}", e.op)).collect();
        assert!(ops.iter().any(|o| o == "AllGatherRows"), "no sparse gather recorded: {:?}", ops);
    }

    #[test]
    fn replicated_features_match_serial() {
        // The 1.5D knob: c = 2 on a Gz = 4 grid stores each cluster's span
        // twice and gathers over 2 owners instead of 4. The feature-grad
        // sum completes in two stages (a different association), so the
        // comparison is to-tolerance like the other grid-vs-serial checks.
        let ds = tiny_ds(96, 61);
        let serial = serial_losses(&ds, 8, 3, 1);
        for comm_plan in [CommPlan::Dense, CommPlan::SparseRows] {
            let opts = DistTrainOptions {
                hidden_dim: 8,
                model_seed: 1,
                permutation: PermutationMode::Double,
                replication: 2,
                comm_plan,
                ..Default::default()
            };
            let dist = train_distributed(&ds, GridConfig::new(2, 1, 4), &opts, 3);
            assert_losses_close(
                &dist.losses(),
                &serial,
                5e-3,
                &format!("2x1x4 c=2 {:?} vs serial", comm_plan),
            );
        }
    }

    #[test]
    fn replicated_sparse_and_dense_plans_agree_bitwise() {
        // Sparse vs dense is a pure transport change at any fixed
        // replication factor: same contributions, same order.
        let ds = tiny_ds(96, 67);
        let base = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Double,
            replication: 2,
            ..Default::default()
        };
        let grid = GridConfig::new(1, 2, 4);
        let dense = train_distributed(&ds, grid, &base, 3);
        let sparse_opts = DistTrainOptions { comm_plan: CommPlan::SparseRows, ..base.clone() };
        let sparse = train_distributed(&ds, grid, &sparse_opts, 3);
        assert_eq!(dense.losses(), sparse.losses(), "plans diverged under replication");
    }

    #[test]
    fn simulated_512_rank_grid_runs_fast() {
        // The cost-only backend's headline: an 8x8x8 grid (512 simulated
        // GPUs) runs the full per-rank epoch program in one thread. The
        // test budget itself enforces "under a few seconds".
        let ds = tiny_ds(256, 31);
        let opts = DistTrainOptions { hidden_dim: 8, ..Default::default() };
        let report =
            simulate_epochs(&ds, GridConfig::new(8, 8, 8), &opts, 1, SimCostModel::new(25e9, 1e-6));
        assert!(report.sim_comm_s > 0.0, "ring equations must charge time");
        let groups: std::collections::HashSet<&str> =
            report.traffic.iter().map(|e| e.group).collect();
        assert!(groups.contains("x") && groups.contains("y") && groups.contains("z"));
        // Every recorded group size must be a grid axis (8) or the world.
        for e in &report.traffic {
            assert!(e.group_size == 8 || e.group_size == 512, "unexpected group {:?}", e);
        }
    }

    #[test]
    fn simulated_sparse_gather_beats_dense_at_scale() {
        // The ISSUE acceptance bar for the sparse collectives: on a
        // low-degree RMAT input the 512- and 1024-rank studies must charge
        // strictly fewer per-epoch feature-gather bytes under SparseRows
        // than Dense, with both sides read back from the traffic ledger.
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "rmat-lowdeg",
            nodes: 4096,
            edges: 4096 * 4, // degree 4 → RMAT edge factor 2
            nonzeros: 4096 * 9,
            features: 16,
            classes: 6,
        };
        let ds = LoadedDataset::generate(spec, 4096, Some(16), 11);
        let epochs = 2;
        for grid in [GridConfig::new(8, 8, 8), GridConfig::new(16, 8, 8)] {
            let run = |plan: CommPlan| {
                let opts =
                    DistTrainOptions { hidden_dim: 16, comm_plan: plan, ..Default::default() };
                simulate_epochs(&ds, grid, &opts, epochs, SimCostModel::new(25e9, 1e-6))
            };
            let dense = run(CommPlan::Dense);
            let sparse = run(CommPlan::SparseRows);
            // The runs differ only in the layer-0 feature gather, so the
            // dense-AllGather byte difference on the Z group isolates it.
            let z_allgather = |r: &SimRunReport| -> usize {
                r.traffic
                    .iter()
                    .filter(|e| e.op == CollOp::AllGather && e.group == "z")
                    .map(|e| e.bytes)
                    .sum()
            };
            let dense_feature = z_allgather(&dense) - z_allgather(&sparse);
            let sparse_events: Vec<_> =
                sparse.traffic.iter().filter(|e| e.op == CollOp::AllGatherRows).collect();
            assert_eq!(
                sparse_events.len(),
                epochs,
                "{}: one sparse gather per epoch",
                grid.label()
            );
            let sparse_feature: usize = sparse_events.iter().map(|e| e.bytes).sum();
            assert!(
                sparse_feature > 0 && sparse_feature < dense_feature,
                "{}: sparse feature-gather bytes {} not below dense {}",
                grid.label(),
                sparse_feature,
                dense_feature
            );
        }
    }

    #[test]
    fn traffic_ledger_reflects_3d_collectives() {
        let ds = tiny_ds(96, 19);
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let res = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, 1);
        assert_eq!(res.traffic.len(), 8);
        let groups: std::collections::HashSet<&str> =
            res.traffic[0].iter().map(|e| e.group).collect();
        assert!(groups.contains("x") && groups.contains("y") && groups.contains("z"));
    }

    #[test]
    fn sharded_source_matches_in_memory_bitwise() {
        // The out-of-core acceptance bar: training from a preprocessed
        // store reproduces the in-memory loss trajectory bit for bit,
        // while each rank's peak resident adjacency stays within a small
        // factor of the simnet analytic estimate.
        let ds = tiny_ds(128, 37);
        let dir = std::env::temp_dir().join(format!("plexus_src_equiv_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 5,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let store =
            crate::loader::preprocess_to_store(&ds, &dir, opts.permutation, opts.perm_seed, 4, 4)
                .unwrap();
        let grid = GridConfig::new(2, 2, 2);
        let in_mem = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 4).unwrap();
        let sharded = train_from_source(ProblemSource::Sharded(&store), grid, &opts, 4).unwrap();
        for (e, (a, b)) in in_mem.losses().iter().zip(sharded.losses()).enumerate() {
            assert_eq!(*a, b, "epoch {} loss differs between ingest paths", e);
        }
        // Sharded ranks never hold the 2·nnz global copies.
        assert!(
            sharded.peak_adjacency_bytes() < in_mem.peak_adjacency_bytes(),
            "sharded peak {} not below in-memory peak {}",
            sharded.peak_adjacency_bytes(),
            in_mem.peak_adjacency_bytes()
        );
        for ledger in &sharded.memory {
            assert!(ledger.bytes_read > 0);
        }
        // Cross-check against the analytic gpumem estimate.
        let meta = ProblemMeta::from_store(&store, grid, opts.hidden_dim, opts.num_layers);
        let estimate = plexus_simnet::estimate_rank_adjacency_bytes(
            ds.adjacency.nnz(),
            meta.n_pad,
            &meta.layer_splits(),
        );
        for (rank, ledger) in sharded.memory.iter().enumerate() {
            assert!(
                ledger.peak_adjacency_bytes < 4 * estimate
                    && 4 * ledger.peak_adjacency_bytes > estimate,
                "rank {} ledger peak {} far from estimate {}",
                rank,
                ledger.peak_adjacency_bytes,
                estimate
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_store_as_sharded_source_is_a_typed_error() {
        // A raw ShardStore (single parity, no labels) is structurally
        // unusable for training; the error must surface as Err before any
        // rank thread starts, not as a mid-world panic.
        let ds = tiny_ds(96, 41);
        let dir = std::env::temp_dir().join(format!("plexus_raw_src_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            crate::loader::ShardStore::create(&dir, &ds.adjacency, &ds.features, 2, 2).unwrap();
        let opts = DistTrainOptions { hidden_dim: 8, ..Default::default() };
        let res =
            train_from_source(ProblemSource::Sharded(&store), GridConfig::new(1, 1, 1), &opts, 1);
        assert!(matches!(res, Err(TrainError::Loader(crate::loader::LoaderError::Missing { .. }))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kernel_allocations_stop_after_warmup() {
        // The workspace acceptance bar: after the warmup epochs have sized
        // every pool, forward+backward must perform zero heap allocations
        // for kernel outputs — across aggregation, overlap AND residency
        // modes (spill reloads draw from the store's pool; recompute
        // rebuilds draw from the layers' pools).
        use crate::activation::ResidencyPolicy;
        use plexus_comm::run_world;
        let ds = tiny_ds(96, 47);
        for (aggregation, overlap, residency) in [
            (Aggregation::Unblocked, CommOverlap::Blocking, ResidencyPolicy::Resident),
            (Aggregation::Unblocked, CommOverlap::Overlapped, ResidencyPolicy::Resident),
            (Aggregation::Blocked(3), CommOverlap::Overlapped, ResidencyPolicy::Resident),
            (
                Aggregation::Unblocked,
                CommOverlap::Overlapped,
                ResidencyPolicy::Spill { budget_bytes: 0 },
            ),
            (Aggregation::Blocked(3), CommOverlap::Overlapped, ResidencyPolicy::Recompute),
        ] {
            let opts = DistTrainOptions {
                hidden_dim: 8,
                model_seed: 5,
                permutation: PermutationMode::Double,
                aggregation,
                overlap,
                residency,
                ..Default::default()
            };
            let grid = GridConfig::new(2, 1, 2);
            let gp = GlobalProblem::build(
                &ds,
                grid,
                opts.hidden_dim,
                opts.num_layers,
                opts.model_seed,
                opts.permutation,
                opts.perm_seed,
            );
            let results = run_world(grid.total(), |comm| {
                let world = comm.split(0, comm.rank() as u64, "world");
                let ctx = DistContext::new(world, grid);
                let mut rt = RankTrainer::new(&gp, ctx, &opts);
                for _ in 0..2 {
                    rt.train_epoch();
                }
                let warmed = rt.kernel_alloc_events();
                for _ in 0..3 {
                    rt.train_epoch();
                }
                (warmed, rt.kernel_alloc_events())
            });
            for (rank, (warmed, after)) in results.iter().enumerate() {
                assert_eq!(
                    warmed, after,
                    "rank {} allocated after warmup under {:?}/{:?}/{:?}",
                    rank, aggregation, overlap, residency
                );
            }
        }
    }

    #[test]
    fn loss_decreases_under_3d_training() {
        let ds = tiny_ds(128, 23);
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: 2,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let res = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, 30);
        let l = res.losses();
        assert!(l.last().unwrap() < &(l[0] * 0.8), "3D training did not converge: {:?}", l);
    }
}
