//! Problem preprocessing: padding, the §5.1 permutation schemes, and
//! per-rank shard extraction.
//!
//! All preprocessing is deterministic and happens once per (dataset, grid)
//! pair; every rank then extracts its own shards — mirroring the paper's
//! offline preprocessing plus the parallel loader's per-rank reads.

use crate::grid::{roles_for_layer, GridConfig};
use plexus_gnn::{Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::permute::{apply_permutation, inverse_permutation, random_permutation};
use plexus_sparse::Csr;
use plexus_tensor::Matrix;

/// Which §5.1 scheme to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermutationMode {
    /// Original node order (the "Original" row of Table 3).
    None,
    /// One shared permutation applied to rows and columns (`P A Pᵀ`).
    Single,
    /// Distinct row/column permutations (`P_r A P_cᵀ` / `P_c A P_rᵀ`),
    /// alternating every layer — the paper's contribution.
    Double,
}

/// Round `n` up to a multiple of `m`.
pub fn pad_to_multiple(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// The fully preprocessed problem, shared read-only across rank threads.
pub struct GlobalProblem {
    pub grid: GridConfig,
    pub num_layers: usize,
    /// Real node count and padded node count (multiple of Gx·Gy·Gz).
    pub n_real: usize,
    pub n_pad: usize,
    /// Per-boundary feature dims, real and padded: `dims[0]` is the input
    /// dim, `dims[L]` the class count.
    pub dims_real: Vec<usize>,
    pub dims_pad: Vec<usize>,
    /// Adjacency used by even layers (`P_r Â P_cᵀ`, zero-padded).
    pub a_even: Csr,
    /// Adjacency used by odd layers (`P_c Â P_rᵀ`, zero-padded).
    pub a_odd: Csr,
    /// Input features in even-layer input order (`P_c` applied), padded.
    pub features_perm: Matrix,
    /// Labels/mask in the *final layer output* order, padded (padding rows
    /// masked out).
    pub labels_final: Vec<u32>,
    pub train_mask_final: Vec<bool>,
    /// Full (padded) weight matrices, identical to the serial model's
    /// weights up to zero padding.
    pub weights_full: Vec<Matrix>,
    pub num_classes_real: usize,
    pub total_train: usize,
}

impl GlobalProblem {
    /// Preprocess `ds` for `grid`. `model_seed` must match the serial
    /// baseline's seed for bit-compatible initialization; `perm_seed` seeds
    /// the permutations.
    pub fn build(
        ds: &LoadedDataset,
        grid: GridConfig,
        hidden_dim: usize,
        num_layers: usize,
        model_seed: u64,
        mode: PermutationMode,
        perm_seed: u64,
    ) -> Self {
        let n_real = ds.num_nodes();
        let n_pad = pad_to_multiple(n_real, lcm3(grid));

        // Permutations over the real nodes; padding rows stay at the end.
        let (pr, pc) = match mode {
            PermutationMode::None => {
                let id: Vec<u32> = (0..n_real as u32).collect();
                (id.clone(), id)
            }
            PermutationMode::Single => {
                let p = random_permutation(n_real, perm_seed);
                (p.clone(), p)
            }
            PermutationMode::Double => (
                random_permutation(n_real, perm_seed),
                random_permutation(n_real, perm_seed.wrapping_add(0x9e3779b97f4a7c15)),
            ),
        };

        // Â with both §5.1 permutation variants, padded.
        let a_even = apply_permutation(&ds.adjacency, &pr, &pc).zero_padded(n_pad, n_pad);
        let a_odd = apply_permutation(&ds.adjacency, &pc, &pr).zero_padded(n_pad, n_pad);

        // Model dims, real and padded.
        let cfg = GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim,
            num_classes: ds.num_classes,
            num_layers,
            seed: model_seed,
        };
        let mut dims_real = vec![cfg.input_dim];
        for (_, dout) in cfg.layer_dims() {
            dims_real.push(dout);
        }
        let pad_unit = lcm3(grid);
        let dims_pad: Vec<usize> =
            dims_real.iter().map(|&d| pad_to_multiple(d, pad_unit)).collect();

        // Weights: identical to the serial model, zero-padded.
        let model = Gcn::new(cfg);
        let weights_full: Vec<Matrix> = model
            .weights
            .iter()
            .enumerate()
            .map(|(l, w)| w.zero_padded(dims_pad[l], dims_pad[l + 1]))
            .collect();

        // Input features: row-permute by P_c (even-layer input order), pad.
        let inv_pc = inverse_permutation(&pc);
        let perm_rows: Vec<usize> = inv_pc.iter().map(|&i| i as usize).collect();
        let features_perm = ds.features.gather_rows(&perm_rows).zero_padded(n_pad, dims_pad[0]);

        // Labels/mask in the final-layer output order.
        let final_perm = if (num_layers - 1).is_multiple_of(2) { &pr } else { &pc };
        let mut labels_final = vec![0u32; n_pad];
        let mut train_mask_final = vec![false; n_pad];
        for i in 0..n_real {
            let dst = final_perm[i] as usize;
            labels_final[dst] = ds.labels[i];
            train_mask_final[dst] = ds.split.train[i];
        }
        let total_train = train_mask_final.iter().filter(|&&b| b).count();
        assert!(total_train > 0, "GlobalProblem: no training nodes");

        Self {
            grid,
            num_layers,
            n_real,
            n_pad,
            dims_real,
            dims_pad,
            a_even,
            a_odd,
            features_perm,
            labels_final,
            train_mask_final,
            weights_full,
            num_classes_real: ds.num_classes,
            total_train,
        }
    }
}

/// Padding unit: every axis split and every two-axis sub-split must be
/// integral, which `Gx·Gy·Gz` guarantees.
fn lcm3(grid: GridConfig) -> usize {
    grid.gx * grid.gy * grid.gz
}

/// The shards one rank owns.
pub struct RankData {
    /// Per-layer adjacency shard and its transpose (for eq. 2.7).
    pub a_shards: Vec<Csr>,
    pub a_shards_t: Vec<Csr>,
    /// Stored input-feature shard (rows over C₀ then sub-sharded over R₀,
    /// cols over K₀).
    pub f_stored: Matrix,
    /// Per-layer stored weight shard (rows over K_l sub-sharded over R_l,
    /// cols over C_l).
    pub w_stored: Vec<Matrix>,
    /// This rank's slice of labels/mask (rows of the final logits block).
    pub labels_local: Vec<u32>,
    pub mask_local: Vec<bool>,
}

impl RankData {
    /// Extract everything rank `rank` owns from the global problem.
    pub fn extract(gp: &GlobalProblem, rank: usize) -> Self {
        let grid = gp.grid;
        let c = grid.coords(rank);
        let np = gp.n_pad;

        let mut a_shards = Vec::with_capacity(gp.num_layers);
        let mut a_shards_t = Vec::with_capacity(gp.num_layers);
        for l in 0..gp.num_layers {
            let roles = roles_for_layer(l);
            let a_global = if l % 2 == 0 { &gp.a_even } else { &gp.a_odd };
            let rdim = grid.dim(roles.rows);
            let cdim = grid.dim(roles.contract);
            let r0 = c.along(roles.rows) * (np / rdim);
            let c0 = c.along(roles.contract) * (np / cdim);
            let shard = a_global.block(r0, r0 + np / rdim, c0, c0 + np / cdim);
            a_shards_t.push(shard.transposed());
            a_shards.push(shard);
        }

        // F₀ stored shard.
        let roles0 = roles_for_layer(0);
        let d0 = gp.dims_pad[0];
        let crows = np / grid.dim(roles0.contract);
        let subrows = crows / grid.dim(roles0.rows);
        let fr0 = c.along(roles0.contract) * crows + c.along(roles0.rows) * subrows;
        let fcols = d0 / grid.dim(roles0.feat);
        let fc0 = c.along(roles0.feat) * fcols;
        let f_stored = gp.features_perm.block(fr0, fr0 + subrows, fc0, fc0 + fcols);

        // W_l stored shards.
        let mut w_stored = Vec::with_capacity(gp.num_layers);
        for l in 0..gp.num_layers {
            let roles = roles_for_layer(l);
            let din = gp.dims_pad[l];
            let dout = gp.dims_pad[l + 1];
            let krows = din / grid.dim(roles.feat);
            let sub = krows / grid.dim(roles.rows);
            let wr0 = c.along(roles.feat) * krows + c.along(roles.rows) * sub;
            let wcols = dout / grid.dim(roles.contract);
            let wc0 = c.along(roles.contract) * wcols;
            w_stored.push(gp.weights_full[l].block(wr0, wr0 + sub, wc0, wc0 + wcols));
        }

        // Labels/mask slice: final logits rows are split over the last
        // layer's rows axis.
        let roles_last = roles_for_layer(gp.num_layers - 1);
        let lrows = np / grid.dim(roles_last.rows);
        let l0 = c.along(roles_last.rows) * lrows;
        let labels_local = gp.labels_final[l0..l0 + lrows].to_vec();
        let mask_local = gp.train_mask_final[l0..l0 + lrows].to_vec();

        Self { a_shards, a_shards_t, f_stored, w_stored, labels_local, mask_local }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};
    use plexus_sparse::shard::split_range;

    fn tiny_ds() -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes: 100,
            edges: 600,
            nonzeros: 1300,
            features: 10,
            classes: 5,
        };
        LoadedDataset::generate(spec, 128, Some(10), 3)
    }

    #[test]
    fn padding_is_minimal_multiple() {
        assert_eq!(pad_to_multiple(100, 8), 104);
        assert_eq!(pad_to_multiple(104, 8), 104);
        assert_eq!(pad_to_multiple(1, 8), 8);
    }

    #[test]
    fn build_pads_everything_consistently() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 2);
        let gp = GlobalProblem::build(&ds, grid, 16, 3, 7, PermutationMode::Double, 11);
        assert_eq!(gp.n_pad % 8, 0);
        assert_eq!(gp.a_even.shape(), (gp.n_pad, gp.n_pad));
        assert_eq!(gp.a_odd.shape(), (gp.n_pad, gp.n_pad));
        assert_eq!(gp.features_perm.shape(), (gp.n_pad, gp.dims_pad[0]));
        assert_eq!(gp.dims_pad.len(), 4);
        for d in &gp.dims_pad {
            assert_eq!(d % 8, 0);
        }
        // nnz preserved by permutation + padding.
        assert_eq!(gp.a_even.nnz(), ds.adjacency.nnz());
        assert_eq!(gp.a_odd.nnz(), ds.adjacency.nnz());
    }

    #[test]
    fn identity_mode_keeps_adjacency() {
        let ds = tiny_ds();
        let grid = GridConfig::new(1, 1, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::None, 1);
        assert_eq!(gp.a_even, ds.adjacency.zero_padded(gp.n_pad, gp.n_pad));
        assert_eq!(gp.a_odd, gp.a_even);
    }

    #[test]
    fn odd_adjacency_is_transpose_of_even_for_symmetric_graphs() {
        // Â is symmetric, so P_c Â P_rᵀ = (P_r Â P_cᵀ)ᵀ.
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 1, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::Double, 5);
        assert_eq!(gp.a_odd, gp.a_even.transposed());
    }

    #[test]
    fn rank_shards_tile_the_matrices() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 2);
        let gp = GlobalProblem::build(&ds, grid, 16, 3, 7, PermutationMode::Double, 11);
        // Sum of shard nnz over the (rows x contract) plane == total nnz;
        // shards are replicated over the feat axis, so count each (R, C)
        // block once.
        for l in 0..3 {
            let roles = roles_for_layer(l);
            let mut total = 0usize;
            let mut seen = std::collections::HashSet::new();
            for rank in 0..grid.total() {
                let c = grid.coords(rank);
                let key = (c.along(roles.rows), c.along(roles.contract));
                if seen.insert(key) {
                    let rd = RankData::extract(&gp, rank);
                    total += rd.a_shards[l].nnz();
                    assert_eq!(rd.a_shards[l].nnz(), rd.a_shards_t[l].nnz());
                }
            }
            assert_eq!(total, gp.a_even.nnz(), "layer {} shards don't tile", l);
        }
    }

    #[test]
    fn label_slices_cover_all_training_nodes() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::Double, 11);
        let roles_last = roles_for_layer(2);
        let mut covered = 0usize;
        let mut seen = std::collections::HashSet::new();
        for rank in 0..grid.total() {
            let c = grid.coords(rank);
            if seen.insert(c.along(roles_last.rows)) {
                let rd = RankData::extract(&gp, rank);
                covered += rd.mask_local.iter().filter(|&&b| b).count();
            }
        }
        assert_eq!(covered, gp.total_train);
        assert_eq!(gp.total_train, ds.split.num_train());
    }

    #[test]
    fn split_range_consistency_with_padding() {
        // The shard layout assumes exact division after padding; verify
        // via split_range equivalence.
        let np = 24;
        for parts in [2usize, 3, 4] {
            if np % parts != 0 {
                continue;
            }
            for i in 0..parts {
                let (s, e) = split_range(np, parts, i);
                assert_eq!(s, i * np / parts);
                assert_eq!(e, (i + 1) * np / parts);
            }
        }
    }
}
