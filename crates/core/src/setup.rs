//! Problem preprocessing: padding, the §5.1 permutation schemes, and
//! per-rank shard extraction — from RAM or from a §5.4 [`ShardStore`].
//!
//! All preprocessing is deterministic and happens once per (dataset, grid)
//! pair. The in-memory path materializes a [`GlobalProblem`] and every
//! rank slices it; the out-of-core path opens a preprocessed store and
//! each rank loads/merges only the shard files its window intersects
//! ([`RankData::load_from_store`]), with a [`MemoryLedger`] recording the
//! resulting footprint. Both paths produce bitwise-identical [`RankData`].

use crate::grid::{roles_for_layer, GridConfig, GridCoords};
use crate::loader::{LoaderError, LoaderResult, MemoryLedger, Parity, ShardStore};
use plexus_gnn::{Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::permute::{apply_permutation, inverse_permutation, random_permutation};
use plexus_sparse::Csr;
use plexus_tensor::Matrix;
use rayon::prelude::*;

/// Which §5.1 scheme to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermutationMode {
    /// Original node order (the "Original" row of Table 3).
    None,
    /// One shared permutation applied to rows and columns (`P A Pᵀ`).
    Single,
    /// Distinct row/column permutations (`P_r A P_cᵀ` / `P_c A P_rᵀ`),
    /// alternating every layer — the paper's contribution.
    Double,
}

/// The §5.1 row/column permutations for `mode` over `n` real nodes. Both
/// the in-memory builder and the offline store writer derive them from
/// here, which is what makes the two ingest paths bitwise comparable.
pub fn build_permutations(mode: PermutationMode, perm_seed: u64, n: usize) -> (Vec<u32>, Vec<u32>) {
    match mode {
        PermutationMode::None => {
            let id: Vec<u32> = (0..n as u32).collect();
            (id.clone(), id)
        }
        PermutationMode::Single => {
            let p = random_permutation(n, perm_seed);
            (p.clone(), p)
        }
        PermutationMode::Double => (
            random_permutation(n, perm_seed),
            random_permutation(n, perm_seed.wrapping_add(0x9e3779b97f4a7c15)),
        ),
    }
}

/// Round `n` up to a multiple of `m`.
pub fn pad_to_multiple(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Shape-and-size metadata shared by every ingest path: everything a rank
/// needs to know about the problem that is *not* bulk data.
#[derive(Clone, Debug)]
pub struct ProblemMeta {
    pub grid: GridConfig,
    pub num_layers: usize,
    pub hidden_dim: usize,
    /// Real node count and padded node count (multiple of Gx·Gy·Gz).
    pub n_real: usize,
    pub n_pad: usize,
    /// Per-boundary feature dims, real and padded: `dims[0]` is the input
    /// dim, `dims[L]` the class count.
    pub dims_real: Vec<usize>,
    pub dims_pad: Vec<usize>,
    pub num_classes_real: usize,
    pub total_train: usize,
}

impl ProblemMeta {
    /// Derive all padded shapes from the raw problem dimensions.
    pub fn derive(
        n_real: usize,
        input_dim: usize,
        num_classes: usize,
        total_train: usize,
        grid: GridConfig,
        hidden_dim: usize,
        num_layers: usize,
    ) -> Self {
        let n_pad = pad_to_multiple(n_real, lcm3(grid));
        let cfg = GcnConfig { input_dim, hidden_dim, num_classes, num_layers, seed: 0 };
        let mut dims_real = vec![cfg.input_dim];
        for (_, dout) in cfg.layer_dims() {
            dims_real.push(dout);
        }
        let pad_unit = lcm3(grid);
        let dims_pad: Vec<usize> =
            dims_real.iter().map(|&d| pad_to_multiple(d, pad_unit)).collect();
        Self {
            grid,
            num_layers,
            hidden_dim,
            n_real,
            n_pad,
            dims_real,
            dims_pad,
            num_classes_real: num_classes,
            total_train,
        }
    }

    /// Metadata for training out of a preprocessed store.
    pub fn from_store(
        store: &ShardStore,
        grid: GridConfig,
        hidden_dim: usize,
        num_layers: usize,
    ) -> Self {
        Self::derive(
            store.rows,
            store.feat_dim,
            store.num_classes,
            store.total_train,
            grid,
            hidden_dim,
            num_layers,
        )
    }

    /// Per-layer `(rows-axis size, contract-axis size)` of the adjacency
    /// shard grid — the splits behind the §5.4 per-rank memory estimate.
    pub fn layer_splits(&self) -> Vec<(usize, usize)> {
        (0..self.num_layers)
            .map(|l| {
                let roles = roles_for_layer(l);
                (self.grid.dim(roles.rows), self.grid.dim(roles.contract))
            })
            .collect()
    }

    /// Per-layer `(rows, contract, feat)` axis sizes — the full role
    /// assignment behind the per-rank *activation* estimate
    /// ([`plexus_simnet::estimate_rank_activation_bytes`]).
    pub fn layer_axis_splits(&self) -> Vec<(usize, usize, usize)> {
        (0..self.num_layers)
            .map(|l| {
                let roles = roles_for_layer(l);
                (
                    self.grid.dim(roles.rows),
                    self.grid.dim(roles.contract),
                    self.grid.dim(roles.feat),
                )
            })
            .collect()
    }

    /// The model's full padded weight matrices, identical to the serial
    /// model's weights (seed `model_seed`) up to zero padding.
    pub fn full_padded_weights(&self, model_seed: u64) -> Vec<Matrix> {
        let cfg = GcnConfig {
            input_dim: self.dims_real[0],
            hidden_dim: self.hidden_dim,
            num_classes: self.num_classes_real,
            num_layers: self.num_layers,
            seed: model_seed,
        };
        Gcn::new(cfg)
            .weights
            .iter()
            .enumerate()
            .map(|(l, w)| w.zero_padded(self.dims_pad[l], self.dims_pad[l + 1]))
            .collect()
    }
}

/// The fully preprocessed problem, shared read-only across rank threads
/// (the in-memory ingest path).
pub struct GlobalProblem {
    pub meta: ProblemMeta,
    /// Adjacency used by even layers (`P_r Â P_cᵀ`, zero-padded).
    pub a_even: Csr,
    /// Adjacency used by odd layers (`P_c Â P_rᵀ`, zero-padded).
    pub a_odd: Csr,
    /// Input features in even-layer input order (`P_c` applied), padded.
    pub features_perm: Matrix,
    /// Labels/mask in the *final layer output* order, padded (padding rows
    /// masked out).
    pub labels_final: Vec<u32>,
    pub train_mask_final: Vec<bool>,
    /// Full (padded) weight matrices, identical to the serial model's
    /// weights up to zero padding.
    pub weights_full: Vec<Matrix>,
}

impl GlobalProblem {
    /// Preprocess `ds` for `grid`. `model_seed` must match the serial
    /// baseline's seed for bit-compatible initialization; `perm_seed` seeds
    /// the permutations.
    pub fn build(
        ds: &LoadedDataset,
        grid: GridConfig,
        hidden_dim: usize,
        num_layers: usize,
        model_seed: u64,
        mode: PermutationMode,
        perm_seed: u64,
    ) -> Self {
        let n_real = ds.num_nodes();
        let total_train = ds.split.num_train();
        let meta = ProblemMeta::derive(
            n_real,
            ds.feature_dim(),
            ds.num_classes,
            total_train,
            grid,
            hidden_dim,
            num_layers,
        );
        let n_pad = meta.n_pad;

        // Permutations over the real nodes; padding rows stay at the end.
        let (pr, pc) = build_permutations(mode, perm_seed, n_real);

        // Â with both §5.1 permutation variants, padded.
        let a_even = apply_permutation(&ds.adjacency, &pr, &pc).zero_padded(n_pad, n_pad);
        let a_odd = apply_permutation(&ds.adjacency, &pc, &pr).zero_padded(n_pad, n_pad);

        // Weights: identical to the serial model, zero-padded.
        let weights_full = meta.full_padded_weights(model_seed);

        // Input features: row-permute by P_c (even-layer input order), pad.
        let inv_pc = inverse_permutation(&pc);
        let perm_rows: Vec<usize> = inv_pc.iter().map(|&i| i as usize).collect();
        let features_perm =
            ds.features.gather_rows(&perm_rows).zero_padded(n_pad, meta.dims_pad[0]);

        // Labels/mask in the final-layer output order.
        let final_perm = if (num_layers - 1).is_multiple_of(2) { &pr } else { &pc };
        let mut labels_final = vec![0u32; n_pad];
        let mut train_mask_final = vec![false; n_pad];
        for i in 0..n_real {
            let dst = final_perm[i] as usize;
            labels_final[dst] = ds.labels[i];
            train_mask_final[dst] = ds.split.train[i];
        }
        assert!(total_train > 0, "GlobalProblem: no training nodes");

        Self { meta, a_even, a_odd, features_perm, labels_final, train_mask_final, weights_full }
    }

    /// Bytes of the two resident global adjacency copies — the `2·nnz`
    /// footprint the out-of-core path is measured against.
    pub fn adjacency_footprint_bytes(&self) -> u64 {
        self.a_even.mem_bytes() + self.a_odd.mem_bytes()
    }
}

/// Padding unit: every axis split and every two-axis sub-split must be
/// integral, which `Gx·Gy·Gz` guarantees.
fn lcm3(grid: GridConfig) -> usize {
    grid.gx * grid.gy * grid.gz
}

/// The adjacency window (padded coordinates) rank `c` owns at layer `l`.
fn layer_window(meta: &ProblemMeta, c: GridCoords, l: usize) -> (usize, usize, usize, usize) {
    let roles = roles_for_layer(l);
    let grid = meta.grid;
    let np = meta.n_pad;
    let wr = np / grid.dim(roles.rows);
    let wc = np / grid.dim(roles.contract);
    let r0 = c.along(roles.rows) * wr;
    let c0 = c.along(roles.contract) * wc;
    (r0, wr, c0, wc)
}

/// The stored-feature block (padded coordinates) rank `c` owns.
fn feature_window(meta: &ProblemMeta, c: GridCoords) -> (usize, usize, usize, usize) {
    let roles0 = roles_for_layer(0);
    let grid = meta.grid;
    let crows = meta.n_pad / grid.dim(roles0.contract);
    let subrows = crows / grid.dim(roles0.rows);
    let fr0 = c.along(roles0.contract) * crows + c.along(roles0.rows) * subrows;
    let fcols = meta.dims_pad[0] / grid.dim(roles0.feat);
    let fc0 = c.along(roles0.feat) * fcols;
    (fr0, subrows, fc0, fcols)
}

/// The final-logits label rows rank `c` owns.
fn label_window(meta: &ProblemMeta, c: GridCoords) -> (usize, usize) {
    let roles_last = roles_for_layer(meta.num_layers - 1);
    let lrows = meta.n_pad / meta.grid.dim(roles_last.rows);
    (c.along(roles_last.rows) * lrows, lrows)
}

/// Slice rank `c`'s stored weight shards out of the full padded matrices.
fn weight_shards(meta: &ProblemMeta, weights_full: &[Matrix], c: GridCoords) -> Vec<Matrix> {
    let grid = meta.grid;
    (0..meta.num_layers)
        .map(|l| {
            let roles = roles_for_layer(l);
            let din = meta.dims_pad[l];
            let dout = meta.dims_pad[l + 1];
            let krows = din / grid.dim(roles.feat);
            let sub = krows / grid.dim(roles.rows);
            let wr0 = c.along(roles.feat) * krows + c.along(roles.rows) * sub;
            let wcols = dout / grid.dim(roles.contract);
            let wc0 = c.along(roles.contract) * wcols;
            weights_full[l].block(wr0, wr0 + sub, wc0, wc0 + wcols)
        })
        .collect()
}

/// The shards one rank owns.
pub struct RankData {
    /// Per-layer adjacency shard and its transpose (for eq. 2.7).
    pub a_shards: Vec<Csr>,
    pub a_shards_t: Vec<Csr>,
    /// Stored input-feature shard (rows over C₀ then sub-sharded over R₀,
    /// cols over K₀).
    pub f_stored: Matrix,
    /// Per-layer stored weight shard (rows over K_l sub-sharded over R_l,
    /// cols over C_l).
    pub w_stored: Vec<Matrix>,
    /// This rank's slice of labels/mask (rows of the final logits block).
    pub labels_local: Vec<u32>,
    pub mask_local: Vec<bool>,
}

impl RankData {
    /// Extract everything rank `rank` owns from the global problem.
    pub fn extract(gp: &GlobalProblem, rank: usize) -> Self {
        let meta = &gp.meta;
        let c = meta.grid.coords(rank);

        let mut a_shards = Vec::with_capacity(meta.num_layers);
        let mut a_shards_t = Vec::with_capacity(meta.num_layers);
        for l in 0..meta.num_layers {
            let a_global = if l % 2 == 0 { &gp.a_even } else { &gp.a_odd };
            let (r0, wr, c0, wc) = layer_window(meta, c, l);
            let shard = a_global.block(r0, r0 + wr, c0, c0 + wc);
            a_shards_t.push(shard.transposed());
            a_shards.push(shard);
        }

        // F₀ stored shard.
        let (fr0, subrows, fc0, fcols) = feature_window(meta, c);
        let f_stored = gp.features_perm.block(fr0, fr0 + subrows, fc0, fc0 + fcols);

        // W_l stored shards.
        let w_stored = weight_shards(meta, &gp.weights_full, c);

        // Labels/mask slice: final logits rows are split over the last
        // layer's rows axis.
        let (l0, lrows) = label_window(meta, c);
        let labels_local = gp.labels_final[l0..l0 + lrows].to_vec();
        let mask_local = gp.train_mask_final[l0..l0 + lrows].to_vec();

        Self { a_shards, a_shards_t, f_stored, w_stored, labels_local, mask_local }
    }

    /// Load everything rank `rank` owns straight from a preprocessed
    /// [`ShardStore`], merging only the shard files its windows intersect
    /// (the §5.4 parallel loader). Layer windows are loaded in parallel
    /// on the persistent worker pool (a per-layer task costs a deque push,
    /// not a thread spawn). Returns the rank data — bitwise identical to
    /// [`RankData::extract`] on the equivalent [`GlobalProblem`] — plus a
    /// [`MemoryLedger`] of the bytes touched and resident.
    pub fn load_from_store(
        store: &ShardStore,
        meta: &ProblemMeta,
        rank: usize,
        model_seed: u64,
    ) -> LoaderResult<(Self, MemoryLedger)> {
        let c = meta.grid.coords(rank);
        let n = meta.n_real;
        let mut ledger = MemoryLedger::default();

        // Adjacency windows, one per layer, extracted in parallel.
        type LayerLoad = LoaderResult<(Csr, Csr, crate::loader::LoadStats)>;
        let mut slots: Vec<Option<LayerLoad>> = (0..meta.num_layers).map(|_| None).collect();
        slots.as_mut_slice().par_chunks_mut(1).enumerate().for_each(|(l, slot)| {
            slot[0] = Some(load_layer_shard(store, meta, c, l));
        });
        let mut a_shards = Vec::with_capacity(meta.num_layers);
        let mut a_shards_t = Vec::with_capacity(meta.num_layers);
        for slot in slots {
            let (shard, shard_t, stats) = slot.expect("parallel load filled every slot")?;
            // Conservative sequential accounting: the transient spike of
            // this load is charged on top of all previously resident
            // layers (parallel loads can only hit this bound, not beat it
            // upward, because each spike is counted against full residency).
            ledger.absorb(&stats);
            ledger.note_adjacency_transient(stats.peak_transient_bytes);
            ledger.note_adjacency_resident(shard.mem_bytes() + shard_t.mem_bytes());
            a_shards.push(shard);
            a_shards_t.push(shard_t);
        }

        // F₀ stored shard: clamp the padded window to stored (real) rows
        // and columns, then zero-pad back to the padded shape.
        let (fr0, subrows, fc0, fcols) = feature_window(meta, c);
        let d0 = meta.dims_real[0];
        let (band, fstats) = if fr0 < n {
            store.load_feature_rows(fr0, (fr0 + subrows).min(n))?
        } else {
            (Matrix::zeros(0, d0), crate::loader::LoadStats::default())
        };
        ledger.absorb(&fstats);
        ledger.note_feature_transient(fstats.peak_transient_bytes.max(band.mem_bytes()));
        let f_stored = if fc0 < d0 {
            band.block(0, band.rows(), fc0, (fc0 + fcols).min(d0)).zero_padded(subrows, fcols)
        } else {
            Matrix::zeros(subrows, fcols)
        };
        ledger.note_feature_resident(f_stored.mem_bytes());

        // Weights are generated, not loaded: same seed, same bits.
        let weights_full = meta.full_padded_weights(model_seed);
        let w_stored = weight_shards(meta, &weights_full, c);

        // Labels/mask in the final layer's output order, sliced + padded.
        let (labels_all, mask_all, lstats) =
            store.load_labels(Parity::for_layer(meta.num_layers - 1))?;
        if labels_all.len() != n {
            return Err(LoaderError::BadManifest {
                reason: format!("label file has {} rows, store has {}", labels_all.len(), n),
            });
        }
        ledger.absorb(&lstats);
        let (l0, lrows) = label_window(meta, c);
        let mut labels_local = vec![0u32; lrows];
        let mut mask_local = vec![false; lrows];
        let real = (l0 + lrows).min(n).saturating_sub(l0);
        labels_local[..real].copy_from_slice(&labels_all[l0..l0 + real]);
        mask_local[..real].copy_from_slice(&mask_all[l0..l0 + real]);

        Ok((Self { a_shards, a_shards_t, f_stored, w_stored, labels_local, mask_local }, ledger))
    }
}

/// Load one layer's adjacency shard (and transpose) from the store,
/// clamping the padded window to stored coordinates and padding back.
fn load_layer_shard(
    store: &ShardStore,
    meta: &ProblemMeta,
    c: GridCoords,
    l: usize,
) -> LoaderResult<(Csr, Csr, crate::loader::LoadStats)> {
    let n = meta.n_real;
    let (r0, wr, c0, wc) = layer_window(meta, c, l);
    let (raw, stats) = if r0 < n && c0 < n {
        store.load_adjacency_window_parity(
            Parity::for_layer(l),
            r0,
            (r0 + wr).min(n),
            c0,
            (c0 + wc).min(n),
        )?
    } else {
        (Csr::empty(0, 0), crate::loader::LoadStats::default())
    };
    let shard = raw.zero_padded(wr, wc);
    let shard_t = shard.transposed();
    Ok((shard, shard_t, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::preprocess_to_store;
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};
    use plexus_sparse::shard::split_range;

    fn tiny_ds() -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes: 100,
            edges: 600,
            nonzeros: 1300,
            features: 10,
            classes: 5,
        };
        LoadedDataset::generate(spec, 128, Some(10), 3)
    }

    #[test]
    fn padding_is_minimal_multiple() {
        assert_eq!(pad_to_multiple(100, 8), 104);
        assert_eq!(pad_to_multiple(104, 8), 104);
        assert_eq!(pad_to_multiple(1, 8), 8);
    }

    #[test]
    fn build_pads_everything_consistently() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 2);
        let gp = GlobalProblem::build(&ds, grid, 16, 3, 7, PermutationMode::Double, 11);
        assert_eq!(gp.meta.n_pad % 8, 0);
        assert_eq!(gp.a_even.shape(), (gp.meta.n_pad, gp.meta.n_pad));
        assert_eq!(gp.a_odd.shape(), (gp.meta.n_pad, gp.meta.n_pad));
        assert_eq!(gp.features_perm.shape(), (gp.meta.n_pad, gp.meta.dims_pad[0]));
        assert_eq!(gp.meta.dims_pad.len(), 4);
        for d in &gp.meta.dims_pad {
            assert_eq!(d % 8, 0);
        }
        // nnz preserved by permutation + padding.
        assert_eq!(gp.a_even.nnz(), ds.adjacency.nnz());
        assert_eq!(gp.a_odd.nnz(), ds.adjacency.nnz());
    }

    #[test]
    fn identity_mode_keeps_adjacency() {
        let ds = tiny_ds();
        let grid = GridConfig::new(1, 1, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::None, 1);
        assert_eq!(gp.a_even, ds.adjacency.zero_padded(gp.meta.n_pad, gp.meta.n_pad));
        assert_eq!(gp.a_odd, gp.a_even);
    }

    #[test]
    fn odd_adjacency_is_transpose_of_even_for_symmetric_graphs() {
        // Â is symmetric, so P_c Â P_rᵀ = (P_r Â P_cᵀ)ᵀ.
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 1, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::Double, 5);
        assert_eq!(gp.a_odd, gp.a_even.transposed());
    }

    #[test]
    fn rank_shards_tile_the_matrices() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 2);
        let gp = GlobalProblem::build(&ds, grid, 16, 3, 7, PermutationMode::Double, 11);
        // Sum of shard nnz over the (rows x contract) plane == total nnz;
        // shards are replicated over the feat axis, so count each (R, C)
        // block once.
        for l in 0..3 {
            let roles = roles_for_layer(l);
            let mut total = 0usize;
            let mut seen = std::collections::HashSet::new();
            for rank in 0..grid.total() {
                let c = grid.coords(rank);
                let key = (c.along(roles.rows), c.along(roles.contract));
                if seen.insert(key) {
                    let rd = RankData::extract(&gp, rank);
                    total += rd.a_shards[l].nnz();
                    assert_eq!(rd.a_shards[l].nnz(), rd.a_shards_t[l].nnz());
                }
            }
            assert_eq!(total, gp.a_even.nnz(), "layer {} shards don't tile", l);
        }
    }

    #[test]
    fn label_slices_cover_all_training_nodes() {
        let ds = tiny_ds();
        let grid = GridConfig::new(2, 2, 1);
        let gp = GlobalProblem::build(&ds, grid, 8, 3, 7, PermutationMode::Double, 11);
        let roles_last = roles_for_layer(2);
        let mut covered = 0usize;
        let mut seen = std::collections::HashSet::new();
        for rank in 0..grid.total() {
            let c = grid.coords(rank);
            if seen.insert(c.along(roles_last.rows)) {
                let rd = RankData::extract(&gp, rank);
                covered += rd.mask_local.iter().filter(|&&b| b).count();
            }
        }
        assert_eq!(covered, gp.meta.total_train);
        assert_eq!(gp.meta.total_train, ds.split.num_train());
    }

    #[test]
    fn split_range_consistency_with_padding() {
        // The shard layout assumes exact division after padding; verify
        // via split_range equivalence.
        let np = 24;
        for parts in [2usize, 3, 4] {
            if np % parts != 0 {
                continue;
            }
            for i in 0..parts {
                let (s, e) = split_range(np, parts, i);
                assert_eq!(s, i * np / parts);
                assert_eq!(e, (i + 1) * np / parts);
            }
        }
    }

    #[test]
    fn store_loaded_rank_data_is_bitwise_identical_to_extracted() {
        let ds = tiny_ds();
        let dir = std::env::temp_dir().join(format!("plexus_setup_equiv_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = preprocess_to_store(&ds, &dir, PermutationMode::Double, 11, 4, 4).unwrap();
        for grid in [GridConfig::new(2, 2, 2), GridConfig::new(4, 1, 1), GridConfig::new(1, 2, 2)] {
            let gp = GlobalProblem::build(&ds, grid, 16, 3, 7, PermutationMode::Double, 11);
            let meta = ProblemMeta::from_store(&store, grid, 16, 3);
            assert_eq!(meta.n_pad, gp.meta.n_pad);
            assert_eq!(meta.dims_pad, gp.meta.dims_pad);
            for rank in 0..grid.total() {
                let a = RankData::extract(&gp, rank);
                let (b, ledger) = RankData::load_from_store(&store, &meta, rank, 7).unwrap();
                assert_eq!(a.a_shards, b.a_shards, "rank {} shards", rank);
                assert_eq!(a.a_shards_t, b.a_shards_t, "rank {} transposes", rank);
                assert_eq!(a.f_stored, b.f_stored, "rank {} features", rank);
                assert_eq!(a.w_stored, b.w_stored, "rank {} weights", rank);
                assert_eq!(a.labels_local, b.labels_local, "rank {} labels", rank);
                assert_eq!(a.mask_local, b.mask_local, "rank {} mask", rank);
                assert!(ledger.bytes_read > 0);
                assert!(
                    ledger.peak_adjacency_bytes >= ledger.adjacency_resident_bytes,
                    "peak below resident"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_load_skips_most_files_on_big_grids() {
        let ds = tiny_ds();
        let dir = std::env::temp_dir().join(format!("plexus_setup_skip_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = preprocess_to_store(&ds, &dir, PermutationMode::Double, 3, 8, 8).unwrap();
        let grid = GridConfig::new(2, 2, 2);
        let meta = ProblemMeta::from_store(&store, grid, 8, 3);
        let (_, ledger) = RankData::load_from_store(&store, &meta, 0, 1).unwrap();
        assert!(
            ledger.files_skipped > ledger.files_read,
            "a 1/4-area window should skip more files than it reads ({} read, {} skipped)",
            ledger.files_read,
            ledger.files_skipped
        );
        assert!(ledger.bytes_skipped > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
