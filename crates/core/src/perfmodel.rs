//! The §4 performance model: computation (eq. 4.4), communication
//! (eqs. 4.5/4.6) and the unified epoch-time predictor that selects the 3D
//! configuration (Fig. 5).

use crate::grid::{roles_for_layer, Axis, GridConfig};
use plexus_simnet::{all_gather_time, all_reduce_time, reduce_scatter_time, MachineSpec};

/// The analytic description of a training problem: enough to predict epoch
/// time at any scale without materializing the graph (billion-edge specs
/// plug straight in from Table 4).
#[derive(Clone, Debug)]
pub struct Workload {
    pub nodes: f64,
    pub nonzeros: f64,
    /// Layer boundary dims `[D0, D1, ..., DL]` (D0 = input features,
    /// DL = classes).
    pub dims: Vec<usize>,
}

impl Workload {
    pub fn new(
        nodes: usize,
        nonzeros: usize,
        input_dim: usize,
        hidden: usize,
        classes: usize,
        layers: usize,
    ) -> Self {
        assert!(layers >= 1, "Workload: need at least one layer");
        let mut dims = vec![input_dim];
        for l in 0..layers {
            dims.push(if l + 1 == layers { classes } else { hidden });
        }
        Self { nodes: nodes as f64, nonzeros: nonzeros as f64, dims }
    }

    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }
}

/// Per-epoch predicted time, split the way Fig. 9 splits it.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochPrediction {
    pub comp_s: f64,
    pub comm_s: f64,
}

impl EpochPrediction {
    pub fn total(&self) -> f64 {
        self.comp_s + self.comm_s
    }
}

/// Eq. 4.4's three regression features for the whole network under `grid`:
/// `[Σ√flops, Σ√flops·fwd_penalty, Σ√flops·bwd_penalty]` summed across
/// layers. The §4.1 bench fits a [`plexus_simnet::LinearModel`] over these
/// against measured SpMM times.
pub fn comp_cost_features(w: &Workload, grid: GridConfig) -> [f64; 3] {
    let mut f = [0.0f64; 3];
    for l in 0..w.num_layers() {
        let roles = roles_for_layer(l);
        let d_in = w.dims[l] as f64;
        let g_c = grid.dim(roles.contract) as f64; // splits A's common dim
        let g_k = grid.dim(roles.feat) as f64; // splits F's columns
        let g_r = grid.dim(roles.rows) as f64;
        let flops_cost = w.nonzeros * d_in;
        let sqrt_flops = flops_cost.sqrt();
        // fwd_penalty = (N / G_contract) / (D / G_feat): the forward SpMM's
        // common dimension over its dense width — §4.1's N/Gx · Gy/D_L0
        // with layer 0's roles C=X, K=Y.
        let fwd_penalty = (w.nodes / g_c) * (g_k / d_in);
        // The backward SpMM contracts over the rows axis instead (N/Gz
        // term in §4.1).
        let bwd_penalty = (w.nodes / g_r) * (g_k / d_in);
        f[0] += sqrt_flops;
        f[1] += sqrt_flops * fwd_penalty;
        f[2] += sqrt_flops * bwd_penalty;
    }
    f
}

/// Rank-space stride of each axis under the paper's placement priority
/// ("prioritizing Y, X, and then Z parallelism within a node"): Y is
/// innermost, then X, then Z.
fn axis_stride(grid: GridConfig, axis: Axis) -> usize {
    match axis {
        Axis::Y => 1,
        Axis::X => grid.gy,
        Axis::Z => grid.gy * grid.gx,
    }
}

/// Eq. 4.6: effective bandwidth of a ring along `axis`. If the whole group
/// sits inside one node it runs at intra-node bandwidth; otherwise it is
/// bound by the NIC, divided by the number of same-node peers contending
/// for it.
pub fn effective_bandwidth(grid: GridConfig, axis: Axis, m: &MachineSpec) -> f64 {
    let stride = axis_stride(grid, axis);
    let span = stride * grid.dim(axis);
    if span <= m.gpus_per_node {
        m.beta_intra
    } else {
        m.beta_inter / (m.gpus_per_node.min(stride) as f64)
    }
}

/// Predicted per-epoch communication time: every collective of Algorithms
/// 1 and 2 across all layers, timed with the ring equations at the
/// eq.-4.6 effective bandwidths.
pub fn comm_time(w: &Workload, grid: GridConfig, m: &MachineSpec) -> f64 {
    let mut t = 0.0f64;
    let n = w.nodes;
    for l in 0..w.num_layers() {
        let roles = roles_for_layer(l);
        let (g_r, g_c, g_k) = (
            grid.dim(roles.rows) as f64,
            grid.dim(roles.contract) as f64,
            grid.dim(roles.feat) as f64,
        );
        let beta_r = effective_bandwidth(grid, roles.rows, m);
        let beta_c = effective_bandwidth(grid, roles.contract, m);
        let beta_k = effective_bandwidth(grid, roles.feat, m);
        let d_in = w.dims[l] as f64;
        let d_out = w.dims[l + 1] as f64;
        let bytes = 4.0f64;

        let h_bytes = (n / g_r) * (d_in / g_k) * bytes;
        let q_bytes = (n / g_r) * (d_out / g_c) * bytes;
        let w_bytes = (d_in / g_k) * (d_out / g_c) * bytes;
        let f_bytes = (n / g_c) * (d_in / g_k) * bytes;

        // Forward (Algorithm 1).
        if l == 0 {
            t += all_gather_time(f_bytes, grid.dim(roles.rows), beta_r);
        }
        t += all_reduce_time(h_bytes, grid.dim(roles.contract), beta_c);
        t += all_gather_time(w_bytes, grid.dim(roles.rows), beta_r);
        t += all_reduce_time(q_bytes, grid.dim(roles.feat), beta_k);

        // Backward (Algorithm 2). W is cached from the forward pass in
        // this implementation, so no second W all-gather is modelled.
        t += reduce_scatter_time(w_bytes, grid.dim(roles.rows), beta_r);
        t += all_reduce_time(h_bytes, grid.dim(roles.contract), beta_c);
        if l == 0 {
            t += reduce_scatter_time(f_bytes, grid.dim(roles.rows), beta_r);
        } else {
            t += all_reduce_time(f_bytes, grid.dim(roles.rows), beta_r);
        }
    }
    t
}

/// Predicted per-epoch computation time from the machine kernel models.
/// `imbalance` multiplies SpMM times (max/mean nonzeros across shards —
/// 1.0 is what the double permutation achieves, Table 3).
pub fn comp_time(w: &Workload, grid: GridConfig, m: &MachineSpec, imbalance: f64) -> f64 {
    let mut t = 0.0f64;
    let n = w.nodes;
    for l in 0..w.num_layers() {
        let roles = roles_for_layer(l);
        let (g_r, g_c, g_k) = (
            grid.dim(roles.rows) as f64,
            grid.dim(roles.contract) as f64,
            grid.dim(roles.feat) as f64,
        );
        let d_in = w.dims[l] as f64;
        let d_out = w.dims[l + 1] as f64;

        let spmm_flops = 2.0 * w.nonzeros / (g_r * g_c) * (d_in / g_k);
        // Forward SpMM: common dim N/g_c, dense width D/g_k.
        t += m.spmm_time(spmm_flops, n / g_c, d_in / g_k) * imbalance;
        // Backward SpMM (Aᵀ): common dim N/g_r.
        t += m.spmm_time(spmm_flops, n / g_r, d_in / g_k) * imbalance;
        // Forward GEMM + two backward GEMMs (dW and dH).
        let gemm_flops = 2.0 * (n / g_r) * (d_in / g_k) * (d_out / g_c);
        t += 3.0 * m.gemm_time(gemm_flops);
    }
    t
}

/// Unified model (§4.3).
pub fn epoch_time(
    w: &Workload,
    grid: GridConfig,
    m: &MachineSpec,
    imbalance: f64,
) -> EpochPrediction {
    EpochPrediction { comp_s: comp_time(w, grid, m, imbalance), comm_s: comm_time(w, grid, m) }
}

/// Evaluate every factorization of `total_gpus` and return them sorted by
/// predicted epoch time (best first) — the paper's configuration selector.
pub fn rank_configs(
    w: &Workload,
    total_gpus: usize,
    m: &MachineSpec,
) -> Vec<(GridConfig, EpochPrediction)> {
    let mut scored: Vec<(GridConfig, EpochPrediction)> = GridConfig::enumerate(total_gpus)
        .into_iter()
        .map(|g| (g, epoch_time(w, g, m, 1.0)))
        .collect();
    scored.sort_by(|a, b| a.1.total().partial_cmp(&b.1.total()).expect("no NaN times"));
    scored
}

/// The predicted-best configuration for `total_gpus` GPUs.
pub fn choose_config(w: &Workload, total_gpus: usize, m: &MachineSpec) -> GridConfig {
    rank_configs(w, total_gpus, m)[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_simnet::perlmutter;

    fn products_workload() -> Workload {
        // ogbn-products from Table 4 with the paper's 3-layer/128 model.
        Workload::new(2_449_029, 126_167_053, 100, 128, 47, 3)
    }

    #[test]
    fn comp_features_are_config_sensitive() {
        let w = products_workload();
        let balanced = comp_cost_features(&w, GridConfig::new(4, 4, 4));
        let skinny = comp_cost_features(&w, GridConfig::new(1, 64, 1));
        // flops term identical (total work conserved)...
        assert!((balanced[0] - skinny[0]).abs() / balanced[0] < 1e-12);
        // ...but the tall-skinny config pays a far larger penalty term —
        // the U-vs-V effect of Table 2.
        assert!(skinny[1] > balanced[1] * 10.0, "{} vs {}", skinny[1], balanced[1]);
    }

    #[test]
    fn effective_bandwidth_follows_eq_4_6() {
        let m = perlmutter(); // 4 GPUs/node
                              // 2x2x1 grid fits in one node along every axis.
        let g = GridConfig::new(2, 2, 1);
        assert_eq!(effective_bandwidth(g, Axis::Y, &m), m.beta_intra);
        assert_eq!(effective_bandwidth(g, Axis::X, &m), m.beta_intra);
        // 4x4x4: Y (innermost, span 4) stays intra-node; X spans 16 ranks
        // with stride 4 -> inter-node, contended by min(4, 4) = 4.
        let big = GridConfig::new(4, 4, 4);
        assert_eq!(effective_bandwidth(big, Axis::Y, &m), m.beta_intra);
        assert_eq!(effective_bandwidth(big, Axis::X, &m), m.beta_inter / 4.0);
        assert_eq!(effective_bandwidth(big, Axis::Z, &m), m.beta_inter / 4.0);
    }

    #[test]
    fn comm_time_zero_on_single_gpu() {
        let w = products_workload();
        assert_eq!(comm_time(&w, GridConfig::new(1, 1, 1), &perlmutter()), 0.0);
    }

    #[test]
    fn computation_scales_down_with_gpus() {
        let w = products_workload();
        let m = perlmutter();
        let t1 = comp_time(&w, GridConfig::new(1, 1, 1), &m, 1.0);
        let t64 = comp_time(&w, GridConfig::new(4, 4, 4), &m, 1.0);
        assert!(t1 / t64 > 30.0, "speedup {:.1}", t1 / t64);
    }

    #[test]
    fn imbalance_multiplies_spmm_only() {
        let w = products_workload();
        let m = perlmutter();
        let g = GridConfig::new(4, 4, 4);
        let balanced = comp_time(&w, g, &m, 1.0);
        let skewed = comp_time(&w, g, &m, 7.7); // Table 3's original ordering
        assert!(skewed > balanced * 3.0);
        assert!(skewed < balanced * 7.7 + 1e-9);
    }

    #[test]
    fn chooser_prefers_higher_dimensional_configs_at_scale() {
        // Fig. 5's headline: on 64 GPUs of Perlmutter with ogbn-products,
        // 3D configurations beat 1D and 2D.
        let w = products_workload();
        let best = choose_config(&w, 64, &perlmutter());
        assert!(
            best.dimensionality() >= 2,
            "model chose {} — expected a 2D/3D config at 64 GPUs",
            best.label()
        );
        let ranked = rank_configs(&w, 64, &perlmutter());
        let worst = ranked.last().unwrap();
        assert!(
            worst.1.total() > ranked[0].1.total() * 2.0,
            "config spread too small: best {:.4}s worst {:.4}s",
            ranked[0].1.total(),
            worst.1.total()
        );
    }

    #[test]
    fn epoch_time_in_plausible_range_for_64_gpus() {
        // Paper Fig. 5: observed epochs for ogbn-products on 64 GPUs span
        // roughly 30-210 ms; the model should land in that order of
        // magnitude.
        let w = products_workload();
        let ranked = rank_configs(&w, 64, &perlmutter());
        let best = ranked[0].1.total();
        assert!(
            best > 0.005 && best < 0.5,
            "predicted best epoch {:.4}s outside plausible range",
            best
        );
    }
}
