//! # Plexus — 3D parallel full-graph GNN training
//!
//! Rust reproduction of the SC '25 paper *"Plexus: Taming Billion-edge
//! Graphs with 3D Parallel Full-graph GNN Training"* (Ranjan, Singh, Wei,
//! Bhatele). This crate is the paper's primary contribution: the 3D
//! tensor-parallel training engine.
//!
//! ## What lives where
//!
//! * [`grid`] — the `Gx x Gy x Gz` virtual GPU grid and the per-layer
//!   axis-role rotation of §3.2 (adjacency planes ZX → YZ → XY);
//! * [`setup`] — padding, the §5.1 single/double permutation schemes, and
//!   per-rank shard extraction;
//! * [`dist`] — the X/Y/Z process groups plus matrix-shaped collectives,
//!   generic over the [`plexus_comm::Communicator`] backend (thread world
//!   or the cost-only `SimComm`);
//! * [`layer`] — Algorithms 1 and 2 (distributed forward/backward),
//!   blocked aggregation and comm/compute overlap via nonblocking
//!   collectives (§5.2), GEMM-order tuning (§5.3);
//! * [`activation`] — the activation residency-policy engine: keep,
//!   spill-to-checksummed-files, or drop-and-recompute every inter-layer
//!   cache under a configurable byte budget, bitwise-identically;
//! * [`checkpoint`] — periodic, atomically-published snapshots of the run
//!   (weight shards, Adam moments, epoch history, ledger counters) with a
//!   typed reader that resumes bitwise-identically;
//! * [`loss`] — distributed masked cross-entropy;
//! * [`trainer`] — per-rank state, the epoch loop,
//!   [`trainer::train_distributed`] (the engine's main entry point),
//!   [`trainer::train_from_source`] (the same loop fed from RAM or from a
//!   §5.4 shard store) and [`trainer::simulate_epochs`] (the same program
//!   on simulated grids);
//! * [`perfmodel`] — the §4 performance model (computation, communication,
//!   unified) and grid-configuration selection;
//! * [`loader`] — the §5.4 parallel data loader and out-of-core ingest:
//!   versioned, checksummed 2D shard files written streaming by
//!   [`loader::preprocess_to_store`], read back per rank with a
//!   [`loader::MemoryLedger`] accounting every byte.
//!
//! ## Quickstart
//!
//! ```
//! use plexus::grid::GridConfig;
//! use plexus::setup::PermutationMode;
//! use plexus::trainer::{train_distributed, DistTrainOptions};
//! use plexus_graph::{LoadedDataset, datasets::OGBN_PRODUCTS};
//!
//! let ds = LoadedDataset::generate(OGBN_PRODUCTS, 256, Some(16), 42);
//! let opts = DistTrainOptions {
//!     hidden_dim: 16,
//!     permutation: PermutationMode::Double,
//!     ..Default::default()
//! };
//! let result = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, 3);
//! assert_eq!(result.epochs.len(), 3);
//! ```

pub mod activation;
pub mod checkpoint;
pub mod dist;
pub mod grid;
pub mod layer;
pub mod loader;
pub mod loss;
pub mod perfmodel;
pub mod setup;
pub mod trainer;

pub use activation::{ActivationStats, ActivationStore, Fetched, ResidencyPolicy};
pub use checkpoint::{Checkpoint, CheckpointPolicy, ParamState, RankState};
pub use dist::{DistContext, SimDistContext};
pub use grid::{roles_for_layer, Axis, GridConfig, GridCoords, GridSpec, LayerRoles};
pub use layer::{
    Aggregation, CommOverlap, CommPlan, DistLayer, DistLayerCache, GemmTuning, TimeSplit,
};
pub use loader::{
    fnv1a, parse_csr, parse_csr_block, parse_matrix, parse_matrix_rows, preprocess_to_store,
    preprocess_to_store_serial, verify_shard_bytes, CsrPayload, Cursor, HashingWriter, LoadStats,
    LoaderError, LoaderResult, MemoryLedger, Parity, PreprocessSummary, ShardStore, FORMAT_VERSION,
    MAGIC,
};
pub use setup::{build_permutations, GlobalProblem, PermutationMode, ProblemMeta, RankData};
pub use trainer::{
    resume_from_checkpoint, simulate_epochs, train_distributed, train_from_source, DistEpochStats,
    DistRunResult, DistTrainOptions, ProblemSource, RankTrainer, SimRunReport, TrainError,
};
