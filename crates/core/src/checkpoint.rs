//! Training checkpoints: periodic, atomically-published snapshots of the
//! distributed run, and the typed reader that resumes from them.
//!
//! The on-disk discipline is the [`ShardStore`](crate::loader::ShardStore)
//! v2 one — every rank file starts with the shared
//! `[MAGIC][FORMAT_VERSION]` header, the whole file is FNV-1a checksummed,
//! and a per-epoch `manifest.txt` records `(checksum, length)` for every
//! rank file. Everything is written to a temporary name and published with
//! `fs::rename`, so a crash mid-write can never corrupt the last good
//! checkpoint: an epoch directory either has a complete manifest or is
//! ignored, and `latest.txt` either points at a published epoch or at
//! nothing.
//!
//! A checkpoint captures everything that determines the continuation of a
//! run: the stored weight shards, the Adam moments and step counts for
//! weights *and* trainable features, the epoch counter, the full epoch
//! history (losses/accuracy/timing), and the rank's
//! [`MemoryLedger`] counters. There is no live RNG to snapshot — every
//! random quantity in the engine (initial weights, permutations) is
//! derived from seeds, and those seeds are pinned by the config
//! fingerprint stored in each rank file. Resuming therefore continues
//! **bitwise identically** to the uninterrupted run.
//!
//! Layout under the checkpoint root:
//!
//! ```text
//! root/
//!   latest.txt            -> "epoch_<e>" (atomic pointer, rank 0 only)
//!   epoch_<e>/
//!     rank_0000.plx       (one per rank, written by that rank)
//!     ...
//!     manifest.txt        (rank 0, after gathering every rank's checksum)
//! ```

use crate::loader::{
    verify_shard_bytes, Cursor, HashingWriter, LoaderError, LoaderResult, MemoryLedger,
    FORMAT_VERSION,
};
use crate::trainer::DistEpochStats;
use plexus_tensor::Matrix;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// When and where the trainer snapshots its state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint root directory (created on first save).
    pub dir: PathBuf,
    /// Save after every `every`-th completed epoch (cadence; `1` saves
    /// after every epoch).
    pub every: usize,
    /// How many times [`train_from_source`](crate::trainer::train_from_source)
    /// rebuilds the world and resumes after a rank failure before giving
    /// up with [`TrainError::Unrecoverable`](crate::trainer::TrainError).
    pub max_retries: usize,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` after every epoch, with 2 recovery retries.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), every: 1, max_retries: 2 }
    }

    /// Set the epoch cadence (must be >= 1).
    pub fn every(mut self, every: usize) -> Self {
        assert!(every >= 1, "CheckpointPolicy: cadence must be >= 1");
        self.every = every;
        self
    }

    /// Set the recovery retry budget.
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// One parameter tensor plus its Adam state, as checkpointed.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamState {
    pub value: Matrix,
    /// Adam first moment.
    pub m: Matrix,
    /// Adam second moment.
    pub v: Matrix,
    /// Adam step count.
    pub t: u32,
}

/// Everything one rank needs to continue a run bitwise-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct RankState {
    /// Fingerprint of the configuration that produced this checkpoint
    /// (grid, hyperparameters, seeds, ingest source). Resuming under a
    /// different fingerprint is refused.
    pub config_fp: u64,
    /// Completed epochs at snapshot time.
    pub epochs_done: usize,
    /// Per-epoch stats of the completed prefix (identical on all ranks).
    pub history: Vec<DistEpochStats>,
    /// Per-layer stored weight shards with their optimizer state.
    pub layers: Vec<ParamState>,
    /// The stored trainable-feature shard with its optimizer state.
    pub features: ParamState,
    /// The rank's memory-accounting counters at snapshot time.
    pub ledger: MemoryLedger,
}

/// `rank_<r>.plx`, zero-padded so directory listings sort by rank.
pub(crate) fn rank_file_name(rank: usize) -> String {
    format!("rank_{:04}.plx", rank)
}

/// `epoch_<e>` directory name for a checkpoint taken after `e` epochs.
pub(crate) fn epoch_dir_name(epochs_done: usize) -> String {
    format!("epoch_{}", epochs_done)
}

// MemoryLedger <-> fixed counter vector. Order is part of the checkpoint
// format; extend only by appending (the reader below checks the count).
const LEDGER_COUNTERS: usize = 18;

fn ledger_counters(l: &MemoryLedger) -> [u64; LEDGER_COUNTERS] {
    [
        l.bytes_read,
        l.bytes_skipped,
        l.files_read as u64,
        l.files_skipped as u64,
        l.bytes_mapped,
        l.bytes_copied,
        l.adjacency_resident_bytes,
        l.peak_adjacency_bytes,
        l.feature_resident_bytes,
        l.peak_feature_bytes,
        l.activation_resident_bytes,
        l.peak_activation_bytes,
        l.activation_spilled_bytes,
        l.activation_reloaded_bytes,
        l.activation_spill_events,
        l.activation_recompute_events,
        l.read_retries,
        l.activation_reload_retries,
    ]
}

fn ledger_from_counters(c: &[u64; LEDGER_COUNTERS]) -> MemoryLedger {
    MemoryLedger {
        bytes_read: c[0],
        bytes_skipped: c[1],
        files_read: c[2] as usize,
        files_skipped: c[3] as usize,
        bytes_mapped: c[4],
        bytes_copied: c[5],
        adjacency_resident_bytes: c[6],
        peak_adjacency_bytes: c[7],
        feature_resident_bytes: c[8],
        peak_feature_bytes: c[9],
        activation_resident_bytes: c[10],
        peak_activation_bytes: c[11],
        activation_spilled_bytes: c[12],
        activation_reloaded_bytes: c[13],
        activation_spill_events: c[14],
        activation_recompute_events: c[15],
        read_retries: c[16],
        activation_reload_retries: c[17],
    }
}

fn put_matrix(w: &mut HashingWriter, m: &Matrix) -> LoaderResult<()> {
    w.put(&(m.rows() as u64).to_le_bytes())?;
    w.put(&(m.cols() as u64).to_le_bytes())?;
    for &v in m.as_slice() {
        w.put(&v.to_le_bytes())?;
    }
    Ok(())
}

fn take_matrix(cur: &mut Cursor<'_>) -> LoaderResult<Matrix> {
    let rows = cur.u64()? as usize;
    let cols = cur.u64()? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| LoaderError::Truncated { file: cur.path.to_path_buf() })?;
    let bytes = cur.take(4 * n)?;
    let data = bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().expect("chunk size")))
        .collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_param(w: &mut HashingWriter, p: &ParamState) -> LoaderResult<()> {
    put_matrix(w, &p.value)?;
    put_matrix(w, &p.m)?;
    put_matrix(w, &p.v)?;
    w.put(&(p.t as u64).to_le_bytes())?;
    Ok(())
}

fn take_param(cur: &mut Cursor<'_>) -> LoaderResult<ParamState> {
    let value = take_matrix(cur)?;
    let m = take_matrix(cur)?;
    let v = take_matrix(cur)?;
    let t = cur.u64()? as u32;
    Ok(ParamState { value, m, v, t })
}

fn take_f64(cur: &mut Cursor<'_>) -> LoaderResult<f64> {
    Ok(f64::from_bits(cur.u64()?))
}

/// Write one rank's state into `epoch_dir` atomically (tmp + rename) and
/// return the `(checksum, length)` manifest entry. Called collectively by
/// every rank; only rank `rank` writes `rank_<rank>.plx`.
pub(crate) fn write_rank_state(
    epoch_dir: &Path,
    rank: usize,
    world: usize,
    state: &RankState,
) -> LoaderResult<(u64, u64)> {
    let name = rank_file_name(rank);
    let tmp = epoch_dir.join(format!("{}.tmp", name));
    let mut w = HashingWriter::create(&tmp)?;
    w.header()?;
    w.put(&state.config_fp.to_le_bytes())?;
    w.put(&(rank as u64).to_le_bytes())?;
    w.put(&(world as u64).to_le_bytes())?;
    w.put(&(state.epochs_done as u64).to_le_bytes())?;
    w.put(&(state.history.len() as u64).to_le_bytes())?;
    for s in &state.history {
        w.put(&s.loss.to_bits().to_le_bytes())?;
        w.put(&s.train_accuracy.to_bits().to_le_bytes())?;
        w.put(&s.timing.compute_s.to_bits().to_le_bytes())?;
        w.put(&s.timing.comm_s.to_bits().to_le_bytes())?;
    }
    w.put(&(state.layers.len() as u64).to_le_bytes())?;
    for p in &state.layers {
        put_param(&mut w, p)?;
    }
    put_param(&mut w, &state.features)?;
    w.put(&(LEDGER_COUNTERS as u64).to_le_bytes())?;
    for c in ledger_counters(&state.ledger) {
        w.put(&c.to_le_bytes())?;
    }
    let entry = w.finish()?;
    fs::rename(&tmp, epoch_dir.join(&name))?;
    Ok(entry)
}

/// Publish the epoch manifest (rank 0 only, after gathering every rank's
/// `(checksum, length)`). The manifest's appearance is what makes the
/// epoch directory a valid checkpoint, so it is renamed into place last.
pub(crate) fn publish_manifest(
    epoch_dir: &Path,
    epochs_done: usize,
    entries: &[(u64, u64)],
) -> LoaderResult<()> {
    let tmp = epoch_dir.join("manifest.txt.tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        writeln!(f, "format = {}", FORMAT_VERSION)?;
        writeln!(f, "epochs_done = {}", epochs_done)?;
        writeln!(f, "world = {}", entries.len())?;
        for (rank, (ck, len)) in entries.iter().enumerate() {
            writeln!(f, "file {} = {:016x} {}", rank_file_name(rank), ck, len)?;
        }
        f.flush()?;
    }
    fs::rename(&tmp, epoch_dir.join("manifest.txt"))?;
    Ok(())
}

/// Atomically repoint `root/latest.txt` at `epoch_dir_name`.
pub(crate) fn publish_latest(root: &Path, epoch_dir_name: &str) -> LoaderResult<()> {
    let tmp = root.join("latest.txt.tmp");
    fs::write(&tmp, format!("{}\n", epoch_dir_name))?;
    fs::rename(&tmp, root.join("latest.txt"))?;
    Ok(())
}

/// A published checkpoint: one epoch directory with a verified manifest.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    epochs_done: usize,
    world: usize,
    files: BTreeMap<String, (u64, u64)>,
}

impl Checkpoint {
    /// Open and validate the manifest of one `epoch_<e>` directory.
    pub fn open(dir: &Path) -> LoaderResult<Self> {
        let manifest = dir.join("manifest.txt");
        let text = fs::read_to_string(&manifest).map_err(|e| LoaderError::BadManifest {
            reason: format!("{}: {}", manifest.display(), e),
        })?;
        let mut epochs_done = None;
        let mut world = None;
        let mut files = BTreeMap::new();
        for line in text.lines() {
            let bad = |why: &str| LoaderError::BadManifest {
                reason: format!("{}: {} in {:?}", manifest.display(), why, line),
            };
            if let Some(rest) = line.strip_prefix("format = ") {
                let found: u64 = rest.trim().parse().map_err(|_| bad("unparsable format"))?;
                if found != FORMAT_VERSION {
                    return Err(LoaderError::VersionMismatch {
                        file: manifest,
                        found,
                        expected: FORMAT_VERSION,
                    });
                }
            } else if let Some(rest) = line.strip_prefix("epochs_done = ") {
                epochs_done = Some(rest.trim().parse().map_err(|_| bad("unparsable epoch"))?);
            } else if let Some(rest) = line.strip_prefix("world = ") {
                world = Some(rest.trim().parse().map_err(|_| bad("unparsable world"))?);
            } else if let Some(rest) = line.strip_prefix("file ") {
                let (name, entry) = rest.split_once(" = ").ok_or_else(|| bad("bad file line"))?;
                let (ck, len) = entry.split_once(' ').ok_or_else(|| bad("bad file entry"))?;
                let ck = u64::from_str_radix(ck, 16).map_err(|_| bad("bad checksum"))?;
                let len: u64 = len.parse().map_err(|_| bad("bad length"))?;
                files.insert(name.to_string(), (ck, len));
            }
        }
        let epochs_done = epochs_done.ok_or_else(|| LoaderError::BadManifest {
            reason: format!("{}: missing epochs_done", manifest.display()),
        })?;
        let world = world.ok_or_else(|| LoaderError::BadManifest {
            reason: format!("{}: missing world size", manifest.display()),
        })?;
        if files.len() != world {
            return Err(LoaderError::BadManifest {
                reason: format!(
                    "{}: {} rank files listed for a {}-rank world",
                    manifest.display(),
                    files.len(),
                    world
                ),
            });
        }
        Ok(Self { dir: dir.to_path_buf(), epochs_done, world, files })
    }

    /// The most recent valid checkpoint under `root`, or `None` if there
    /// is none (including when `root` itself does not exist yet).
    ///
    /// `latest.txt` is tried first; if it is missing, stale, or points at
    /// an unpublishable directory, every `epoch_<e>` directory is probed
    /// in descending epoch order and invalid ones are skipped — a crash
    /// between a rank-file write and the manifest publish therefore falls
    /// back to the previous good checkpoint.
    pub fn latest(root: &Path) -> LoaderResult<Option<Self>> {
        if let Ok(pointer) = fs::read_to_string(root.join("latest.txt")) {
            let name = pointer.trim();
            if !name.is_empty() {
                if let Ok(ck) = Self::open(&root.join(name)) {
                    return Ok(Some(ck));
                }
            }
        }
        let Ok(entries) = fs::read_dir(root) else { return Ok(None) };
        let mut epochs: Vec<(usize, PathBuf)> = entries
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name().into_string().ok()?;
                let epoch: usize = name.strip_prefix("epoch_")?.parse().ok()?;
                Some((epoch, e.path()))
            })
            .collect();
        epochs.sort_by_key(|e| std::cmp::Reverse(e.0));
        for (_, dir) in epochs {
            if let Ok(ck) = Self::open(&dir) {
                return Ok(Some(ck));
            }
        }
        Ok(None)
    }

    /// Completed epochs this checkpoint captures.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// World size the checkpoint was taken on.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The epoch directory this checkpoint reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load and fully verify one rank's state: manifest length + FNV-1a
    /// checksum, the shared header, and the structural fields all gate the
    /// decode with the loader's typed errors.
    pub fn load_rank(&self, rank: usize) -> LoaderResult<RankState> {
        let name = rank_file_name(rank);
        let &(ck, len) = self.files.get(&name).ok_or_else(|| LoaderError::BadManifest {
            reason: format!("checkpoint {} does not list {}", self.dir.display(), name),
        })?;
        let path = self.dir.join(&name);
        let bytes = fs::read(&path)?;
        let payload_at = verify_shard_bytes(&bytes, &path, ck, len)?;
        let mut cur = Cursor { bytes: &bytes, pos: payload_at, path: &path };
        let config_fp = cur.u64()?;
        let stored_rank = cur.u64()? as usize;
        let stored_world = cur.u64()? as usize;
        if stored_rank != rank || stored_world != self.world {
            return Err(LoaderError::BadManifest {
                reason: format!(
                    "{}: holds rank {}/{} but manifest expects rank {}/{}",
                    path.display(),
                    stored_rank,
                    stored_world,
                    rank,
                    self.world
                ),
            });
        }
        let epochs_done = cur.u64()? as usize;
        let n_history = cur.u64()? as usize;
        let mut history = Vec::with_capacity(n_history.min(1 << 20));
        for _ in 0..n_history {
            let loss = take_f64(&mut cur)?;
            let train_accuracy = take_f64(&mut cur)?;
            let compute_s = take_f64(&mut cur)?;
            let comm_s = take_f64(&mut cur)?;
            history.push(DistEpochStats {
                loss,
                train_accuracy,
                timing: crate::layer::TimeSplit { compute_s, comm_s },
            });
        }
        let n_layers = cur.u64()? as usize;
        let mut layers = Vec::with_capacity(n_layers.min(1 << 20));
        for _ in 0..n_layers {
            layers.push(take_param(&mut cur)?);
        }
        let features = take_param(&mut cur)?;
        let n_counters = cur.u64()? as usize;
        if n_counters != LEDGER_COUNTERS {
            return Err(LoaderError::VersionMismatch {
                file: path.clone(),
                found: n_counters as u64,
                expected: LEDGER_COUNTERS as u64,
            });
        }
        let mut counters = [0u64; LEDGER_COUNTERS];
        for c in counters.iter_mut() {
            *c = cur.u64()?;
        }
        Ok(RankState {
            config_fp,
            epochs_done,
            history,
            layers,
            features,
            ledger: ledger_from_counters(&counters),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::TimeSplit;
    use crate::loader::fnv1a;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plexus_ckpt_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state(fp: u64, epochs_done: usize) -> RankState {
        let mk = |seed: f32| Matrix::from_fn(3, 2, |i, j| seed + (i * 2 + j) as f32 * 0.25);
        let param =
            |s: f32, t: u32| ParamState { value: mk(s), m: mk(s + 10.0), v: mk(s + 20.0), t };
        let history = (0..epochs_done)
            .map(|e| DistEpochStats {
                loss: 1.0 / (e + 1) as f64,
                train_accuracy: 0.5 + 0.1 * e as f64,
                timing: TimeSplit { compute_s: e as f64, comm_s: e as f64 * 0.5 },
            })
            .collect();
        let ledger =
            MemoryLedger { bytes_read: 1234, read_retries: 2, files_read: 7, ..Default::default() };
        RankState {
            config_fp: fp,
            epochs_done,
            history,
            layers: vec![param(1.0, 5), param(2.0, 5)],
            features: param(3.0, 5),
            ledger,
        }
    }

    /// Write a complete single-rank checkpoint and return its epoch dir.
    fn write_checkpoint(root: &Path, epochs_done: usize, state: &RankState) -> PathBuf {
        let epoch_dir = root.join(epoch_dir_name(epochs_done));
        fs::create_dir_all(&epoch_dir).unwrap();
        let entry = write_rank_state(&epoch_dir, 0, 1, state).unwrap();
        publish_manifest(&epoch_dir, epochs_done, &[entry]).unwrap();
        publish_latest(root, &epoch_dir_name(epochs_done)).unwrap();
        epoch_dir
    }

    #[test]
    fn rank_state_round_trips_bitwise() {
        let root = tmp_root("roundtrip");
        let state = sample_state(0xfeed, 3);
        let epoch_dir = write_checkpoint(&root, 3, &state);
        let ck = Checkpoint::open(&epoch_dir).unwrap();
        assert_eq!(ck.epochs_done(), 3);
        assert_eq!(ck.world_size(), 1);
        let loaded = ck.load_rank(0).unwrap();
        assert_eq!(loaded, state, "checkpoint round trip must be exact");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn latest_follows_pointer_and_survives_unpublished_epochs() {
        let root = tmp_root("latest");
        write_checkpoint(&root, 1, &sample_state(1, 1));
        write_checkpoint(&root, 4, &sample_state(1, 4));
        // A later epoch directory without a manifest (crash before
        // publish) must not win; neither must a stale latest.txt.
        fs::create_dir_all(root.join("epoch_9")).unwrap();
        fs::write(root.join("latest.txt"), "epoch_9\n").unwrap();
        let ck = Checkpoint::latest(&root).unwrap().expect("a valid checkpoint exists");
        assert_eq!(ck.epochs_done(), 4, "must fall back to the newest published epoch");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn latest_of_missing_root_is_none() {
        let root = std::env::temp_dir().join("plexus_ckpt_never_created");
        assert!(Checkpoint::latest(&root).unwrap().is_none());
    }

    #[test]
    fn corrupted_rank_file_is_a_checksum_error() {
        let root = tmp_root("corrupt");
        let epoch_dir = write_checkpoint(&root, 2, &sample_state(7, 2));
        let path = epoch_dir.join(rank_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let ck = Checkpoint::open(&epoch_dir).unwrap();
        assert!(matches!(ck.load_rank(0), Err(LoaderError::ChecksumMismatch { .. })));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_rank_file_is_a_truncation_error() {
        let root = tmp_root("trunc");
        let epoch_dir = write_checkpoint(&root, 2, &sample_state(7, 2));
        let path = epoch_dir.join(rank_file_name(0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let ck = Checkpoint::open(&epoch_dir).unwrap();
        assert!(matches!(ck.load_rank(0), Err(LoaderError::Truncated { .. })));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn version_mismatched_rank_file_is_typed() {
        let root = tmp_root("version");
        let epoch_dir = write_checkpoint(&root, 1, &sample_state(7, 1));
        let path = epoch_dir.join(rank_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        // Re-point the manifest at the patched bytes so the version check
        // (not the checksum) is what trips.
        publish_manifest(&epoch_dir, 1, &[(fnv1a(&bytes), bytes.len() as u64)]).unwrap();
        let ck = Checkpoint::open(&epoch_dir).unwrap();
        match ck.load_rank(0) {
            Err(LoaderError::VersionMismatch { found, expected, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn manifest_from_another_format_is_a_version_error() {
        let root = tmp_root("manifest_version");
        let epoch_dir = root.join("epoch_1");
        fs::create_dir_all(&epoch_dir).unwrap();
        fs::write(
            epoch_dir.join("manifest.txt"),
            format!("format = {}\nepochs_done = 1\nworld = 0\n", FORMAT_VERSION + 3),
        )
        .unwrap();
        assert!(matches!(Checkpoint::open(&epoch_dir), Err(LoaderError::VersionMismatch { .. })));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_bad_manifest_error() {
        let root = tmp_root("no_manifest");
        let epoch_dir = root.join("epoch_2");
        fs::create_dir_all(&epoch_dir).unwrap();
        assert!(matches!(Checkpoint::open(&epoch_dir), Err(LoaderError::BadManifest { .. })));
        fs::remove_dir_all(&root).unwrap();
    }
}
