//! Elementwise operations, activations and row-wise reductions used by the
//! GCN forward/backward passes (paper eqs. 2.3 and 2.4) and by the loss.

use crate::matrix::Matrix;

/// `y = relu(x)` into a new matrix (paper eq. 2.3 with σ = ReLU).
pub fn relu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// `out = relu(x)` into a preallocated matrix (the workspace path: no
/// allocation when `out` comes from a kernel pool).
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), out.shape(), "relu_into: shape mismatch");
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = if v < 0.0 { 0.0 } else { v };
    }
}

/// In-place `grad ⊙ σ'(pre)` for σ = ReLU (paper eq. 2.4): zero gradient
/// wherever the pre-activation was non-positive.
pub fn relu_backward_inplace(grad: &mut Matrix, pre_activation: &Matrix) {
    assert_eq!(grad.shape(), pre_activation.shape(), "relu_backward: shape mismatch");
    for (g, &p) in grad.as_mut_slice().iter_mut().zip(pre_activation.as_slice()) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

/// `a += alpha * b`.
pub fn axpy(a: &mut Matrix, alpha: f32, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "axpy: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
}

/// `a *= s`.
pub fn scale(a: &mut Matrix, s: f32) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// Elementwise `a ⊙ b` into a new matrix.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard: shape mismatch");
    let mut out = a.clone();
    for (x, &y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// Numerically-stable row-wise softmax.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        let inv = 1.0 / denom;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Row-wise log-sum-exp (used by the distributed cross-entropy).
pub fn logsumexp_rows(x: &Matrix) -> Vec<f32> {
    (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let s: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            max + s.ln()
        })
        .collect()
}

/// argmax per row (prediction extraction for accuracy metrics).
pub fn argmax_rows(x: &Matrix) -> Vec<usize> {
    (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let mut best = 0;
            for j in 1..row.len() {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_by_preactivation() {
        let pre = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, 3.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward_inplace(&mut g, &pre);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1001.0, 999.0]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {} sums to {}", i, sum);
        }
        // Large magnitudes must not overflow (stability check).
        assert!(s.row(1).iter().all(|v| v.is_finite()));
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn logsumexp_matches_direct_computation() {
        let x = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let direct = (0.1f32.exp() + 0.2f32.exp() + 0.3f32.exp()).ln();
        assert!((logsumexp_rows(&x)[0] - direct).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max_index() {
        let x = Matrix::from_vec(2, 3, vec![0.0, 5.0, 1.0, 9.0, 2.0, 3.0]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        axpy(&mut a, 0.5, &b);
        scale(&mut a, 2.0);
        assert_eq!(a.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }
}
