//! Row-major dense matrix type and block/shard manipulation.
//!
//! The 3D algorithm in the paper never needs column-major storage: every
//! shard handed to a kernel is a contiguous row-major block, and the few
//! transposed accesses go through [`Matrix::transposed`] or the `Trans`
//! flags of the GEMM kernel.

use std::fmt;

/// A dense row-major `f32` matrix.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from an existing row-major buffer.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, convenient for shape assertions.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resident heap bytes of the element buffer — the quantity the §5.4
    /// memory ledger accounts.
    pub fn mem_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Whole buffer as a flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Whole buffer as a flat mutable row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {} out of bounds ({} rows)", i, self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows, "row {} out of bounds ({} rows)", i, self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable rows (used by in-place row swaps).
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f32], &mut [f32]) {
        assert!(i != j, "two_rows_mut requires distinct rows");
        let c = self.cols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (a, b) = self.data.split_at_mut(hi * c);
        let lo_row = &mut a[lo * c..lo * c + c];
        let hi_row = &mut b[..c];
        if i < j {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Copy of a contiguous row range `[r0, r1)` as a new matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> Matrix {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row_block range {}..{} out of bounds ({} rows)",
            r0,
            r1,
            self.rows
        );
        Matrix::from_vec(r1 - r0, self.cols, self.data[r0 * self.cols..r1 * self.cols].to_vec())
    }

    /// Copy of a column range `[c0, c1)` as a new matrix (strided gather).
    pub fn col_block(&self, c0: usize, c1: usize) -> Matrix {
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "col_block range {}..{} out of bounds ({} cols)",
            c0,
            c1,
            self.cols
        );
        let w = c1 - c0;
        let mut out = Vec::with_capacity(self.rows * w);
        for i in 0..self.rows {
            out.extend_from_slice(&self.row(i)[c0..c1]);
        }
        Matrix::from_vec(self.rows, w, out)
    }

    /// Copy of the rectangular block `[r0, r1) x [c0, c1)`.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols, "block out of bounds");
        let w = c1 - c0;
        let mut out = Vec::with_capacity((r1 - r0) * w);
        for i in r0..r1 {
            out.extend_from_slice(&self.row(i)[c0..c1]);
        }
        Matrix::from_vec(r1 - r0, w, out)
    }

    /// Write `src` into the block starting at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "set_block: {}x{} block at ({},{}) exceeds {}x{}",
            src.rows,
            src.cols,
            r0,
            c0,
            self.rows,
            self.cols
        );
        for i in 0..src.rows {
            let dst =
                &mut self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + src.cols];
            dst.copy_from_slice(src.row(i));
        }
    }

    /// Explicit transpose into a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a preallocated `cols x rows` matrix (the workspace
    /// path: no allocation when `out` comes from a kernel pool).
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.cols,
            self.rows
        );
        // Block the loop so both source reads and destination writes stay
        // within cache lines; 32x32 f32 tiles are 4 KiB each. Within a
        // tile, j is the outer loop so destination writes are contiguous
        // runs (the source tile is cache-resident after its first pass).
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for j in jb..jmax {
                    let dst = &mut out.data[j * self.rows + ib..j * self.rows + imax];
                    for (d, i) in dst.iter_mut().zip(ib..imax) {
                        *d = self.data[i * self.cols + j];
                    }
                }
            }
        }
    }

    /// Stack matrices vertically (all must share `cols`).
    pub fn vstack(blocks: &[Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack: inconsistent column counts");
            data.extend_from_slice(&b.data);
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Stack matrices horizontally (all must share `rows`).
    pub fn hstack(blocks: &[Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "hstack of zero blocks");
        let rows = blocks[0].rows;
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for b in blocks {
            assert_eq!(b.rows, rows, "hstack: inconsistent row counts");
            out.set_block(0, c0, b);
            c0 += b.cols;
        }
        out
    }

    /// Pad with zero rows/cols up to the given shape (no-op if already there).
    pub fn zero_padded(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows >= self.rows && cols >= self.cols, "zero_padded: target smaller than source");
        if rows == self.rows && cols == self.cols {
            return self.clone();
        }
        let mut out = Matrix::zeros(rows, cols);
        out.set_block(0, 0, self);
        out
    }

    /// Reorder rows so output row `i` equals input row `perm[i]`.
    pub fn gather_rows(&self, perm: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(perm.len(), self.cols);
        for (i, &src) in perm.iter().enumerate() {
            assert!(src < self.rows, "gather_rows: index {} out of bounds", src);
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Sum of all entries, accumulated in f64 for stability.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols, "index ({},{}) out of bounds", i, j);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols, "index ({},{}) out of bounds", i, j);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{:10.4}", x)).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(37, 19, |i, j| (i * 100 + j) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (19, 37));
        assert_eq!(t[(5, 7)], m[(7, 5)]);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn blocks_and_stacks_round_trip() {
        let m = Matrix::from_fn(8, 6, |i, j| (i * 6 + j) as f32);
        let top = m.row_block(0, 3);
        let bottom = m.row_block(3, 8);
        assert_eq!(Matrix::vstack(&[top, bottom]), m);
        let left = m.col_block(0, 2);
        let right = m.col_block(2, 6);
        assert_eq!(Matrix::hstack(&[left, right]), m);
        assert_eq!(m.block(2, 5, 1, 4)[(0, 0)], m[(2, 1)]);
    }

    #[test]
    fn set_block_writes_in_place() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::full(2, 2, 7.0);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m[(2, 3)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(3, 3)], 0.0);
    }

    #[test]
    fn gather_rows_reorders() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let g = m.gather_rows(&[3, 0, 2, 1]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 0.0, 0.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_padding_preserves_content() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f32 + 1.0);
        let p = m.zero_padded(4, 3);
        assert_eq!(p.shape(), (4, 3));
        assert_eq!(p[(1, 1)], m[(1, 1)]);
        assert_eq!(p[(3, 2)], 0.0);
        assert_eq!(p.block(0, 2, 0, 2), m);
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut m = Matrix::from_fn(3, 2, |i, _| i as f32);
        let (a, b) = m.two_rows_mut(2, 0);
        a.swap_with_slice(b);
        assert_eq!(m.row(0), &[2.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }
}
