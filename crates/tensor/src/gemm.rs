//! SGEMM: `C = alpha * op(A) * op(B) + beta * C` with all transpose modes.
//!
//! The NN and NT modes use cache-friendly loop orders (ikj / row-dot) and
//! run row-parallel under rayon. The TN and TT modes intentionally use the
//! straightforward strided kernels: on GPUs the analogous generic kernels
//! are what makes the paper's `dW = SGEMM(Hᵀ, dQ)` slow on Frontier (§5.3),
//! and the tuning in `plexus-core` — replacing the TN GEMM with an explicit
//! transpose + fast NN GEMM — is only an honest experiment if the TN path
//! here really is slower.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Transpose flag for a GEMM operand, named after the BLAS convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    /// Logical shape of `op(M)`.
    #[inline]
    pub fn shape_of(self, m: &Matrix) -> (usize, usize) {
        match self {
            Trans::N => (m.rows(), m.cols()),
            Trans::T => (m.cols(), m.rows()),
        }
    }
}

/// Minimum work (in multiply-adds) before the parallel kernel is used;
/// below this the rayon fork/join overhead dominates.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `C = alpha * op(A) * op(B) + beta * C`. Dispatches to the parallel kernel
/// for large problems and the sequential one otherwise.
pub fn gemm(c: &mut Matrix, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, alpha: f32, beta: f32) {
    let (m, k) = ta.shape_of(a);
    let (k2, n) = tb.shape_of(b);
    assert_eq!(k, k2, "gemm: inner dimensions differ: op(A) is {}x{}, op(B) is {}x{}", m, k, k2, n);
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm: output shape {:?} does not match op(A)*op(B) = {}x{}",
        c.shape(),
        m,
        n
    );
    if m * n * k >= PAR_THRESHOLD {
        gemm_par_impl(c, a, ta, b, tb, alpha, beta);
    } else {
        gemm_seq(c, a, ta, b, tb, alpha, beta);
    }
}

/// Convenience wrapper: allocate and return `op(A) * op(B)`.
pub fn matmul(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans) -> Matrix {
    let (m, _) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    let mut c = Matrix::zeros(m, n);
    gemm(&mut c, a, ta, b, tb, 1.0, 0.0);
    c
}

/// Sequential GEMM, all modes. Public so benches can compare against the
/// parallel path directly.
pub fn gemm_seq(
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    scale_output(c, beta);
    match (ta, tb) {
        (Trans::N, Trans::N) => {
            // ikj: stream rows of B, accumulate into the C row — fully
            // sequential memory access on both B and C.
            for i in 0..m {
                let arow = a.row(i);
                for kk in 0..k {
                    let aik = alpha * arow[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = b.row(kk);
                    let crow = c.row_mut(i);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }
        (Trans::N, Trans::T) => {
            // Row-dot: C[i][j] = A.row(i) . B.row(j) — both contiguous.
            for i in 0..m {
                let arow = a.row(i);
                for j in 0..n {
                    let brow = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += arow[kk] * brow[kk];
                    }
                    c.row_mut(i)[j] += alpha * acc;
                }
            }
        }
        (Trans::T, Trans::N) => {
            // Generic strided kernel: A is read down a column (stride =
            // a.cols()). Deliberately not restructured — see module docs.
            let lda = a.cols();
            let adata = a.as_slice();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * b.row(kk)[j];
                    }
                    c.row_mut(i)[j] += alpha * acc;
                }
            }
        }
        (Trans::T, Trans::T) => {
            let lda = a.cols();
            let ldb = b.cols();
            let adata = a.as_slice();
            let bdata = b.as_slice();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * bdata[j * ldb + kk];
                    }
                    c.row_mut(i)[j] += alpha * acc;
                }
            }
        }
    }
}

/// Parallel GEMM: rows of C are independent, so split the output buffer into
/// per-row mutable chunks (rayon guarantees disjointness — no unsafe needed).
fn gemm_par_impl(
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    let lda = a.cols();
    let adata = a.as_slice();
    debug_assert_eq!(c.shape(), (m, n));
    c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        if beta == 0.0 {
            crow.fill(0.0);
        } else if beta != 1.0 {
            for x in crow.iter_mut() {
                *x *= beta;
            }
        }
        match (ta, tb) {
            (Trans::N, Trans::N) => {
                let arow = a.row(i);
                for kk in 0..k {
                    let aik = alpha * arow[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = b.row(kk);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
            (Trans::N, Trans::T) => {
                let arow = a.row(i);
                for j in 0..n {
                    let brow = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += arow[kk] * brow[kk];
                    }
                    crow[j] += alpha * acc;
                }
            }
            (Trans::T, Trans::N) => {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * b.row(kk)[j];
                    }
                    crow[j] += alpha * acc;
                }
            }
            (Trans::T, Trans::T) => {
                let ldb = b.cols();
                let bdata = b.as_slice();
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * bdata[j * ldb + kk];
                    }
                    crow[j] += alpha * acc;
                }
            }
        }
    });
}

fn scale_output(c: &mut Matrix, beta: f32) {
    if beta == 0.0 {
        c.as_mut_slice().fill(0.0);
    } else if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::assert_close;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for kk in 0..a.cols() {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) as f32 * 0.01 + seed).sin())
    }

    #[test]
    fn all_transpose_modes_agree_with_naive() {
        let a = test_mat(13, 9, 0.1);
        let b = test_mat(9, 11, 0.2);
        let reference = naive(&a, &b);
        let at = a.transposed();
        let bt = b.transposed();
        assert_close(&matmul(&a, Trans::N, &b, Trans::N), &reference, 1e-5, "NN");
        assert_close(&matmul(&a, Trans::N, &bt, Trans::T), &reference, 1e-5, "NT");
        assert_close(&matmul(&at, Trans::T, &b, Trans::N), &reference, 1e-5, "TN");
        assert_close(&matmul(&at, Trans::T, &bt, Trans::T), &reference, 1e-5, "TT");
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // 80^3 > PAR_THRESHOLD so gemm() takes the parallel path.
        let a = test_mat(80, 80, 0.3);
        let b = test_mat(80, 80, 0.4);
        let mut c_par = Matrix::zeros(80, 80);
        gemm(&mut c_par, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        let mut c_seq = Matrix::zeros(80, 80);
        gemm_seq(&mut c_seq, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        assert_close(&c_par, &c_seq, 1e-6, "par vs seq");
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = test_mat(4, 5, 0.5);
        let b = test_mat(5, 3, 0.6);
        let mut c = Matrix::full(4, 3, 2.0);
        gemm(&mut c, &a, Trans::N, &b, Trans::N, 0.5, 3.0);
        let mut expected = naive(&a, &b);
        for i in 0..4 {
            for j in 0..3 {
                expected[(i, j)] = 0.5 * expected[(i, j)] + 3.0 * 2.0;
            }
        }
        assert_close(&c, &expected, 1e-5, "alpha-beta");
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let _ = matmul(&a, Trans::N, &b, Trans::N);
    }

    #[test]
    fn rectangular_shapes_all_modes() {
        // (2x7)·(7x3) through every mode with distinct dims to catch
        // row/col swaps.
        let a = test_mat(2, 7, 0.7);
        let b = test_mat(7, 3, 0.8);
        let reference = naive(&a, &b);
        let got = matmul(&b.transposed(), Trans::N, &a.transposed(), Trans::N).transposed();
        assert_close(&got, &reference, 1e-5, "(BᵀAᵀ)ᵀ = AB");
    }
}
