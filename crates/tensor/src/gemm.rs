//! SGEMM: `C = alpha * op(A) * op(B) + beta * C` with all transpose modes.
//!
//! Large problems run through a cache-blocked, panel-packed kernel
//! ([`gemm_packed_into`]): `op(B)` is packed once per K-panel into
//! `nr`-wide column strips, each `mr`-row strip of `op(A)` is packed into
//! a thread-resident interleaved panel, and an `mr x nr`
//! widened-accumulator microkernel does the flops. Because *all four*
//! transpose modes route through the packing step, TN/TT pay their strided
//! reads once per panel (amortized over `n / nr` reuses) and then hit the
//! same contiguous inner kernel as NN.
//!
//! Two things are decided at runtime rather than compile time:
//!
//! * **The microkernel implementation.** On x86-64 with AVX2+FMA (checked
//!   once per process through [`crate::cpu`], the same dispatch policy the
//!   SpMM band kernel uses) the inner tile runs 8-wide
//!   `_mm256_fmadd_ps` accumulators; otherwise the portable
//!   const-generic scalar tile. FMA fuses each multiply-add without
//!   intermediate rounding, so values can differ from the scalar kernel in
//!   the last ulp — dispatch is per-process, never per-shape, so every
//!   bitwise invariant in the engine is untouched.
//! * **The tile parameters.** [`crate::tune`] classifies each `(k, n)`
//!   shape (wide / deep-k / square) and supplies `mr`/`nr` from a short
//!   per-class startup calibration plus a *fixed* per-class `kc` table.
//!   `kc` is deterministic because K-panel boundaries change f32 results
//!   for `k > kc`; `mr`/`nr` are free because every candidate accumulates
//!   each output element in the same ascending-`k` order (see the tune
//!   module docs for the full argument).
//!
//! The deliberately-strided TN kernel survives as [`gemm_reference_tn`]:
//! on GPUs the analogous generic kernel is what makes the paper's
//! `dW = SGEMM(Hᵀ, dQ)` slow on Frontier (§5.3), and the tuning in
//! `plexus-core` — replacing the TN GEMM with a fast-path kernel — is only
//! an honest experiment if a TN path that really is slower stays
//! measurable. It never routes through the FMA microkernel.
//!
//! # Determinism contract
//!
//! The engine's bitwise-identity tests (blocked aggregation, tiled
//! combination GEMM, overlapped collectives) rely on one property: **the
//! f32 operation sequence that produces output row `i` depends only on
//! `(k, n)` and the row's operand values — never on `m`, on which row tile
//! the row landed in, or on how many threads ran.** Every kernel here
//! honors that: kernel dispatch looks only at `k * n`, the shape class
//! (and through it `kc`) looks only at `(k, n)`, K-panels split `k`
//! identically for every row, each row's accumulator is private, and the
//! parallel path partitions rows without changing per-row math.

use crate::matrix::Matrix;
use crate::tune::{self, Tile};
use crate::workspace::KernelWorkspace;
use rayon::prelude::*;
use std::cell::RefCell;

/// Transpose flag for a GEMM operand, named after the BLAS convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    /// Logical shape of `op(M)`.
    #[inline]
    pub fn shape_of(self, m: &Matrix) -> (usize, usize) {
        match self {
            Trans::N => (m.rows(), m.cols()),
            Trans::T => (m.cols(), m.rows()),
        }
    }
}

/// Below this `k * n` the packing overhead outweighs the reuse and the
/// unpacked kernel wins. Deliberately independent of `m` — see the
/// module-level determinism contract.
const PACK_KN_THRESHOLD: usize = 64 * 64;

/// Minimum work (in multiply-adds) before the unpacked kernel and
/// [`gemm_reference_tn`] use their row-parallel variants; below this the
/// fork/join overhead dominates. Only `m` varies under this threshold on
/// any given `(k, n)` shape, and the parallel variants keep per-row math
/// identical to [`gemm_seq`], so crossing it never changes results.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

thread_local! {
    /// Packed-`op(B)` panel for [`gemm`] callers that do not thread an
    /// explicit [`KernelWorkspace`]; reused across calls on each thread.
    static BPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Packed-`op(A)` strip scratch, one per thread. The thread pool's
    /// workers are persistent, so after warmup no strip pass touches the
    /// allocator.
    static APACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Which microkernel implementation a packed call runs — resolved once per
/// call from the per-process CPU dispatch (plus the test-only scalar
/// override) so the strip loop never re-checks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Micro {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Fma,
}

impl Micro {
    fn select(force_scalar: bool) -> Micro {
        #[cfg(target_arch = "x86_64")]
        {
            if !force_scalar && crate::cpu::fma_available() {
                return Micro::Fma;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = force_scalar;
        Micro::Scalar
    }
}

/// `C = alpha * op(A) * op(B) + beta * C`. Dispatches to the packed
/// blocked kernel when `k * n` justifies packing, and to the plain
/// sequential kernel otherwise.
pub fn gemm(c: &mut Matrix, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, alpha: f32, beta: f32) {
    check_shapes(c, a, ta, b, tb);
    let (_, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    if k * n >= PACK_KN_THRESHOLD {
        BPACK.with(|buf| gemm_packed_into(&mut buf.borrow_mut(), c, a, ta, b, tb, alpha, beta));
    } else {
        gemm_unpacked(c, a, ta, b, tb, alpha, beta);
    }
}

/// [`gemm`] with an explicit workspace: the packed panel lives in `ws`
/// instead of thread-local storage, so long-lived owners (one workspace
/// per layer) never re-grow it.
pub fn gemm_ws(
    ws: &mut KernelWorkspace,
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    check_shapes(c, a, ta, b, tb);
    let (_, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    if k * n >= PACK_KN_THRESHOLD {
        let before = ws.b_pack.capacity();
        gemm_packed_into(&mut ws.b_pack, c, a, ta, b, tb, alpha, beta);
        ws.note_grown(before, ws.b_pack.capacity());
    } else {
        gemm_unpacked(c, a, ta, b, tb, alpha, beta);
    }
}

/// `C = alpha * A * B + beta * C` (both operands untransposed) with the
/// packed `B` panels cached in `ws` under `b_version`: the first call for
/// a given `(b_version, shape)` packs every K-panel of `B` into the
/// workspace's dedicated cached-B buffer, and subsequent calls — later row
/// tiles of the same product, recompute-mode cache rebuilds, later steps
/// before the weight update — skip the packing entirely.
///
/// Callers own the version discipline: bump the version whenever `B`'s
/// contents change (the training engines bump a per-layer counter after
/// each optimizer step). Reusing a version for different bits is a caller
/// bug; debug builds catch it with a content-hash assertion.
///
/// Results are bitwise identical to [`gemm_ws`] / [`gemm`] on the same
/// operands: the cached panels hold the same values in the same layout,
/// and the same microkernel consumes them. Problems below the packing
/// threshold route to the unpacked kernel exactly as [`gemm`] does (no
/// caching — packing would not pay there anyway).
pub fn gemm_nn_cached_b(
    ws: &mut KernelWorkspace,
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
    b_version: u64,
    alpha: f32,
    beta: f32,
) {
    check_shapes(c, a, Trans::N, b, Trans::N);
    let (m, k) = Trans::N.shape_of(a);
    let (_, n) = Trans::N.shape_of(b);
    if k * n < PACK_KN_THRESHOLD {
        gemm_unpacked(c, a, Trans::N, b, Trans::N, alpha, beta);
        return;
    }
    let tile = tune::tile_for(k, n);
    // The strip width is part of the cached layout, so it keys the cache
    // alongside the shape (a tile override between calls must repack).
    let key = (b_version, b.rows(), b.cols(), tile.nr);
    if ws.cached_b_key != Some(key) {
        let before = ws.cached_b.capacity();
        pack_b_all_panels(&mut ws.cached_b, b, Trans::N, k, n, tile);
        ws.note_grown(before, ws.cached_b.capacity());
        ws.cached_b_key = Some(key);
        #[cfg(debug_assertions)]
        {
            ws.cached_b_fnv = fnv_f32(b.as_slice());
        }
    }
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        ws.cached_b_fnv,
        fnv_f32(b.as_slice()),
        "gemm_nn_cached_b: version {} reused for different operand contents",
        b_version
    );
    scale_output(c, beta);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let micro = Micro::select(false);
    let nstrips = n.div_ceil(tile.nr);
    let mut pc = 0;
    let mut offset = 0;
    while pc < k {
        let kc = tile.kc.min(k - pc);
        let panel = &ws.cached_b[offset..offset + nstrips * kc * tile.nr];
        packed_strip_pass(panel, c, a, Trans::N, pc, kc, alpha, tile, micro);
        offset += nstrips * kc * tile.nr;
        pc += kc;
    }
}

/// `C = alpha * A * Bᵀ + beta * C` with the packed `Bᵀ` panels cached in
/// `ws` under `b_version` — the transposed-layout sibling of
/// [`gemm_nn_cached_b`], closing the packed-B reuse leak in backward's
/// `∂L/∂H = dQ·Wᵀ`: before this existed, every backward call repacked the
/// transposed weights even though they only change at the optimizer step.
///
/// The cache lives in its own workspace slot (`cached_bt`), keyed by the
/// same per-layer weight version the forward cache uses, so forward (`N`
/// pack) and backward (`T` pack) of one step never evict each other.
/// Version discipline, the debug content-hash guard, the below-threshold
/// unpacked route and bitwise equality with [`gemm_ws`] on the same
/// operands all match the `N` variant.
pub fn gemm_nt_cached_b(
    ws: &mut KernelWorkspace,
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
    b_version: u64,
    alpha: f32,
    beta: f32,
) {
    check_shapes(c, a, Trans::N, b, Trans::T);
    let (m, k) = Trans::N.shape_of(a);
    let (_, n) = Trans::T.shape_of(b);
    if k * n < PACK_KN_THRESHOLD {
        gemm_unpacked(c, a, Trans::N, b, Trans::T, alpha, beta);
        return;
    }
    let tile = tune::tile_for(k, n);
    let key = (b_version, b.rows(), b.cols(), tile.nr);
    if ws.cached_bt_key != Some(key) {
        let before = ws.cached_bt.capacity();
        pack_b_all_panels(&mut ws.cached_bt, b, Trans::T, k, n, tile);
        ws.note_grown(before, ws.cached_bt.capacity());
        ws.cached_bt_key = Some(key);
        #[cfg(debug_assertions)]
        {
            ws.cached_bt_fnv = fnv_f32(b.as_slice());
        }
    }
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        ws.cached_bt_fnv,
        fnv_f32(b.as_slice()),
        "gemm_nt_cached_b: version {} reused for different operand contents",
        b_version
    );
    scale_output(c, beta);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let micro = Micro::select(false);
    let nstrips = n.div_ceil(tile.nr);
    let mut pc = 0;
    let mut offset = 0;
    while pc < k {
        let kc = tile.kc.min(k - pc);
        let panel = &ws.cached_bt[offset..offset + nstrips * kc * tile.nr];
        packed_strip_pass(panel, c, a, Trans::N, pc, kc, alpha, tile, micro);
        offset += nstrips * kc * tile.nr;
        pc += kc;
    }
}

/// FNV-1a over the raw bits of an f32 slice (cached-B content guard).
#[cfg(debug_assertions)]
fn fnv_f32(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for byte in v.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The small-`k*n` path: tall-skinny products (huge `m`, tiny `k*n`) still
/// have plenty of row parallelism even though packing would not pay, so
/// split rows across workers above [`PAR_THRESHOLD`] and run [`gemm_seq`]
/// otherwise. Per-row math is identical in both variants.
fn gemm_unpacked(
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    if m * n * k >= PAR_THRESHOLD && n > 0 {
        let lda = a.cols();
        let adata = a.as_slice();
        let ldb = b.cols();
        let bdata = b.as_slice();
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            scale_row(crow, beta);
            match (ta, tb) {
                (Trans::N, Trans::N) => {
                    let arow = a.row(i);
                    for kk in 0..k {
                        let aik = alpha * arow[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = b.row(kk);
                        for j in 0..n {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
                (Trans::N, Trans::T) => {
                    let arow = a.row(i);
                    for (j, cx) in crow.iter_mut().enumerate() {
                        let brow = b.row(j);
                        let mut acc = 0.0f32;
                        for kk in 0..k {
                            acc += arow[kk] * brow[kk];
                        }
                        *cx += alpha * acc;
                    }
                }
                (Trans::T, Trans::N) => {
                    for (j, cx) in crow.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for kk in 0..k {
                            acc += adata[kk * lda + i] * b.row(kk)[j];
                        }
                        *cx += alpha * acc;
                    }
                }
                (Trans::T, Trans::T) => {
                    for (j, cx) in crow.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for kk in 0..k {
                            acc += adata[kk * lda + i] * bdata[j * ldb + kk];
                        }
                        *cx += alpha * acc;
                    }
                }
            }
        });
    } else {
        gemm_seq(c, a, ta, b, tb, alpha, beta);
    }
}

fn check_shapes(c: &Matrix, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans) {
    let (m, k) = ta.shape_of(a);
    let (k2, n) = tb.shape_of(b);
    assert_eq!(k, k2, "gemm: inner dimensions differ: op(A) is {}x{}, op(B) is {}x{}", m, k, k2, n);
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm: output shape {:?} does not match op(A)*op(B) = {}x{}",
        c.shape(),
        m,
        n
    );
}

/// Convenience wrapper: allocate and return `op(A) * op(B)`.
pub fn matmul(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans) -> Matrix {
    let (m, _) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    let mut c = Matrix::zeros(m, n);
    gemm(&mut c, a, ta, b, tb, 1.0, 0.0);
    c
}

/// Plain sequential GEMM, all modes, no packing. Public both as the small-
/// problem fast path and as the naive reference the property tests compare
/// the packed kernel against.
pub fn gemm_seq(
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    scale_output(c, beta);
    match (ta, tb) {
        (Trans::N, Trans::N) => {
            // ikj: stream rows of B, accumulate into the C row — fully
            // sequential memory access on both B and C.
            for i in 0..m {
                let arow = a.row(i);
                for kk in 0..k {
                    let aik = alpha * arow[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = b.row(kk);
                    let crow = c.row_mut(i);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }
        (Trans::N, Trans::T) => {
            // Row-dot: C[i][j] = A.row(i) . B.row(j) — both contiguous.
            // The C row borrow is hoisted out of the j loop.
            for i in 0..m {
                let arow = a.row(i);
                let crow = c.row_mut(i);
                for (j, cx) in crow.iter_mut().enumerate().take(n) {
                    let brow = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += arow[kk] * brow[kk];
                    }
                    *cx += alpha * acc;
                }
            }
        }
        (Trans::T, Trans::N) => {
            // Generic strided kernel: A is read down a column (stride =
            // a.cols()). The C row borrow is hoisted out of the j loop.
            let lda = a.cols();
            let adata = a.as_slice();
            for i in 0..m {
                let crow = c.row_mut(i);
                for (j, cx) in crow.iter_mut().enumerate().take(n) {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * b.row(kk)[j];
                    }
                    *cx += alpha * acc;
                }
            }
        }
        (Trans::T, Trans::T) => {
            let lda = a.cols();
            let ldb = b.cols();
            let adata = a.as_slice();
            let bdata = b.as_slice();
            for i in 0..m {
                let crow = c.row_mut(i);
                for (j, cx) in crow.iter_mut().enumerate().take(n) {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += adata[kk * lda + i] * bdata[j * ldb + kk];
                    }
                    *cx += alpha * acc;
                }
            }
        }
    }
}

/// The deliberately-strided TN kernel, preserved verbatim from the
/// pre-packing implementation: `C = alpha * Aᵀ * B + beta * C` with A read
/// down columns at stride `a.cols()`. This is the honest slow path behind
/// `GemmTuning::Default` and the `gemm_dw/tn_default` bench — the CPU
/// stand-in for the generic GPU kernel the paper measures in §5.3. It
/// never routes through the packed or FMA kernels.
pub fn gemm_reference_tn(c: &mut Matrix, a: &Matrix, b: &Matrix, alpha: f32, beta: f32) {
    let (m, k) = Trans::T.shape_of(a);
    let (k2, n) = Trans::N.shape_of(b);
    assert_eq!(
        k, k2,
        "gemm_reference_tn: inner dimensions differ: op(A) is {}x{}, op(B) is {}x{}",
        m, k, k2, n
    );
    assert_eq!(c.shape(), (m, n), "gemm_reference_tn: output shape mismatch");
    let lda = a.cols();
    let adata = a.as_slice();
    if m * n * k >= PAR_THRESHOLD {
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            scale_row(crow, beta);
            for (j, cx) in crow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += adata[kk * lda + i] * b.row(kk)[j];
                }
                *cx += alpha * acc;
            }
        });
    } else {
        gemm_seq(c, a, Trans::T, b, Trans::N, alpha, beta);
    }
}

/// The packed blocked kernel with the process's tuned tile. `b_pack`
/// holds the packed `op(B)` panel (grown as needed, contents scratch).
///
/// Loop structure (BLIS-style, without the NC loop because every dense
/// operand in this workspace has `n` small enough for one panel):
///
/// ```text
/// scale C by beta
/// for each K-panel pc of depth <= kc:
///     pack op(B)[pc.., :] into nr-wide strips          (once per panel)
///     parallel over mr-row strips of C:
///         pack op(A)[strip, pc..] into a thread panel  (amortized n/nr x)
///         for each nr strip: mr x nr microkernel over the panel depth
/// ```
pub fn gemm_packed_into(
    b_pack: &mut Vec<f32>,
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
) {
    let (_, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    let tile = tune::tile_for(k, n);
    gemm_packed_with_tile(b_pack, c, a, ta, b, tb, alpha, beta, tile, false);
}

/// [`gemm_packed_into`] with an explicit tile and an optional scalar-
/// microkernel pin. This is the autotuner's calibration entry and the
/// property tests' lever for comparing tiles / FMA-vs-scalar inside one
/// process; production callers go through [`gemm_packed_into`] so the
/// per-process dispatch policy stays intact.
#[doc(hidden)]
pub fn gemm_packed_with_tile(
    b_pack: &mut Vec<f32>,
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    alpha: f32,
    beta: f32,
    tile: Tile,
    force_scalar: bool,
) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    debug_assert_eq!(c.shape(), (m, n));
    scale_output(c, beta);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let micro = Micro::select(force_scalar);
    let mut pc = 0;
    while pc < k {
        let kc = tile.kc.min(k - pc);
        pack_b_panel(b_pack, b, tb, pc, kc, n, tile.nr);
        packed_strip_pass(b_pack, c, a, ta, pc, kc, alpha, tile, micro);
        pc += kc;
    }
}

/// Calibration probe for [`crate::tune`]: nanoseconds for one packed GEMM
/// on an `m x k x n` synthetic problem with the candidate tile. Uses the
/// normal FMA dispatch (calibration only runs when FMA is available) and
/// the explicit-tile entry, so no `tile_for` re-entry can occur.
pub(crate) fn time_candidate(m: usize, k: usize, n: usize, tile: Tile) -> u64 {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j) as f32 * 0.001).sin());
    let b = Matrix::from_fn(k, n, |i, j| ((i + j * 3) as f32 * 0.001).cos());
    let mut c = Matrix::zeros(m, n);
    let mut pack = Vec::new();
    // One warm rep pages in the pack buffers, then best-of-2 timed reps.
    gemm_packed_with_tile(&mut pack, &mut c, &a, Trans::N, &b, Trans::N, 1.0, 0.0, tile, false);
    let mut best = u64::MAX;
    for _ in 0..2 {
        let t0 = std::time::Instant::now();
        gemm_packed_with_tile(&mut pack, &mut c, &a, Trans::N, &b, Trans::N, 1.0, 0.0, tile, false);
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// One K-panel's worth of the packed kernel: every `mr`-row strip of `C`
/// packs its `op(A)` slice and streams over the packed `op(B)` panel `bp`.
/// Shared by the per-call packing path ([`gemm_packed_into`]) and the
/// cached-B path ([`gemm_nn_cached_b`]) so both produce identical bits.
fn packed_strip_pass(
    bp: &[f32],
    c: &mut Matrix,
    a: &Matrix,
    ta: Trans,
    pc: usize,
    kc: usize,
    alpha: f32,
    tile: Tile,
    micro: Micro,
) {
    let (m, _) = ta.shape_of(a);
    let n = c.cols();
    let nstrips = n.div_ceil(tile.nr);
    c.as_mut_slice().par_chunks_mut(tile.mr * n).enumerate().for_each(|(si, crows)| {
        let i0 = si * tile.mr;
        let mr = tile.mr.min(m - i0);
        APACK.with(|buf| {
            let mut ap = buf.borrow_mut();
            let need = tile.mr * kc;
            if ap.len() != need {
                ap.resize(need, 0.0);
            }
            pack_a_strip(&mut ap, tile.mr, a, ta, i0, mr, pc, kc);
            for js in 0..nstrips {
                let nr = tile.nr.min(n - js * tile.nr);
                let bstrip = &bp[js * kc * tile.nr..(js + 1) * kc * tile.nr];
                microkernel(micro, tile, &ap, bstrip, kc, alpha, crows, n, js * tile.nr, mr, nr);
            }
        });
    });
}

/// Pack `op(B)[pc..pc+kc, 0..n]` into `nr`-wide column strips:
/// `buf[strip][kk][j]`, edge strips zero-padded to `nr` so the microkernel
/// stays uniform (padding lanes are computed but never stored).
fn pack_b_panel(
    buf: &mut Vec<f32>,
    b: &Matrix,
    tb: Trans,
    pc: usize,
    kc: usize,
    n: usize,
    nr: usize,
) {
    let nstrips = n.div_ceil(nr);
    let needed = nstrips * kc * nr;
    // No blanket zero-fill: the copy loops below write every real lane,
    // so only the edge strip's padding lanes (the lanes the microkernel
    // reads but no copy writes) need explicit zeroing.
    if buf.len() > needed {
        buf.truncate(needed);
    } else {
        buf.resize(needed, 0.0);
    }
    pack_b_panel_slice(&mut buf[..needed], b, tb, pc, kc, n, nr);
}

/// Pack every K-panel of `op(B)` back to back into `buf` — the layout
/// [`gemm_nn_cached_b`] walks with a running offset. Each panel's interior
/// layout is exactly what [`pack_b_panel`] produces for that `pc`.
fn pack_b_all_panels(buf: &mut Vec<f32>, b: &Matrix, tb: Trans, k: usize, n: usize, tile: Tile) {
    let nstrips = n.div_ceil(tile.nr);
    let mut needed = 0;
    let mut pc = 0;
    while pc < k {
        let kc = tile.kc.min(k - pc);
        needed += nstrips * kc * tile.nr;
        pc += kc;
    }
    if buf.len() > needed {
        buf.truncate(needed);
    } else {
        buf.resize(needed, 0.0);
    }
    let mut offset = 0;
    let mut pc = 0;
    while pc < k {
        let kc = tile.kc.min(k - pc);
        let len = nstrips * kc * tile.nr;
        pack_b_panel_slice(&mut buf[offset..offset + len], b, tb, pc, kc, n, tile.nr);
        offset += len;
        pc += kc;
    }
}

/// The panel-packing core over an exactly-sized destination slice.
fn pack_b_panel_slice(
    buf: &mut [f32],
    b: &Matrix,
    tb: Trans,
    pc: usize,
    kc: usize,
    n: usize,
    nr: usize,
) {
    let nstrips = n.div_ceil(nr);
    debug_assert_eq!(buf.len(), nstrips * kc * nr);
    let nr_edge = n % nr;
    if nr_edge != 0 {
        let base = (nstrips - 1) * kc * nr;
        for kk in 0..kc {
            buf[base + kk * nr + nr_edge..base + (kk + 1) * nr].fill(0.0);
        }
    }
    match tb {
        Trans::N => {
            for js in 0..nstrips {
                let j0 = js * nr;
                let w = nr.min(n - j0);
                let base = js * kc * nr;
                for kk in 0..kc {
                    let src = &b.row(pc + kk)[j0..j0 + w];
                    buf[base + kk * nr..base + kk * nr + w].copy_from_slice(src);
                }
            }
        }
        Trans::T => {
            // op(B)[kk][col] = B[col][pc + kk]: one contiguous read per
            // output column — the strided access pattern is paid once per
            // panel instead of once per (i, j) pair.
            for col in 0..n {
                let (js, j) = (col / nr, col % nr);
                let base = js * kc * nr + j;
                let src = &b.row(col)[pc..pc + kc];
                for (kk, &v) in src.iter().enumerate() {
                    buf[base + kk * nr] = v;
                }
            }
        }
    }
}

/// Pack `op(A)[i0..i0+mr, pc..pc+kc]` into the interleaved layout
/// `ap[kk][r]` with row stride `mr_t` (zero rows beyond `mr` so edge
/// strips reuse the uniform microkernel).
fn pack_a_strip(
    ap: &mut [f32],
    mr_t: usize,
    a: &Matrix,
    ta: Trans,
    i0: usize,
    mr: usize,
    pc: usize,
    kc: usize,
) {
    debug_assert_eq!(ap.len(), mr_t * kc);
    if mr < mr_t {
        // Padding rows must be zero; full strips overwrite every slot.
        ap.fill(0.0);
    }
    match ta {
        Trans::N => {
            for r in 0..mr {
                let src = &a.row(i0 + r)[pc..pc + kc];
                for (kk, &v) in src.iter().enumerate() {
                    ap[kk * mr_t + r] = v;
                }
            }
        }
        Trans::T => {
            // op(A)[i][kk] = A[pc + kk][i]: contiguous reads per kk.
            for kk in 0..kc {
                let src = &a.row(pc + kk)[i0..i0 + mr];
                for (r, &v) in src.iter().enumerate() {
                    ap[kk * mr_t + r] = v;
                }
            }
        }
    }
}

/// The `mr x nr` microkernel dispatch: widened accumulator block in
/// registers, one panel-depth sweep, then a single `+= alpha * acc` store
/// per output element. Each output row's accumulation order is the plain
/// ascending-k order regardless of `mr`/`nr` edges *and* regardless of
/// which tile or implementation ran — the determinism contract.
#[inline]
fn microkernel(
    micro: Micro,
    tile: Tile,
    ap: &[f32],
    bstrip: &[f32],
    kc: usize,
    alpha: f32,
    crows: &mut [f32],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if micro == Micro::Fma {
        // SAFETY: `Micro::Fma` is only constructed after
        // `cpu::fma_available()` verified AVX2+FMA on this CPU.
        unsafe {
            x86::microkernel_fma(tile.mr, tile.nr, ap, bstrip, kc, alpha, crows, n, j0, mr, nr)
        };
        return;
    }
    let _ = micro;
    match (tile.mr, tile.nr) {
        (4, 8) => mk_scalar::<4, 8>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
        (6, 8) => mk_scalar::<6, 8>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
        (8, 8) => mk_scalar::<8, 8>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
        (4, 16) => mk_scalar::<4, 16>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
        (6, 16) => mk_scalar::<6, 16>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
        (mr_t, nr_t) => unreachable!("tile {mr_t}x{nr_t} is not in the candidate set"),
    }
}

/// Portable scalar microkernel, monomorphized per tile.
fn mk_scalar<const MR: usize, const NR: usize>(
    ap: &[f32],
    bstrip: &[f32],
    kc: usize,
    alpha: f32,
    crows: &mut [f32],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    // Constant-bound loops with direct indexing: after unrolling every
    // accumulator access has a constant index, so LLVM promotes the whole
    // MR x NR block to registers (iterator forms take addresses into
    // `acc`, which blocks that promotion and halves throughput).
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..kc {
        let bs: &[f32; NR] = bstrip[kk * NR..kk * NR + NR].try_into().expect("strip width");
        let av: &[f32; MR] = ap[kk * MR..kk * MR + MR].try_into().expect("panel width");
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                acc[r][j] += ar * bs[j];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut crows[r * n + j0..r * n + j0 + nr];
        for (cx, &v) in crow.iter_mut().zip(accr) {
            *cx += alpha * v;
        }
    }
}

/// AVX2+FMA microkernels, runtime-dispatched through [`crate::cpu`]. Same
/// `unsafe` policy as the SpMM band kernel: the `#[target_feature]` call
/// boundary plus the SIMD load/store intrinsics, every pointer derived
/// from a bounds-checked slice immediately before use.
///
/// Each candidate tile is `MR` accumulator rows of `NCOL` ymm columns
/// (`nr = 8 * NCOL`); the B strip is broadcast-FMA'd into the block one
/// `kk` at a time, which is the same per-element ascending-`k` order as
/// the scalar kernel — fused per step, so values can differ from scalar in
/// the last ulp (per-process dispatch keeps that invariant-safe). Edge
/// tiles compute the full block against the zero-padded packed panels and
/// spill through a stack buffer so only real `mr x nr` elements store.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::tune::NR_MAX;
    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load(src: &[f32]) -> __m256 {
        debug_assert!(src.len() >= 8);
        _mm256_loadu_ps(src.as_ptr())
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store(dst: &mut [f32], v: __m256) {
        debug_assert!(dst.len() >= 8);
        _mm256_storeu_ps(dst.as_mut_ptr(), v)
    }

    /// Dispatch to the monomorphized tile kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA; call only after [`crate::cpu::fma_available`]
    /// returned true.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel_fma(
        mr_t: usize,
        nr_t: usize,
        ap: &[f32],
        bstrip: &[f32],
        kc: usize,
        alpha: f32,
        crows: &mut [f32],
        n: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        match (mr_t, nr_t) {
            (4, 8) => mk_fma::<4, 1>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
            (6, 8) => mk_fma::<6, 1>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
            (8, 8) => mk_fma::<8, 1>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
            (4, 16) => mk_fma::<4, 2>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
            (6, 16) => mk_fma::<6, 2>(ap, bstrip, kc, alpha, crows, n, j0, mr, nr),
            _ => unreachable!("tile {mr_t}x{nr_t} is not in the candidate set"),
        }
    }

    /// One `MR x (8 * NCOL)` tile: `MR * NCOL` ymm accumulators stay live
    /// across the whole panel depth; register budget peaks at
    /// `MR * NCOL + NCOL + 1` of the 16 ymm registers.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mk_fma<const MR: usize, const NCOL: usize>(
        ap: &[f32],
        bstrip: &[f32],
        kc: usize,
        alpha: f32,
        crows: &mut [f32],
        n: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        let width = 8 * NCOL;
        let mut acc = [[_mm256_setzero_ps(); NCOL]; MR];
        for kk in 0..kc {
            let bbase = kk * width;
            let mut bv = [_mm256_setzero_ps(); NCOL];
            for col in 0..NCOL {
                bv[col] = load(&bstrip[bbase + 8 * col..bbase + 8 * col + 8]);
            }
            let av = &ap[kk * MR..kk * MR + MR];
            for r in 0..MR {
                let ar = _mm256_set1_ps(av[r]);
                for col in 0..NCOL {
                    acc[r][col] = _mm256_fmadd_ps(ar, bv[col], acc[r][col]);
                }
            }
        }
        // Spill each live row to a stack buffer, then store only the real
        // mr x nr window with the same `+= alpha * v` the scalar kernel
        // uses — one store rule for interior and edge tiles alike.
        for (r, accr) in acc.iter().enumerate().take(mr) {
            let mut spill = [0.0f32; NR_MAX];
            for (col, &v) in accr.iter().enumerate() {
                store(&mut spill[8 * col..8 * col + 8], v);
            }
            let crow = &mut crows[r * n + j0..r * n + j0 + nr];
            for (cx, &v) in crow.iter_mut().zip(&spill[..nr]) {
                *cx += alpha * v;
            }
        }
    }
}

fn scale_output(c: &mut Matrix, beta: f32) {
    scale_row(c.as_mut_slice(), beta);
}

fn scale_row(row: &mut [f32], beta: f32) {
    if beta == 0.0 {
        row.fill(0.0);
    } else if beta != 1.0 {
        for x in row.iter_mut() {
            *x *= beta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::assert_close;
    use crate::tune::{kc_for, tile_for, ShapeClass, FMA_CANDIDATES};

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for kk in 0..a.cols() {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) as f32 * 0.01 + seed).sin())
    }

    #[test]
    fn all_transpose_modes_agree_with_naive() {
        let a = test_mat(13, 9, 0.1);
        let b = test_mat(9, 11, 0.2);
        let reference = naive(&a, &b);
        let at = a.transposed();
        let bt = b.transposed();
        assert_close(&matmul(&a, Trans::N, &b, Trans::N), &reference, 1e-5, "NN");
        assert_close(&matmul(&a, Trans::N, &bt, Trans::T), &reference, 1e-5, "NT");
        assert_close(&matmul(&at, Trans::T, &b, Trans::N), &reference, 1e-5, "TN");
        assert_close(&matmul(&at, Trans::T, &bt, Trans::T), &reference, 1e-5, "TT");
    }

    #[test]
    fn packed_path_all_modes_agree_with_naive() {
        // 70x130 operands: k*n exceeds the packing threshold and spans
        // multiple nr strips plus an edge strip; alpha/beta exercised too.
        let a = test_mat(70, 130, 0.3);
        let b = test_mat(130, 70, 0.4);
        let reference = naive(&a, &b);
        let at = a.transposed();
        let bt = b.transposed();
        for (ma, ta, mb, tb, label) in [
            (&a, Trans::N, &b, Trans::N, "NN"),
            (&a, Trans::N, &bt, Trans::T, "NT"),
            (&at, Trans::T, &b, Trans::N, "TN"),
            (&at, Trans::T, &bt, Trans::T, "TT"),
        ] {
            let mut c = Matrix::full(70, 70, 1.0);
            gemm(&mut c, ma, ta, mb, tb, 2.0, -1.0);
            let mut expect = reference.clone();
            for e in expect.as_mut_slice().iter_mut() {
                *e = 2.0 * *e - 1.0;
            }
            assert_close(&c, &expect, 1e-4, label);
        }
    }

    #[test]
    fn multi_panel_k_matches_naive() {
        // (k, n) = (1100, 17) classifies DeepK (kc = 1024), so k spans two
        // K-panels: 1024 + 76.
        let a = test_mat(9, 1100, 0.5);
        let b = test_mat(1100, 17, 0.6);
        assert_eq!(tile_for(1100, 17).kc, kc_for(ShapeClass::DeepK));
        assert_close(&matmul(&a, Trans::N, &b, Trans::N), &naive(&a, &b), 1e-4, "multi-panel");
    }

    #[test]
    fn packed_path_close_to_sequential() {
        // 80*80 >= the packing threshold so gemm() takes the packed path.
        // FMA fuses multiply-adds, so packed-vs-seq is a tolerance check;
        // the bitwise guarantees live within each kernel path (see
        // scalar_packed_matches_sequential_bitwise and
        // every_candidate_tile_is_bitwise_identical).
        let a = test_mat(80, 80, 0.3);
        let b = test_mat(80, 80, 0.4);
        let mut c_packed = Matrix::zeros(80, 80);
        gemm(&mut c_packed, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        let mut c_seq = Matrix::zeros(80, 80);
        gemm_seq(&mut c_seq, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        assert_close(&c_packed, &c_seq, 1e-4, "packed vs seq");
    }

    #[test]
    fn scalar_packed_matches_sequential_bitwise() {
        // With the scalar microkernel pinned, k <= kc and alpha = 1, the
        // packed path performs exactly the naive ascending-k accumulation
        // per element — bitwise, for every candidate tile.
        let a = test_mat(80, 80, 0.3);
        let b = test_mat(80, 80, 0.4);
        let mut c_seq = Matrix::zeros(80, 80);
        gemm_seq(&mut c_seq, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        for &(mr, nr) in FMA_CANDIDATES {
            let tile = Tile { mr, nr, kc: 512 };
            let mut c = Matrix::zeros(80, 80);
            let mut pack = Vec::new();
            gemm_packed_with_tile(
                &mut pack,
                &mut c,
                &a,
                Trans::N,
                &b,
                Trans::N,
                1.0,
                0.0,
                tile,
                true,
            );
            assert_eq!(c.as_slice(), c_seq.as_slice(), "scalar packed {mr}x{nr} diverged from seq");
        }
    }

    #[test]
    fn every_candidate_tile_is_bitwise_identical() {
        // The autotuner's license to pick mr/nr by timing: every candidate
        // (and both kernel implementations against themselves) must give
        // identical bits, including across K-panels and edge strips.
        let a = test_mat(37, 700, 0.3);
        let b = test_mat(700, 43, 0.4);
        let kc = tile_for(700, 43).kc;
        for force_scalar in [false, true] {
            let mut reference: Option<Matrix> = None;
            for &(mr, nr) in FMA_CANDIDATES {
                let mut c = Matrix::full(37, 43, 0.5);
                let mut pack = Vec::new();
                gemm_packed_with_tile(
                    &mut pack,
                    &mut c,
                    &a,
                    Trans::N,
                    &b,
                    Trans::N,
                    1.5,
                    -0.5,
                    Tile { mr, nr, kc },
                    force_scalar,
                );
                match &reference {
                    None => reference = Some(c),
                    Some(r) => assert_eq!(
                        c.as_slice(),
                        r.as_slice(),
                        "tile {mr}x{nr} (force_scalar={force_scalar}) changed bits"
                    ),
                }
            }
        }
    }

    #[test]
    fn fma_and_scalar_agree_within_tolerance() {
        // The two implementations differ only in fusion rounding; any
        // larger gap means a kernel bug rather than ulp noise.
        let a = test_mat(50, 300, 0.6);
        let b = test_mat(300, 90, 0.7);
        let tile = tile_for(300, 90);
        let mut c_auto = Matrix::zeros(50, 90);
        let mut c_scalar = Matrix::zeros(50, 90);
        let mut pack = Vec::new();
        gemm_packed_with_tile(
            &mut pack,
            &mut c_auto,
            &a,
            Trans::N,
            &b,
            Trans::N,
            1.0,
            0.0,
            tile,
            false,
        );
        gemm_packed_with_tile(
            &mut pack,
            &mut c_scalar,
            &a,
            Trans::N,
            &b,
            Trans::N,
            1.0,
            0.0,
            tile,
            true,
        );
        assert_close(&c_auto, &c_scalar, 1e-4, "fma vs scalar");
    }

    #[test]
    fn packed_path_bitwise_identical_across_thread_counts() {
        // The pool contract: partitioning rows over more workers must not
        // change a single bit of the output.
        let a = test_mat(90, 300, 0.3);
        let b = test_mat(300, 70, 0.4);
        let mut reference = Matrix::zeros(90, 70);
        rayon::ThreadPool::new(1)
            .install(|| gemm(&mut reference, &a, Trans::N, &b, Trans::N, 1.0, 0.0));
        for threads in [2usize, 3, 5] {
            let mut c = Matrix::zeros(90, 70);
            rayon::ThreadPool::new(threads)
                .install(|| gemm(&mut c, &a, Trans::N, &b, Trans::N, 1.0, 0.0));
            assert_eq!(
                c.as_slice(),
                reference.as_slice(),
                "packed gemm diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn row_tiles_compose_bitwise() {
        // The §5.2 tiled-combination contract: computing C in row tiles
        // must be bitwise identical to one call, including across K-panel
        // boundaries (k = 1100 > kc for every class).
        let a = test_mat(64, 1100, 0.7);
        let b = test_mat(1100, 40, 0.8);
        let full = matmul(&a, Trans::N, &b, Trans::N);
        for (r0, r1) in [(0usize, 17usize), (17, 40), (40, 64)] {
            let tile = matmul(&a.row_block(r0, r1), Trans::N, &b, Trans::N);
            assert_eq!(
                tile.as_slice(),
                &full.as_slice()[r0 * 40..r1 * 40],
                "tile {}..{} diverged from the full product",
                r0,
                r1
            );
        }
    }

    #[test]
    fn reference_tn_close_to_packed_tn() {
        let a = test_mat(90, 33, 0.9); // op(A) = Aᵀ: 33x90
        let b = test_mat(90, 70, 1.0);
        let mut reference = Matrix::zeros(33, 70);
        gemm_reference_tn(&mut reference, &a, &b, 1.0, 0.0);
        let packed = matmul(&a, Trans::T, &b, Trans::N);
        // Same ascending-k accumulation per element; the packed path may
        // run fused (FMA), so this is a tolerance check, not bitwise.
        assert_close(&reference, &packed, 1e-4, "reference TN vs packed TN");
    }

    #[test]
    fn workspace_gemm_matches_thread_local_gemm() {
        let a = test_mat(50, 120, 1.1);
        let b = test_mat(120, 90, 1.2);
        let expect = matmul(&a, Trans::N, &b, Trans::N);
        let mut ws = KernelWorkspace::new();
        for _ in 0..3 {
            let mut c = ws.take(50, 90);
            gemm_ws(&mut ws, &mut c, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
            assert_eq!(c.as_slice(), expect.as_slice());
            ws.recycle(c);
        }
    }

    #[test]
    fn cached_b_matches_gemm_ws_bitwise() {
        // 120x90: k*n above the packing threshold, multiple nr strips plus
        // an edge strip. Repeated calls, row tiles and version bumps must
        // all agree bitwise with the per-call packing path.
        let b = test_mat(120, 90, 0.2);
        let mut ws = KernelWorkspace::new();
        for (version, rows) in [(1u64, 50usize), (1, 50), (1, 33), (2, 50)] {
            let a = test_mat(rows, 120, 0.1 + version as f32);
            let mut expect = Matrix::zeros(rows, 90);
            gemm_ws(&mut ws, &mut expect, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
            let mut c = Matrix::zeros(rows, 90);
            gemm_nn_cached_b(&mut ws, &mut c, &a, &b, version, 1.0, 0.0);
            assert_eq!(c.as_slice(), expect.as_slice(), "cached-B diverged (v{})", version);
        }
        // Multi-panel k (> kc) through the cached path.
        let a = test_mat(20, 700, 0.4);
        let b = test_mat(700, 40, 0.5);
        let mut expect = Matrix::zeros(20, 40);
        gemm_ws(&mut ws, &mut expect, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        let mut c = Matrix::zeros(20, 40);
        gemm_nn_cached_b(&mut ws, &mut c, &a, &b, 7, 1.0, 0.0);
        assert_eq!(c.as_slice(), expect.as_slice(), "multi-panel cached-B diverged");
    }

    #[test]
    fn cached_b_stops_allocating_across_versions() {
        // Packing a same-shaped operand under a new version reuses the
        // cached buffer's capacity: after the first pack, version bumps
        // cause repacks but no allocator interaction.
        let a = test_mat(40, 100, 0.3);
        let mut ws = KernelWorkspace::new();
        let mut c = Matrix::zeros(40, 80);
        let b0 = test_mat(100, 80, 0.6);
        gemm_nn_cached_b(&mut ws, &mut c, &a, &b0, 0, 1.0, 0.0);
        let warmed = ws.alloc_events();
        for v in 1..6u64 {
            let b = test_mat(100, 80, 0.6 + v as f32);
            gemm_nn_cached_b(&mut ws, &mut c, &a, &b, v, 1.0, 0.0);
        }
        assert_eq!(ws.alloc_events(), warmed, "version repacks allocated");
    }

    #[test]
    fn cached_b_below_threshold_matches_unpacked() {
        // Tiny k*n dispatches to the unpacked kernel — exactly like gemm —
        // so small-model configs see no behavior change.
        let a = test_mat(30, 8, 0.7);
        let b = test_mat(8, 8, 0.8);
        let mut expect = Matrix::zeros(30, 8);
        gemm(&mut expect, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        let mut ws = KernelWorkspace::new();
        let mut c = Matrix::zeros(30, 8);
        gemm_nn_cached_b(&mut ws, &mut c, &a, &b, 3, 1.0, 0.0);
        assert_eq!(c.as_slice(), expect.as_slice());
    }

    #[test]
    fn cached_bt_matches_gemm_ws_bitwise() {
        // The backward shape: dH = dQ · Wᵀ with W of shape (k_in, n_out).
        // Repeated calls, row tiles and version bumps through the
        // transposed cache must agree bitwise with per-call packing.
        let w = test_mat(90, 120, 0.2);
        let mut ws = KernelWorkspace::new();
        for (version, rows) in [(1u64, 50usize), (1, 50), (1, 33), (2, 50)] {
            let dq = test_mat(rows, 120, 0.1 + version as f32);
            let mut expect = Matrix::zeros(rows, 90);
            gemm_ws(&mut ws, &mut expect, &dq, Trans::N, &w, Trans::T, 1.0, 0.0);
            let mut c = Matrix::zeros(rows, 90);
            gemm_nt_cached_b(&mut ws, &mut c, &dq, &w, version, 1.0, 0.0);
            assert_eq!(c.as_slice(), expect.as_slice(), "cached-Bᵀ diverged (v{})", version);
        }
        // Multi-panel k (> kc) through the transposed cache.
        let dq = test_mat(20, 700, 0.4);
        let w = test_mat(40, 700, 0.5);
        let mut expect = Matrix::zeros(20, 40);
        gemm_ws(&mut ws, &mut expect, &dq, Trans::N, &w, Trans::T, 1.0, 0.0);
        let mut c = Matrix::zeros(20, 40);
        gemm_nt_cached_b(&mut ws, &mut c, &dq, &w, 7, 1.0, 0.0);
        assert_eq!(c.as_slice(), expect.as_slice(), "multi-panel cached-Bᵀ diverged");
    }

    #[test]
    fn cached_bt_and_nn_share_a_workspace_without_thrash_or_allocs() {
        // One step's pattern: forward packs W under N, backward packs the
        // same W under T, same version. The slots are independent, so
        // after warmup neither direction repacks or allocates.
        let w = test_mat(100, 80, 0.6);
        let h = test_mat(40, 100, 0.3);
        let dq = test_mat(40, 80, 0.4);
        let mut ws = KernelWorkspace::new();
        let mut q = Matrix::zeros(40, 80);
        let mut dh = Matrix::zeros(40, 100);
        gemm_nn_cached_b(&mut ws, &mut q, &h, &w, 0, 1.0, 0.0);
        gemm_nt_cached_b(&mut ws, &mut dh, &dq, &w, 0, 1.0, 0.0);
        let warmed = ws.alloc_events();
        let (q_expect, dh_expect) = (q.as_slice().to_vec(), dh.as_slice().to_vec());
        for _ in 0..4 {
            gemm_nn_cached_b(&mut ws, &mut q, &h, &w, 0, 1.0, 0.0);
            gemm_nt_cached_b(&mut ws, &mut dh, &dq, &w, 0, 1.0, 0.0);
            assert_eq!(q.as_slice(), &q_expect[..]);
            assert_eq!(dh.as_slice(), &dh_expect[..]);
        }
        assert_eq!(ws.alloc_events(), warmed, "alternating N/T packs thrashed or allocated");
        // Version bumps repack in place (same capacity, no allocations).
        for v in 1..4u64 {
            let w2 = test_mat(100, 80, 0.6 + v as f32);
            gemm_nn_cached_b(&mut ws, &mut q, &h, &w2, v, 1.0, 0.0);
            gemm_nt_cached_b(&mut ws, &mut dh, &dq, &w2, v, 1.0, 0.0);
        }
        assert_eq!(ws.alloc_events(), warmed, "version repacks allocated");
    }

    #[test]
    fn cached_bt_below_threshold_matches_unpacked() {
        let dq = test_mat(30, 8, 0.7);
        let w = test_mat(8, 8, 0.8);
        let mut expect = Matrix::zeros(30, 8);
        gemm(&mut expect, &dq, Trans::N, &w, Trans::T, 1.0, 0.0);
        let mut ws = KernelWorkspace::new();
        let mut c = Matrix::zeros(30, 8);
        gemm_nt_cached_b(&mut ws, &mut c, &dq, &w, 3, 1.0, 0.0);
        assert_eq!(c.as_slice(), expect.as_slice());
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = test_mat(4, 5, 0.5);
        let b = test_mat(5, 3, 0.6);
        let mut c = Matrix::full(4, 3, 2.0);
        gemm(&mut c, &a, Trans::N, &b, Trans::N, 0.5, 3.0);
        let mut expected = naive(&a, &b);
        for i in 0..4 {
            for j in 0..3 {
                expected[(i, j)] = 0.5 * expected[(i, j)] + 3.0 * 2.0;
            }
        }
        assert_close(&c, &expected, 1e-5, "alpha-beta");
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let _ = matmul(&a, Trans::N, &b, Trans::N);
    }

    #[test]
    fn rectangular_shapes_all_modes() {
        // (2x7)·(7x3) through every mode with distinct dims to catch
        // row/col swaps.
        let a = test_mat(2, 7, 0.7);
        let b = test_mat(7, 3, 0.8);
        let reference = naive(&a, &b);
        let got = matmul(&b.transposed(), Trans::N, &a.transposed(), Trans::N).transposed();
        assert_close(&got, &reference, 1e-5, "(BᵀAᵀ)ᵀ = AB");
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 128);
        assert_eq!(matmul(&a, Trans::N, &b, Trans::N).shape(), (0, 128));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 128);
        let mut c = Matrix::full(4, 128, 3.0);
        gemm(&mut c, &a, Trans::N, &b, Trans::N, 1.0, 2.0);
        assert!(c.as_slice().iter().all(|&x| x == 6.0), "k=0 must only apply beta");
    }
}
