//! Seeded random initialization for weights and features.
//!
//! Every initializer takes an explicit seed: the Fig. 7 validation requires
//! the serial and 3D-parallel trainers to start from bit-identical
//! parameters, and the scaling benches must be reproducible run-to-run.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform `[lo, hi)` matrix.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(lo < hi, "uniform_matrix: empty range [{}, {})", lo, hi);
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Standard-normal matrix via Box-Muller (avoids a rand_distr dependency).
pub fn randn_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = move || -> f32 {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0f32..1.0);
        (-2.0f32 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    };
    Matrix::from_fn(rows, cols, |_, _| next())
}

/// Glorot/Xavier uniform initialization, the standard for GCN weights
/// (Kipf & Welling use it in the reference implementation).
pub fn glorot_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_matrix(fan_in, fan_out, -limit, limit, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a = uniform_matrix(10, 10, -1.0, 1.0, 42);
        let b = uniform_matrix(10, 10, -1.0, 1.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_matrix() {
        let a = uniform_matrix(10, 10, -1.0, 1.0, 42);
        let b = uniform_matrix(10, 10, -1.0, 1.0, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_matrix(50, 50, -0.25, 0.25, 7);
        assert!(m.as_slice().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn randn_has_plausible_moments() {
        let m = randn_matrix(200, 200, 11);
        let n = m.len() as f64;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean {} too far from 0", mean);
        assert!((var - 1.0).abs() < 0.05, "variance {} too far from 1", var);
    }

    #[test]
    fn glorot_limit_scales_with_fans() {
        let m = glorot_uniform(128, 128, 3);
        let limit = (6.0f32 / 256.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }
}
