//! Tolerance-based matrix comparison with diagnostic reporting.
//!
//! f32 training in a different summation order (3D-parallel partial sums vs
//! serial) matches the reference only up to rounding, so the equivalence
//! tests throughout the workspace compare with mixed absolute/relative
//! tolerance and report *where* and *by how much* a comparison failed.

use crate::matrix::Matrix;

/// Result of comparing two matrices.
#[derive(Debug, Clone, Copy)]
pub struct MatComparison {
    /// Largest absolute elementwise difference.
    pub max_abs: f32,
    /// Largest relative difference (|a-b| / max(|a|,|b|,1e-12)).
    pub max_rel: f32,
    /// Flat index of the worst element.
    pub argmax: usize,
}

/// Compare elementwise; panics on shape mismatch.
pub fn compare(a: &Matrix, b: &Matrix) -> MatComparison {
    assert_eq!(a.shape(), b.shape(), "compare: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
    let mut worst = MatComparison { max_abs: 0.0, max_rel: 0.0, argmax: 0 };
    for (idx, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let abs = (x - y).abs();
        let rel = abs / x.abs().max(y.abs()).max(1e-12);
        if abs > worst.max_abs {
            worst.max_abs = abs;
            worst.argmax = idx;
        }
        if rel > worst.max_rel {
            worst.max_rel = rel;
        }
    }
    worst
}

/// Largest absolute elementwise difference.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    compare(a, b).max_abs
}

/// Assert matrices are close: passes if for every element either the
/// absolute or the relative difference is within `tol`.
pub fn assert_close(a: &Matrix, b: &Matrix, tol: f32, context: &str) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "assert_close[{}]: shape mismatch {:?} vs {:?}",
        context,
        a.shape(),
        b.shape()
    );
    for (idx, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let abs = (x - y).abs();
        let rel = abs / x.abs().max(y.abs()).max(1e-12);
        if abs > tol && rel > tol {
            let (r, c) = (idx / a.cols(), idx % a.cols());
            panic!(
                "assert_close[{}]: mismatch at ({}, {}): {} vs {} (abs {:.3e}, rel {:.3e}, tol {:.1e})",
                context, r, c, x, y, abs, rel, tol
            );
        }
    }
}

/// Scalar version of the same mixed tolerance check.
pub fn scalar_close(a: f32, b: f32, tol: f32) -> bool {
    let abs = (a - b).abs();
    abs <= tol || abs / a.abs().max(b.abs()).max(1e-12) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_compare_as_zero() {
        let a = Matrix::full(3, 3, 1.5);
        let c = compare(&a, &a);
        assert_eq!(c.max_abs, 0.0);
        assert_eq!(c.max_rel, 0.0);
    }

    #[test]
    fn worst_element_located() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b[(1, 0)] = 0.5;
        let c = compare(&a, &b);
        assert_eq!(c.argmax, 2);
        assert_eq!(c.max_abs, 0.5);
    }

    #[test]
    fn relative_tolerance_accepts_large_magnitudes() {
        let a = Matrix::full(1, 1, 1.0e6);
        let b = Matrix::full(1, 1, 1.0e6 + 1.0);
        // abs diff 1.0 >> 1e-4 but rel diff 1e-6 passes.
        assert_close(&a, &b, 1e-4, "relative");
    }

    #[test]
    #[should_panic(expected = "mismatch at (0, 1)")]
    fn assert_close_reports_position() {
        let a = Matrix::zeros(1, 3);
        let mut b = Matrix::zeros(1, 3);
        b[(0, 1)] = 1.0;
        assert_close(&a, &b, 1e-6, "position");
    }

    #[test]
    fn scalar_close_mixed_tolerance() {
        assert!(scalar_close(0.0, 1e-7, 1e-6));
        assert!(scalar_close(1e9, 1.000001e9, 1e-5));
        assert!(!scalar_close(1.0, 2.0, 1e-3));
    }
}
