//! Shape-class GEMM autotuner: picks the microkernel tile at runtime
//! instead of baking one `MR`/`NR`/`KC` into the binary.
//!
//! The training loop hits three very different GEMM shapes — the
//! tall-skinny `dW = SGEMM(Hᵀ, dQ)` (huge `k`, tiny `n`), the wide
//! combination/activation products (`n` in the hundreds), and the roughly
//! square weight-sized products — and no single tile is best for all
//! three. Each shape is classified by `(k, n)` into a [`ShapeClass`], and
//! the class decides the tile.
//!
//! # What may vary, and what must not
//!
//! The engine's determinism contract (see `gemm.rs`) says the f32 op
//! sequence for an output element is a function of `(k, n)` and operand
//! values only. The tile parameters split cleanly against that contract:
//!
//! * **`KC` changes results** whenever `k > KC` (panel boundaries cut the
//!   accumulation into separately-rounded partial sums), so it must be a
//!   *fixed deterministic function of the shape class* — never timed, never
//!   overridable. The table in [`kc_for`] is it.
//! * **`MR`/`NR` are bits-neutral**: every candidate microkernel
//!   accumulates each output element in plain ascending-`k` order within a
//!   panel, so the tile only moves work between registers. These are the
//!   parameters the startup calibration is allowed to choose — a noisy
//!   timer can pick differently run to run and results never change.
//!
//! Calibration runs lazily, once per process per class, on a small
//! synthetic problem shaped like the class (a few ms); `PLEXUS_GEMM_TILE`
//! (`"MRxNR"`, e.g. `6x16`) skips it and pins every class, which is how
//! tests and perf runs get reproducible tiles. Scalar builds (no AVX2+FMA)
//! pin the SSE2-sized [`SCALAR_TILE`] — the candidate set is tuned for the
//! FMA register file and timing scalar variants of it buys nothing.

use std::sync::OnceLock;

/// Microkernel tile parameters for one GEMM call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Rows per microkernel strip.
    pub mr: usize,
    /// Columns per microkernel tile (the packed-B strip width).
    pub nr: usize,
    /// K-panel depth; one packed `op(B)` panel stays cache-resident while
    /// every row strip streams over it.
    pub kc: usize,
}

/// Largest `mr` any candidate uses (A-panel scratch sizing).
pub const MR_MAX: usize = 8;
/// Largest `nr` any candidate uses (microkernel spill buffer sizing).
pub const NR_MAX: usize = 16;

/// The `(mr, nr)` candidates calibration chooses between on the FMA path.
/// All fit the 16-register ymm file: `mr` accumulator rows of `nr/8` ymm
/// columns plus the B vectors and the broadcast lane.
pub const FMA_CANDIDATES: &[(usize, usize)] = &[(4, 8), (6, 8), (8, 8), (4, 16), (6, 16)];

/// The pinned tile for scalar (non-AVX2+FMA) processes: 6x8 = twelve
/// 4-wide accumulator vectors plus two B vectors fills the baseline
/// x86-64 SSE2 register file without spilling.
pub const SCALAR_TILE: (usize, usize) = (6, 8);

/// GEMM shape class, decided by `(k, n)` only — never `m`, so row tiles of
/// one logical product always classify identically (the §5.2 tiled
/// combination contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// Wide output: `n >= 256`. Activation-sized products; shallow panels
    /// keep the packed B strip set inside L2.
    Wide,
    /// Deep inner dimension relative to the output width: `k >= 8 * n`.
    /// The `dW = SGEMM(Hᵀ, dQ)` gradient shape; deep panels amortize the
    /// per-panel A-packing over more flops.
    DeepK,
    /// Everything else — weight-sized, roughly square products.
    Square,
}

/// Classify a GEMM by `(k, n)`. `m` is deliberately not an input: see the
/// determinism notes in the module docs.
pub fn classify(k: usize, n: usize) -> ShapeClass {
    if n >= 256 {
        ShapeClass::Wide
    } else if k >= 8 * n.max(1) {
        ShapeClass::DeepK
    } else {
        ShapeClass::Square
    }
}

/// The fixed K-panel depth for a class. A deterministic table, not a
/// calibrated value: `KC` changes f32 results whenever `k > KC`, so it may
/// depend on the (shape-derived) class and nothing else.
pub fn kc_for(class: ShapeClass) -> usize {
    match class {
        ShapeClass::DeepK => 1024,
        ShapeClass::Wide => 256,
        ShapeClass::Square => 512,
    }
}

/// The tile a `(k, n)`-shaped GEMM should run with in this process.
/// `kc` comes from the fixed class table; `mr`/`nr` come from the
/// `PLEXUS_GEMM_TILE` override when set, the pinned scalar tile on
/// non-FMA processes, or the per-class calibration cache.
pub fn tile_for(k: usize, n: usize) -> Tile {
    let class = classify(k, n);
    let (mr, nr) = mr_nr_for(class);
    Tile { mr, nr, kc: kc_for(class) }
}

fn mr_nr_for(class: ShapeClass) -> (usize, usize) {
    if let Some(pinned) = env_override() {
        return pinned;
    }
    if !crate::cpu::fma_available() {
        return SCALAR_TILE;
    }
    static CLASS_TILES: [OnceLock<(usize, usize)>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    *CLASS_TILES[class_index(class)].get_or_init(|| calibrate(class))
}

fn class_index(class: ShapeClass) -> usize {
    match class {
        ShapeClass::Wide => 0,
        ShapeClass::DeepK => 1,
        ShapeClass::Square => 2,
    }
}

/// `PLEXUS_GEMM_TILE="MRxNR"`, parsed once. Invalid values panic rather
/// than silently falling back: a pinned-tile run that is not actually
/// pinned would poison a perf comparison.
fn env_override() -> Option<(usize, usize)> {
    static OVERRIDE: OnceLock<Option<(usize, usize)>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let raw = std::env::var("PLEXUS_GEMM_TILE").ok()?;
        let parsed = raw
            .split_once('x')
            .and_then(|(mr, nr)| Some((mr.parse().ok()?, nr.parse().ok()?)))
            .filter(|t| FMA_CANDIDATES.contains(t) || *t == SCALAR_TILE);
        match parsed {
            Some(t) => Some(t),
            None => {
                panic!("PLEXUS_GEMM_TILE must be MRxNR from {:?}, got {:?}", FMA_CANDIDATES, raw)
            }
        }
    })
}

/// A small synthetic problem shaped like the class, for calibration. Kept
/// to ~1-2 MFLOP so first-touch latency per class stays in the low
/// milliseconds.
fn probe_shape(class: ShapeClass) -> (usize, usize, usize) {
    match class {
        ShapeClass::Wide => (32, 96, 512),
        ShapeClass::DeepK => (32, 2048, 32),
        ShapeClass::Square => (64, 256, 96),
    }
}

/// Time every candidate on the class's probe shape and keep the fastest.
/// Timing noise can flip the winner between runs; that is fine because
/// every candidate produces bitwise-identical results (module docs).
fn calibrate(class: ShapeClass) -> (usize, usize) {
    let (m, k, n) = probe_shape(class);
    debug_assert_eq!(classify(k, n), class, "probe shape classifies to its own class");
    let kc = kc_for(class);
    let mut best = (u64::MAX, SCALAR_TILE);
    for &(mr, nr) in FMA_CANDIDATES {
        let ns = crate::gemm::time_candidate(m, k, n, Tile { mr, nr, kc });
        if ns < best.0 {
            best = (ns, (mr, nr));
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_shape_space() {
        assert_eq!(classify(4096, 64), ShapeClass::DeepK); // dW: k >> n
        assert_eq!(classify(128, 512), ShapeClass::Wide); // activations
        assert_eq!(classify(2048, 256), ShapeClass::Wide); // n wins over k
        assert_eq!(classify(128, 128), ShapeClass::Square);
        assert_eq!(classify(256, 96), ShapeClass::Square); // k < 8n
        assert_eq!(classify(1, 1), ShapeClass::Square);
        assert_eq!(classify(8, 0), ShapeClass::DeepK); // degenerate n
    }

    #[test]
    fn kc_is_a_pure_function_of_class() {
        for (k, n) in [(4096, 64), (128, 512), (128, 128), (700, 40)] {
            let t1 = tile_for(k, n);
            let t2 = tile_for(k, n);
            assert_eq!(t1, t2, "tile_for must be stable within a process");
            assert_eq!(t1.kc, kc_for(classify(k, n)));
        }
    }

    #[test]
    fn chosen_tiles_come_from_the_candidate_set() {
        for (k, n) in [(4096, 64), (128, 512), (128, 128)] {
            let t = tile_for(k, n);
            assert!(
                FMA_CANDIDATES.contains(&(t.mr, t.nr)) || (t.mr, t.nr) == SCALAR_TILE,
                "tile {t:?} outside the candidate set"
            );
            assert!(t.mr <= MR_MAX && t.nr <= NR_MAX);
        }
    }

    #[test]
    fn probe_shapes_classify_to_their_class() {
        for class in [ShapeClass::Wide, ShapeClass::DeepK, ShapeClass::Square] {
            let (_, k, n) = probe_shape(class);
            assert_eq!(classify(k, n), class);
        }
    }
}
