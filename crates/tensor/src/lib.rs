//! Dense matrix substrate for the Plexus reproduction.
//!
//! The paper's combination step and its backward pass (eqs. 2.2, 2.5, 2.6)
//! are dense SGEMMs executed by cuBLAS on the GPU. This crate provides the
//! CPU equivalent: a row-major [`Matrix`] of `f32` and a
//! [`gemm`](gemm::gemm) kernel
//! supporting all four transpose modes (NN/NT/TN/TT), with a cache-friendly
//! fast path for NN/NT and deliberately strided generic paths for TN/TT —
//! mirroring the GPU reality that motivates the paper's §5.3 GEMM-order
//! tuning.
//!
//! Everything is `f32` because the paper trains in FP32 (A100 FP32 peak is
//! quoted in §6.1).

pub mod compare;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;

pub use compare::{assert_close, max_abs_diff, MatComparison};
pub use gemm::{gemm, gemm_seq, Trans};
pub use init::{glorot_uniform, randn_matrix, uniform_matrix};
pub use matrix::Matrix;
