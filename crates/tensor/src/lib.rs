//! Dense matrix substrate for the Plexus reproduction.
//!
//! The paper's combination step and its backward pass (eqs. 2.2, 2.5, 2.6)
//! are dense SGEMMs executed by cuBLAS on the GPU. This crate provides the
//! CPU equivalent: a row-major [`Matrix`] of `f32` and a
//! [`gemm`](gemm::gemm) kernel supporting all four transpose modes
//! (NN/NT/TN/TT) through one cache-blocked, panel-packed microkernel, plus
//! the deliberately strided [`gemm_reference_tn`]
//! that preserves the slow generic-TN behaviour motivating the paper's
//! §5.3 GEMM-order tuning. [`KernelWorkspace`] owns the reusable packed
//! panels and a pool of output buffers so the training engines run their
//! epoch loops without per-call kernel allocations.
//!
//! Everything is `f32` because the paper trains in FP32 (A100 FP32 peak is
//! quoted in §6.1).

pub mod compare;
pub mod cpu;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod tune;
pub mod workspace;

pub use compare::{assert_close, max_abs_diff, MatComparison};
pub use cpu::{fma_available, simd_label};
pub use gemm::{
    gemm, gemm_nn_cached_b, gemm_nt_cached_b, gemm_reference_tn, gemm_seq, gemm_ws, Trans,
};
pub use init::{glorot_uniform, randn_matrix, uniform_matrix};
pub use matrix::Matrix;
pub use tune::{ShapeClass, Tile};
pub use workspace::KernelWorkspace;
