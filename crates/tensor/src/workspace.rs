//! Reusable kernel buffers: the packed-panel scratch for [`gemm_ws`] and a
//! capacity-keyed pool of output buffers, so the training engine's
//! per-epoch kernel outputs (`H`, `Q`, activations, gradients, transpose
//! scratch) stop hitting the allocator once the first epoch has sized
//! everything.
//!
//! The pool is shape-agnostic: [`KernelWorkspace::take`] hands out any
//! recycled buffer whose *capacity* covers the requested element count
//! (resized and zero-filled, so a taken matrix is indistinguishable from
//! `Matrix::zeros`), and [`KernelWorkspace::take_scratch`] skips the
//! zero-fill for consumers that overwrite every element anyway.
//! [`KernelWorkspace::recycle`] returns a matrix's
//! buffer; when the pool is full the smallest buffer is dropped so the
//! large, expensive-to-reacquire buffers always survive — that keeps the
//! pool stable even when foreign buffers (collective results) are recycled
//! into it every epoch.
//!
//! [`alloc_events`](KernelWorkspace::alloc_events) counts every real
//! allocator interaction (fresh buffer, capacity growth, packed-panel
//! growth). The engine's warmup test pins the count flat across epochs —
//! the "zero per-call heap allocations for kernel outputs after warmup"
//! guarantee.
//!
//! [`gemm_ws`]: crate::gemm::gemm_ws

use crate::matrix::Matrix;

/// Maximum pooled buffers; beyond this, recycling evicts the smallest.
const POOL_CAP: usize = 24;

/// Reusable packed-panel + output + transpose buffers for the compute
/// kernels. One long-lived workspace per layer (or per trainer) is the
/// intended ownership.
#[derive(Debug, Default)]
pub struct KernelWorkspace {
    /// Packed `op(B)` panel for the blocked GEMM.
    pub(crate) b_pack: Vec<f32>,
    /// Version-keyed packed `B` spanning every K-panel, for operands that
    /// survive across calls (the combination GEMM's gathered weight
    /// matrix). See [`gemm_nn_cached_b`](crate::gemm::gemm_nn_cached_b).
    pub(crate) cached_b: Vec<f32>,
    /// `(version, rows, cols, nr)` of the operand packed in `cached_b` —
    /// `nr` because the strip width is part of the packed layout, so a
    /// tile change between calls must repack.
    pub(crate) cached_b_key: Option<(u64, usize, usize, usize)>,
    /// Content hash of the cached operand; guards against a caller reusing
    /// a version number for different bits (debug builds only).
    #[cfg(debug_assertions)]
    pub(crate) cached_b_fnv: u64,
    /// Transposed-layout sibling of `cached_b`: the same operand packed as
    /// `op(B) = Bᵀ`, so backward's `∂L/∂H = dQ·Wᵀ` reuses its pack across
    /// calls instead of repacking the transposed weights every time. A
    /// separate slot because forward (`N`) and backward (`T`) alternate
    /// within one step and would thrash a shared one.
    pub(crate) cached_bt: Vec<f32>,
    /// `(version, rows, cols, nr)` of the operand packed in `cached_bt`.
    pub(crate) cached_bt_key: Option<(u64, usize, usize, usize)>,
    /// Content hash of the transposed-cached operand (debug builds only).
    #[cfg(debug_assertions)]
    pub(crate) cached_bt_fnv: u64,
    /// Recycled output buffers, reused by capacity.
    pool: Vec<Vec<f32>>,
    alloc_events: u64,
}

impl KernelWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed `rows x cols` matrix, served from the pool when any
    /// recycled buffer has the capacity (equivalent to `Matrix::zeros`
    /// but allocation-free after warmup).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take_scratch(rows, cols);
        m.as_mut_slice().fill(0.0);
        m
    }

    /// Like [`take`](Self::take) but with **unspecified contents** (a
    /// recycled buffer keeps its old values): for consumers that overwrite
    /// every element anyway — `spmm_into`, `gemm` with `beta = 0`,
    /// `transpose_into`, `relu_into`, full copies — this skips the
    /// redundant zero-fill in the hot epoch loop.
    pub fn take_scratch(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        // Smallest sufficient buffer, so big buffers stay available for
        // big requests.
        let mut best: Option<(usize, usize)> = None;
        for (idx, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        let mut buf = match best {
            Some((idx, _)) => self.pool.swap_remove(idx),
            None => {
                self.alloc_events += 1;
                Vec::with_capacity(len)
            }
        };
        // Only the grown region (if any) is written; existing contents
        // are deliberately left in place.
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        Matrix::from_vec(rows, cols, buf)
    }

    /// Return a matrix's buffer to the pool. Accepts foreign buffers
    /// (e.g. collective results) too; eviction keeps the pool bounded.
    pub fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() == 0 {
            return;
        }
        if self.pool.len() >= POOL_CAP {
            // Evict the smallest (possibly the incoming buffer itself).
            if let Some(min_idx) = (0..self.pool.len())
                .min_by_key(|&i| self.pool[i].capacity())
                .filter(|&i| self.pool[i].capacity() < buf.capacity())
            {
                self.pool.swap_remove(min_idx);
            } else {
                return;
            }
        }
        self.pool.push(buf);
    }

    /// Allocator interactions so far (fresh buffers, capacity growth).
    /// Flat across epochs once the workspace has warmed up.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Pooled buffer count (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    pub(crate) fn note_grown(&mut self, cap_before: usize, cap_after: usize) {
        if cap_after > cap_before {
            self.alloc_events += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_matches_zeros_semantics() {
        let mut ws = KernelWorkspace::new();
        let mut m = ws.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        m[(1, 2)] = 7.0;
        ws.recycle(m);
        // The recycled buffer comes back zeroed.
        let m2 = ws.take(3, 4);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn steady_state_take_recycle_stops_allocating() {
        let mut ws = KernelWorkspace::new();
        for _ in 0..3 {
            let a = ws.take(8, 8);
            let b = ws.take(4, 4);
            ws.recycle(a);
            ws.recycle(b);
        }
        let after_warmup = ws.alloc_events();
        for _ in 0..10 {
            let a = ws.take(8, 8);
            let b = ws.take(4, 4);
            ws.recycle(a);
            ws.recycle(b);
        }
        assert_eq!(ws.alloc_events(), after_warmup, "steady-state cycle allocated");
    }

    #[test]
    fn smallest_sufficient_buffer_is_preferred() {
        let mut ws = KernelWorkspace::new();
        let big = ws.take(32, 32);
        let small = ws.take(2, 2);
        ws.recycle(big);
        ws.recycle(small);
        // A small request must not consume the big buffer.
        let taken = ws.take(2, 2);
        assert!(taken.as_slice().len() == 4);
        let big_again = ws.take(32, 32); // still pooled
        assert_eq!(ws.alloc_events(), 2, "reuse should not allocate");
        ws.recycle(taken);
        ws.recycle(big_again);
    }

    #[test]
    fn eviction_keeps_large_buffers() {
        let mut ws = KernelWorkspace::new();
        let big = ws.take(64, 64);
        ws.recycle(big);
        // Flood with small buffers past the cap.
        for _ in 0..40 {
            let m = Matrix::zeros(1, 1);
            ws.recycle(m);
        }
        assert!(ws.pooled() <= POOL_CAP);
        // The big buffer must have survived: taking it is allocation-free.
        let events = ws.alloc_events();
        let big = ws.take(64, 64);
        assert_eq!(ws.alloc_events(), events, "large buffer was evicted");
        ws.recycle(big);
    }
}
