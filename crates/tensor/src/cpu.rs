//! Shared CPU feature detection for the SIMD kernels.
//!
//! Both the SpMM band kernel (`plexus-sparse`) and the GEMM microkernel
//! (this crate) want the same question answered — "may I call an
//! `#[target_feature(enable = "avx2,fma")]` function?" — and the answer
//! must be decided **once per process**: the engine's bitwise-identity
//! invariants (blocked == unblocked, parallel == sequential, overlapped ==
//! blocking, sharded == in-memory, serve == trainer) tolerate FMA's fused
//! rounding only because every call in a run takes the same kernel path.
//! Centralizing the detection here gives one `OnceLock`, one `unsafe`
//! policy, and one place to audit instead of a copy per crate.
//!
//! `PLEXUS_NO_SIMD` (any value) forces the portable scalar kernels, which
//! is how tests and benches get a scalar process without recompiling. The
//! variable is read once at first use, like the detection itself.

use std::sync::OnceLock;

/// Whether the AVX2+FMA kernels are usable in this process. Decided once,
/// from the CPU and `PLEXUS_NO_SIMD` alone — never from shapes or thread
/// counts — so every kernel call in a run agrees on the dispatch.
#[inline]
pub fn fma_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

fn detect() -> bool {
    if std::env::var_os("PLEXUS_NO_SIMD").is_some() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Human-readable name of the kernel path this process dispatches to;
/// recorded in bench machine blocks so snapshots are comparable.
pub fn simd_label() -> &'static str {
    if fma_available() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_across_calls() {
        let first = fma_available();
        for _ in 0..8 {
            assert_eq!(fma_available(), first);
        }
        let label = simd_label();
        assert_eq!(label == "avx2+fma", first);
    }
}
