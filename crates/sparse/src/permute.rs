//! Node permutations — the substrate of the paper's §5.1 double-permutation
//! load balancer.
//!
//! A permutation `p` maps *original* index to *new* index: node `i` of the
//! input becomes node `p[i]` of the output. The §5.1 scheme applies a row
//! permutation `P_r` and a distinct column permutation `P_c` to the
//! adjacency matrix (`P_r A P_cᵀ`), which spreads dense communities across
//! the 2D shard grid far more evenly than a single shared permutation.

use crate::csr::{Coo, Csr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Uniformly random permutation of `{0..n}` (Fisher–Yates, seeded).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    p.shuffle(&mut rng);
    p
}

/// Inverse permutation: `inv[p[i]] = i`.
pub fn inverse_permutation(p: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; p.len()];
    for (i, &pi) in p.iter().enumerate() {
        inv[pi as usize] = i as u32;
    }
    inv
}

/// Validate that `p` is a permutation of `{0..n}` (debug tool; O(n)).
pub fn is_permutation(p: &[u32]) -> bool {
    let mut seen = vec![false; p.len()];
    for &x in p {
        let x = x as usize;
        if x >= p.len() || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// Apply row permutation `pr` and column permutation `pc` to a sparse
/// matrix: output has entry `(pr[r], pc[c])` for every input entry `(r, c)`.
/// This is exactly `P_r A P_cᵀ` in the paper's notation.
pub fn apply_permutation(a: &Csr, pr: &[u32], pc: &[u32]) -> Csr {
    assert_eq!(pr.len(), a.rows(), "apply_permutation: row permutation length mismatch");
    assert_eq!(pc.len(), a.cols(), "apply_permutation: column permutation length mismatch");
    let mut coo = Coo::new(a.rows(), a.cols());
    for r in 0..a.rows() {
        let (cols, vals) = a.row_entries(r);
        let nr = pr[r];
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(nr, pc[c as usize], v);
        }
    }
    coo.to_csr()
}

/// Apply a single permutation symmetrically: `P A Pᵀ` (the naïve §5.1
/// scheme used as the "single permutation" ablation).
pub fn apply_symmetric_permutation(a: &Csr, p: &[u32]) -> Csr {
    apply_permutation(a, p, p)
}

/// Build output rows `[r0, r1)` of `P_r A P_cᵀ` without materializing the
/// full permuted matrix — the streaming path of the out-of-core ingest
/// pipeline. `inv_pr` is the inverse of the row permutation (output row
/// `o` of the permuted matrix is input row `inv_pr[o]`); `pc` is the
/// forward column permutation. Peak extra memory is one band (`~nnz/p`
/// for a `p`-band sweep), never a second full copy of `A`.
///
/// The result is bitwise identical to
/// `apply_permutation(a, pr, pc).block(r0, r1, 0, a.cols())`: entries are
/// the same `f32` bit patterns and columns are sorted within each row
/// exactly as COO→CSR conversion sorts them.
///
/// Output rows are independent (gather a source row, map its columns,
/// sort), so large bands fan the row range out over the persistent
/// work-stealing pool and stitch the per-chunk results serially. Each row
/// is produced by the identical per-row computation on every path, so the
/// result is bitwise the same for any thread count — `PLEXUS_THREADS=1`
/// (or a 1-thread [`rayon::ThreadPool::install`]) takes the exact
/// sequential loop.
pub fn permuted_row_band(a: &Csr, inv_pr: &[u32], pc: &[u32], r0: usize, r1: usize) -> Csr {
    assert_eq!(inv_pr.len(), a.rows(), "permuted_row_band: inverse row permutation length");
    assert_eq!(pc.len(), a.cols(), "permuted_row_band: column permutation length");
    assert!(r0 <= r1 && r1 <= a.rows(), "permuted_row_band: band out of range");
    let threads = rayon::current_num_threads();
    if threads <= 1 || r1 - r0 < 2 * PAR_BAND_MIN_ROWS {
        return permuted_rows_serial(a, inv_pr, pc, r0, r1);
    }
    // A few chunks per worker so stealing smooths out skewed rows; chunks
    // stay large enough that the vstack stitch cost is negligible.
    let chunks = (threads * 4).min((r1 - r0) / PAR_BAND_MIN_ROWS).max(1);
    let per = (r1 - r0).div_ceil(chunks);
    let bounds: Vec<(usize, usize)> =
        (0..chunks).map(|i| (r0 + i * per, (r0 + (i + 1) * per).min(r1))).collect();
    let mut parts: Vec<Csr> =
        bounds.iter().map(|_| Csr::from_raw(0, a.cols(), vec![0], vec![], vec![])).collect();
    parts.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
        let (s, e) = bounds[i];
        slot[0] = permuted_rows_serial(a, inv_pr, pc, s, e);
    });
    Csr::vstack(&parts)
}

/// Below this many rows per chunk, parallel fan-out costs more than the
/// row work it distributes.
const PAR_BAND_MIN_ROWS: usize = 128;

fn permuted_rows_serial(a: &Csr, inv_pr: &[u32], pc: &[u32], r0: usize, r1: usize) -> Csr {
    let mut row_ptr = Vec::with_capacity(r1 - r0 + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    let mut entries: Vec<(u32, f32)> = Vec::new();
    for out_row in r0..r1 {
        let src = inv_pr[out_row] as usize;
        let (cols, vals) = a.row_entries(src);
        entries.clear();
        entries.extend(cols.iter().zip(vals).map(|(&c, &v)| (pc[c as usize], v)));
        // Bijective permutation of unique source columns cannot create
        // duplicates, so a plain sort matches COO conversion bitwise.
        entries.sort_unstable_by_key(|&(c, _)| c);
        col_idx.extend(entries.iter().map(|&(c, _)| c));
        values.extend(entries.iter().map(|&(_, v)| v));
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(r1 - r0, a.cols(), row_ptr, col_idx, values)
}

/// Permute the entries of a vector of per-node data: `out[p[i]] = data[i]`.
pub fn permute_vec<T: Clone + Default>(data: &[T], p: &[u32]) -> Vec<T> {
    assert_eq!(data.len(), p.len(), "permute_vec: length mismatch");
    let mut out = vec![T::default(); data.len()];
    for (i, &pi) in p.iter().enumerate() {
        out[pi as usize] = data[i].clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut coo = Coo::new(4, 4);
        for (r, c, v) in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0), (0, 0, 5.0)] {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    #[test]
    fn random_permutation_is_valid_and_seeded() {
        let p = random_permutation(100, 1);
        assert!(is_permutation(&p));
        assert_eq!(p, random_permutation(100, 1));
        assert_ne!(p, random_permutation(100, 2));
    }

    #[test]
    fn inverse_round_trip() {
        let p = random_permutation(50, 9);
        let inv = inverse_permutation(&p);
        for i in 0..50 {
            assert_eq!(inv[p[i] as usize], i as u32);
        }
    }

    #[test]
    fn permutation_moves_entries() {
        let a = sample();
        let p: Vec<u32> = vec![2, 0, 3, 1]; // i -> p[i]
        let b = apply_symmetric_permutation(&a, &p);
        // (0,1) -> (2,0); (3,0) -> (1,2); (0,0) -> (2,2)
        assert_eq!(b.get(2, 0), 1.0);
        assert_eq!(b.get(1, 2), 4.0);
        assert_eq!(b.get(2, 2), 5.0);
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn distinct_row_col_permutations() {
        let a = sample();
        let pr: Vec<u32> = vec![1, 0, 3, 2];
        let pc: Vec<u32> = vec![3, 2, 1, 0];
        let b = apply_permutation(&a, &pr, &pc);
        // (0,1) -> (pr[0], pc[1]) = (1, 2)
        assert_eq!(b.get(1, 2), 1.0);
        // (2,3) -> (3, 0)
        assert_eq!(b.get(3, 0), 3.0);
    }

    #[test]
    fn permutation_invertible_on_matrix() {
        let a = sample();
        let pr = random_permutation(4, 3);
        let pc = random_permutation(4, 4);
        let b = apply_permutation(&a, &pr, &pc);
        let back = apply_permutation(&b, &inverse_permutation(&pr), &inverse_permutation(&pc));
        assert_eq!(back, a);
    }

    #[test]
    fn permute_vec_matches_matrix_row_movement() {
        let data = vec![10, 20, 30, 40];
        let p: Vec<u32> = vec![2, 0, 3, 1];
        assert_eq!(permute_vec(&data, &p), vec![20, 40, 10, 30]);
    }

    #[test]
    fn row_band_matches_full_permutation() {
        let a = sample();
        let pr = random_permutation(4, 3);
        let pc = random_permutation(4, 4);
        let full = apply_permutation(&a, &pr, &pc);
        let inv_pr = inverse_permutation(&pr);
        for (r0, r1) in [(0, 4), (0, 2), (1, 3), (2, 2), (3, 4)] {
            let band = permuted_row_band(&a, &inv_pr, &pc, r0, r1);
            assert_eq!(band, full.block(r0, r1, 0, 4), "band {:?}", (r0, r1));
        }
    }

    #[test]
    fn row_bands_stitch_to_full_permutation() {
        use crate::csr::Coo;
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 37;
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 6 {
            coo.push(
                rng.random_range(0..n as u32),
                rng.random_range(0..n as u32),
                rng.random_range(-1.0f32..1.0),
            );
        }
        let a = coo.to_csr();
        let pr = random_permutation(n, 7);
        let pc = random_permutation(n, 8);
        let inv_pr = inverse_permutation(&pr);
        let bands: Vec<Csr> = [(0, 13), (13, 26), (26, 37)]
            .iter()
            .map(|&(r0, r1)| permuted_row_band(&a, &inv_pr, &pc, r0, r1))
            .collect();
        assert_eq!(Csr::vstack(&bands), apply_permutation(&a, &pr, &pc));
    }

    /// The pooled band path must be bitwise-identical to the sequential
    /// loop for any thread count — a band large enough to cross the
    /// parallel threshold, compared entry-for-entry in bits.
    #[test]
    fn row_band_bitwise_identical_across_thread_counts() {
        use crate::csr::Coo;
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n = 3 * PAR_BAND_MIN_ROWS;
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 5 {
            coo.push(
                rng.random_range(0..n as u32),
                rng.random_range(0..n as u32),
                rng.random_range(-1.0f32..1.0),
            );
        }
        let a = coo.to_csr();
        let pr = random_permutation(n, 5);
        let pc = random_permutation(n, 6);
        let inv_pr = inverse_permutation(&pr);
        let serial =
            rayon::ThreadPool::new(1).install(|| permuted_row_band(&a, &inv_pr, &pc, 0, n));
        for threads in [2, 4] {
            let par = rayon::ThreadPool::new(threads)
                .install(|| permuted_row_band(&a, &inv_pr, &pc, 0, n));
            assert_eq!(par.row_ptr(), serial.row_ptr(), "{threads} threads");
            assert_eq!(par.col_idx(), serial.col_idx(), "{threads} threads");
            let bits = |c: &Csr| c.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&par), bits(&serial), "{threads} threads");
        }
    }

    #[test]
    fn is_permutation_rejects_bad_input() {
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3]));
        assert!(is_permutation(&[]));
    }
}
