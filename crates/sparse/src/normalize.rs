//! Adjacency-matrix preprocessing: self-loops and symmetric degree
//! normalization, exactly as §2.1 of the paper prescribes.
//!
//! Before training, self-loops are added to `A` so each node's learned
//! representation includes its own features, then every edge `A[u][v]` is
//! scaled by `1/sqrt(d_u * d_v)` where `d` is the post-self-loop degree.
//! This is the standard Kipf & Welling `Â = D^{-1/2}(A+I)D^{-1/2}`.

use crate::csr::{Coo, Csr};

/// Build the normalized adjacency `Â = D^{-1/2}(A+I)D^{-1/2}` from an edge
/// list over `n` nodes.
///
/// Duplicate edges collapse to a single nonzero (adjacency is binary before
/// normalization, as in the paper's datasets). Degrees count the self-loop,
/// so no node has degree zero and the scaling is always finite.
pub fn normalized_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for &(u, v) in edges {
        coo.push(u, v, 1.0);
    }
    for i in 0..n as u32 {
        coo.push(i, i, 1.0);
    }
    let mut a = coo.to_csr();
    // Duplicates summed by to_csr -> clamp back to binary before normalizing.
    for v in a.values_mut() {
        *v = 1.0;
    }
    normalize_csr(&mut a);
    a
}

/// In-place symmetric normalization of an already-assembled matrix:
/// `A[u][v] *= 1/sqrt(d_u * d_v)` with `d` = row nonzero count.
///
/// Row degree is used for both endpoints, which is exact for undirected
/// (structurally symmetric) graphs — the paper's setting ("without loss of
/// generality, this is shown for the undirected case").
pub fn normalize_csr(a: &mut Csr) {
    assert_eq!(a.rows(), a.cols(), "normalize_csr: adjacency must be square");
    let inv_sqrt_deg: Vec<f32> = (0..a.rows())
        .map(|r| {
            let d = a.row_nnz(r);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as f32).sqrt()
            }
        })
        .collect();
    let n = a.rows();
    let row_of = row_index_of_each_nnz(a);
    let col_idx: Vec<u32> = a.col_idx().to_vec();
    for (k, v) in a.values_mut().iter_mut().enumerate() {
        let r = row_of[k] as usize;
        let c = col_idx[k] as usize;
        debug_assert!(r < n && c < n);
        *v *= inv_sqrt_deg[r] * inv_sqrt_deg[c];
    }
}

fn row_index_of_each_nnz(a: &Csr) -> Vec<u32> {
    let mut out = vec![0u32; a.nnz()];
    for r in 0..a.rows() {
        let lo = a.row_ptr()[r];
        let hi = a.row_ptr()[r + 1];
        for slot in &mut out[lo..hi] {
            *slot = r as u32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_are_added() {
        // Path graph 0-1-2.
        let a = normalized_adjacency(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(a.get(0, 0) > 0.0);
        assert!(a.get(1, 1) > 0.0);
        assert!(a.get(2, 2) > 0.0);
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn normalization_values_match_formula() {
        // Path 0-1-2 with self-loops: d0 = 2, d1 = 3, d2 = 2.
        let a = normalized_adjacency(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let expect_01 = 1.0 / (2.0f32 * 3.0).sqrt();
        let expect_00 = 1.0 / 2.0;
        let expect_11 = 1.0 / 3.0;
        assert!((a.get(0, 1) - expect_01).abs() < 1e-6);
        assert!((a.get(1, 0) - expect_01).abs() < 1e-6);
        assert!((a.get(0, 0) - expect_00).abs() < 1e-6);
        assert!((a.get(1, 1) - expect_11).abs() < 1e-6);
    }

    #[test]
    fn isolated_node_gets_self_loop_only() {
        let a = normalized_adjacency(2, &[]);
        assert_eq!(a.nnz(), 2);
        assert!((a.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((a.get(1, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let a = normalized_adjacency(2, &[(0, 1), (0, 1), (1, 0)]);
        // Both nodes have degree 2 (neighbor + self-loop).
        assert!((a.get(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn rows_sum_reasonably_for_symmetric_graph() {
        // Normalized adjacency of a k-regular graph has row sums == 1.
        // Ring of 4 nodes: every node degree 3 after self-loop.
        let edges = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 0), (0, 3)];
        let a = normalized_adjacency(4, &edges);
        for r in 0..4 {
            let (_, vals) = a.row_entries(r);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {} sums to {}", r, s);
        }
    }
}
