//! Sparse matrix substrate for the Plexus reproduction.
//!
//! The aggregation step of a GCN layer (paper eq. 2.1) is an SpMM between
//! the normalized adjacency matrix and the dense feature matrix, and the 3D
//! algorithm shards that adjacency matrix into 2D blocks across the virtual
//! GPU grid. This crate owns everything sparse: the CSR representation,
//! symmetric degree normalization with self-loops, transposition, row/column
//! permutation (the §5.1 double-permutation load balancer operates through
//! these), 2D block extraction (the sharding primitive), row-blocked SpMM
//! (§5.2 blocked aggregation), and nonzero-balance statistics (Table 3).

pub mod blocked;
pub mod csr;
pub mod normalize;
pub mod permute;
pub mod shard;
pub mod spmm;
pub mod stats;

pub use csr::{Coo, Csr};
pub use normalize::normalized_adjacency;
pub use permute::{apply_permutation, inverse_permutation, random_permutation};
pub use shard::{shard_grid, ShardSpec};
pub use spmm::{nnz_balanced_bounds, spmm, spmm_acc, spmm_acc_into, spmm_into, spmm_seq};
pub use stats::{nnz_balance, BalanceStats};
