//! COO and CSR sparse matrix formats.
//!
//! Indices are `u32` (the largest paper graph has 111M nodes, well within
//! range) and values are `f32`, halving memory traffic against a
//! usize/f64 layout — SpMM is bandwidth-bound, so this matters.

use plexus_tensor::Matrix;

/// Coordinate-format sparse matrix: the assembly format used by graph
/// generators and the data loader before conversion to CSR.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    pub rows: usize,
    pub cols: usize,
    pub entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    pub fn push(&mut self, r: u32, c: u32, v: f32) {
        debug_assert!(
            (r as usize) < self.rows && (c as usize) < self.cols,
            "Coo::push: ({}, {}) out of bounds {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        self.entries.push((r, c, v));
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(self)
    }
}

/// Compressed-sparse-row matrix.
///
/// Invariants: `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
/// `row_ptr[rows] == col_idx.len() == values.len()`, `row_ptr` is
/// non-decreasing, and column indices are sorted and unique within a row.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Empty matrix (no nonzeros) of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Build from raw CSR arrays, validating every invariant.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "Csr::from_raw: row_ptr length");
        assert_eq!(row_ptr[0], 0, "Csr::from_raw: row_ptr must start at 0");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "Csr::from_raw: nnz mismatch");
        assert_eq!(col_idx.len(), values.len(), "Csr::from_raw: col/value length mismatch");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "Csr::from_raw: row_ptr not monotone");
        }
        for r in 0..rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for pair in seg.windows(2) {
                assert!(pair[0] < pair[1], "Csr::from_raw: row {} columns not sorted/unique", r);
            }
            if let Some(&last) = seg.last() {
                assert!((last as usize) < cols, "Csr::from_raw: column index out of bounds");
            }
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Build from COO, sorting and summing duplicates.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut entries = coo.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut row_ptr = vec![0usize; coo.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &entries {
            if prev == Some((r, c)) {
                *values.last_mut().expect("duplicate implies prior entry") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        // Per-row counts -> cumulative offsets.
        for r in 1..=coo.rows {
            row_ptr[r] += row_ptr[r - 1];
        }
        Self { rows: coo.rows, cols: coo.cols, row_ptr, col_idx, values }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Resident heap bytes of the CSR arrays (`row_ptr` + `col_idx` +
    /// `values`) — the quantity the §5.4 memory ledger accounts.
    pub fn mem_bytes(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Fraction of entries that are zero, as the paper reports per dataset
    /// ("the fraction of zeros ranges from 99.79% to 99.99%").
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row_entries(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)`, or 0.0 when absent (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let (cols, vals) = self.row_entries(r);
        match cols.binary_search(&(c as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Transpose (CSR -> CSR of the transpose) via counting sort; O(nnz).
    pub fn transposed(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let (cols, vals) = self.row_entries(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let dst = cursor[c as usize];
                col_idx[dst] = r as u32;
                values[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        // Source rows are visited in order, so target columns come out sorted.
        Csr { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Densify (tests and small references only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row_entries(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m[(r, c as usize)] = v;
            }
        }
        m
    }

    /// Extract the block `[r0, r1) x [c0, c1)` as a new CSR with local
    /// indices — the core sharding primitive.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Csr {
        assert!(
            r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols,
            "Csr::block out of bounds: [{},{})x[{},{}) of {}x{}",
            r0,
            r1,
            c0,
            c1,
            self.rows,
            self.cols
        );
        let mut row_ptr = Vec::with_capacity(r1 - r0 + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in r0..r1 {
            let (cols, vals) = self.row_entries(r);
            // Columns are sorted: binary search the window once per row.
            let lo = cols.partition_point(|&c| (c as usize) < c0);
            let hi = cols.partition_point(|&c| (c as usize) < c1);
            for k in lo..hi {
                col_idx.push(cols[k] - c0 as u32);
                values.push(vals[k]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr { rows: r1 - r0, cols: c1 - c0, row_ptr, col_idx, values }
    }

    /// Count nonzeros in a block without materializing it (used by the
    /// balance statistics and by the performance model).
    pub fn block_nnz(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> usize {
        let mut count = 0;
        for r in r0..r1 {
            let (cols, _) = self.row_entries(r);
            let lo = cols.partition_point(|&c| (c as usize) < c0);
            let hi = cols.partition_point(|&c| (c as usize) < c1);
            count += hi - lo;
        }
        count
    }

    /// Zero-pad to a larger shape (extra rows are empty; extra column space
    /// needs no storage change).
    pub fn zero_padded(&self, rows: usize, cols: usize) -> Csr {
        assert!(rows >= self.rows && cols >= self.cols, "Csr::zero_padded: target smaller");
        let mut row_ptr = self.row_ptr.clone();
        row_ptr.resize(rows + 1, self.nnz());
        Csr { rows, cols, row_ptr, col_idx: self.col_idx.clone(), values: self.values.clone() }
    }

    /// Vertically concatenate row-blocks that share a column count.
    pub fn vstack(blocks: &[Csr]) -> Csr {
        assert!(!blocks.is_empty(), "Csr::vstack of zero blocks");
        let cols = blocks[0].cols;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut rows = 0;
        for b in blocks {
            assert_eq!(b.cols, cols, "Csr::vstack: inconsistent column counts");
            let base = *row_ptr.last().unwrap();
            row_ptr.extend(b.row_ptr[1..].iter().map(|&p| p + base));
            col_idx.extend_from_slice(&b.col_idx);
            values.extend_from_slice(&b.values);
            rows += b.rows;
        }
        Csr { rows, cols, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_basic() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, 1.0);
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn unsorted_coo_input_is_sorted() {
        let mut coo = Coo::new(2, 3);
        coo.push(1, 2, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        let m = coo.to_csr();
        assert_eq!(m.row_entries(1).0, &[0, 2]);
    }

    #[test]
    fn transpose_round_trip_and_values() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn block_extraction_local_indices() {
        let m = sample();
        let b = m.block(1, 3, 0, 2); // rows {1,2} x cols {0,1}
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.get(1, 0), 3.0);
        assert_eq!(b.get(1, 1), 4.0);
        assert_eq!(m.block_nnz(1, 3, 0, 2), 2);
    }

    #[test]
    fn block_nnz_matches_block() {
        let m = sample();
        for r0 in 0..3 {
            for r1 in r0..=3 {
                for c0 in 0..3 {
                    for c1 in c0..=3 {
                        assert_eq!(m.block_nnz(r0, r1, c0, c1), m.block(r0, r1, c0, c1).nnz());
                    }
                }
            }
        }
    }

    #[test]
    fn vstack_restores_row_split() {
        let m = sample();
        let top = m.block(0, 1, 0, 3);
        let bottom = m.block(1, 3, 0, 3);
        assert_eq!(Csr::vstack(&[top, bottom]), m);
    }

    #[test]
    fn eye_and_padding() {
        let i = Csr::eye(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(2, 2), 1.0);
        let p = i.zero_padded(5, 5);
        assert_eq!(p.shape(), (5, 5));
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.row_nnz(4), 0);
    }

    #[test]
    fn sparsity_fraction() {
        let m = sample();
        assert!((m.sparsity() - (1.0 - 4.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "columns not sorted")]
    fn from_raw_rejects_unsorted() {
        let _ = Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 1)], 4.0);
        assert_eq!(d[(1, 1)], 0.0);
    }
}
