//! SpMM: `C = A_sparse * B_dense` — the kernel that dominates GNN training
//! time (paper §1: "the aggregation phase involves SpMM, which dominates
//! the computational time").
//!
//! The implementation is the row-split scheme of Yang et al. that the paper
//! cites in §4.1, rebuilt around two throughput decisions:
//!
//! * **Feature-band tiling with register accumulators** (32/16-wide
//!   column bands): each band of the output row lives in
//!   registers for the
//!   whole sweep over the row's nonzeros, so `C` is loaded/stored once per
//!   band instead of once per nonzero. Dense rows of `B` are still read
//!   contiguously — the access pattern that makes "shorter-fatter" dense
//!   operands faster, which the paper's computational model penalizes
//!   tall-skinny configurations for.
//! * **Nonzero-prefix-sum work partitioning** for the parallel path:
//!   RMAT-style degree distributions are heavily skewed, so splitting by
//!   row *count* leaves workers idle behind whoever drew the hub rows.
//!   [`nnz_balanced_bounds`] cuts the row range at equal cumulative-nnz
//!   targets instead; rows are never split, so per-row results are
//!   identical to the sequential kernel bit for bit.
//!
//! Every entry point (including [`spmm_acc`], which used to be
//! sequential-only) dispatches through the same size check, and the `_into`
//! variants write into caller-owned buffers so the training engines can
//! recycle outputs through a `KernelWorkspace` instead of allocating per
//! call.
//!
//! Accumulation order per output element is the row's ascending-nonzero
//! order in every path — band tiling, remainders, and partitioning change
//! *which registers* hold the partial sums, never the f32 operation
//! sequence — so blocked/unblocked and parallel/sequential results are
//! bitwise identical.

use crate::csr::Csr;
use plexus_tensor::Matrix;
use rayon::prelude::*;

/// Work threshold below which the sequential kernel is used.
const PAR_THRESHOLD: usize = 1 << 16;

/// Wide column band: eight 4-wide f32 accumulator vectors per band (the
/// fewer passes over a row's nonzeros, the less index arithmetic and
/// column/value re-traversal per output element).
const BAND_W: usize = 32;
/// Narrow column band for the 16..31-column tail.
const BAND_N: usize = 16;

/// `C = A * B` (allocating). Dispatches to the parallel kernel when the
/// flop count justifies it.
pub fn spmm(a: &Csr, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    spmm_into(a, b, &mut c);
    c
}

/// `C = A * B` into a preallocated output (every element overwritten, so
/// `c` may hold recycled garbage on entry).
pub fn spmm_into(a: &Csr, b: &Matrix, c: &mut Matrix) {
    check_shapes("spmm", a, b, c);
    dispatch(a, b, c, false);
}

/// `C += A * B` into an existing accumulator (used by blocked aggregation
/// when partial row-blocks land in a shared output).
pub fn spmm_acc(a: &Csr, b: &Matrix, c: &mut Matrix) {
    spmm_acc_into(a, b, c);
}

/// `C += A * B`; like [`spmm_into`] but accumulating. Routed through the
/// same size-dispatched parallel path as [`spmm`].
pub fn spmm_acc_into(a: &Csr, b: &Matrix, c: &mut Matrix) {
    check_shapes("spmm_acc", a, b, c);
    dispatch(a, b, c, true);
}

/// Sequential SpMM (allocating), kept public so benches and tests can
/// compare the parallel dispatch against it directly.
pub fn spmm_seq(a: &Csr, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    check_shapes("spmm", a, b, &c);
    spmm_rows(a, b, c.as_mut_slice(), 0, a.rows(), false);
    c
}

fn check_shapes(what: &str, a: &Csr, b: &Matrix, c: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "{}: inner dimensions differ: A is {}x{}, B is {}x{}",
        what,
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        c.shape(),
        (a.rows(), b.cols()),
        "{}: output shape {:?} does not match {}x{}",
        what,
        c.shape(),
        a.rows(),
        b.cols()
    );
}

fn dispatch(a: &Csr, b: &Matrix, c: &mut Matrix, accumulate: bool) {
    if a.nnz() * b.cols() >= PAR_THRESHOLD {
        spmm_par(a, b, c, accumulate);
    } else {
        spmm_rows(a, b, c.as_mut_slice(), 0, a.rows(), accumulate);
    }
}

/// Split rows `[0, rows)` into at most `max_chunks` contiguous ranges of
/// near-equal *nonzero* count (prefix-sum targets). Rows are never split;
/// every row lands in exactly one range. Falls back to an even row split
/// when the matrix has no nonzeros.
pub fn nnz_balanced_bounds(row_ptr: &[usize], max_chunks: usize) -> Vec<(usize, usize)> {
    let rows = row_ptr.len() - 1;
    if rows == 0 {
        return Vec::new();
    }
    let chunks = max_chunks.clamp(1, rows);
    let total = row_ptr[rows];
    if total == 0 {
        return (0..chunks)
            .map(|i| (i * rows / chunks, (i + 1) * rows / chunks))
            .filter(|&(r0, r1)| r0 < r1)
            .collect();
    }
    let mut bounds = Vec::with_capacity(chunks);
    let mut r0 = 0;
    for i in 0..chunks {
        if r0 >= rows {
            break;
        }
        let mut r1 = if i + 1 == chunks {
            rows
        } else {
            // First row boundary at/after the cumulative-nnz target, but
            // always advance at least one row.
            let target = (i + 1) * total / chunks;
            let mut r = r0 + 1;
            while r < rows && row_ptr[r] < target {
                r += 1;
            }
            r
        };
        if r1 > rows {
            r1 = rows;
        }
        bounds.push((r0, r1));
        r0 = r1;
    }
    if let Some(last) = bounds.last_mut() {
        last.1 = rows;
    }
    bounds
}

fn spmm_par(a: &Csr, b: &Matrix, c: &mut Matrix, accumulate: bool) {
    let n = b.cols();
    // Ask the pool (global or installed) rather than the OS: under
    // PLEXUS_THREADS=1 or a 1-thread `ThreadPool::install` this must take
    // the exact sequential path.
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        spmm_rows(a, b, c.as_mut_slice(), 0, a.rows(), accumulate);
        return;
    }
    // A few chunks per worker so the round-robin deal smooths residual
    // imbalance beyond what the prefix-sum cut already removed.
    let bounds = nnz_balanced_bounds(a.row_ptr(), threads * 4);
    let mut tasks = Vec::with_capacity(bounds.len());
    let mut rest = c.as_mut_slice();
    let mut consumed = 0;
    for &(r0, r1) in &bounds {
        debug_assert_eq!(r0, consumed);
        let (head, tail) = rest.split_at_mut((r1 - r0) * n);
        tasks.push((r0, r1, head));
        rest = tail;
        consumed = r1;
    }
    tasks.into_par_iter().for_each(|(r0, r1, rows)| {
        spmm_rows(a, b, rows, r0, r1, accumulate);
    });
}

/// Process rows `[r0, r1)`; `c_rows` is the output slice for exactly that
/// row range.
fn spmm_rows(a: &Csr, b: &Matrix, c_rows: &mut [f32], r0: usize, r1: usize, accumulate: bool) {
    let n = b.cols();
    debug_assert_eq!(c_rows.len(), (r1 - r0) * n);
    for (local, r) in (r0..r1).enumerate() {
        let (cols, vals) = a.row_entries(r);
        let crow = &mut c_rows[local * n..(local + 1) * n];
        spmm_row(cols, vals, b, crow, accumulate);
    }
}

/// One output row: dispatches to the AVX2+FMA band kernel when the CPU
/// has it — through the shared once-per-process policy in
/// [`plexus_tensor::cpu`], the same detection the GEMM microkernel uses,
/// so every kernel in a run agrees on the path and all bitwise-identity
/// invariants hold — otherwise to the portable band kernel.
#[inline]
fn spmm_row(cols: &[u32], vals: &[f32], b: &Matrix, crow: &mut [f32], accumulate: bool) {
    #[cfg(target_arch = "x86_64")]
    if plexus_tensor::cpu::fma_available() {
        // SAFETY: `fma_available()` verified avx2+fma support on this CPU.
        unsafe { x86::spmm_row_fma(cols, vals, b.as_slice(), b.cols(), crow, accumulate) };
        return;
    }
    spmm_row_portable(cols, vals, b, crow, accumulate);
}

/// One output row, band by band: each band-wide slice of the row is
/// accumulated in registers across the row's nonzeros, then stored once.
/// The per-element accumulation order is the ascending-nonzero order in
/// every band and in the remainder — identical to the naive kernel.
#[inline]
fn spmm_row_portable(cols: &[u32], vals: &[f32], b: &Matrix, crow: &mut [f32], accumulate: bool) {
    let n = crow.len();
    let bdata = b.as_slice();
    let ldb = b.cols();
    let mut j = 0;
    while j + 2 * BAND_W <= n {
        band_pass::<{ 2 * BAND_W }>(cols, vals, bdata, ldb, crow, j, accumulate);
        j += 2 * BAND_W;
    }
    if j + BAND_W <= n {
        band_pass::<BAND_W>(cols, vals, bdata, ldb, crow, j, accumulate);
        j += BAND_W;
    }
    if j + BAND_N <= n {
        band_pass::<BAND_N>(cols, vals, bdata, ldb, crow, j, accumulate);
        j += BAND_N;
    }
    if j < n {
        let rem = n - j;
        let mut acc = [0.0f32; BAND_N];
        if accumulate {
            acc[..rem].copy_from_slice(&crow[j..]);
        }
        for (&col, &v) in cols.iter().zip(vals) {
            let base = col as usize * ldb + j;
            let brow = &bdata[base..base + rem];
            for (x, &bv) in acc[..rem].iter_mut().zip(brow) {
                *x += v * bv;
            }
        }
        crow[j..].copy_from_slice(&acc[..rem]);
    }
}

/// One fixed-width band sweep: `crow[j..j+W] (+)= A_row * B[:, j..j+W]`,
/// accumulators in registers, constant-bound inner loop so LLVM promotes
/// and vectorizes the whole block.
#[inline]
fn band_pass<const W: usize>(
    cols: &[u32],
    vals: &[f32],
    bdata: &[f32],
    ldb: usize,
    crow: &mut [f32],
    j: usize,
    accumulate: bool,
) {
    let mut acc = [0.0f32; W];
    if accumulate {
        acc.copy_from_slice(&crow[j..j + W]);
    }
    for (&col, &v) in cols.iter().zip(vals) {
        let base = col as usize * ldb + j;
        let brow: &[f32; W] = bdata[base..base + W].try_into().expect("band width");
        for l in 0..W {
            acc[l] += v * brow[l];
        }
    }
    crow[j..j + W].copy_from_slice(&acc);
}

/// AVX2+FMA row kernel, kept to the minimum `unsafe` surface a vector
/// kernel needs (the same policy as the GEMM microkernel in
/// `plexus-tensor`): the `#[target_feature]` call boundary and the SIMD
/// load/store intrinsics. Every pointer is derived from a bounds-checked
/// slice immediately before use, so the safety argument is purely "the CPU
/// features were detected" — and detection lives in one shared place,
/// [`plexus_tensor::cpu`].
///
/// FMA fuses each multiply-add without intermediate rounding, so values
/// can differ from the portable kernel in the last ulp. Dispatch is
/// decided once per process from the CPU alone — never from shapes or
/// thread counts — so within any build the engine's bitwise invariants
/// (blocked == unblocked, parallel == sequential, overlapped == blocking,
/// sharded == in-memory) are untouched.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load(src: &[f32]) -> __m256 {
        debug_assert!(src.len() >= 8);
        _mm256_loadu_ps(src.as_ptr())
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store(dst: &mut [f32], v: __m256) {
        debug_assert!(dst.len() >= 8);
        _mm256_storeu_ps(dst.as_mut_ptr(), v)
    }

    /// One output row: 32-wide bands (four 8-lane FMA accumulators), an
    /// 8-wide band for the tail, then a scalar remainder. Per element the
    /// accumulation is the ascending-nonzero order, fused per step.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA; call only after [`available`] returned true.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn spmm_row_fma(
        cols: &[u32],
        vals: &[f32],
        bdata: &[f32],
        ldb: usize,
        crow: &mut [f32],
        accumulate: bool,
    ) {
        let n = crow.len();
        let mut j = 0;
        while j + 32 <= n {
            let band = &crow[j..j + 32];
            let (mut a0, mut a1, mut a2, mut a3) = if accumulate {
                (load(&band[0..]), load(&band[8..]), load(&band[16..]), load(&band[24..]))
            } else {
                let z = _mm256_setzero_ps();
                (z, z, z, z)
            };
            for (&col, &v) in cols.iter().zip(vals) {
                let base = col as usize * ldb + j;
                let brow = &bdata[base..base + 32];
                let vv = _mm256_set1_ps(v);
                a0 = _mm256_fmadd_ps(vv, load(&brow[0..]), a0);
                a1 = _mm256_fmadd_ps(vv, load(&brow[8..]), a1);
                a2 = _mm256_fmadd_ps(vv, load(&brow[16..]), a2);
                a3 = _mm256_fmadd_ps(vv, load(&brow[24..]), a3);
            }
            let band = &mut crow[j..j + 32];
            store(&mut band[0..], a0);
            store(&mut band[8..], a1);
            store(&mut band[16..], a2);
            store(&mut band[24..], a3);
            j += 32;
        }
        if j + 16 <= n {
            let band = &crow[j..j + 16];
            let (mut a0, mut a1) = if accumulate {
                (load(&band[0..]), load(&band[8..]))
            } else {
                (_mm256_setzero_ps(), _mm256_setzero_ps())
            };
            for (&col, &v) in cols.iter().zip(vals) {
                let base = col as usize * ldb + j;
                let brow = &bdata[base..base + 16];
                let vv = _mm256_set1_ps(v);
                a0 = _mm256_fmadd_ps(vv, load(&brow[0..]), a0);
                a1 = _mm256_fmadd_ps(vv, load(&brow[8..]), a1);
            }
            let band = &mut crow[j..j + 16];
            store(&mut band[0..], a0);
            store(&mut band[8..], a1);
            j += 16;
        }
        while j + 8 <= n {
            let mut a0 = if accumulate { load(&crow[j..j + 8]) } else { _mm256_setzero_ps() };
            for (&col, &v) in cols.iter().zip(vals) {
                let base = col as usize * ldb + j;
                a0 = _mm256_fmadd_ps(_mm256_set1_ps(v), load(&bdata[base..base + 8]), a0);
            }
            store(&mut crow[j..j + 8], a0);
            j += 8;
        }
        if j < n {
            let rem = n - j;
            let mut acc = [0.0f32; 8];
            if accumulate {
                acc[..rem].copy_from_slice(&crow[j..]);
            }
            for (&col, &v) in cols.iter().zip(vals) {
                let base = col as usize * ldb + j;
                let brow = &bdata[base..base + rem];
                for (x, &bv) in acc[..rem].iter_mut().zip(brow) {
                    // Fused like the vector lanes, for one consistent
                    // rounding rule across the whole row.
                    *x = v.mul_add(bv, *x);
                }
            }
            crow[j..].copy_from_slice(&acc[..rem]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use plexus_tensor::{assert_close, gemm, Trans};

    fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for _ in 0..nnz_per_row {
                let c = rng.random_range(0..cols as u32);
                coo.push(r as u32, c, rng.random_range(-1.0f32..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = random_csr(23, 17, 4, 1);
        let b = Matrix::from_fn(17, 9, |i, j| ((i * 3 + j) as f32 * 0.1).cos());
        let sparse_result = spmm(&a, &b);
        let mut dense_result = Matrix::zeros(23, 9);
        gemm(&mut dense_result, &a.to_dense(), Trans::N, &b, Trans::N, 1.0, 0.0);
        assert_close(&sparse_result, &dense_result, 1e-5, "spmm vs gemm");
    }

    #[test]
    fn parallel_path_matches_sequential_bitwise() {
        // Big enough to exceed PAR_THRESHOLD; band + remainder columns.
        let a = random_csr(500, 400, 20, 2);
        for cols in [16usize, 19, 5, 64] {
            let b = Matrix::from_fn(400, cols, |i, j| ((i + j) as f32 * 0.01).sin());
            assert_eq!(
                spmm(&a, &b).as_slice(),
                spmm_seq(&a, &b).as_slice(),
                "par vs seq spmm must be bitwise identical at {} cols",
                cols
            );
        }
    }

    #[test]
    fn into_variant_overwrites_recycled_garbage() {
        let a = random_csr(40, 30, 6, 7);
        let b = Matrix::from_fn(30, 21, |i, j| ((i * 2 + j) as f32 * 0.05).cos());
        let mut c = Matrix::full(40, 21, f32::NAN);
        spmm_into(&a, &b, &mut c);
        assert_eq!(c.as_slice(), spmm_seq(&a, &b).as_slice());
    }

    #[test]
    fn empty_rows_produce_zero_rows() {
        let a = Csr::empty(3, 3);
        let b = Matrix::full(3, 2, 1.0);
        let c = spmm(&a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_noop() {
        let b = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f32);
        let c = spmm(&Csr::eye(5), &b);
        assert_close(&c, &b, 0.0, "identity spmm");
    }

    #[test]
    fn spmm_acc_accumulates() {
        let a = Csr::eye(3);
        let b = Matrix::full(3, 2, 2.0);
        let mut c = Matrix::full(3, 2, 1.0);
        spmm_acc(&a, &b, &mut c);
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn spmm_acc_large_matches_two_step_reference() {
        // Above PAR_THRESHOLD: the accumulate path must dispatch parallel
        // and still equal seed + A*B exactly.
        let a = random_csr(300, 250, 15, 3);
        let b = Matrix::from_fn(250, 24, |i, j| ((i * 5 + j) as f32 * 0.02).sin());
        assert!(a.nnz() * b.cols() >= super::PAR_THRESHOLD, "test must exercise the par path");
        let seed_c = Matrix::from_fn(300, 24, |i, j| (i + j) as f32 * 0.1);
        let mut c = seed_c.clone();
        spmm_acc(&a, &b, &mut c);
        // Reference: sequential accumulate onto the same seed.
        let mut reference = seed_c;
        spmm_rows(&a, &b, reference.as_mut_slice(), 0, a.rows(), true);
        assert_eq!(c.as_slice(), reference.as_slice());
    }

    #[test]
    fn nnz_balanced_bounds_cover_and_balance() {
        let a = random_csr(97, 50, 7, 11);
        for chunks in [1usize, 2, 3, 8, 97, 200] {
            let bounds = nnz_balanced_bounds(a.row_ptr(), chunks);
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, 97);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
            assert!(bounds.len() <= chunks.min(97));
        }
    }

    #[test]
    fn nnz_balanced_bounds_isolate_hub_rows() {
        // One hub row with 1000 nnz among 9 single-nnz rows: with 4 chunks
        // the hub must not share a chunk with many other rows.
        let mut coo = Coo::new(10, 10);
        for c in 0..10u32 {
            for _ in 0..100 {
                coo.push(4, c, 1.0);
            }
        }
        for r in 0..10u32 {
            coo.push(r, 0, 1.0);
        }
        let a = coo.to_csr();
        let bounds = nnz_balanced_bounds(a.row_ptr(), 4);
        let hub_chunk = bounds.iter().find(|&&(r0, r1)| r0 <= 4 && 4 < r1).unwrap();
        let hub_nnz = a.row_ptr()[hub_chunk.1] - a.row_ptr()[hub_chunk.0];
        assert!(hub_nnz >= a.nnz() / 4, "hub chunk should carry at least its share of nonzeros");
        assert!(
            hub_chunk.1 - hub_chunk.0 <= 6,
            "hub row must not drag most rows into one chunk: {:?}",
            bounds
        );
    }

    #[test]
    fn zero_nnz_matrix_splits_evenly() {
        let a = Csr::empty(10, 10);
        let bounds = nnz_balanced_bounds(a.row_ptr(), 3);
        assert_eq!(bounds.first().unwrap().0, 0);
        assert_eq!(bounds.last().unwrap().1, 10);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Csr::empty(3, 4);
        let b = Matrix::zeros(5, 2);
        let _ = spmm(&a, &b);
    }
}
