//! SpMM: `C = A_sparse * B_dense` — the kernel that dominates GNN training
//! time (paper §1: "the aggregation phase involves SpMM, which dominates
//! the computational time").
//!
//! The implementation is the row-split scheme of Yang et al. that the paper
//! cites in §4.1: each sparse row produces one dense output row by scaling
//! and accumulating rows of `B`. Dense rows of `B` are read contiguously,
//! which is what makes "shorter-fatter" dense operands faster — the effect
//! the paper's computational model penalizes tall-skinny configurations for.

use crate::csr::Csr;
use plexus_tensor::Matrix;
use rayon::prelude::*;

/// Work threshold below which the sequential kernel is used.
const PAR_THRESHOLD: usize = 1 << 16;

/// `C = A * B` (allocating). Dispatches to the parallel kernel when the
/// flop count justifies it.
pub fn spmm(a: &Csr, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm: inner dimensions differ: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    if a.nnz() * b.cols() >= PAR_THRESHOLD {
        spmm_par_into(a, b, &mut c);
    } else {
        spmm_seq_into(a, b, &mut c);
    }
    c
}

/// Sequential SpMM into a preallocated output (`C` is overwritten).
pub fn spmm_seq(a: &Csr, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    spmm_seq_into(a, b, &mut c);
    c
}

fn spmm_seq_into(a: &Csr, b: &Matrix, c: &mut Matrix) {
    let n = b.cols();
    for r in 0..a.rows() {
        let (cols, vals) = a.row_entries(r);
        let crow = c.row_mut(r);
        for (&col, &v) in cols.iter().zip(vals) {
            let brow = b.row(col as usize);
            for j in 0..n {
                crow[j] += v * brow[j];
            }
        }
    }
}

fn spmm_par_into(a: &Csr, b: &Matrix, c: &mut Matrix) {
    let n = b.cols();
    c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(r, crow)| {
        let (cols, vals) = a.row_entries(r);
        for (&col, &v) in cols.iter().zip(vals) {
            let brow = b.row(col as usize);
            for j in 0..n {
                crow[j] += v * brow[j];
            }
        }
    });
}

/// `C += A * B` into an existing accumulator (used by blocked aggregation
/// when partial row-blocks land in a shared output).
pub fn spmm_acc(a: &Csr, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "spmm_acc: inner dimension mismatch");
    assert_eq!(c.shape(), (a.rows(), b.cols()), "spmm_acc: output shape mismatch");
    let n = b.cols();
    for r in 0..a.rows() {
        let (cols, vals) = a.row_entries(r);
        let crow = c.row_mut(r);
        for (&col, &v) in cols.iter().zip(vals) {
            let brow = b.row(col as usize);
            for j in 0..n {
                crow[j] += v * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use plexus_tensor::{assert_close, gemm, Trans};

    fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for _ in 0..nnz_per_row {
                let c = rng.random_range(0..cols as u32);
                coo.push(r as u32, c, rng.random_range(-1.0f32..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = random_csr(23, 17, 4, 1);
        let b = Matrix::from_fn(17, 9, |i, j| ((i * 3 + j) as f32 * 0.1).cos());
        let sparse_result = spmm(&a, &b);
        let mut dense_result = Matrix::zeros(23, 9);
        gemm(&mut dense_result, &a.to_dense(), Trans::N, &b, Trans::N, 1.0, 0.0);
        assert_close(&sparse_result, &dense_result, 1e-5, "spmm vs gemm");
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Big enough to exceed PAR_THRESHOLD.
        let a = random_csr(500, 400, 20, 2);
        let b = Matrix::from_fn(400, 16, |i, j| ((i + j) as f32 * 0.01).sin());
        assert_close(&spmm(&a, &b), &spmm_seq(&a, &b), 1e-5, "par vs seq spmm");
    }

    #[test]
    fn empty_rows_produce_zero_rows() {
        let a = Csr::empty(3, 3);
        let b = Matrix::full(3, 2, 1.0);
        let c = spmm(&a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_noop() {
        let b = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f32);
        let c = spmm(&Csr::eye(5), &b);
        assert_close(&c, &b, 0.0, "identity spmm");
    }

    #[test]
    fn spmm_acc_accumulates() {
        let a = Csr::eye(3);
        let b = Matrix::full(3, 2, 2.0);
        let mut c = Matrix::full(3, 2, 1.0);
        spmm_acc(&a, &b, &mut c);
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Csr::empty(3, 4);
        let b = Matrix::zeros(5, 2);
        let _ = spmm(&a, &b);
    }
}
