//! 2D sharding of sparse matrices — the primitive behind both the 3D
//! algorithm's adjacency distribution (paper §3.1) and the parallel data
//! loader's offline shard files (§5.4).

use crate::csr::Csr;

/// Description of one shard inside a `p x q` block grid over an `R x C`
/// matrix. Row/column ranges are computed by even splitting; when the
/// dimension is not divisible the remainder goes to the leading shards,
/// matching how the engine pads matrices so that in practice splits are
/// exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub row_block: usize,
    pub col_block: usize,
    pub r0: usize,
    pub r1: usize,
    pub c0: usize,
    pub c1: usize,
}

impl ShardSpec {
    /// Compute the spec of block `(i, j)` of a `p x q` grid over `rows x cols`.
    pub fn new(rows: usize, cols: usize, p: usize, q: usize, i: usize, j: usize) -> Self {
        assert!(p > 0 && q > 0, "ShardSpec: grid must be nonempty");
        assert!(i < p && j < q, "ShardSpec: block ({}, {}) outside {}x{} grid", i, j, p, q);
        let (r0, r1) = split_range(rows, p, i);
        let (c0, c1) = split_range(cols, q, j);
        Self { row_block: i, col_block: j, r0, r1, c0, c1 }
    }

    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    pub fn cols(&self) -> usize {
        self.c1 - self.c0
    }
}

/// Even split of `len` into `parts`; part `idx` gets `[start, end)`.
/// Leading parts absorb the remainder so sizes differ by at most one.
pub fn split_range(len: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts > 0 && idx < parts, "split_range: index {} of {} parts", idx, parts);
    let base = len / parts;
    let rem = len % parts;
    let start = idx * base + idx.min(rem);
    let size = base + usize::from(idx < rem);
    (start, start + size)
}

/// Shard a sparse matrix into a `p x q` grid of local-index CSR blocks,
/// returned in row-major grid order.
pub fn shard_grid(a: &Csr, p: usize, q: usize) -> Vec<Csr> {
    let mut out = Vec::with_capacity(p * q);
    for i in 0..p {
        for j in 0..q {
            let s = ShardSpec::new(a.rows(), a.cols(), p, q, i, j);
            out.push(a.block(s.r0, s.r1, s.c0, s.c1));
        }
    }
    out
}

/// Reassemble a full matrix from a `p x q` grid of shards produced by
/// [`shard_grid`] (inverse operation; used by tests and the data loader).
pub fn unshard_grid(shards: &[Csr], p: usize, q: usize) -> Csr {
    assert_eq!(shards.len(), p * q, "unshard_grid: expected {} shards", p * q);
    let mut row_bands = Vec::with_capacity(p);
    for i in 0..p {
        let band = hstack_csr(&shards[i * q..(i + 1) * q]);
        row_bands.push(band);
    }
    Csr::vstack(&row_bands)
}

/// Horizontal concatenation of CSR blocks sharing a row count.
fn hstack_csr(blocks: &[Csr]) -> Csr {
    assert!(!blocks.is_empty(), "hstack_csr of zero blocks");
    let rows = blocks[0].rows();
    let total_cols: usize = blocks.iter().map(|b| b.cols()).sum();
    let total_nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(total_nnz);
    let mut values = Vec::with_capacity(total_nnz);
    for r in 0..rows {
        let mut offset = 0u32;
        for b in blocks {
            assert_eq!(b.rows(), rows, "hstack_csr: inconsistent row counts");
            let (cols, vals) = b.row_entries(r);
            col_idx.extend(cols.iter().map(|&c| c + offset));
            values.extend_from_slice(vals);
            offset += b.cols() as u32;
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(rows, total_cols, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;

    fn random_csr(n: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 4 {
            coo.push(rng.random_range(0..n as u32), rng.random_range(0..n as u32), 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn split_range_covers_exactly() {
        for len in [0usize, 1, 7, 12, 100] {
            for parts in [1usize, 2, 3, 5] {
                let mut covered = 0;
                let mut prev_end = 0;
                for idx in 0..parts {
                    let (s, e) = split_range(len, parts, idx);
                    assert_eq!(s, prev_end, "gap at part {}", idx);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn split_range_balanced() {
        for idx in 0..4 {
            let (s, e) = split_range(10, 4, idx);
            assert!(e - s == 2 || e - s == 3);
        }
    }

    #[test]
    fn shard_unshard_round_trip() {
        let a = random_csr(24, 5);
        for (p, q) in [(1, 1), (2, 2), (3, 4), (4, 3), (24, 1), (1, 24)] {
            let shards = shard_grid(&a, p, q);
            assert_eq!(unshard_grid(&shards, p, q), a, "round trip failed for {}x{}", p, q);
        }
    }

    #[test]
    fn shard_nnz_conserved() {
        let a = random_csr(30, 6);
        let shards = shard_grid(&a, 3, 5);
        let total: usize = shards.iter().map(|s| s.nnz()).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn shard_spec_shapes() {
        let s = ShardSpec::new(100, 60, 4, 3, 2, 1);
        assert_eq!((s.r0, s.r1), (50, 75));
        assert_eq!((s.c0, s.c1), (20, 40));
        assert_eq!(s.rows(), 25);
        assert_eq!(s.cols(), 20);
    }

    #[test]
    fn shard_values_match_source() {
        let a = random_csr(16, 7);
        let shards = shard_grid(&a, 2, 2);
        let s = ShardSpec::new(16, 16, 2, 2, 1, 0);
        for r in s.r0..s.r1 {
            for c in s.c0..s.c1 {
                assert_eq!(shards[2].get(r - s.r0, c - s.c0), a.get(r, c));
            }
        }
    }
}
