//! Row-blocked SpMM — the kernel side of the paper's §5.2 blocked
//! aggregation.
//!
//! The engine splits an adjacency shard into `nblocks` row-blocks; after
//! each block's SpMM it immediately all-reduces that block and concatenates
//! at the end. Splitting here (rather than in the engine) keeps the CSR
//! slicing logic next to the format it slices.

use crate::csr::Csr;
use crate::shard::split_range;
use crate::spmm::spmm;
use plexus_tensor::Matrix;

/// A sparse matrix split into contiguous row blocks.
#[derive(Clone, Debug)]
pub struct RowBlocks {
    blocks: Vec<Csr>,
    /// `[start, end)` row range of each block in the original matrix.
    ranges: Vec<(usize, usize)>,
}

impl RowBlocks {
    /// Split `a` into `nblocks` contiguous row blocks of near-equal height.
    pub fn split(a: &Csr, nblocks: usize) -> Self {
        assert!(nblocks > 0, "RowBlocks::split: need at least one block");
        assert!(
            nblocks <= a.rows().max(1),
            "RowBlocks::split: {} blocks for {} rows",
            nblocks,
            a.rows()
        );
        let mut blocks = Vec::with_capacity(nblocks);
        let mut ranges = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let (r0, r1) = split_range(a.rows(), nblocks, i);
            blocks.push(a.block(r0, r1, 0, a.cols()));
            ranges.push((r0, r1));
        }
        Self { blocks, ranges }
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    pub fn block(&self, i: usize) -> &Csr {
        &self.blocks[i]
    }

    pub fn range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Csr, (usize, usize))> {
        self.blocks.iter().zip(self.ranges.iter().copied())
    }

    /// Total rows across blocks (== original matrix rows).
    pub fn total_rows(&self) -> usize {
        self.ranges.last().map(|&(_, e)| e).unwrap_or(0)
    }
}

/// Blocked SpMM with a per-block callback: computes each block's partial
/// product and hands it to `sink` (the engine's sink performs the per-block
/// all-reduce), then concatenates the processed blocks.
///
/// With `sink = |_, m| m` this is bit-identical to unblocked SpMM because
/// row-split SpMM treats rows independently — a property the tests pin down.
pub fn blocked_spmm(
    blocks: &RowBlocks,
    b: &Matrix,
    mut sink: impl FnMut(usize, Matrix) -> Matrix,
) -> Matrix {
    let mut outs = Vec::with_capacity(blocks.num_blocks());
    for (i, (blk, _)) in blocks.iter().enumerate() {
        let partial = spmm(blk, b);
        outs.push(sink(i, partial));
    }
    Matrix::vstack(&outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use plexus_tensor::assert_close;

    fn random_csr(rows: usize, cols: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for _ in 0..rows * 3 {
            coo.push(
                rng.random_range(0..rows as u32),
                rng.random_range(0..cols as u32),
                rng.random_range(-1.0f32..1.0),
            );
        }
        coo.to_csr()
    }

    #[test]
    fn split_covers_all_rows() {
        let a = random_csr(17, 10, 1);
        let blocks = RowBlocks::split(&a, 4);
        assert_eq!(blocks.total_rows(), 17);
        let nnz: usize = (0..4).map(|i| blocks.block(i).nnz()).sum();
        assert_eq!(nnz, a.nnz());
    }

    #[test]
    fn blocked_equals_unblocked() {
        let a = random_csr(32, 20, 2);
        let b = Matrix::from_fn(20, 8, |i, j| ((i + 2 * j) as f32 * 0.1).sin());
        let reference = spmm(&a, &b);
        for nblocks in [1, 2, 3, 5, 8, 32] {
            let blocks = RowBlocks::split(&a, nblocks);
            let got = blocked_spmm(&blocks, &b, |_, m| m);
            assert_close(&got, &reference, 0.0, "blocked == unblocked (bitwise)");
        }
    }

    #[test]
    fn sink_sees_each_block_once_in_order() {
        let a = random_csr(12, 12, 3);
        let b = Matrix::full(12, 2, 1.0);
        let blocks = RowBlocks::split(&a, 3);
        let mut seen = Vec::new();
        let _ = blocked_spmm(&blocks, &b, |i, m| {
            seen.push((i, m.rows()));
            m
        });
        assert_eq!(seen, vec![(0, 4), (1, 4), (2, 4)]);
    }

    #[test]
    #[should_panic(expected = "blocks for")]
    fn too_many_blocks_rejected() {
        let a = random_csr(4, 4, 4);
        let _ = RowBlocks::split(&a, 10);
    }
}
