//! Nonzero-balance statistics over 2D shard grids.
//!
//! Table 3 of the paper scores load balance as the ratio of the maximum to
//! the mean nonzero count across the 8x8 shards of europe_osm's adjacency
//! matrix: 7.70 for the original ordering, 3.24 after a single symmetric
//! permutation, and 1.001 after the double permutation. [`nnz_balance`]
//! computes exactly that statistic for any matrix and grid.

use crate::csr::Csr;
use crate::shard::ShardSpec;

/// Balance statistics of nonzeros over a `p x q` shard grid.
#[derive(Clone, Debug)]
pub struct BalanceStats {
    pub grid: (usize, usize),
    /// Nonzeros per shard, row-major grid order.
    pub counts: Vec<usize>,
    pub max: usize,
    pub min: usize,
    pub mean: f64,
    /// Max/mean ratio — the paper's Table 3 metric. 1.0 is perfect balance.
    pub max_over_mean: f64,
    /// Coefficient of variation (stddev/mean), a second dispersion measure.
    pub cv: f64,
}

/// Count nonzeros per shard of a `p x q` grid and summarize dispersion.
/// Does not materialize the shards.
pub fn nnz_balance(a: &Csr, p: usize, q: usize) -> BalanceStats {
    assert!(p > 0 && q > 0, "nnz_balance: empty grid");
    let mut counts = Vec::with_capacity(p * q);
    for i in 0..p {
        for j in 0..q {
            let s = ShardSpec::new(a.rows(), a.cols(), p, q, i, j);
            counts.push(a.block_nnz(s.r0, s.r1, s.c0, s.c1));
        }
    }
    summarize(p, q, counts)
}

fn summarize(p: usize, q: usize, counts: Vec<usize>) -> BalanceStats {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / counts.len() as f64;
    let max_over_mean = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    BalanceStats { grid: (p, q), counts, max, min, mean, max_over_mean, cv }
}

/// Row-wise nonzero histogram summary: degree skew drives both the load
/// imbalance the permutations fix and the SpMM variability that blocked
/// aggregation (§5.2) smooths out.
#[derive(Clone, Debug)]
pub struct RowNnzStats {
    pub max: usize,
    pub mean: f64,
    pub p99: usize,
}

pub fn row_nnz_stats(a: &Csr) -> RowNnzStats {
    let mut counts: Vec<usize> = (0..a.rows()).map(|r| a.row_nnz(r)).collect();
    counts.sort_unstable();
    let max = counts.last().copied().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    let p99 = if counts.is_empty() { 0 } else { counts[(counts.len() - 1) * 99 / 100] };
    RowNnzStats { max, mean, p99 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;

    #[test]
    fn uniform_matrix_is_balanced() {
        // Dense-ish uniform pattern: every (r, c) with (r + c) % 2 == 0.
        let mut coo = Coo::new(16, 16);
        for r in 0..16u32 {
            for c in 0..16u32 {
                if (r + c) % 2 == 0 {
                    coo.push(r, c, 1.0);
                }
            }
        }
        let stats = nnz_balance(&coo.to_csr(), 4, 4);
        assert!((stats.max_over_mean - 1.0).abs() < 1e-9);
        assert_eq!(stats.max, stats.min);
    }

    #[test]
    fn clustered_matrix_is_imbalanced() {
        // All nonzeros in the top-left quadrant.
        let mut coo = Coo::new(16, 16);
        for r in 0..8u32 {
            for c in 0..8u32 {
                coo.push(r, c, 1.0);
            }
        }
        let stats = nnz_balance(&coo.to_csr(), 2, 2);
        // One shard holds everything: max/mean = 4.
        assert!((stats.max_over_mean - 4.0).abs() < 1e-9);
        assert_eq!(stats.min, 0);
    }

    #[test]
    fn counts_sum_to_total_nnz() {
        let mut coo = Coo::new(10, 10);
        for i in 0..10u32 {
            coo.push(i, (i * 3) % 10, 1.0);
        }
        let a = coo.to_csr();
        let stats = nnz_balance(&a, 3, 3);
        assert_eq!(stats.counts.iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn row_stats_capture_skew() {
        let mut coo = Coo::new(100, 100);
        for c in 0..50u32 {
            coo.push(0, c, 1.0); // hub row
        }
        for r in 1..100u32 {
            coo.push(r, 0, 1.0);
        }
        let s = row_nnz_stats(&coo.to_csr());
        assert_eq!(s.max, 50);
        assert!(s.mean < 2.0);
    }
}
