//! K-hop receptive-field extraction for inference serving.
//!
//! An `L`-layer GCN prediction for a query set `Q` only reads the rows
//! of the normalized adjacency reachable within `L` hops of `Q`. This
//! module computes, per layer, the exact node sets and sub-CSR blocks a
//! batched serve forward needs, with an ordering discipline chosen for
//! the tree's bitwise-equality contract:
//!
//! * every node set is **sorted ascending and deduplicated**, so the
//!   global→local column remap is monotone;
//! * a monotone remap preserves CSR entry order within each row, and the
//!   SpMM kernels accumulate per row in ascending-entry order — so a
//!   served row of `A·X` is bit-identical to the same row computed on
//!   the full graph.
//!
//! The hot kernels live on [`KhopWorkspace`], a pooled scratch object a
//! serving worker keeps across batches:
//!
//! * **Unions are merge-based.** A layer set is the union of the (already
//!   sorted) row supports of the layer above. Instead of concatenating
//!   every support and sort+dedup-ing the pile (`O(S log S)` on `S`
//!   entries, most of them duplicates near a hub), the workspace stamps
//!   each first-seen node in an epoch-tagged visited table while
//!   filtering every support down to its *novel* suffix — the filtered
//!   segments are still sorted and now globally disjoint — then k-way
//!   merges the segments through a pooled cursor heap. Total work is
//!   `O(S + U log k)` for `U` unique nodes over `k` contributing rows,
//!   and the output is born sorted-unique.
//! * **Extraction scatters a remap table.** [`extract_sub_csr`] used to
//!   `binary_search` the column set per entry (`O(nnz · log |cols|)`);
//!   the workspace instead scatters `col_set[i] → i` into an
//!   epoch-stamped global→local table once per block and remaps each
//!   entry in `O(1)`.
//!
//! Both kernels produce exactly the sets and blocks the previous
//! sort+dedup/binary-search implementation did — same sorted order, same
//! `f32` bit patterns — so the monotone-remap bitwise contract is
//! untouched (asserted by the equivalence proptest below).
//!
//! Adjacency rows are pulled through the [`RowSource`] trait: an
//! in-memory [`Csr`] implements it directly, and the serving artifact
//! implements it by decoding rows in place from mmapped shard files.

use plexus_sparse::Csr;

/// A source of adjacency rows, keyed by global node id.
///
/// Implementations must append the row's column support (and matching
/// values, for [`RowSource::row_entries`]) in **ascending column
/// order** — the order a [`Csr`] stores them in.
pub trait RowSource {
    /// Number of nodes (rows) in the graph.
    fn num_nodes(&self) -> usize;

    /// Appends the column ids of row `v`'s nonzeros to `out`.
    fn row_support(&self, v: u32, out: &mut Vec<u32>);

    /// Appends the column ids and values of row `v`'s nonzeros.
    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>);
}

impl RowSource for Csr {
    fn num_nodes(&self) -> usize {
        self.rows()
    }

    fn row_support(&self, v: u32, out: &mut Vec<u32>) {
        let (cols, _) = self.row_entries(v as usize);
        out.extend_from_slice(cols);
    }

    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>) {
        let (c, v) = Csr::row_entries(self, v as usize);
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
    }
}

/// Pooled scratch state for the k-hop kernels: the epoch-stamped visited
/// and remap tables, the novel-segment buffer the merge union filters
/// into, its cursor heap, and the row-fetch scratch. A worker keeps one
/// across batches, so steady-state extraction allocates nothing beyond
/// the returned sets and blocks themselves.
///
/// Epoch stamping makes table resets `O(1)`: a slot is live only when its
/// stamp equals the current epoch, so "clearing" is bumping the epoch.
/// The tables are dense over node ids (`n` slots) and grow on first use
/// against a larger graph.
#[derive(Default)]
pub struct KhopWorkspace {
    /// Visited table for the merge union; `visited[v] == visit_epoch`
    /// means `v` is already in the set under construction.
    visited: Vec<u32>,
    visit_epoch: u32,
    /// Global→local column remap; valid where `remap_stamp[c] == remap_epoch`.
    remap: Vec<u32>,
    remap_stamp: Vec<u32>,
    remap_epoch: u32,
    /// Concatenated novel-support segments (each sorted, mutually disjoint).
    segs: Vec<u32>,
    /// End offset of each non-empty segment in `segs`.
    seg_ends: Vec<usize>,
    /// Per-segment read cursor during the k-way merge.
    cursors: Vec<usize>,
    /// Binary min-heap of `(next value, segment index)` merge heads.
    heap: Vec<(u32, u32)>,
    /// Row-fetch scratch for [`KhopWorkspace::extract_sub_csr`].
    gcols: Vec<u32>,
    gvals: Vec<f32>,
}

impl KhopWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the stamped tables to cover `n` node ids. New slots are stamp
    /// 0; live epochs start at 1, so fresh slots never read as visited.
    fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
            self.remap.resize(n, 0);
            self.remap_stamp.resize(n, 0);
        }
    }

    fn next_visit_epoch(&mut self) -> u32 {
        if self.visit_epoch == u32::MAX {
            self.visited.fill(0);
            self.visit_epoch = 0;
        }
        self.visit_epoch += 1;
        self.visit_epoch
    }

    fn next_remap_epoch(&mut self) -> u32 {
        if self.remap_epoch == u32::MAX {
            self.remap_stamp.fill(0);
            self.remap_epoch = 0;
        }
        self.remap_epoch += 1;
        self.remap_epoch
    }

    /// Sorted-unique union of the row supports of `rows` (itself sorted):
    /// the merge-based layer-set kernel. See the module docs for the
    /// algorithm; the result is identical to sort+dedup of the
    /// concatenated supports.
    fn merge_union(&mut self, src: &impl RowSource, rows: &[u32]) -> Vec<u32> {
        let epoch = self.next_visit_epoch();
        self.segs.clear();
        self.seg_ends.clear();
        // Pass 1: fetch each row's support and filter it in place down to
        // first-seen nodes. Filtered segments stay sorted and, because the
        // visited table is stamped as we go, are globally disjoint.
        for &v in rows {
            let start = self.segs.len();
            src.row_support(v, &mut self.segs);
            let mut w = start;
            for k in start..self.segs.len() {
                let c = self.segs[k];
                if self.visited[c as usize] != epoch {
                    self.visited[c as usize] = epoch;
                    self.segs[w] = c;
                    w += 1;
                }
            }
            self.segs.truncate(w);
            if w > start {
                self.seg_ends.push(w);
            }
        }
        let k = self.seg_ends.len();
        let mut out = Vec::with_capacity(self.segs.len());
        if k == 0 {
            return out;
        }
        if k == 1 {
            out.extend_from_slice(&self.segs);
            return out;
        }
        // Pass 2: k-way merge of the disjoint sorted segments through the
        // pooled cursor heap. U log k, no post-sort, no dedup pass.
        self.cursors.clear();
        self.heap.clear();
        let mut start = 0;
        for (s, &end) in self.seg_ends.iter().enumerate() {
            self.cursors.push(start + 1);
            heap_push(&mut self.heap, (self.segs[start], s as u32));
            start = end;
        }
        while let Some((val, s)) = heap_pop(&mut self.heap) {
            out.push(val);
            let s = s as usize;
            let cur = self.cursors[s];
            if cur < self.seg_ends[s] {
                self.cursors[s] = cur + 1;
                heap_push(&mut self.heap, (self.segs[cur], s as u32));
            }
        }
        out
    }

    /// Computes the per-layer node sets of the `layers`-hop receptive
    /// field of `queries` — the pooled kernel behind [`khop_node_sets`],
    /// which documents the returned structure.
    pub fn khop_node_sets(
        &mut self,
        src: &impl RowSource,
        queries: &[u32],
        layers: usize,
    ) -> Vec<Vec<u32>> {
        assert!(layers > 0, "a GCN has at least one layer");
        let n = src.num_nodes();
        let mut top: Vec<u32> = queries.to_vec();
        top.sort_unstable();
        top.dedup();
        if let Some(&max) = top.last() {
            assert!(max < n as u32, "query node {max} out of range (graph has {n} nodes)");
        }
        self.ensure(n);
        let mut sets = vec![Vec::new(); layers + 1];
        sets[layers] = top;
        for l in (0..layers).rev() {
            sets[l] = self.merge_union(src, &sets[l + 1]);
        }
        sets
    }

    /// Builds the sub-CSR with rows `row_set` and columns `col_set` — the
    /// pooled kernel behind [`extract_sub_csr`], which documents the
    /// contract. The global→local remap is scattered into the stamped
    /// table once, then every entry remaps in `O(1)`.
    pub fn extract_sub_csr(
        &mut self,
        src: &impl RowSource,
        row_set: &[u32],
        col_set: &[u32],
    ) -> Csr {
        self.ensure(src.num_nodes());
        let epoch = self.next_remap_epoch();
        for (i, &c) in col_set.iter().enumerate() {
            self.remap[c as usize] = i as u32;
            self.remap_stamp[c as usize] = epoch;
        }
        let mut row_ptr = Vec::with_capacity(row_set.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &r in row_set {
            self.gcols.clear();
            self.gvals.clear();
            src.row_entries(r, &mut self.gcols, &mut self.gvals);
            for (&c, &v) in self.gcols.iter().zip(&self.gvals) {
                assert!(
                    self.remap_stamp[c as usize] == epoch,
                    "adjacency column outside the extracted k-hop column set"
                );
                col_idx.push(self.remap[c as usize]);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw(row_set.len(), col_set.len(), row_ptr, col_idx, values)
    }
}

/// Push onto a binary min-heap of `(value, segment)` pairs.
fn heap_push(heap: &mut Vec<(u32, u32)>, item: (u32, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent] <= heap[i] {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

/// Pop the minimum off a binary min-heap of `(value, segment)` pairs.
fn heap_pop(heap: &mut Vec<(u32, u32)>) -> Option<(u32, u32)> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let top = heap.pop();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut min = i;
        if l < heap.len() && heap[l] < heap[min] {
            min = l;
        }
        if r < heap.len() && heap[r] < heap[min] {
            min = r;
        }
        if min == i {
            break;
        }
        heap.swap(i, min);
        i = min;
    }
    top
}

/// Computes the per-layer node sets of the `layers`-hop receptive field
/// of `queries`.
///
/// Returns `layers + 1` sorted, deduplicated sets: `sets[layers]` is the
/// sorted query set (the rows of the last layer's sub-adjacency), and
/// for `l < layers`, `sets[l]` is the union of the column supports of
/// `sets[l + 1]` — simultaneously the columns of layer `l`'s
/// sub-adjacency and the rows of layer `l - 1`'s. `sets[0]` is the set
/// of input-feature rows the forward pass gathers.
///
/// Convenience wrapper over a throwaway [`KhopWorkspace`]; hot callers
/// (the serving engine, the serve bench) keep a workspace instead.
pub fn khop_node_sets(src: &impl RowSource, queries: &[u32], layers: usize) -> Vec<Vec<u32>> {
    KhopWorkspace::new().khop_node_sets(src, queries, layers)
}

/// Builds the sub-CSR with rows `row_set` and columns `col_set` (both
/// sorted ascending), pulling each row's entries from `src`.
///
/// Every column appearing in a fetched row must be present in
/// `col_set`; with the sets produced by [`khop_node_sets`] this holds by
/// construction. The monotone remap keeps each row's entries in
/// ascending local-column order, so [`Csr::from_raw`]'s invariants hold
/// and downstream SpMM accumulation order matches the full graph.
///
/// Convenience wrapper over a throwaway [`KhopWorkspace`]; hot callers
/// keep a workspace instead.
pub fn extract_sub_csr(src: &impl RowSource, row_set: &[u32], col_set: &[u32]) -> Csr {
    KhopWorkspace::new().extract_sub_csr(src, row_set, col_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat_graph;

    fn test_adjacency() -> Csr {
        rmat_graph(8, 8, 42).normalized_adjacency()
    }

    #[test]
    fn khop_sets_are_sorted_unique_and_nested_by_support() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[5, 200, 5, 17], 3);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[3], vec![5, 17, 200]);
        for l in 0..3 {
            assert!(sets[l].windows(2).all(|w| w[0] < w[1]), "layer {l} set not sorted-unique");
            // Every column referenced by the rows above appears in the set.
            for &v in &sets[l + 1] {
                let (cols, _) = a.row_entries(v as usize);
                for &c in cols {
                    assert!(sets[l].binary_search(&c).is_ok());
                }
            }
        }
    }

    #[test]
    fn extracted_block_matches_dense_gather() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[3, 99], 2);
        let sub = extract_sub_csr(&a, &sets[2], &sets[1]);
        assert_eq!(sub.shape(), (sets[2].len(), sets[1].len()));
        for (lr, &gr) in sets[2].iter().enumerate() {
            let (gcols, gvals) = a.row_entries(gr as usize);
            let (lcols, lvals) = sub.row_entries(lr);
            assert_eq!(lvals, gvals, "row {gr} values must be carried over bit-exactly");
            let mapped: Vec<u32> =
                gcols.iter().map(|c| sets[1].binary_search(c).unwrap() as u32).collect();
            assert_eq!(lcols, &mapped[..]);
        }
    }

    #[test]
    fn single_query_single_layer_is_one_row() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[7], 1);
        let sub = extract_sub_csr(&a, &sets[1], &sets[0]);
        assert_eq!(sub.rows(), 1);
        assert_eq!(sub.nnz(), a.row_nnz(7));
    }

    /// The pre-workspace reference implementations: concatenate + sort +
    /// dedup unions, per-entry binary-search remap. The pooled kernels
    /// must reproduce them exactly.
    fn khop_node_sets_reference(
        src: &impl RowSource,
        queries: &[u32],
        layers: usize,
    ) -> Vec<Vec<u32>> {
        let mut top: Vec<u32> = queries.to_vec();
        top.sort_unstable();
        top.dedup();
        let mut sets = vec![Vec::new(); layers + 1];
        sets[layers] = top;
        for l in (0..layers).rev() {
            let mut support = Vec::new();
            for &v in &sets[l + 1] {
                src.row_support(v, &mut support);
            }
            support.sort_unstable();
            support.dedup();
            sets[l] = support;
        }
        sets
    }

    fn extract_sub_csr_reference(src: &impl RowSource, row_set: &[u32], col_set: &[u32]) -> Csr {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let (mut gcols, mut gvals) = (Vec::new(), Vec::new());
        for &r in row_set {
            gcols.clear();
            gvals.clear();
            src.row_entries(r, &mut gcols, &mut gvals);
            for (i, &c) in gcols.iter().enumerate() {
                col_idx.push(col_set.binary_search(&c).unwrap() as u32);
                values.push(gvals[i]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw(row_set.len(), col_set.len(), row_ptr, col_idx, values)
    }

    /// One shared workspace across many differently-shaped calls: epochs
    /// and pooled buffers must never leak state between extractions.
    #[test]
    fn workspace_reuse_matches_reference_across_calls() {
        let mut ws = KhopWorkspace::new();
        for (scale, seed, layers) in [(6u32, 1u64, 1usize), (8, 42, 3), (7, 9, 2), (8, 42, 3)] {
            let a = rmat_graph(scale, 8, seed).normalized_adjacency();
            let queries: Vec<u32> = (0..9).map(|i| (i * 37) % a.rows() as u32).collect();
            let sets = ws.khop_node_sets(&a, &queries, layers);
            let expect = khop_node_sets_reference(&a, &queries, layers);
            assert_eq!(sets, expect);
            for l in 0..layers {
                let sub = ws.extract_sub_csr(&a, &sets[l + 1], &sets[l]);
                let refsub = extract_sub_csr_reference(&a, &sets[l + 1], &sets[l]);
                assert_eq!(sub.row_ptr(), refsub.row_ptr());
                assert_eq!(sub.col_idx(), refsub.col_idx());
                assert_eq!(
                    sub.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    refsub.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the extracted k-hop column set")]
    fn extraction_rejects_columns_outside_the_set() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[3], 1);
        // Drop one required column from the set: the remap must refuse.
        let mut cols = sets[0].clone();
        cols.pop();
        extract_sub_csr(&a, &sets[1], &cols);
    }

    /// Dense epoch wraparound: force the visited epoch to the edge and
    /// check the table resets instead of misreading stale stamps.
    #[test]
    fn epoch_wraparound_resets_tables() {
        let a = test_adjacency();
        let mut ws = KhopWorkspace::new();
        let first = ws.khop_node_sets(&a, &[5, 17], 2);
        ws.visit_epoch = u32::MAX - 1;
        ws.remap_epoch = u32::MAX - 1;
        for _ in 0..4 {
            let sets = ws.khop_node_sets(&a, &[5, 17], 2);
            assert_eq!(sets, first);
            let sub = ws.extract_sub_csr(&a, &sets[2], &sets[1]);
            assert_eq!(sub.nnz(), extract_sub_csr_reference(&a, &sets[2], &sets[1]).nnz());
        }
    }
}
