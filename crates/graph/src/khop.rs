//! K-hop receptive-field extraction for inference serving.
//!
//! An `L`-layer GCN prediction for a query set `Q` only reads the rows
//! of the normalized adjacency reachable within `L` hops of `Q`. This
//! module computes, per layer, the exact node sets and sub-CSR blocks a
//! batched serve forward needs, with an ordering discipline chosen for
//! the tree's bitwise-equality contract:
//!
//! * every node set is **sorted ascending and deduplicated**, so the
//!   global→local column remap is monotone;
//! * a monotone remap preserves CSR entry order within each row, and the
//!   SpMM kernels accumulate per row in ascending-entry order — so a
//!   served row of `A·X` is bit-identical to the same row computed on
//!   the full graph.
//!
//! Adjacency rows are pulled through the [`RowSource`] trait: an
//! in-memory [`Csr`] implements it directly, and the serving artifact
//! implements it by decoding rows in place from mmapped shard files.

use plexus_sparse::Csr;

/// A source of adjacency rows, keyed by global node id.
///
/// Implementations must append the row's column support (and matching
/// values, for [`RowSource::row_entries`]) in **ascending column
/// order** — the order a [`Csr`] stores them in.
pub trait RowSource {
    /// Number of nodes (rows) in the graph.
    fn num_nodes(&self) -> usize;

    /// Appends the column ids of row `v`'s nonzeros to `out`.
    fn row_support(&self, v: u32, out: &mut Vec<u32>);

    /// Appends the column ids and values of row `v`'s nonzeros.
    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>);
}

impl RowSource for Csr {
    fn num_nodes(&self) -> usize {
        self.rows()
    }

    fn row_support(&self, v: u32, out: &mut Vec<u32>) {
        let (cols, _) = self.row_entries(v as usize);
        out.extend_from_slice(cols);
    }

    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>) {
        let (c, v) = Csr::row_entries(self, v as usize);
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
    }
}

/// Computes the per-layer node sets of the `layers`-hop receptive field
/// of `queries`.
///
/// Returns `layers + 1` sorted, deduplicated sets: `sets[layers]` is the
/// sorted query set (the rows of the last layer's sub-adjacency), and
/// for `l < layers`, `sets[l]` is the union of the column supports of
/// `sets[l + 1]` — simultaneously the columns of layer `l`'s
/// sub-adjacency and the rows of layer `l - 1`'s. `sets[0]` is the set
/// of input-feature rows the forward pass gathers.
pub fn khop_node_sets(src: &impl RowSource, queries: &[u32], layers: usize) -> Vec<Vec<u32>> {
    assert!(layers > 0, "a GCN has at least one layer");
    let n = src.num_nodes() as u32;
    let mut top: Vec<u32> = queries.to_vec();
    top.sort_unstable();
    top.dedup();
    if let Some(&max) = top.last() {
        assert!(max < n, "query node {max} out of range (graph has {n} nodes)");
    }
    let mut sets = vec![Vec::new(); layers + 1];
    sets[layers] = top;
    for l in (0..layers).rev() {
        let mut support = Vec::new();
        for &v in &sets[l + 1] {
            src.row_support(v, &mut support);
        }
        support.sort_unstable();
        support.dedup();
        sets[l] = support;
    }
    sets
}

/// Builds the sub-CSR with rows `row_set` and columns `col_set` (both
/// sorted ascending), pulling each row's entries from `src`.
///
/// Every column appearing in a fetched row must be present in
/// `col_set`; with the sets produced by [`khop_node_sets`] this holds by
/// construction. The monotone remap keeps each row's entries in
/// ascending local-column order, so [`Csr::from_raw`]'s invariants hold
/// and downstream SpMM accumulation order matches the full graph.
pub fn extract_sub_csr(src: &impl RowSource, row_set: &[u32], col_set: &[u32]) -> Csr {
    let mut row_ptr = Vec::with_capacity(row_set.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    let mut gcols = Vec::new();
    let mut gvals = Vec::new();
    for &r in row_set {
        gcols.clear();
        gvals.clear();
        src.row_entries(r, &mut gcols, &mut gvals);
        for (i, &c) in gcols.iter().enumerate() {
            let local = col_set
                .binary_search(&c)
                .expect("adjacency column outside the extracted k-hop column set");
            col_idx.push(local as u32);
            values.push(gvals[i]);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(row_set.len(), col_set.len(), row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat_graph;

    fn test_adjacency() -> Csr {
        rmat_graph(8, 8, 42).normalized_adjacency()
    }

    #[test]
    fn khop_sets_are_sorted_unique_and_nested_by_support() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[5, 200, 5, 17], 3);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[3], vec![5, 17, 200]);
        for l in 0..3 {
            assert!(sets[l].windows(2).all(|w| w[0] < w[1]), "layer {l} set not sorted-unique");
            // Every column referenced by the rows above appears in the set.
            for &v in &sets[l + 1] {
                let (cols, _) = a.row_entries(v as usize);
                for &c in cols {
                    assert!(sets[l].binary_search(&c).is_ok());
                }
            }
        }
    }

    #[test]
    fn extracted_block_matches_dense_gather() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[3, 99], 2);
        let sub = extract_sub_csr(&a, &sets[2], &sets[1]);
        assert_eq!(sub.shape(), (sets[2].len(), sets[1].len()));
        for (lr, &gr) in sets[2].iter().enumerate() {
            let (gcols, gvals) = a.row_entries(gr as usize);
            let (lcols, lvals) = sub.row_entries(lr);
            assert_eq!(lvals, gvals, "row {gr} values must be carried over bit-exactly");
            let mapped: Vec<u32> =
                gcols.iter().map(|c| sets[1].binary_search(c).unwrap() as u32).collect();
            assert_eq!(lcols, &mapped[..]);
        }
    }

    #[test]
    fn single_query_single_layer_is_one_row() {
        let a = test_adjacency();
        let sets = khop_node_sets(&a, &[7], 1);
        let sub = extract_sub_csr(&a, &sets[1], &sets[0]);
        assert_eq!(sub.rows(), 1);
        assert_eq!(sub.nnz(), a.row_nnz(7));
    }
}
