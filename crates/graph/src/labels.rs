//! Labels, features and data splits.
//!
//! §6.2 of the paper: "For the Isolate-3-8M, products-14M, and europe_osm
//! datasets, we randomly generated input features with a size of 128, and
//! generated labels with 32 classes based on the distribution of node
//! degrees." [`degree_based_labels`] implements exactly that recipe —
//! quantile-bucketing the degree distribution into `num_classes` classes —
//! so the learning task is genuinely learnable from graph structure (a GCN
//! can predict a node's degree class from its neighborhood), which is what
//! lets the Fig. 7-style loss curves actually descend.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Assign each node a class in `0..num_classes` by the quantile of its
/// degree within the degree distribution.
pub fn degree_based_labels(g: &Graph, num_classes: usize) -> Vec<u32> {
    assert!(num_classes >= 1, "degree_based_labels: need at least one class");
    let deg = g.degrees();
    // Rank nodes by (degree, id) — the id tiebreak spreads equal-degree
    // nodes uniformly over classes instead of dumping them in one bucket.
    let mut order: Vec<u32> = (0..g.num_nodes() as u32).collect();
    order.sort_unstable_by_key(|&i| (deg[i as usize], i));
    let mut labels = vec![0u32; g.num_nodes()];
    for (rank, &node) in order.iter().enumerate() {
        labels[node as usize] = (rank * num_classes / g.num_nodes().max(1)) as u32;
    }
    labels
}

/// Node split masks.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<bool>,
    pub val: Vec<bool>,
    pub test: Vec<bool>,
}

impl Split {
    pub fn num_train(&self) -> usize {
        self.train.iter().filter(|&&b| b).count()
    }
}

/// Random train/val/test masks with the given train and val fractions
/// (remainder is test). Seeded for reproducibility across trainers.
pub fn train_val_test_masks(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Split {
    assert!(
        train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0,
        "train_val_test_masks: invalid fractions {} / {}",
        train_frac,
        val_frac
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = vec![false; n];
    let mut val = vec![false; n];
    let mut test = vec![false; n];
    for i in 0..n {
        let r: f64 = rng.random_range(0.0..1.0);
        if r < train_frac {
            train[i] = true;
        } else if r < train_frac + val_frac {
            val[i] = true;
        } else {
            test[i] = true;
        }
    }
    // Guarantee at least one training node (tiny test graphs).
    if !train.iter().any(|&b| b) {
        train[0] = true;
        test[0] = false;
        val[0] = false;
    }
    Split { train, val, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat_graph;

    #[test]
    fn labels_cover_all_classes() {
        let g = rmat_graph(10, 8, 1);
        let labels = degree_based_labels(&g, 32);
        let mut seen = [false; 32];
        for &l in &labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all 32 classes should appear");
    }

    #[test]
    fn labels_monotone_in_degree() {
        let g = rmat_graph(10, 8, 2);
        let labels = degree_based_labels(&g, 8);
        let deg = g.degrees();
        // A strictly higher-degree node never gets a lower class... within
        // quantile rounding; check the aggregate: mean degree per class is
        // non-decreasing.
        let mut sums = [0.0f64; 8];
        let mut counts = [0usize; 8];
        for i in 0..g.num_nodes() {
            sums[labels[i] as usize] += deg[i] as f64;
            counts[labels[i] as usize] += 1;
        }
        let means: Vec<f64> = sums.iter().zip(&counts).map(|(s, &c)| s / c.max(1) as f64).collect();
        for w in means.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "class mean degrees must be monotone: {:?}", means);
        }
    }

    #[test]
    fn class_sizes_are_balanced() {
        let g = rmat_graph(11, 8, 3);
        let labels = degree_based_labels(&g, 32);
        let mut counts = vec![0usize; 32];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let expected = g.num_nodes() / 32;
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                c >= expected - 1 && c <= expected + 1,
                "class {} has {} nodes, expected ~{}",
                k,
                c,
                expected
            );
        }
    }

    #[test]
    fn masks_partition_nodes() {
        let s = train_val_test_masks(1000, 0.6, 0.2, 4);
        for i in 0..1000 {
            let total = s.train[i] as u8 + s.val[i] as u8 + s.test[i] as u8;
            assert_eq!(total, 1, "node {} in {} sets", i, total);
        }
        let n_train = s.num_train();
        assert!((500..700).contains(&n_train), "train count {}", n_train);
    }

    #[test]
    fn masks_deterministic() {
        let a = train_val_test_masks(100, 0.5, 0.25, 9);
        let b = train_val_test_masks(100, 0.5, 0.25, 9);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
