//! Read-only memory-mapped files for zero-copy shard access.
//!
//! The out-of-core loader and the serving engine both read large,
//! immutable, checksummed shard files. Before this module existed every
//! window load copied whole files through `fs::read`; a [`MappedFile`]
//! instead maps the file into the address space and hands out `&[u8]`
//! slices, so a window load touches only the pages it actually decodes
//! and a serving artifact can stay resident across millions of queries
//! without a second copy of the graph in heap memory.
//!
//! The build environment carries no `libc`/`memmap2` dependency, so on
//! `x86_64-linux` the mapping is made with raw `mmap`/`munmap` syscalls;
//! every other target falls back to reading the file into an owned
//! buffer (same API, [`MappedFile::is_mapped`] reports which path was
//! taken so the [`plexus` ledger](crate) counters can distinguish
//! mapped from copied bytes).

use std::fs::File;
use std::io;
use std::path::Path;

/// An immutable byte view of a file, memory-mapped where the platform
/// allows and read into an owned buffer otherwise.
pub struct MappedFile {
    backing: Backing,
}

enum Backing {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// The mapping is PROT_READ/MAP_PRIVATE over an immutable artifact file:
// no interior mutability, so sharing the view across threads is safe.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Opens `path` read-only and maps (or, on unsupported targets,
    /// reads) its full contents.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(MappedFile { backing: Backing::Owned(Vec::new()) });
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::unix::io::AsRawFd;
            match unsafe { sys::mmap_readonly(len, file.as_raw_fd()) } {
                Ok(ptr) => return Ok(MappedFile { backing: Backing::Mapped { ptr, len } }),
                Err(_) => { /* fall through to the owned-buffer path */ }
            }
        }
        Ok(MappedFile { backing: Backing::Owned(std::fs::read(path)?) })
    }

    /// The full file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(v) => v,
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned(v) => v.len(),
        }
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the contents are served from a real memory mapping
    /// (false on the owned-buffer fallback path).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw Linux syscalls: the environment vendors no `libc`, and the
    //! numbers below are part of the stable x86_64 kernel ABI.

    use std::io;

    const SYS_MMAP: isize = 9;
    const SYS_MUNMAP: isize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`.
    pub unsafe fn mmap_readonly(len: usize, fd: i32) -> io::Result<*const u8> {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        // The kernel returns -errno in [-4095, -1] on failure.
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as *const u8)
        }
    }

    /// `munmap(ptr, len)`; failure on drop is ignored by the caller.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => _ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("plexus_mmap_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..100_000u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes(), &payload[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(map.is_mapped(), "x86_64-linux should take the real mmap path");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("definitely_missing_no_such_file");
        assert!(MappedFile::open(&path).is_err());
    }

    #[test]
    fn view_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload = vec![7u8; 4096];
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = std::sync::Arc::new(MappedFile::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
