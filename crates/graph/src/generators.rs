//! Synthetic graph generators matching the structure of the paper's
//! evaluation graphs.
//!
//! | Paper graph | Structure | Generator here |
//! |---|---|---|
//! | Reddit, ogbn-products, products-14M, ogbn-papers100M | heavy-tailed degree distribution, community clustering | [`rmat_graph`] |
//! | Isolate-3-8M (protein similarity) | dense overlapping clusters, high average degree | [`community_graph`] |
//! | europe_osm (road network) | near-planar, avg degree ≈ 2, strong spatial locality | [`road_network`] |
//!
//! Locality matters: Table 3's load-imbalance experiment only reproduces if
//! the "original" node ordering concentrates nonzeros in diagonal blocks the
//! way real datasets do, so every generator emits nodes in a locality-
//! preserving order (RMAT's natural quadrant order, the road network's
//! row-major spatial order, the community graph's cluster-contiguous order).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// RMAT generator (Chakrabarti et al.) — recursive quadrant sampling with
/// probabilities `(a, b, c, d)`. `scale` gives `n = 2^scale` nodes and
/// `edge_factor * n` undirected edges. Skewed (a >> d) settings yield the
/// power-law degree distributions of social/co-purchase networks.
pub fn rmat_graph(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat_with_probs(scale, edge_factor, (0.57, 0.19, 0.19, 0.05), seed)
}

/// RMAT with explicit quadrant probabilities.
pub fn rmat_with_probs(
    scale: u32,
    edge_factor: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> Graph {
    assert!((1..32).contains(&scale), "rmat: scale {} out of range", scale);
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undirected = Vec::with_capacity(m);
    for _ in 0..m {
        if let Some(e) = sample_rmat_edge(&mut rng, scale, probs) {
            undirected.push(e);
        }
    }
    Graph::from_undirected(n, &undirected)
}

/// Draw one RMAT edge attempt (`scale` quadrant descents); self-loops are
/// rejected, returning `None` while still consuming the same RNG draws —
/// the invariant that keeps the chunked and monolithic generators
/// bit-identical.
fn sample_rmat_edge(
    rng: &mut StdRng,
    scale: u32,
    (a, b, c, _d): (f64, f64, f64, f64),
) -> Option<(u32, u32)> {
    let mut u = 0u32;
    let mut v = 0u32;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.random_range(0.0..1.0);
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u != v).then_some((u, v))
}

/// Chunked RMAT edge stream for out-of-core scales: yields the same
/// undirected edges as [`rmat_graph`] (same seed, same order) in bounded
/// `chunk_edges`-attempt batches, so scale-22+ graphs can be generated,
/// sharded, and written to a store without ever holding the full edge
/// list. Obtain it via [`rmat_edge_chunks`].
pub struct RmatEdgeChunks {
    rng: StdRng,
    scale: u32,
    probs: (f64, f64, f64, f64),
    remaining_attempts: usize,
    chunk_attempts: usize,
}

impl RmatEdgeChunks {
    /// `2^scale`, the node count of the stream.
    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }
}

impl Iterator for RmatEdgeChunks {
    type Item = Vec<(u32, u32)>;

    fn next(&mut self) -> Option<Vec<(u32, u32)>> {
        if self.remaining_attempts == 0 {
            return None;
        }
        let take = self.remaining_attempts.min(self.chunk_attempts);
        self.remaining_attempts -= take;
        let mut chunk = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(e) = sample_rmat_edge(&mut self.rng, self.scale, self.probs) {
                chunk.push(e);
            }
        }
        Some(chunk)
    }
}

/// Streaming equivalent of [`rmat_graph`]: concatenating the yielded
/// chunks reproduces its undirected edge list exactly.
pub fn rmat_edge_chunks(
    scale: u32,
    edge_factor: usize,
    seed: u64,
    chunk_edges: usize,
) -> RmatEdgeChunks {
    assert!((1..32).contains(&scale), "rmat: scale {} out of range", scale);
    assert!(chunk_edges > 0, "rmat_edge_chunks: chunk size must be non-zero");
    RmatEdgeChunks {
        rng: StdRng::seed_from_u64(seed),
        scale,
        probs: (0.57, 0.19, 0.19, 0.05),
        remaining_attempts: edge_factor << scale,
        chunk_attempts: chunk_edges,
    }
}

/// Erdős–Rényi G(n, m): `m` undirected edges sampled uniformly. The
/// no-structure control used by tests (its shards are balanced *without*
/// any permutation).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "erdos_renyi: need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undirected = Vec::with_capacity(m);
    while undirected.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            undirected.push((u, v));
        }
    }
    Graph::from_undirected(n, &undirected)
}

/// Road-network generator modelled on europe_osm: nodes on a jittered
/// `w x h` grid connected to right/down neighbours (avg degree ≈ 2 after
/// sampling), plus a small fraction of longer "highway" shortcuts. Node ids
/// are row-major over the grid, giving the strong banded-diagonal structure
/// of OpenStreetMap exports.
pub fn road_network(width: usize, height: usize, seed: u64) -> Graph {
    assert!(width >= 2 && height >= 2, "road_network: grid too small");
    let n = width * height;
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * width + x) as u32;
    let mut undirected = Vec::with_capacity(2 * n);
    for y in 0..height {
        for x in 0..width {
            // Roads follow the lattice but with gaps (not every block is
            // connected in a real road network).
            if x + 1 < width && rng.random_range(0.0f64..1.0) < 0.55 {
                undirected.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < height && rng.random_range(0.0f64..1.0) < 0.55 {
                undirected.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    // Sparse long-range highways (~0.5% of nodes).
    for _ in 0..n / 200 {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            undirected.push((u, v));
        }
    }
    Graph::from_undirected(n, &undirected)
}

/// Community (planted-partition) generator modelled on the Isolate-3-8M
/// protein-similarity subgraph: `num_communities` dense clusters with
/// `p_in` internal connectivity and a thin random background. Node ids are
/// contiguous within a community — the "tightly coupled communities" the
/// double permutation has to break (§5.1).
pub fn community_graph(
    n: usize,
    num_communities: usize,
    avg_internal_degree: f64,
    background_fraction: f64,
    seed: u64,
) -> Graph {
    assert!(num_communities >= 1 && n >= num_communities, "community_graph: bad sizes");
    let mut rng = StdRng::seed_from_u64(seed);
    let csize = n / num_communities;
    let mut undirected = Vec::new();
    for comm in 0..num_communities {
        let base = comm * csize;
        let size = if comm + 1 == num_communities { n - base } else { csize };
        // Community sizes vary 3x to create the straggler shards seen in
        // real protein-similarity data.
        let weight = 0.5 + 2.5 * (comm as f64 / num_communities.max(1) as f64);
        let internal_edges = (size as f64 * avg_internal_degree * weight / 2.0) as usize;
        for _ in 0..internal_edges {
            let u = base as u32 + rng.random_range(0..size as u32);
            let v = base as u32 + rng.random_range(0..size as u32);
            if u != v {
                undirected.push((u, v));
            }
        }
    }
    let background = (undirected.len() as f64 * background_fraction) as usize;
    for _ in 0..background {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            undirected.push((u, v));
        }
    }
    Graph::from_undirected(n, &undirected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::nnz_balance;

    #[test]
    fn rmat_sizes_and_determinism() {
        let g = rmat_graph(10, 8, 7);
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 8_000, "got {} edges", g.num_edges());
        let g2 = rmat_graph(10, 8, 7);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = rmat_graph(12, 8, 1);
        let mut deg = g.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let max = deg[0] as f64;
        let mean = g.avg_degree();
        assert!(max / mean > 10.0, "rmat should be heavy-tailed: max {} vs mean {:.1}", max, mean);
    }

    #[test]
    fn chunked_rmat_is_bit_identical_to_monolithic() {
        let whole = rmat_graph(10, 8, 7);
        for chunk_edges in [1usize, 97, 1000, 1 << 20] {
            let chunks = rmat_edge_chunks(10, 8, 7, chunk_edges);
            assert_eq!(chunks.num_nodes(), 1024);
            let g = Graph::from_undirected_chunks(1024, chunks);
            assert_eq!(g.edges(), whole.edges(), "chunk size {}", chunk_edges);
        }
    }

    #[test]
    fn erdos_renyi_is_balanced_without_permutation() {
        let g = erdos_renyi(4096, 32768, 3);
        let a = g.normalized_adjacency();
        // Self-loops land in the 4 diagonal shards, so even a uniform graph
        // carries a mild diagonal excess; 1.3 still separates it clearly
        // from the clustered graphs (> 1.5) below.
        let stats = nnz_balance(&a, 4, 4);
        assert!(
            stats.max_over_mean < 1.3,
            "uniform graph should be balanced: max/mean = {:.3}",
            stats.max_over_mean
        );
    }

    #[test]
    fn road_network_is_sparse_with_low_degree() {
        let g = road_network(64, 64, 5);
        assert_eq!(g.num_nodes(), 4096);
        let avg = g.avg_degree();
        assert!(avg > 1.0 && avg < 4.0, "road avg degree {:.2} outside [1, 4]", avg);
    }

    #[test]
    fn road_network_has_diagonal_locality() {
        // In natural (spatial) order a road network's adjacency is banded,
        // so off-diagonal shard blocks are nearly empty -> imbalance.
        let g = road_network(64, 64, 5);
        let a = g.normalized_adjacency();
        let stats = nnz_balance(&a, 8, 8);
        assert!(
            stats.max_over_mean > 3.0,
            "road network in natural order should be imbalanced: {:.2}",
            stats.max_over_mean
        );
    }

    #[test]
    fn community_graph_is_clustered() {
        let g = community_graph(2048, 16, 24.0, 0.02, 9);
        let a = g.normalized_adjacency();
        // Communities are contiguous -> diagonal concentration over 4x4.
        let stats = nnz_balance(&a, 4, 4);
        assert!(stats.max_over_mean > 1.5, "community graph imbalance: {:.2}", stats.max_over_mean);
        assert!(g.avg_degree() > 10.0);
    }
}
