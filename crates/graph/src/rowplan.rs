//! [`RowRequestPlan`]: the once-per-epoch row-request sets that drive the
//! sparse collectives.
//!
//! A rank's SpMM only ever reads the gathered input rows named by the
//! *column support* of its adjacency shard — every other row of the dense
//! all-gather is shipped and then ignored. The plan extracts that support
//! once (adjacency is static across epochs, so "once per epoch" is
//! construction time on the trainer) and pre-splits it into the per-owner
//! request lists `Communicator::all_to_all_rows` consumes, with the flat
//! sorted id list `Communicator::all_gather_rows` wants alongside.

use plexus_sparse::Csr;

/// Row-request sets derived from one adjacency shard's column support,
/// against a row space sharded equally across `owners` ranks.
///
/// Built by [`RowRequestPlan::from_column_support`]; cached on the trainer
/// and reused every epoch (the adjacency never changes between epochs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowRequestPlan {
    /// Sorted, distinct global row ids this rank needs — the shard's
    /// column support. Feed to `all_gather_rows`.
    pub row_ids: Vec<u32>,
    /// `requests[o]` = the local indices of owner `o`'s block covered by
    /// `row_ids`, ascending. Feed to `all_to_all_rows`; because `row_ids`
    /// is sorted, its order equals the owner-major flattening of these
    /// lists, so both collectives return byte-identical payloads.
    pub requests: Vec<Vec<u32>>,
    /// Rows each owner holds (the row space is `owners` equal blocks).
    pub rows_per_owner: usize,
}

impl RowRequestPlan {
    /// Derive the plan from `shard`'s column support, with the shard's
    /// column window (`shard.cols()`) split equally across `owners` ranks.
    pub fn from_column_support(shard: &Csr, owners: usize) -> Self {
        assert!(owners > 0, "RowRequestPlan: owners must be positive");
        assert_eq!(
            shard.cols() % owners,
            0,
            "RowRequestPlan: row space {} not divisible by {} owners",
            shard.cols(),
            owners
        );
        let rows_per_owner = shard.cols() / owners;
        let mut row_ids: Vec<u32> = shard.col_idx().to_vec();
        row_ids.sort_unstable();
        row_ids.dedup();
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); owners];
        for &g in &row_ids {
            requests[g as usize / rows_per_owner].push(g % rows_per_owner as u32);
        }
        Self { row_ids, requests, rows_per_owner }
    }

    /// Total rows in the sharded row space.
    pub fn rows_total(&self) -> usize {
        self.rows_per_owner * self.requests.len()
    }

    /// Rows this rank actually requests.
    pub fn num_requested(&self) -> usize {
        self.row_ids.len()
    }

    /// Fraction of the dense row space the plan touches (1.0 means the
    /// sparse exchange would carry as many rows as the dense gather).
    pub fn coverage(&self) -> f64 {
        if self.rows_total() == 0 {
            return 0.0;
        }
        self.row_ids.len() as f64 / self.rows_total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::Coo;

    fn shard() -> Csr {
        // 4x8 block touching columns {1, 2, 5, 7}.
        let mut coo = Coo::new(4, 8);
        coo.push(0, 5, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 1, 2.0);
        coo.push(2, 7, 1.0);
        coo.push(3, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn support_is_sorted_and_distinct() {
        let plan = RowRequestPlan::from_column_support(&shard(), 4);
        assert_eq!(plan.row_ids, vec![1, 2, 5, 7]);
        assert_eq!(plan.rows_per_owner, 2);
        assert_eq!(plan.rows_total(), 8);
        assert_eq!(plan.num_requested(), 4);
        assert!((plan.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn requests_partition_the_support_by_owner() {
        let plan = RowRequestPlan::from_column_support(&shard(), 4);
        // Owner o holds rows [2o, 2o+2): 1 → (0,1), 2 → (1,0), 5 → (2,1),
        // 7 → (3,1).
        assert_eq!(plan.requests, vec![vec![1], vec![0], vec![1], vec![1]]);
        // Owner-major flattening of local ids reproduces the sorted
        // global ids — the invariant that makes all_to_all_rows and
        // all_gather_rows interchangeable on this plan.
        let rebuilt: Vec<u32> = plan
            .requests
            .iter()
            .enumerate()
            .flat_map(|(o, ids)| ids.iter().map(move |&l| (o * plan.rows_per_owner) as u32 + l))
            .collect();
        assert_eq!(rebuilt, plan.row_ids);
    }

    #[test]
    fn dense_support_covers_everything() {
        let mut coo = Coo::new(2, 4);
        for r in 0..2u32 {
            for c in 0..4u32 {
                coo.push(r, c, 1.0);
            }
        }
        let plan = RowRequestPlan::from_column_support(&coo.to_csr(), 2);
        assert_eq!(plan.row_ids, vec![0, 1, 2, 3]);
        assert_eq!(plan.coverage(), 1.0);
    }

    #[test]
    fn empty_shard_requests_nothing() {
        let plan = RowRequestPlan::from_column_support(&Csr::empty(4, 8), 2);
        assert!(plan.row_ids.is_empty());
        assert_eq!(plan.requests, vec![Vec::<u32>::new(), Vec::new()]);
        assert_eq!(plan.coverage(), 0.0);
    }
}
