//! Graph datasets for the Plexus reproduction.
//!
//! The paper evaluates on six graphs (Table 4): Reddit, ogbn-products,
//! Isolate-3-8M, products-14M, europe_osm and ogbn-papers100M. The raw
//! datasets (up to 111M nodes / 1.6B edges) are not available in this
//! environment, so this crate provides:
//!
//! * [`datasets::DatasetSpec`] — the exact Table 4 statistics, consumed
//!   analytically by the performance model and the scaling benches;
//! * synthetic [`generators`] reproducing each graph's *structure* (degree
//!   skew, community clustering, road-network locality) at configurable
//!   scale, used by every functional experiment;
//! * the paper's label recipe for its synthetic-label datasets: "randomly
//!   generated input features with a size of 128, and generated labels with
//!   32 classes based on the distribution of node degrees" (§6.2).

//!
//! It also hosts [`rowplan::RowRequestPlan`] — the adjacency-derived row
//! request sets that drive the sparse collectives (the row demand is a
//! property of the graph's structure, so it lives with the graphs) —
//! plus the serving-side graph machinery: [`mmap::MappedFile`] zero-copy
//! file views and the [`khop`] receptive-field extraction the inference
//! engine runs per query batch.

pub mod datasets;
pub mod generators;
pub mod graph;
pub mod khop;
pub mod labels;
pub mod mmap;
pub mod rowplan;

pub use datasets::{paper_datasets, DatasetKind, DatasetSpec, LoadedDataset};
pub use generators::{
    community_graph, erdos_renyi, rmat_edge_chunks, rmat_graph, road_network, RmatEdgeChunks,
};
pub use graph::Graph;
pub use khop::{extract_sub_csr, khop_node_sets, KhopWorkspace, RowSource};
pub use labels::{degree_based_labels, train_val_test_masks, Split};
pub use mmap::MappedFile;
pub use rowplan::RowRequestPlan;
