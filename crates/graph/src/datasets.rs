//! The paper's six evaluation datasets (Table 4) and their synthetic
//! stand-ins.
//!
//! The [`DatasetSpec`] constants carry the exact Table 4 statistics; the
//! performance model and scaling benches consume them analytically (a
//! billion-edge graph never needs to be materialized to predict its epoch
//! time). [`LoadedDataset::generate`] materializes a scaled-down synthetic
//! instance with matching structure for the functional experiments.

use crate::generators::{community_graph, rmat_graph, road_network};
use crate::graph::Graph;
use crate::labels::{degree_based_labels, train_val_test_masks, Split};
use plexus_sparse::Csr;
use plexus_tensor::{uniform_matrix, Matrix};

/// Which of the paper's datasets a spec describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    Reddit,
    OgbnProducts,
    Isolate3_8M,
    Products14M,
    EuropeOsm,
    OgbnPapers100M,
}

/// Table 4 row: dataset statistics as the paper reports them.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    pub kind: DatasetKind,
    pub name: &'static str,
    /// "# Nodes"
    pub nodes: usize,
    /// "# Edges" (directed edge count as stored)
    pub edges: usize,
    /// "# Non-zeros" of the training adjacency (symmetrized + self-loops)
    pub nonzeros: usize,
    /// "# Features" — input feature dimension
    pub features: usize,
    /// "# Classes"
    pub classes: usize,
}

impl DatasetSpec {
    /// Average directed degree.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.nodes as f64
    }

    /// Fraction of zeros in the adjacency matrix (paper §1 quotes
    /// 99.79%–99.99% across these datasets).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nonzeros as f64 / (self.nodes as f64 * self.nodes as f64)
    }
}

/// Table 4, verbatim.
pub const REDDIT: DatasetSpec = DatasetSpec {
    kind: DatasetKind::Reddit,
    name: "Reddit",
    nodes: 232_965,
    edges: 57_307_946,
    nonzeros: 114_848_857,
    features: 602,
    classes: 41,
};

pub const OGBN_PRODUCTS: DatasetSpec = DatasetSpec {
    kind: DatasetKind::OgbnProducts,
    name: "ogbn-products",
    nodes: 2_449_029,
    edges: 61_859_140,
    nonzeros: 126_167_053,
    features: 100,
    classes: 47,
};

pub const ISOLATE_3_8M: DatasetSpec = DatasetSpec {
    kind: DatasetKind::Isolate3_8M,
    name: "Isolate-3-8M",
    nodes: 8_745_542,
    edges: 654_620_251,
    nonzeros: 1_317_986_044,
    features: 128,
    classes: 32,
};

pub const PRODUCTS_14M: DatasetSpec = DatasetSpec {
    kind: DatasetKind::Products14M,
    name: "products-14M",
    nodes: 14_249_639,
    edges: 115_394_635,
    nonzeros: 245_036_907,
    features: 128,
    classes: 32,
};

pub const EUROPE_OSM: DatasetSpec = DatasetSpec {
    kind: DatasetKind::EuropeOsm,
    name: "europe_osm",
    nodes: 50_912_018,
    edges: 54_054_660,
    nonzeros: 159_021_338,
    features: 128,
    classes: 32,
};

pub const OGBN_PAPERS100M: DatasetSpec = DatasetSpec {
    kind: DatasetKind::OgbnPapers100M,
    name: "ogbn-papers100M",
    nodes: 111_059_956,
    edges: 1_615_685_872,
    nonzeros: 1_726_745_828,
    features: 100,
    classes: 172,
};

/// All six datasets in Table 4 order.
pub fn paper_datasets() -> [DatasetSpec; 6] {
    [REDDIT, OGBN_PRODUCTS, ISOLATE_3_8M, PRODUCTS_14M, EUROPE_OSM, OGBN_PAPERS100M]
}

/// A materialized (synthetic, scaled-down) dataset instance ready for
/// training: normalized adjacency, trainable input features, labels, split.
pub struct LoadedDataset {
    pub spec: DatasetSpec,
    pub graph: Graph,
    /// `Â = D^{-1/2}(A+I)D^{-1/2}`
    pub adjacency: Csr,
    /// `N x D0` input features (trainable in the paper's setup).
    pub features: Matrix,
    pub labels: Vec<u32>,
    pub split: Split,
    /// Number of classes actually used (== spec.classes unless overridden).
    pub num_classes: usize,
}

impl LoadedDataset {
    /// Generate a synthetic instance of `spec` with roughly `target_nodes`
    /// nodes. `feature_dim` overrides the spec's input dimension (pass
    /// `None` to keep it); functional tests use small dims for speed.
    ///
    /// The average degree is preserved from the spec but capped at 32 so
    /// that scaled-down instances of the densest graphs (Reddit's average
    /// degree is 246) stay tractable on a single machine.
    pub fn generate(
        spec: DatasetSpec,
        target_nodes: usize,
        feature_dim: Option<usize>,
        seed: u64,
    ) -> Self {
        assert!(target_nodes >= 64, "LoadedDataset::generate: need >= 64 nodes");
        let graph = match spec.kind {
            DatasetKind::EuropeOsm => {
                let side = (target_nodes as f64).sqrt().ceil() as usize;
                road_network(side, target_nodes.div_ceil(side), seed)
            }
            DatasetKind::Isolate3_8M => {
                let communities = (target_nodes / 128).max(4);
                let internal = spec.avg_degree().min(48.0);
                community_graph(target_nodes, communities, internal, 0.02, seed)
            }
            _ => {
                let scale = (target_nodes as f64).log2().ceil() as u32;
                let edge_factor = (spec.avg_degree() / 2.0).clamp(2.0, 16.0) as usize;
                rmat_graph(scale, edge_factor, seed)
            }
        };
        let adjacency = graph.normalized_adjacency();
        let d0 = feature_dim.unwrap_or(spec.features);
        let n = graph.num_nodes();
        let features = uniform_matrix(n, d0, -0.5, 0.5, seed.wrapping_add(1));
        let labels = degree_based_labels(&graph, spec.classes);
        let split = train_val_test_masks(n, 0.6, 0.2, seed.wrapping_add(2));
        Self { spec, graph, adjacency, features, labels, split, num_classes: spec.classes }
    }

    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_are_the_papers() {
        assert_eq!(REDDIT.nodes, 232_965);
        assert_eq!(OGBN_PAPERS100M.edges, 1_615_685_872);
        assert_eq!(EUROPE_OSM.nonzeros, 159_021_338);
        assert_eq!(ISOLATE_3_8M.classes, 32);
        assert_eq!(paper_datasets().len(), 6);
    }

    #[test]
    fn sparsity_matches_paper_range() {
        // §1: "the fraction of zeros ranges from 99.79% to 99.99%".
        for spec in paper_datasets() {
            let s = spec.sparsity();
            assert!(s > 0.9978 && s < 1.0, "{} sparsity {:.6}", spec.name, s);
        }
    }

    #[test]
    fn generate_produces_consistent_instance() {
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 512, Some(16), 3);
        let n = ds.num_nodes();
        assert!(n >= 512);
        assert_eq!(ds.features.rows(), n);
        assert_eq!(ds.features.cols(), 16);
        assert_eq!(ds.labels.len(), n);
        assert_eq!(ds.adjacency.shape(), (n, n));
        assert!(ds.split.num_train() > 0);
        assert!(ds.labels.iter().all(|&l| (l as usize) < ds.num_classes));
    }

    #[test]
    fn europe_osm_instance_is_road_like() {
        let ds = LoadedDataset::generate(EUROPE_OSM, 1024, Some(8), 5);
        assert!(ds.graph.avg_degree() < 4.0, "road degree {:.2}", ds.graph.avg_degree());
    }

    #[test]
    fn isolate_instance_is_dense() {
        let ds = LoadedDataset::generate(ISOLATE_3_8M, 1024, Some(8), 5);
        assert!(ds.graph.avg_degree() > 10.0, "protein degree {:.2}", ds.graph.avg_degree());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LoadedDataset::generate(REDDIT, 256, Some(8), 11);
        let b = LoadedDataset::generate(REDDIT, 256, Some(8), 11);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }
}
