//! The in-memory graph type shared by generators, trainers and baselines.

use plexus_sparse::{normalized_adjacency, Csr};

/// An undirected graph stored as a directed edge list (each undirected edge
/// appears in both directions, matching how the paper counts "nonzeros" vs
/// "edges" in Table 4).
#[derive(Clone, Debug)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Build from a directed edge list. Self-loops and duplicates are
    /// permitted (they collapse during adjacency assembly).
    pub fn new(num_nodes: usize, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(
            edges.iter().all(|&(u, v)| (u as usize) < num_nodes && (v as usize) < num_nodes),
            "Graph::new: edge endpoint out of range"
        );
        Self { num_nodes, edges }
    }

    /// Build from an undirected edge list: every `(u, v)` also inserts
    /// `(v, u)`.
    pub fn from_undirected(num_nodes: usize, undirected: &[(u32, u32)]) -> Self {
        let mut edges = Vec::with_capacity(undirected.len() * 2);
        extend_directed(&mut edges, undirected.iter().copied());
        Self::new(num_nodes, edges)
    }

    /// Build from a stream of undirected edge chunks (e.g.
    /// [`crate::generators::rmat_edge_chunks`]) without requiring the
    /// caller to hold the whole undirected list: only the accumulating
    /// directed list and one chunk are resident at a time.
    pub fn from_undirected_chunks<I>(num_nodes: usize, chunks: I) -> Self
    where
        I: IntoIterator<Item = Vec<(u32, u32)>>,
    {
        let mut edges = Vec::new();
        for chunk in chunks {
            extend_directed(&mut edges, chunk);
        }
        Self::new(num_nodes, edges)
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Directed edge count (== Table 4 "# Edges" convention).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Out-degree of every node.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_nodes.max(1) as f64
    }

    /// The normalized adjacency matrix `Â = D^{-1/2}(A+I)D^{-1/2}` used for
    /// training (paper §2.1). Its nnz corresponds to Table 4 "# Non-zeros"
    /// (edges + self-loops, deduplicated).
    pub fn normalized_adjacency(&self) -> Csr {
        normalized_adjacency(self.num_nodes, &self.edges)
    }
}

/// The single definition of the undirected→directed expansion rule: every
/// `(u, v)` also inserts `(v, u)`, except self-loops which appear once.
fn extend_directed(edges: &mut Vec<(u32, u32)>, undirected: impl IntoIterator<Item = (u32, u32)>) {
    for (u, v) in undirected {
        edges.push((u, v));
        if u != v {
            edges.push((v, u));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_doubles_edges() {
        let g = Graph::from_undirected(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn self_loop_not_doubled() {
        let g = Graph::from_undirected(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn adjacency_nnz_counts_self_loops() {
        let g = Graph::from_undirected(3, &[(0, 1)]);
        // nnz = 2 directed edges + 3 self-loops.
        assert_eq!(g.normalized_adjacency().nnz(), 5);
    }

    #[test]
    fn avg_degree() {
        let g = Graph::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }
}
