//! [`SimComm`]: the single-process, cost-only [`Communicator`] backend.
//!
//! The thread backend tops out at the rank counts one machine can run
//! (G ≤ 64 threads with real data movement). `SimComm` removes that wall
//! for *performance studies*: it implements the same trait, but the world
//! is simulated — only this rank's program executes, collectives complete
//! logically on this rank's data shapes, and every call charges the §4
//! ring-cost equations ([`crate::ring`]) to a virtual clock. A
//! `GridConfig::new(16, 8, 8)` world (1024 "GPUs") runs in one thread in
//! milliseconds, with a full traffic ledger and a predicted communication
//! time at the end.
//!
//! # Mirror semantics
//!
//! `SimComm` is **shape- and cost-faithful, not value-faithful**: since
//! peer ranks do not execute, each collective behaves as if every peer
//! contributed *this* rank's buffer (the "mirror" world). An all-gather
//! over a group of G returns G copies of `src`; an all-reduce folds the
//! buffer G times in ascending-rank order (bitwise deterministic, like the
//! thread backend). Shapes, byte counts, ledger events and charged times
//! are exactly those of a real run on identically-shaped data — which is
//! what the performance model consumes — but numeric *values* (losses,
//! accuracies) are not meaningful. Anything value-sensitive belongs on
//! [`plexus_comm::ThreadComm`].
//!
//! `split_by` needs no mirror trick at all: because [`Communicator`] takes
//! the whole rank→(color, key) map, subgroup membership is computed
//! exactly, so the 3D grid's X/Y/Z axis groups have their true sizes and
//! ranks — the simulated topology is exact even though the peers are not.

use crate::ring::{
    all_gather_time, all_reduce_time, all_to_all_time, broadcast_time, reduce_scatter_time,
};
use parking_lot::Mutex;
use plexus_comm::{
    CollOp, CommElem, CommEvent, Communicator, PendingCollective, ReduceOp, TrafficLedger,
};
use std::sync::Arc;

/// The link-cost parameters a [`SimComm`] world charges.
///
/// One effective ring bandwidth per process-group label (falling back to
/// `default_beta`) plus a per-message latency for all-to-all and barriers.
/// Per-label betas let a caller apply the paper's eq. 4.6 (effective
/// bandwidth per grid axis, computed by `plexus::perfmodel`) without this
/// crate needing to know about grids.
#[derive(Clone, Debug)]
pub struct SimCostModel {
    /// Ring bandwidth in bytes/s for groups without a per-label override.
    pub default_beta: f64,
    /// Per-message latency in seconds (all-to-all start-ups, barriers).
    pub latency: f64,
    /// `(group label, bytes/s)` overrides, e.g. one entry per grid axis.
    pub per_group_beta: Vec<(&'static str, f64)>,
}

impl SimCostModel {
    /// A flat model: one bandwidth for every group.
    pub fn new(beta: f64, latency: f64) -> Self {
        Self { default_beta: beta, latency, per_group_beta: Vec::new() }
    }

    /// Override the bandwidth for every group with label `label`.
    pub fn with_group_beta(mut self, label: &'static str, beta: f64) -> Self {
        self.per_group_beta.retain(|&(l, _)| l != label);
        self.per_group_beta.push((label, beta));
        self
    }

    fn beta_for(&self, label: &'static str) -> f64 {
        self.per_group_beta
            .iter()
            .find(|&&(l, _)| l == label)
            .map(|&(_, b)| b)
            .unwrap_or(self.default_beta)
    }
}

/// The virtual clock of one simulated world, shared by every group split
/// off it. Advanced by each collective with the ring-equation time.
#[derive(Default)]
pub struct SimClock {
    seconds: Mutex<f64>,
}

impl SimClock {
    /// Simulated communication seconds elapsed since world creation.
    pub fn elapsed(&self) -> f64 {
        *self.seconds.lock()
    }

    fn advance(&self, dt: f64) {
        *self.seconds.lock() += dt;
    }
}

/// Per-group handle of the simulated world (see the [module docs](self)
/// for semantics). Create the world with [`SimComm::world`], derive axis
/// groups with [`Communicator::split_by`].
pub struct SimComm {
    rank: usize,
    size: usize,
    label: &'static str,
    cost: Arc<SimCostModel>,
    clock: Arc<SimClock>,
    ledger: Arc<TrafficLedger>,
}

impl SimComm {
    /// A simulated world of `size` ranks, observed from rank 0.
    pub fn world(size: usize, cost: SimCostModel) -> Self {
        Self::world_rank(size, 0, cost)
    }

    /// A simulated world of `size` ranks, observed from `rank` — useful
    /// when a study needs a non-corner grid position (interior ranks can
    /// belong to different axis groups than rank 0).
    pub fn world_rank(size: usize, rank: usize, cost: SimCostModel) -> Self {
        assert!(size > 0, "SimComm: world size must be positive");
        assert!(rank < size, "SimComm: rank {} out of {}", rank, size);
        Self {
            rank,
            size,
            label: "world",
            cost: Arc::new(cost),
            clock: Arc::new(SimClock::default()),
            ledger: Arc::new(TrafficLedger::new(true)),
        }
    }

    /// The world clock (shared across every group split off this world).
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.clock)
    }

    /// Simulated communication seconds charged so far.
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    fn record(&self, op: CollOp, bytes: usize) {
        self.ledger.record(CommEvent { op, bytes, group_size: self.size, group: self.label });
    }

    fn charge(&self, dt: f64) {
        self.clock.advance(dt);
    }

    fn beta(&self) -> f64 {
        self.cost.beta_for(self.label)
    }

    /// Fold `buf` with itself `size - 1` times — the mirror-world
    /// reduction, matching the thread backend's ascending-rank fold order.
    fn mirror_reduce<T: CommElem>(buf: &mut [T], copies: usize, op: ReduceOp) {
        let orig: Vec<T> = buf.to_vec();
        for _ in 1..copies {
            for (acc, &x) in buf.iter_mut().zip(orig.iter()) {
                *acc = T::reduce(op, *acc, x);
            }
        }
    }
}

impl Communicator for SimComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn barrier(&self) {
        self.record(CollOp::Barrier, 0);
        if self.size > 1 {
            // Dissemination barrier: ceil(log2 G) message rounds.
            let rounds = usize::BITS - (self.size - 1).leading_zeros();
            self.charge(self.cost.latency * rounds as f64);
        }
    }

    fn all_gather_varlen<T: CommElem>(&self, src: &[T]) -> Vec<Vec<T>> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        let result_bytes = (src.len() * self.size * T::BYTES) as f64;
        self.charge(all_gather_time(result_bytes, self.size, self.beta()));
        (0..self.size).map(|_| src.to_vec()).collect()
    }

    fn broadcast<T: CommElem>(&self, buf: &mut Vec<T>, root: usize) {
        assert!(root < self.size, "broadcast: root {} out of {}", root, self.size);
        self.record(CollOp::Broadcast, buf.len() * T::BYTES);
        self.charge(broadcast_time((buf.len() * T::BYTES) as f64, self.size, self.beta()));
        // Mirror world: the root holds this rank's data already.
    }

    fn all_to_all<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size,
            "all_to_all: expected {} destination chunks, got {}",
            self.size,
            sends.len()
        );
        let bytes: usize = sends.iter().map(|s| s.len() * T::BYTES).sum();
        self.record(CollOp::AllToAll, bytes);
        self.charge(all_to_all_time(bytes as f64, self.size, self.beta(), self.cost.latency));
        // Every mirrored peer sent us the chunk it addressed to our rank —
        // which mirrors our own chunk for our rank.
        (0..self.size).map(|_| sends[self.rank].clone()).collect()
    }

    // The `start_*` forms are the one data path each collective has (the
    // blocking forms are trait defaults). A cost-only world has nothing to
    // overlap with, so each completes eagerly and returns a ready handle —
    // the time was charged at start, exactly as a real overlapped
    // collective would occupy the link while compute proceeds.

    fn start_all_reduce<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        let bytes = src.len() * T::BYTES;
        self.record(CollOp::AllReduce, bytes);
        self.charge(all_reduce_time(bytes as f64, self.size, self.beta()));
        let mut buf = src.to_vec();
        Self::mirror_reduce(&mut buf, self.size, op);
        PendingCollective::ready(buf)
    }

    fn start_all_gather<'c, T: CommElem>(&'c self, src: &[T]) -> PendingCollective<'c, T> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        let result_bytes = (src.len() * self.size * T::BYTES) as f64;
        self.charge(all_gather_time(result_bytes, self.size, self.beta()));
        let mut out = Vec::with_capacity(src.len() * self.size);
        for _ in 0..self.size {
            out.extend_from_slice(src);
        }
        PendingCollective::ready(out)
    }

    fn start_reduce_scatter<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        assert_eq!(
            src.len() % self.size,
            0,
            "reduce_scatter: buffer length {} not divisible by group size {}",
            src.len(),
            self.size
        );
        let bytes = src.len() * T::BYTES;
        self.record(CollOp::ReduceScatter, bytes);
        self.charge(reduce_scatter_time(bytes as f64, self.size, self.beta()));
        let chunk = src.len() / self.size;
        let mut out = src[self.rank * chunk..(self.rank + 1) * chunk].to_vec();
        Self::mirror_reduce(&mut out, self.size, op);
        PendingCollective::ready(out)
    }

    fn start_all_gather_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        row_ids: &[u32],
        row_width: usize,
    ) -> PendingCollective<'c, T> {
        assert!(row_width > 0, "all_gather_rows: row_width must be positive");
        assert_eq!(
            src.len() % row_width,
            0,
            "all_gather_rows: src length {} not a multiple of row_width {}",
            src.len(),
            row_width
        );
        let local_rows = src.len() / row_width;
        let rows_total = local_rows * self.size;
        // Mirror world: every peer requests this rank's `row_ids`, so the
        // serve list is the distinct requested rows that fall in this
        // rank's ownership range. Ledger bytes follow the thread backend's
        // indexed-size convention (rows served + index upload), which is
        // what makes the dense-vs-sparse volume comparison apples-to-apples
        // with the dense AllGather events' contributed-payload convention.
        let mut owned: Vec<u32> = row_ids
            .iter()
            .copied()
            .inspect(|&g| {
                assert!(
                    (g as usize) < rows_total,
                    "all_gather_rows: row id {} out of {} global rows",
                    g,
                    rows_total
                );
            })
            .filter(|&g| g as usize / local_rows == self.rank)
            .collect();
        owned.sort_unstable();
        owned.dedup();
        let served_bytes = owned.len() * row_width * T::BYTES;
        let index_bytes = std::mem::size_of_val(row_ids);
        self.record(CollOp::AllGatherRows, served_bytes + index_bytes);
        // Ring-gather of the *actual* sparse volume: the requested rows
        // plus the index exchange, not the dense padded block.
        let sparse_bytes = (row_ids.len() * row_width * T::BYTES + index_bytes) as f64;
        self.charge(all_gather_time(sparse_bytes, self.size, self.beta()));
        let mut out = Vec::with_capacity(row_ids.len() * row_width);
        for &g in row_ids {
            let local = g as usize % local_rows;
            out.extend_from_slice(&src[local * row_width..][..row_width]);
        }
        PendingCollective::ready(out)
    }

    fn start_all_to_all_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        requests: &[Vec<u32>],
        row_width: usize,
    ) -> PendingCollective<'c, T> {
        assert!(row_width > 0, "all_to_all_rows: row_width must be positive");
        assert_eq!(
            src.len() % row_width,
            0,
            "all_to_all_rows: src length {} not a multiple of row_width {}",
            src.len(),
            row_width
        );
        assert_eq!(
            requests.len(),
            self.size,
            "all_to_all_rows: expected {} per-owner request lists, got {}",
            self.size,
            requests.len()
        );
        let local_rows = src.len() / row_width;
        // Mirror world: every peer's request table is this rank's, so each
        // of the `size` peers wants `requests[self.rank]` from us.
        let outgoing_rows = self.size * requests[self.rank].len() * row_width * T::BYTES;
        let outgoing_ids: usize =
            requests.iter().map(|r| r.len() * std::mem::size_of::<u32>()).sum();
        self.record(CollOp::AllToAllRows, outgoing_rows + outgoing_ids);
        self.charge(all_to_all_time(
            (outgoing_rows + outgoing_ids) as f64,
            self.size,
            self.beta(),
            self.cost.latency,
        ));
        let out_len: usize = requests.iter().map(|r| r.len() * row_width).sum();
        let mut out = Vec::with_capacity(out_len);
        for per_owner in requests {
            for &l in per_owner {
                assert!(
                    (l as usize) < local_rows,
                    "all_to_all_rows: local row {} of a {}-row block",
                    l,
                    local_rows
                );
                out.extend_from_slice(&src[l as usize * row_width..][..row_width]);
            }
        }
        PendingCollective::ready(out)
    }

    fn split_by<F>(&self, f: F, label: &'static str) -> Self
    where
        F: Fn(usize) -> (u64, u64),
    {
        let (my_color, _) = f(self.rank);
        // Exact membership: evaluate the map for every simulated rank and
        // order members by (key, parent rank), as MPI_Comm_split does.
        let mut members: Vec<(u64, usize)> = (0..self.size)
            .filter_map(|r| {
                let (color, key) = f(r);
                (color == my_color).then_some((key, r))
            })
            .collect();
        members.sort_unstable();
        let group_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split_by: own rank missing from its color group");
        Self {
            rank: group_rank,
            size: members.len(),
            label,
            cost: Arc::clone(&self.cost),
            clock: Arc::clone(&self.clock),
            ledger: Arc::clone(&self.ledger),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(beta: f64) -> SimCostModel {
        SimCostModel::new(beta, 1e-6)
    }

    #[test]
    fn world_has_requested_shape() {
        let w = SimComm::world(1024, flat(25e9));
        assert_eq!(w.size(), 1024);
        assert_eq!(w.rank(), 0);
        assert_eq!(w.label(), "world");
    }

    #[test]
    fn all_reduce_charges_ring_equation() {
        let w = SimComm::world(8, flat(25e9));
        let mut buf = vec![1.0f32; 256];
        w.all_reduce(&mut buf, ReduceOp::Sum);
        let expect = all_reduce_time(1024.0, 8, 25e9);
        assert!((w.elapsed() - expect).abs() < 1e-15, "{} vs {}", w.elapsed(), expect);
        // Mirror world: 8 identical contributions of 1.0 sum to 8.0.
        assert_eq!(buf[0], 8.0);
    }

    #[test]
    fn gathers_are_shape_faithful() {
        let w = SimComm::world(4, flat(25e9));
        let out = w.all_gather(&[1u32, 2]);
        assert_eq!(out, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        let ragged = w.all_gather_varlen(&[7u32]);
        assert_eq!(ragged.len(), 4);
        assert_eq!(ragged[3], vec![7]);
    }

    #[test]
    fn reduce_scatter_returns_own_chunk_of_mirror_reduction() {
        let w = SimComm::world_rank(4, 2, flat(25e9));
        let buf: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let out = w.reduce_scatter(&buf, ReduceOp::Sum);
        // Rank 2's chunk is elements 4..6, each summed over 4 mirror copies.
        assert_eq!(out, vec![16.0, 20.0]);
    }

    #[test]
    fn split_by_builds_exact_grid_groups() {
        // A 4x2 "grid": color = row (rank / 4), key = column (rank % 4).
        let w = SimComm::world_rank(8, 6, flat(25e9));
        let row = w.split_by(|r| ((r / 4) as u64, (r % 4) as u64), "row");
        assert_eq!(row.size(), 4);
        assert_eq!(row.rank(), 2); // rank 6 is column 2 of row 1
        let col = w.split_by(|r| ((r % 4) as u64, (r / 4) as u64), "col");
        assert_eq!(col.size(), 2);
        assert_eq!(col.rank(), 1);
    }

    #[test]
    fn per_group_beta_overrides_apply() {
        let cost = flat(10e9).with_group_beta("x", 100e9);
        let w = SimComm::world(16, cost);
        let x = w.split_by(|r| ((r / 4) as u64, r as u64), "x");
        let mut buf = vec![0.0f32; 1000];
        let before = w.elapsed();
        x.all_reduce(&mut buf, ReduceOp::Sum);
        let fast = w.elapsed() - before;
        let expect = all_reduce_time(4000.0, 4, 100e9);
        assert!((fast - expect).abs() < 1e-15);
    }

    #[test]
    fn ledger_matches_thread_backend_conventions() {
        let w = SimComm::world(2, flat(25e9));
        let mut v = vec![0.0f32; 256];
        w.all_reduce(&mut v, ReduceOp::Sum);
        let _ = w.all_gather(&v[..16]);
        let events = w.ledger().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].bytes, 1024);
        assert_eq!(events[1].bytes, 64);
        assert_eq!(events[0].group_size, 2);
    }

    #[test]
    fn thousand_rank_world_is_cheap() {
        // The headline scenario: a 1024-rank world with per-axis splits
        // and a round of collectives, all in one thread.
        let w = SimComm::world(1024, flat(25e9));
        let x = w.split_by(|r| ((r / 16) as u64, r as u64), "x");
        assert_eq!(x.size(), 16);
        for _ in 0..100 {
            let mut buf = vec![1.0f32; 4096];
            x.all_reduce(&mut buf, ReduceOp::Sum);
        }
        assert!(w.elapsed() > 0.0);
        assert_eq!(w.ledger().len(), 100);
    }

    #[test]
    fn nonblocking_defaults_match_blocking() {
        let w = SimComm::world(4, flat(25e9));
        let src: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        let pending = w.start_all_reduce(&src, ReduceOp::Sum);
        let nonblocking = pending.wait();
        let mut blocking = src.clone();
        w.all_reduce(&mut blocking, ReduceOp::Sum);
        assert_eq!(nonblocking, blocking);
    }
}
