//! Hardware models of the two supercomputers in the paper's evaluation
//! (§6.1), expressed as effective rates rather than peaks.
//!
//! Calibration notes (all tied to statements in the paper):
//!
//! * A100 peak is 19.5 FP32 Tflop/s; SpMM on power-law graphs reaches only
//!   a small fraction of peak (irregular access, low reuse — §1), so the
//!   effective SpMM rate is ~1.5% of peak. Dense GEMM on the shapes in
//!   play (tall-skinny times small square) runs at ~40% of peak.
//! * MI250X peak is 47.9 FP32 Tflop/s *per GPU* (two GCDs), but §7.2
//!   observes SpMM "an order of magnitude higher" latency than NVIDIA —
//!   so the per-GCD effective SpMM rate is ~10x below the A100's.
//! * Both systems have 4 NICs/node at 25 GB/s injection (§6.1); NVLink-
//!   class intra-node fabric is modelled at 200 GB/s effective per GPU.

/// Effective machine rates used by every analytic model in the workspace.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    pub name: &'static str,
    /// GPUs (Perlmutter) or GCDs (Frontier) per node.
    pub gpus_per_node: usize,
    /// Effective intra-node bandwidth per GPU pair, bytes/s.
    pub beta_intra: f64,
    /// Effective inter-node injection bandwidth per NIC, bytes/s.
    pub beta_inter: f64,
    /// Per-collective-step latency, seconds (small but matters for
    /// all-to-all at scale).
    pub latency: f64,
    /// Effective SpMM rate, flop/s.
    pub spmm_rate: f64,
    /// Effective dense GEMM rate, flop/s.
    pub gemm_rate: f64,
    /// Dimensionless coefficient of the tall-skinny SpMM penalty (paper
    /// §4.1): multiplies `(rows_of_dense / cols_of_dense)`-shaped terms.
    pub spmm_shape_penalty: f64,
}

/// Perlmutter GPU partition: 4x A100 per node, Slingshot 11.
pub fn perlmutter() -> MachineSpec {
    MachineSpec {
        name: "Perlmutter",
        gpus_per_node: 4,
        beta_intra: 200.0e9,
        beta_inter: 25.0e9,
        latency: 12.0e-6,
        spmm_rate: 0.3e12, // ~1.5% of 19.5 Tflop/s
        gemm_rate: 8.0e12, // ~40% of peak
        spmm_shape_penalty: 2.0e-6,
    }
}

/// Frontier: 4x MI250X per node = 8 GCDs, Slingshot 11.
pub fn frontier() -> MachineSpec {
    MachineSpec {
        name: "Frontier",
        gpus_per_node: 8,
        beta_intra: 150.0e9,
        beta_inter: 25.0e9,
        latency: 12.0e-6,
        // §7.2: SpMM an order of magnitude slower than on A100s.
        spmm_rate: 0.03e12,
        gemm_rate: 10.0e12,
        spmm_shape_penalty: 2.0e-6,
    }
}

impl MachineSpec {
    /// Time for `flops` of SpMM with a dense operand of shape
    /// `common_rows x dense_cols`; the second factor is the §4.1
    /// tall-skinny penalty (more rows per column -> worse memory behavior).
    pub fn spmm_time(&self, flops: f64, common_rows: f64, dense_cols: f64) -> f64 {
        let shape_penalty = 1.0 + self.spmm_shape_penalty * common_rows / dense_cols.max(1.0);
        flops / self.spmm_rate * shape_penalty
    }

    /// Time for a dense GEMM of `flops`.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        flops / self.gemm_rate
    }

    /// Node index of a rank under consecutive packing.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_spmm_is_order_of_magnitude_slower() {
        let p = perlmutter();
        let f = frontier();
        let flops = 1.0e12;
        let tp = p.spmm_time(flops, 1e6, 128.0);
        let tf = f.spmm_time(flops, 1e6, 128.0);
        assert!(
            tf / tp > 8.0 && tf / tp < 12.0,
            "Frontier/Perlmutter SpMM ratio {:.1} should be ~10x",
            tf / tp
        );
    }

    #[test]
    fn skinny_dense_operand_is_penalized() {
        let m = perlmutter();
        let flops = 1.0e12;
        let fat = m.spmm_time(flops, 1.0e6, 128.0);
        let skinny = m.spmm_time(flops, 1.0e6, 2.0);
        assert!(skinny > fat * 1.5, "skinny {:.4} vs fat {:.4}", skinny, fat);
    }

    #[test]
    fn gemm_is_much_faster_than_spmm_per_flop() {
        let m = perlmutter();
        assert!(m.gemm_time(1e12) < m.spmm_time(1e12, 1e5, 128.0) / 5.0);
    }

    #[test]
    fn node_packing_is_consecutive() {
        let p = perlmutter();
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        let f = frontier();
        assert_eq!(f.node_of(7), 0);
        assert_eq!(f.node_of(8), 1);
    }
}
