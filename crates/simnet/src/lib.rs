//! Machine and network performance models.
//!
//! The paper's scaling evaluation runs on Perlmutter (2048 A100 GPUs) and
//! Frontier (1024+ MI250X GCDs). Those machines are simulated here:
//!
//! * [`machine`] — hardware constants for both systems (§6.1) plus the
//!   kernel-rate models calibrated to the paper's observations (e.g.
//!   "SpMM times on AMD GPUs were an order of magnitude higher", §7.2);
//! * [`ring`] — ring-collective time equations (Thakur/Rabenseifner, the
//!   paper's eq. 4.5) and the all-to-all model used for BNS-GCN;
//! * [`simcomm`] — [`SimComm`], the single-process, cost-only
//!   [`plexus_comm::Communicator`] backend: collectives complete logically
//!   on this rank's data shapes while the ring equations charge a virtual
//!   clock, so thousand-rank grids run as perf-model studies without a
//!   thousand threads;
//! * [`regression`] — ordinary least squares via normal equations, R² and
//!   RMSE, reproducing the §4.1 model-fitting methodology without an ML
//!   dependency;
//! * [`gpumem`] — a GPU memory-access simulator (CTA grid sizing, 32-byte
//!   sector coalescing, a small LRU L2 cache) that regenerates the
//!   *mechanism* behind Table 2's Nsight metrics.

pub mod gpumem;
pub mod machine;
pub mod regression;
pub mod ring;
pub mod simcomm;

pub use gpumem::{
    estimate_rank_activation_bytes, estimate_rank_adjacency_bytes, simulate_spmm_kernel,
    SpmmKernelMetrics,
};
pub use machine::{frontier, perlmutter, MachineSpec};
pub use regression::{LinearModel, RegressionReport};
pub use ring::{
    all_gather_time, all_reduce_time, all_to_all_time, broadcast_time, reduce_scatter_time,
};
pub use simcomm::{SimClock, SimComm, SimCostModel};
