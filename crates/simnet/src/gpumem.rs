//! GPU memory-access simulator for the row-split SpMM kernel — the
//! substitute for Nsight Compute in reproducing Table 2.
//!
//! The paper profiles `SpMM(A, H)` under two 64-GPU configs of
//! ogbn-products: U (Gx=64 — the common dimension is sharded, the dense
//! operand keeps its full width) and V (Gy=64 — the dense operand becomes
//! a 2-column skinny matrix with a 64x larger common dimension). Nsight
//! shows V launching ~64x more blocks, issuing ~46x more uncoalesced
//! global sectors, and collapsing L2/DRAM throughput.
//!
//! This module reproduces the mechanism with an explicit kernel model:
//!
//! * **Grid sizing** — a row-split CSR kernel assigns a warp per sparse
//!   row and tiles the common dimension, so the CTA count scales with
//!   `rows x ceil(common_dim / K_TILE)`: V's 64x common dimension gives
//!   ~64x the blocks;
//! * **Coalescing** — each nonzero reads one dense row; reads are issued
//!   in 32-byte sectors. A 2-column f32 row uses 8 of the 32 bytes -> 75%
//!   of every sector is waste, counted as uncoalesced traffic;
//! * **L2 cache** — a set-associative LRU over sector addresses; a skinny
//!   dense matrix with 64x more rows stops fitting, so hit rate collapses
//!   and effective DRAM throughput with it.

use plexus_sparse::Csr;

/// Sector size of NVIDIA L2 transactions (bytes).
const SECTOR: usize = 32;
/// Common-dimension tile per CTA in the modelled kernel (the CTA count
/// scales with `common_dim / K_TILE`, which is what produces the paper's
/// ~64x grid-size blowup for config V).
const K_TILE: usize = 512;
/// Rows handled per CTA.
const ROWS_PER_CTA: usize = 64;

/// Metrics analogous to the Table 2 rows.
#[derive(Clone, Debug)]
pub struct SpmmKernelMetrics {
    /// CTA count ("Grid Size").
    pub grid_size: usize,
    /// Sectors fetched whose bytes were only partially used.
    pub uncoalesced_sectors: usize,
    /// L2 hit rate in [0, 1] ("L2 Cache Throughput" proxy: more hits =
    /// more of the request stream served at L2 bandwidth).
    pub l2_hit_rate: f64,
    /// Fraction of DRAM-fetched bytes that were actually consumed ("DRAM
    /// Throughput" proxy).
    pub dram_useful_fraction: f64,
    /// Total sectors requested.
    pub total_sectors: usize,
}

/// A tiny set-associative LRU cache over sector addresses.
struct SectorCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
}

impl SectorCache {
    /// `capacity_bytes` total, `ways`-associative, SECTOR-byte lines.
    fn new(capacity_bytes: usize, ways: usize) -> Self {
        let lines = (capacity_bytes / SECTOR).max(ways);
        let sets = (lines / ways).next_power_of_two();
        Self { sets: vec![Vec::with_capacity(ways); sets], ways, set_mask: sets as u64 - 1 }
    }

    /// Access a sector address; returns true on hit.
    fn access(&mut self, addr: u64) -> bool {
        let set = &mut self.sets[(addr & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&a| a == addr) {
            // Move to MRU position.
            let a = set.remove(pos);
            set.push(a);
            true
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(addr);
            false
        }
    }
}

/// Simulate the dense-operand traffic of `SpMM(A, B)` where `B` is
/// `a.cols() x dense_cols` of f32, through an L2 of `l2_bytes`.
pub fn simulate_spmm_kernel(a: &Csr, dense_cols: usize, l2_bytes: usize) -> SpmmKernelMetrics {
    assert!(dense_cols > 0, "simulate_spmm_kernel: dense operand needs columns");
    let row_bytes = dense_cols * 4;
    let sectors_per_row = row_bytes.div_ceil(SECTOR);
    let waste_per_row = sectors_per_row * SECTOR - row_bytes;

    let grid_size = a.rows().div_ceil(ROWS_PER_CTA) * a.cols().div_ceil(K_TILE).max(1);

    let mut cache = SectorCache::new(l2_bytes, 16);
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut uncoalesced = 0usize;
    let mut dram_useful_bytes = 0usize;
    let mut dram_bytes = 0usize;

    for r in 0..a.rows() {
        let (cols, _) = a.row_entries(r);
        for &c in cols {
            let base = c as u64 * row_bytes as u64;
            for s in 0..sectors_per_row {
                let addr = (base + (s * SECTOR) as u64) / SECTOR as u64;
                // Bytes of this sector the row read actually consumes.
                let used = SECTOR.min(row_bytes - s * SECTOR);
                if cache.access(addr) {
                    hits += 1;
                } else {
                    misses += 1;
                    dram_bytes += SECTOR;
                    dram_useful_bytes += used;
                }
            }
            if waste_per_row > 0 {
                // Every row-read that does not fill its sectors counts as
                // uncoalesced traffic.
                uncoalesced += sectors_per_row;
            }
        }
    }

    let total = hits + misses;
    SpmmKernelMetrics {
        grid_size,
        uncoalesced_sectors: uncoalesced,
        l2_hit_rate: if total > 0 { hits as f64 / total as f64 } else { 0.0 },
        dram_useful_fraction: if dram_bytes > 0 {
            dram_useful_bytes as f64 / dram_bytes as f64
        } else {
            1.0
        },
        total_sectors: total,
    }
}

/// Analytic per-rank resident adjacency estimate for the §5.4 memory
/// ledger: each layer holds one `(n_pad/rdim) x (n_pad/cdim)` shard plus
/// its transpose, with an expected `nnz_total/(rdim·cdim)` nonzeros
/// (8 bytes each: `u32` column + `f32` value) and `usize` row pointers.
/// `layer_splits[l] = (rdim, cdim)` is the shard grid the layer's
/// adjacency plane is split over — `ProblemMeta::layer_splits()` in the
/// engine. The estimate assumes permutation-balanced shards; real ledgers
/// land within a small factor of it (skew and transient merge buffers).
pub fn estimate_rank_adjacency_bytes(
    nnz_total: usize,
    n_pad: usize,
    layer_splits: &[(usize, usize)],
) -> u64 {
    layer_splits
        .iter()
        .map(|&(rdim, cdim)| {
            let shard_nnz = (nnz_total / (rdim * cdim)) as u64;
            let entry_bytes = shard_nnz * 8;
            let shard_ptr = (n_pad / rdim + 1) as u64 * 8;
            let transpose_ptr = (n_pad / cdim + 1) as u64 * 8;
            2 * entry_bytes + shard_ptr + transpose_ptr
        })
        .sum()
}

/// Analytic per-rank resident *activation* estimate for the residency
/// engine's `Resident` baseline: layer `l` holds three dense f32 segments —
/// the post-all-reduce aggregation `H` (`(n_pad/rdim) x (dims_pad[l]/kdim)`),
/// the pre-activation `Q` (`(n_pad/rdim) x (dims_pad[l+1]/cdim)`) and the
/// gathered weights `W_full` (`(dims_pad[l]/kdim) x (dims_pad[l+1]/cdim)`).
/// `dims_pad` are the `L+1` padded per-boundary feature dims and
/// `layer_axes[l] = (rdim, cdim, kdim)` the layer's (rows, contract, feat)
/// axis sizes — `ProblemMeta::layer_axis_splits()` in the engine. Dense
/// activation shapes are exact functions of these, so the `Resident`
/// ledger's peak equals this estimate to the byte (asserted end to end).
pub fn estimate_rank_activation_bytes(
    n_pad: usize,
    dims_pad: &[usize],
    layer_axes: &[(usize, usize, usize)],
) -> u64 {
    assert_eq!(dims_pad.len(), layer_axes.len() + 1, "need L+1 boundary dims for L layers");
    layer_axes
        .iter()
        .enumerate()
        .map(|(l, &(rdim, cdim, kdim))| {
            let h = (n_pad / rdim) as u64 * (dims_pad[l] / kdim) as u64;
            let q = (n_pad / rdim) as u64 * (dims_pad[l + 1] / cdim) as u64;
            let w = (dims_pad[l] / kdim) as u64 * (dims_pad[l + 1] / cdim) as u64;
            4 * (h + q + w)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::Coo;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for _ in 0..nnz {
            coo.push(rng.random_range(0..rows as u32), rng.random_range(0..cols as u32), 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn grid_size_scales_with_common_dimension() {
        // Config U: common dim sharded 64x. Config V: full common dim.
        let u = random_csr(4096, 4096 / 64, 8192, 1);
        let v = random_csr(4096, 4096, 8192, 1);
        let mu = simulate_spmm_kernel(&u, 100, 1 << 20);
        let mv = simulate_spmm_kernel(&v, 2, 1 << 20);
        // 64/ceil ratios: V's common dim is 64x larger -> ~64x more CTAs
        // once the common dim exceeds one tile.
        assert!(
            mv.grid_size >= mu.grid_size,
            "V grid {} should exceed U grid {}",
            mv.grid_size,
            mu.grid_size
        );
    }

    #[test]
    fn skinny_dense_matrix_is_uncoalesced() {
        let a = random_csr(1024, 1024, 4096, 2);
        let fat = simulate_spmm_kernel(&a, 128, 1 << 20);
        let skinny = simulate_spmm_kernel(&a, 2, 1 << 20);
        assert_eq!(fat.uncoalesced_sectors, 0, "512-byte rows fill their sectors exactly");
        assert!(skinny.uncoalesced_sectors > 0);
        assert!(skinny.dram_useful_fraction < fat.dram_useful_fraction);
    }

    #[test]
    fn small_working_set_hits_in_l2() {
        // Dense operand fits in L2 -> after warmup everything hits.
        let a = random_csr(4096, 64, 32768, 3);
        let m = simulate_spmm_kernel(&a, 16, 1 << 20);
        assert!(m.l2_hit_rate > 0.9, "hit rate {}", m.l2_hit_rate);
    }

    #[test]
    fn oversized_working_set_misses() {
        // Dense operand far larger than L2 with random access -> misses.
        let a = random_csr(8192, 1 << 17, 65536, 4);
        let m = simulate_spmm_kernel(&a, 8, 1 << 16);
        assert!(m.l2_hit_rate < 0.3, "hit rate {}", m.l2_hit_rate);
    }

    #[test]
    fn adjacency_estimate_scales_with_shard_grid() {
        // Splitting every layer 4x4 instead of 2x2 quarters the entry
        // bytes; a (1,1) split degenerates to the full 2-copies-per-layer
        // in-memory footprint.
        let (nnz, np) = (1 << 20, 1 << 16);
        let coarse = estimate_rank_adjacency_bytes(nnz, np, &[(2, 2); 3]);
        let fine = estimate_rank_adjacency_bytes(nnz, np, &[(4, 4); 3]);
        assert!(fine < coarse, "finer splits must shrink the estimate");
        let full = estimate_rank_adjacency_bytes(nnz, np, &[(1, 1)]);
        assert_eq!(full, 2 * (nnz as u64 * 8) + 2 * ((np as u64 + 1) * 8));
    }

    #[test]
    fn activation_estimate_scales_with_grid_and_width() {
        // Doubling every axis split quarters each dense segment; a (1,1,1)
        // split degenerates to the serial footprint H + Q + W per layer.
        let (np, d) = (1 << 12, 128);
        let dims = [d, d, d, d];
        let coarse = estimate_rank_activation_bytes(np, &dims, &[(2, 2, 2); 3]);
        let fine = estimate_rank_activation_bytes(np, &dims, &[(4, 4, 4); 3]);
        assert!(fine < coarse, "finer splits must shrink the estimate");
        let serial = estimate_rank_activation_bytes(np, &dims[..2], &[(1, 1, 1)]);
        assert_eq!(serial, 4 * ((np * d) as u64 + (np * d) as u64 + (d * d) as u64));
        // Asymmetric boundary dims: the input/output widths land on the
        // right axes (feat splits H's cols, contract splits Q's cols).
        let asym = estimate_rank_activation_bytes(8, &[4, 2], &[(2, 1, 4)]);
        // h = (8/2)*(4/4) = 4, q = (8/2)*(2/1) = 8, w = (4/4)*(2/1) = 2.
        assert_eq!(asym, 4 * (4 + 8 + 2));
    }

    #[test]
    fn lru_cache_behaves() {
        let mut c = SectorCache::new(SECTOR * 4, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        // Fill the set containing addr 0 (set index = addr & mask).
        let stride = c.set_mask + 1;
        assert!(!c.access(stride));
        assert!(!c.access(2 * stride)); // evicts addr 0 (LRU)
        assert!(!c.access(0));
    }
}
