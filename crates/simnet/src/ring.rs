//! Ring-collective time equations.
//!
//! Paper §4.2: "Plexus adapts AxoNN's communication model, which uses ring
//! algorithm equations from Thakur et al. and Rabenseifner. The latency
//! term is omitted since the messages are large and bandwidth-bound." The
//! all-to-all model keeps a latency term: the paper attributes BNS-GCN's
//! collapse at scale partly to all-to-all's long-distance messages (§7.1).

/// Eq. 4.5: ring all-reduce of `bytes` across `g` ranks at `beta` bytes/s:
/// `T = 2/β · (G-1)/G · M`.
pub fn all_reduce_time(bytes: f64, g: usize, beta: f64) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    2.0 / beta * ((g - 1) as f64 / g as f64) * bytes
}

/// Ring all-gather where the *result* is `bytes` total (each rank holds
/// `bytes / G` beforehand): `T = (G-1)/G · M/β`.
pub fn all_gather_time(result_bytes: f64, g: usize, beta: f64) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    ((g - 1) as f64 / g as f64) * result_bytes / beta
}

/// Ring reduce-scatter of a `bytes` buffer: same volume as all-gather.
pub fn reduce_scatter_time(bytes: f64, g: usize, beta: f64) -> f64 {
    all_gather_time(bytes, g, beta)
}

/// Pipelined ring broadcast of `bytes` across `g` ranks: chunks stream
/// around the ring, so for the large bandwidth-bound messages this model
/// assumes the time approaches one buffer traversal, `T = M/β`.
pub fn broadcast_time(bytes: f64, g: usize, beta: f64) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    bytes / beta
}

/// All-to-all of `bytes` per rank (total outgoing) across `g` ranks:
/// pairwise exchange with `g-1` message start-ups. The latency term is the
/// scaling killer the paper observes for BNS-GCN beyond 64 GPUs.
pub fn all_to_all_time(bytes_per_rank: f64, g: usize, beta: f64, latency: f64) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    (g - 1) as f64 * latency + bytes_per_rank / beta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        assert_eq!(all_reduce_time(1e9, 1, 1e9), 0.0);
        assert_eq!(all_gather_time(1e9, 1, 1e9), 0.0);
        assert_eq!(broadcast_time(1e9, 1, 1e9), 0.0);
        assert_eq!(all_to_all_time(1e9, 1, 1e9, 1e-5), 0.0);
    }

    #[test]
    fn broadcast_is_one_traversal() {
        assert_eq!(broadcast_time(1e9, 8, 25e9), 0.04);
    }

    #[test]
    fn all_reduce_matches_closed_form() {
        // 1 GB over 4 ranks at 25 GB/s: 2/25e9 * 3/4 * 1e9 = 60 ms.
        let t = all_reduce_time(1.0e9, 4, 25.0e9);
        assert!((t - 0.06).abs() < 1e-9, "got {}", t);
    }

    #[test]
    fn all_reduce_is_twice_all_gather() {
        let (b, g, beta) = (2.0e8, 8, 25.0e9);
        let ar = all_reduce_time(b, g, beta);
        let ag = all_gather_time(b, g, beta);
        assert!((ar / ag - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_reduce_saturates_with_rank_count() {
        // (G-1)/G -> 1: doubling G barely changes the time at large G.
        let t64 = all_reduce_time(1e9, 64, 25e9);
        let t128 = all_reduce_time(1e9, 128, 25e9);
        assert!((t128 - t64) / t64 < 0.02);
    }

    #[test]
    fn all_to_all_latency_grows_linearly_in_g() {
        let beta = 25e9;
        let lat = 1e-5;
        let small = all_to_all_time(1e6, 8, beta, lat);
        let large = all_to_all_time(1e6, 512, beta, lat);
        // With tiny payload the latency term dominates at scale.
        assert!(large > small * 10.0);
    }
}
