//! Ordinary least squares via normal equations — the paper fits its §4.1
//! computational model with scikit-learn's LinearRegression on 67 points
//! and reports train/test R² over 1000 random splits; this module
//! reproduces that methodology.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A fitted linear model `y = w · x + b`.
#[derive(Clone, Debug)]
pub struct LinearModel {
    pub coefficients: Vec<f64>,
    pub intercept: f64,
}

impl LinearModel {
    /// Fit by solving the normal equations `(XᵀX) w = Xᵀy` with Gaussian
    /// elimination and partial pivoting (feature counts here are tiny).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert!(!xs.is_empty(), "LinearModel::fit: no samples");
        assert_eq!(xs.len(), ys.len(), "LinearModel::fit: X/y length mismatch");
        let d = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == d), "LinearModel::fit: ragged features");
        // Augment with a constant column for the intercept.
        let cols = d + 1;
        let mut xtx = vec![vec![0.0f64; cols]; cols];
        let mut xty = vec![0.0f64; cols];
        for (x, &y) in xs.iter().zip(ys) {
            let aug = |i: usize| if i < d { x[i] } else { 1.0 };
            for i in 0..cols {
                for j in 0..cols {
                    xtx[i][j] += aug(i) * aug(j);
                }
                xty[i] += aug(i) * y;
            }
        }
        // Tikhonov jitter keeps the solve stable when features correlate.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let w = solve(xtx, xty);
        Self { coefficients: w[..d].to_vec(), intercept: w[d] }
    }

    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "predict: feature count mismatch");
        self.intercept + self.coefficients.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }

    /// Coefficient of determination on a dataset.
    pub fn r2(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|&y| (y - mean).powi(2)).sum();
        let ss_res: f64 = xs.iter().zip(ys).map(|(x, &y)| (y - self.predict(x)).powi(2)).sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }

    /// Root-mean-square error on a dataset.
    pub fn rmse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let ss: f64 = xs.iter().zip(ys).map(|(x, &y)| (y - self.predict(x)).powi(2)).sum();
        (ss / ys.len() as f64).sqrt()
    }
}

/// Solve `A w = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-30, "normal equations singular at column {}", col);
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut w = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * w[k];
        }
        w[row] = acc / a[row][row];
    }
    w
}

/// Repeated random train/test split evaluation, as in §4.1 ("a random
/// train-test split of 70-30 for 1000 independent iterations").
#[derive(Clone, Debug)]
pub struct RegressionReport {
    pub train_r2: f64,
    pub test_r2: f64,
    pub train_rmse: f64,
    pub test_rmse: f64,
    pub iterations: usize,
}

impl RegressionReport {
    pub fn evaluate(
        xs: &[Vec<f64>],
        ys: &[f64],
        train_fraction: f64,
        iterations: usize,
        seed: u64,
    ) -> Self {
        assert!(xs.len() >= 5, "RegressionReport: too few samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        let n_train = ((xs.len() as f64) * train_fraction).round() as usize;
        let (mut tr2, mut te2, mut trm, mut tem) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..iterations {
            idx.shuffle(&mut rng);
            let take = |ids: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
                (ids.iter().map(|&i| xs[i].clone()).collect(), ids.iter().map(|&i| ys[i]).collect())
            };
            let (xtr, ytr) = take(&idx[..n_train]);
            let (xte, yte) = take(&idx[n_train..]);
            let model = LinearModel::fit(&xtr, &ytr);
            tr2 += model.r2(&xtr, &ytr);
            te2 += model.r2(&xte, &yte);
            trm += model.rmse(&xtr, &ytr);
            tem += model.rmse(&xte, &yte);
        }
        let k = iterations as f64;
        Self {
            train_r2: tr2 / k,
            test_r2: te2 / k,
            train_rmse: trm / k,
            test_rmse: tem / k,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn recovers_exact_linear_relationship() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i * i) as f64 % 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.coefficients[0] - 3.0).abs() < 1e-6);
        assert!((m.coefficients[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept - 5.0).abs() < 1e-6);
        assert!(m.r2(&xs, &ys) > 0.999999);
        assert!(m.rmse(&xs, &ys) < 1e-6);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.random_range(0.0..10.0)]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| 2.0 * x[0] + 1.0 + rng.random_range(-0.5..0.5)).collect();
        let m = LinearModel::fit(&xs, &ys);
        let r2 = m.r2(&xs, &ys);
        assert!(r2 > 0.95, "r2 = {}", r2);
    }

    #[test]
    fn report_averages_over_splits() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Vec<f64>> =
            (0..67).map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| x[0] + 0.5 * x[1] + rng.random_range(-0.05..0.05)).collect();
        let rep = RegressionReport::evaluate(&xs, &ys, 0.7, 50, 1);
        assert!(rep.train_r2 > 0.8 && rep.test_r2 > 0.6, "report: {:?}", rep);
        assert!(rep.train_rmse < 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = LinearModel::fit(&[vec![1.0]], &[1.0, 2.0]);
    }
}
