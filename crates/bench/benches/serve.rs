//! BENCH_serve: inference-serving throughput and latency over a frozen
//! artifact.
//!
//! Two sections:
//!
//! 1. Criterion arms (`serve/...`) — the regression-gated ids for
//!    `compare_bench`: single-query and batched engine forwards, plus the
//!    k-hop extraction alone (the mmap-decode hot path).
//! 2. An open-loop load test against the full [`Server`] front end —
//!    requests arrive on a fixed schedule regardless of completions (so
//!    queueing delay is *measured*, not hidden as in closed loop) —
//!    reporting throughput and p50/p95/p99 latency.
//!
//! `PLEXUS_BENCH_SAMPLES` shrinks both sections for CI smoke runs.

use criterion::{criterion_group, Criterion};
use plexus_bench::Table;
use plexus_gnn::{Gcn, GcnConfig};
use plexus_graph::{rmat_graph, KhopWorkspace};
use plexus_serve::{freeze, Artifact, QueryEngine, ServeConfig, Server, SubmitPolicy};
use plexus_tensor::uniform_matrix;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SCALE: u32 = 13;
const HIDDEN: usize = 16;
const CLASSES: usize = 12;

/// Smoke runs (small `PLEXUS_BENCH_SAMPLES`) scale the open-loop section
/// down with the criterion sample count.
fn smoke_factor() -> usize {
    match std::env::var("PLEXUS_BENCH_SAMPLES").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n < 10 => 8,
        _ => 1,
    }
}

fn build_artifact() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plexus_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 1usize << SCALE;
    let graph = rmat_graph(SCALE, 8, 11);
    let a_hat = graph.normalized_adjacency();
    let features = uniform_matrix(n, HIDDEN, -0.5, 0.5, 12);
    let gcn = Gcn::new(GcnConfig {
        input_dim: HIDDEN,
        hidden_dim: HIDDEN,
        num_classes: CLASSES,
        num_layers: 3,
        seed: 13,
    });
    freeze(&dir, &a_hat, &gcn, &features, 4, 4).unwrap();
    dir
}

fn query_nodes(n: usize, count: usize, salt: usize) -> Vec<u32> {
    (0..count).map(|i| ((i * 2654435761 + salt * 40503) % n) as u32).collect()
}

fn bench_engine(c: &mut Criterion) {
    let dir = build_artifact();
    let art = Artifact::open(&dir).unwrap();
    let snap = art.snapshot();
    let n = art.num_nodes();
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    // K-hop extraction alone: sets + per-layer sub-CSRs straight off the
    // mapped shards, through a persistent workspace exactly as a serving
    // worker holds one (the merge-union + scatter-remap kernels).
    let batch32 = query_nodes(n, 32, 1);
    let mut khop = KhopWorkspace::new();
    group.bench_function("khop_extract_32", |b| {
        b.iter(|| {
            let sets = khop.khop_node_sets(&art, &batch32, 3);
            (0..3).map(|l| khop.extract_sub_csr(&art, &sets[l + 1], &sets[l]).nnz()).sum::<usize>()
        });
    });

    // Full engine forwards at three batch sizes with the default engine
    // (extraction cache on, as served in production); the workspaces and
    // the cache warm up during criterion's first samples, steady state is
    // zero-alloc and block-hit.
    let mut engine = QueryEngine::new(3);
    for &batch in &[1usize, 32, 256] {
        // Salt 0 starts the sequence at node 0 — an RMAT hub, so the
        // single-query arm is a worst-case receptive field, not an
        // accidentally isolated node.
        let nodes = query_nodes(n, batch, 0);
        group.bench_function(format!("predict_batch_{batch}"), |b| {
            b.iter(|| engine.predict_batch(&art, &snap, &nodes).len());
        });
    }

    // Cold-vs-warm split on the hub single query: `_cold` disables the
    // extraction cache (every iteration pays the full k-hop walk, sub-CSR
    // build, gather, and layer-0 SpMM); `_warm` is the cache-hit steady
    // state the default arms above settle into. The warm/cold ratio is
    // the extraction cache's headline win.
    let hub = query_nodes(n, 1, 0);
    let mut cold = QueryEngine::without_cache(3);
    group.bench_function("predict_batch_1_cold", |b| {
        b.iter(|| cold.predict_batch(&art, &snap, &hub).len());
    });
    let mut warm = QueryEngine::new(3);
    warm.predict_batch(&art, &snap, &hub); // populate the cache
    group.bench_function("predict_batch_1_warm", |b| {
        b.iter(|| warm.predict_batch(&art, &snap, &hub).len());
    });
    group.finish();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Latency percentile from a sorted sample set.
fn pct(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx]
}

/// Open-loop load: `total` requests arrive at a fixed `rate` (per
/// second). Client threads pick up arrival slots from a shared counter
/// and wait for their scheduled time before submitting, so a slow server
/// builds queueing delay into the measured latency instead of slowing the
/// arrival process down. `base` offsets the node id sequence so separate
/// runs query disjoint node windows (no cross-run cache pollution).
/// Returns the sorted latencies of *answered* requests plus the number of
/// requests refused with [`Overloaded`](plexus_serve::ServeError) — under
/// `SubmitPolicy::Block` the second count is always zero; under `Shed`
/// the refusals are what keeps the answered tail short.
fn open_loop(
    server: &Server,
    n: usize,
    rate: f64,
    total: usize,
    base: usize,
    clients: usize,
) -> (Vec<Duration>, usize) {
    let next = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let latencies = Mutex::new(Vec::with_capacity(total));
    let start = Instant::now() + Duration::from_millis(20);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= total {
                        break;
                    }
                    let due = start + Duration::from_secs_f64(slot as f64 / rate);
                    // Sleep the bulk of the wait (the bench container may
                    // be single-core; spinning would starve the workers),
                    // spin only the tail for schedule fidelity.
                    loop {
                        let now = Instant::now();
                        if now >= due {
                            break;
                        }
                        let left = due - now;
                        if left > Duration::from_micros(200) {
                            std::thread::sleep(left - Duration::from_micros(100));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let node = (((base + slot) * 2654435761) % n) as u32;
                    match server.try_query(node) {
                        Ok(_) => local.push(due.elapsed()),
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let mut all = latencies.into_inner().unwrap();
    all.sort();
    (all, shed.into_inner())
}

fn main() {
    benches();

    // ---- Open-loop front-end load test (reported, not criterion-timed).
    // Honor the CLI substring filter the criterion arms use, so
    // `cargo bench --bench serve -- khop` doesn't redo the load test (or
    // overwrite its CSV) just to time one arm.
    if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        if !"serve/open_loop".contains(filter.as_str()) {
            return;
        }
    }
    let dir = build_artifact();
    let shrink = smoke_factor();
    // Three disjoint node windows (3 * 2600 < 2^13) so every rate's miss
    // profile is the same; within-run duplicates never occur either (the
    // stride is odd, hence coprime with the power-of-two node count).
    let total = 2600 / shrink;
    let mut table = Table::new(
        "plexus-serve open-loop load (RMAT scale 13, 3-layer GCN, 2 workers)",
        &[
            "Policy",
            "Offered load (req/s)",
            "Achieved (req/s)",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "Shed",
        ],
    );
    // Block at all three rates, then Shed at the two overloaded rates: the
    // tail-latency rows that motivated PR 9's admission control. Each
    // policy gets a fresh server (fresh caches, fresh counters) and its
    // runs use disjoint node windows (3 * 2600 < 2^13; the stride is odd,
    // hence coprime with the power-of-two node count, so no duplicates
    // within a run either).
    for (policy, rates) in [
        (SubmitPolicy::Block, &[500.0f64, 2000.0, 8000.0][..]),
        (SubmitPolicy::Shed, &[2000.0, 8000.0][..]),
    ] {
        // A queue bound well under the client count: overloaded rates can
        // actually fill it, so `Block` measures convoy delay and `Shed`
        // measures the tail with refusals taken out of line.
        let server = Server::start(
            &dir,
            ServeConfig {
                workers: 2,
                max_batch: 64,
                max_wait: Duration::from_micros(200),
                queue_cap: 32,
                submit: policy,
                ..Default::default()
            },
        )
        .unwrap();
        let n = server.artifact().num_nodes();
        // Warm the per-worker workspaces so percentiles reflect steady
        // state — in chunks under the queue bound so the Shed server
        // doesn't refuse its own warmup.
        let warm: Vec<u32> = query_nodes(n, 256, 3);
        for chunk in warm.chunks(16) {
            server.query_many(chunk);
        }

        for (run, &rate) in rates.iter().enumerate() {
            let t0 = Instant::now();
            let (lat, shed) = open_loop(&server, n, rate, total, run * total, 64);
            let secs = t0.elapsed().as_secs_f64();
            let us = |d: Duration| format!("{:.0}", d.as_secs_f64() * 1e6);
            table.row(vec![
                format!("{policy:?}"),
                format!("{:.0}", rate),
                format!("{:.0}", lat.len() as f64 / secs),
                us(pct(&lat, 50.0)),
                us(pct(&lat, 95.0)),
                us(pct(&lat, 99.0)),
                format!("{shed}"),
            ]);
        }
        let stats = server.stats();
        println!(
            "\n[{policy:?}] Served {} predictions in {} batches (avg batch {:.1}), \
             {} prediction-cache hits, {} extraction hits / {} misses \
             ({} bytes held, {} evicted), {} shed, {} reloads.",
            stats.served,
            stats.batches,
            stats.served as f64 / stats.batches.max(1) as f64,
            stats.cache_hits,
            stats.extraction_hits,
            stats.extraction_misses,
            stats.extraction_bytes,
            stats.extraction_evicted,
            stats.shed,
            stats.reloads
        );
        drop(server);
    }
    table.print();
    table.write_csv("serve_open_loop");
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group!(benches, bench_engine);
