//! Table 4: the six evaluation datasets. Prints the paper's statistics
//! (used analytically by the scaling models) alongside the statistics of
//! the scaled synthetic instances the functional experiments run on.

use plexus_bench::Table;
use plexus_graph::{paper_datasets, LoadedDataset};

fn main() {
    let mut t = Table::new(
        "Table 4: graph datasets (paper statistics)",
        &["Dataset", "# Nodes", "# Edges", "# Non-zeros", "# Features", "# Classes", "Sparsity %"],
    );
    for spec in paper_datasets() {
        t.row(vec![
            spec.name.into(),
            format!("{}", spec.nodes),
            format!("{}", spec.edges),
            format!("{}", spec.nonzeros),
            format!("{}", spec.features),
            format!("{}", spec.classes),
            format!("{:.4}", spec.sparsity() * 100.0),
        ]);
    }
    t.print();
    t.write_csv("table4_datasets_paper");

    let mut s = Table::new(
        "Table 4b: scaled synthetic instances used by functional experiments",
        &["Dataset", "# Nodes", "# Edges", "Avg degree (paper)", "Avg degree (ours)"],
    );
    for spec in paper_datasets() {
        let ds = LoadedDataset::generate(spec, 1 << 13, Some(32), 42);
        s.row(vec![
            spec.name.into(),
            format!("{}", ds.num_nodes()),
            format!("{}", ds.graph.num_edges()),
            format!("{:.1}", spec.avg_degree()),
            format!("{:.1}", ds.graph.avg_degree()),
        ]);
    }
    s.print();
    s.write_csv("table4_datasets_scaled");
    println!("\nNote: dense graphs (Reddit: avg degree 246) are capped at edge factor 16 when");
    println!("scaled down, as documented in plexus-graph::datasets.");
}
