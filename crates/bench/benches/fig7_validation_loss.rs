//! Fig. 7: validation of Plexus against a serial baseline — the loss
//! curves of many 16-GPU grid configurations must coincide with the
//! serial (PyTorch-Geometric-role) trainer on ogbn-products.
//!
//! This is the functional heart of the reproduction: the same check also
//! runs (smaller) in the test suite; here it runs bigger and prints the
//! actual loss trajectories.

use plexus::grid::GridConfig;
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_bench::Table;
use plexus_gnn::{SerialTrainer, TrainConfig};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};

fn main() {
    let epochs = 8;
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 10, Some(32), 21);
    println!("ogbn-products (scaled): {} nodes, {} nonzeros", ds.num_nodes(), ds.adjacency.nnz());

    let serial_cfg = TrainConfig { hidden_dim: 32, num_layers: 3, seed: 9, ..Default::default() };
    let mut serial = SerialTrainer::new(&ds, &serial_cfg);
    let serial_losses: Vec<f64> = serial.train(epochs).iter().map(|s| s.loss).collect();

    // The paper's Fig. 7 sweeps seven 16-GPU configs; same set here.
    let configs = [(1, 2, 8), (1, 16, 1), (2, 8, 1), (2, 4, 2), (4, 1, 4), (1, 1, 16), (8, 1, 2)];

    let mut t = Table::new(
        "Fig. 7: training loss per epoch, serial (PyG role) vs 16-rank Plexus configs",
        &{
            let mut h: Vec<&str> = vec!["Epoch", "PyG(serial)"];
            let labels: Vec<String> =
                configs.iter().map(|&(x, y, z)| format!("X{}Y{}Z{}", x, y, z)).collect();
            let static_labels: Vec<&str> =
                labels.iter().map(|s| Box::leak(s.clone().into_boxed_str()) as &str).collect();
            h.extend(static_labels);
            h
        },
    );

    let mut all_runs = Vec::new();
    let mut worst_rel = 0.0f64;
    for &(gx, gy, gz) in &configs {
        let opts = DistTrainOptions {
            hidden_dim: 32,
            model_seed: 9,
            permutation: PermutationMode::Double,
            ..Default::default()
        };
        let res = train_distributed(&ds, GridConfig::new(gx, gy, gz), &opts, epochs);
        let losses = res.losses();
        for (a, b) in losses.iter().zip(&serial_losses) {
            worst_rel = worst_rel.max(((a - b) / b.abs().max(1e-9)).abs());
        }
        all_runs.push(losses);
    }

    for e in 0..epochs {
        let mut row = vec![format!("{}", e), format!("{:.5}", serial_losses[e])];
        for run in &all_runs {
            row.push(format!("{:.5}", run[e]));
        }
        t.row(row);
    }
    t.print();
    t.write_csv("fig7_validation_loss");

    println!("\nWorst relative deviation from serial across all configs/epochs: {:.2e}", worst_rel);
    assert!(worst_rel < 5e-3, "a 3D config diverged from the serial baseline: {:.2e}", worst_rel);
    assert!(
        serial_losses.last().unwrap() < &serial_losses[0],
        "loss should descend over the validation run"
    );
    println!("Fig. 7 reproduced: every 3D configuration tracks the serial loss curve.");
}
