//! Loader throughput: store creation (the streaming `preprocess_to_store`
//! write path) and per-rank window loads, in MB/s, across shard grid
//! sizes.
//!
//! Complements `sec54_dataloader` (which reproduces the paper's
//! bytes-reduction claim): this bench tracks the *speed* of the two store
//! operations the ingest pipeline performs, so regressions in the binary
//! encoding, checksumming, or window merge show up as MB/s drops.

use plexus::loader::{preprocess_to_store, ShardStore};
use plexus::setup::PermutationMode;
use plexus_bench::Table;
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use std::time::Instant;

fn main() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 13, Some(32), 7);
    let n = ds.num_nodes();
    let mut t = Table::new(
        "Loader throughput: streaming store creation + window loads",
        &["Shard grid", "Create (MB/s)", "Full load (MB/s)", "1/16 window (MB/s)", "Skip ratio"],
    );

    for pq in [4usize, 8, 16] {
        let dir =
            std::env::temp_dir().join(format!("plexus_loader_bench_{}_{}", pq, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let t0 = Instant::now();
        let store =
            preprocess_to_store(&ds, &dir, PermutationMode::Double, 0x5eed, pq, pq).unwrap();
        let create_secs = t0.elapsed().as_secs_f64();
        let total = store.total_bytes().unwrap() as f64;

        let t0 = Instant::now();
        let (_, full) = store.load_adjacency_window(0, n, 0, n).unwrap();
        let full_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (_, win) = store.load_adjacency_window(0, n / 4, 0, n / 4).unwrap();
        let win_secs = t0.elapsed().as_secs_f64();

        let mbs = |bytes: f64, secs: f64| bytes / (1024.0 * 1024.0) / secs.max(1e-9);
        t.row(vec![
            format!("{}x{}", pq, pq),
            format!("{:.1}", mbs(total, create_secs)),
            format!("{:.1}", mbs(full.bytes_read as f64, full_secs)),
            format!("{:.1}", mbs(win.bytes_read as f64, win_secs)),
            format!(
                "{:.2}",
                win.bytes_skipped as f64 / (win.bytes_read + win.bytes_skipped).max(1) as f64
            ),
        ]);
        std::fs::remove_dir_all(&dir).unwrap();

        // Sanity: a quarter-area window must not read more than the full
        // load, and with more shards it should skip a larger fraction.
        assert!(win.bytes_read < full.bytes_read, "window read more than the full store");
    }

    t.print();
    t.write_csv("loader");
    println!("\nLoader bench complete: window loads skip unopened files via the manifest.");

    // Reopen sanity so the bench doubles as a cold-open check.
    let dir = std::env::temp_dir().join(format!("plexus_loader_bench_open_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    preprocess_to_store(&ds, &dir, PermutationMode::Double, 1, 4, 4).unwrap();
    let reopened = ShardStore::open(&dir).unwrap();
    reopened.validate_files().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
