//! Fig. 5: predicted vs observed epoch time for every 3D configuration of
//! 64 GPUs on ogbn-products (Perlmutter).
//!
//! "Observed" epochs come from the machine simulator: the unified model's
//! structure plus the per-config load imbalance *measured* on a scaled
//! instance's actual shards and a deterministic run-to-run jitter — the
//! two effects the analytic predictor does not see. The paper's headline
//! claims to reproduce: a strong predicted/observed correlation, 3D
//! configurations beating 2D and 1D, and the predicted-best config landing
//! among the truly-best.

use plexus::grid::GridConfig;
use plexus::perfmodel::{epoch_time, Workload};
use plexus::setup::PermutationMode;
use plexus_bench::{jitter, r_squared, Table};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::perlmutter;
use plexus_sparse::nnz_balance;
use plexus_sparse::permute::{apply_permutation, random_permutation};

fn main() {
    let m = perlmutter();
    let w = Workload::new(
        OGBN_PRODUCTS.nodes,
        OGBN_PRODUCTS.nonzeros,
        OGBN_PRODUCTS.features,
        128,
        OGBN_PRODUCTS.classes,
        3,
    );

    // Measured shard imbalance per config from a scaled instance with the
    // engine's double permutation applied.
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 14, Some(16), 3);
    let pr = random_permutation(ds.num_nodes(), 0x5eed);
    let pc = random_permutation(ds.num_nodes(), 0x5eed ^ 0x9e3779b97f4a7c15);
    let _ = PermutationMode::Double; // documented: this mirrors the engine default
    let a_perm = apply_permutation(&ds.adjacency, &pr, &pc);

    let mut table = Table::new(
        "Fig. 5: predicted vs observed epoch time, ogbn-products on 64 GPUs (Perlmutter)",
        &["Config", "Class", "Predicted (ms)", "Observed (ms)"],
    );
    let mut pred = Vec::new();
    let mut obs = Vec::new();
    let mut rows: Vec<(GridConfig, f64, f64)> = Vec::new();
    for g in GridConfig::enumerate(64) {
        // Layer-0 shard grid is (rows=Z, cols=X); use its measured balance.
        let imb =
            nnz_balance(&a_perm, g.gz.min(a_perm.rows()), g.gx.min(a_perm.cols())).max_over_mean;
        let p = epoch_time(&w, g, &m, 1.0).total() * 1e3;
        let o = epoch_time(&w, g, &m, imb).total()
            * 1e3
            * jitter((g.gx * 1000 + g.gy * 100 + g.gz) as u64, 0.12);
        pred.push(p);
        obs.push(o);
        rows.push((g, p, o));
    }
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    for (g, p, o) in &rows {
        let class = format!("{}D", g.dimensionality());
        table.row(vec![g.label(), class, format!("{:.1}", p), format!("{:.1}", o)]);
    }
    table.print();
    table.write_csv("fig5_perfmodel_validation");

    let r2 = r_squared(&pred, &obs);
    println!("\nPredicted/observed R^2 over {} configs: {:.3}", rows.len(), r2);

    // Where does the predicted-best config rank in observed order?
    let best_pred = rows
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
        .map(|(i, (g, _, _))| (i, g.label()))
        .unwrap();
    println!("Predicted-best config {} ranks #{} by observed time.", best_pred.1, best_pred.0 + 1);

    // 3D beats lower-dimensional configs (paper: "indicating better
    // performance for 3D configurations over 2D and 1D").
    let best_by_class = |d: usize| {
        rows.iter()
            .filter(|(g, _, _)| g.dimensionality() == d)
            .map(|(_, _, o)| *o)
            .fold(f64::INFINITY, f64::min)
    };
    let (b1, b2, b3) = (best_by_class(1), best_by_class(2), best_by_class(3));
    println!("Best observed by class: 1D {:.1} ms, 2D {:.1} ms, 3D {:.1} ms", b1, b2, b3);
    assert!(r2 > 0.7, "model/observation correlation too weak: {:.3}", r2);
    assert!(b3 < b1, "3D must beat 1D");
    assert!(best_pred.0 < rows.len() / 4, "predicted best must land in the top quartile");
    println!("Fig. 5 shape reproduced.");
}
