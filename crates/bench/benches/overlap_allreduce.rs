//! Blocking vs. `PendingCollective`-overlapped layer aggregation (§5.2).
//!
//! Both arms run the real engine — one epoch of the 3D trainer on a
//! 2x1x2 thread world with blocked aggregation — and differ only in
//! `DistTrainOptions::overlap`. The overlapped arm launches each row
//! block's C-axis all-reduce (and the combination GEMM's K-axis tile
//! reductions, and backward's R-axis reduce-scatter) nonblocking, so
//! ranks absorb each other's compute skew instead of idling in barriers.
//! Results are bitwise identical between the arms (same contributions,
//! same per-element reduction order; the overlapped arm tiles some
//! reductions more finely).

use criterion::{criterion_group, criterion_main, Criterion};
use plexus::grid::GridConfig;
use plexus::layer::{Aggregation, CommOverlap};
use plexus::setup::{GlobalProblem, PermutationMode};
use plexus::trainer::{DistTrainOptions, RankTrainer};
use plexus::DistContext;
use plexus_comm::{run_world, Communicator};
use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};
use std::sync::Arc;

fn bench_overlap_vs_blocking(c: &mut Criterion) {
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "overlap-bench",
        nodes: 2048,
        edges: 2048 * 12,
        nonzeros: 2048 * 25,
        features: 64,
        classes: 16,
    };
    let ds = LoadedDataset::generate(spec, 2048, Some(64), 11);
    let grid = GridConfig::new(2, 1, 2);

    let mut group = c.benchmark_group("layer_aggregation_epoch");
    group.sample_size(10);
    for (overlap, name) in
        [(CommOverlap::Blocking, "blocking"), (CommOverlap::Overlapped, "overlapped")]
    {
        let opts = DistTrainOptions {
            hidden_dim: 64,
            model_seed: 3,
            permutation: PermutationMode::Double,
            aggregation: Aggregation::Blocked(8),
            overlap,
            ..Default::default()
        };
        let gp = Arc::new(GlobalProblem::build(
            &ds,
            grid,
            opts.hidden_dim,
            opts.num_layers,
            opts.model_seed,
            opts.permutation,
            opts.perm_seed,
        ));
        group.bench_function(name, |b| {
            b.iter(|| {
                let losses = run_world(grid.total(), |comm| {
                    let world = comm.split(0, comm.rank() as u64, "world");
                    let ctx = DistContext::new(world, grid);
                    let mut rt = RankTrainer::new(&gp, ctx, &opts);
                    rt.train_epoch().loss
                });
                losses[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlap_vs_blocking);
criterion_main!(benches);
