//! §5.4: parallel data loading.
//!
//! The paper: sharding ogbn-papers100M into 16x16 files cut per-GPU CPU
//! memory from 146 GB to 9 GB and loading time from 139 s to 7 s on 64
//! GPUs. Here a scaled instance is written as a real 16x16 `ShardStore`;
//! a naive loader (read everything) is compared against the parallel
//! loader (each of 64 ranks reads only its window) on actual bytes and
//! wall time.

use plexus::grid::GridConfig;
use plexus::loader::ShardStore;
use plexus_bench::Table;
use plexus_graph::{datasets::OGBN_PAPERS100M, LoadedDataset};
use std::time::Instant;

fn main() {
    let ds = LoadedDataset::generate(OGBN_PAPERS100M, 1 << 14, Some(64), 3);
    let n = ds.num_nodes();
    let dir = std::env::temp_dir().join(format!("plexus_sec54_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let t0 = Instant::now();
    let store = ShardStore::create(&dir, &ds.adjacency, &ds.features, 16, 16).unwrap();
    println!(
        "Sharded {} nodes / {} nnz into 16x16 files in {:.2}s",
        n,
        ds.adjacency.nnz(),
        t0.elapsed().as_secs_f64()
    );
    let total = store.total_bytes().unwrap();

    // Naive loader: every rank reads the whole store.
    let t0 = Instant::now();
    let (_, naive_stats) = store.load_adjacency_window(0, n, 0, n).unwrap();
    let naive_bytes = naive_stats.bytes_read;
    let naive_secs = t0.elapsed().as_secs_f64();

    // Parallel loader: 64 ranks in the 3D grid layout (layer-0 shards are
    // over the Z x X plane of a 4x4x4 grid).
    let grid = GridConfig::new(4, 4, 4);
    let mut max_rank_bytes = 0u64;
    let mut max_rank_secs = 0.0f64;
    let mut skipped_bytes = 0u64;
    for rank in 0..grid.total() {
        let c = grid.coords(rank);
        let r0 = c.z * (n / grid.gz);
        let c0 = c.x * (n / grid.gx);
        let t0 = Instant::now();
        let (_, stats) =
            store.load_adjacency_window(r0, r0 + n / grid.gz, c0, c0 + n / grid.gx).unwrap();
        let (_, fstats) = store
            .load_feature_rows(
                c0 + c.z * (n / grid.gx / grid.gz),
                c0 + (c.z + 1) * (n / grid.gx / grid.gz),
            )
            .unwrap();
        max_rank_bytes = max_rank_bytes.max(stats.bytes_read + fstats.bytes_read);
        skipped_bytes = skipped_bytes.max(stats.bytes_skipped + fstats.bytes_skipped);
        max_rank_secs = max_rank_secs.max(t0.elapsed().as_secs_f64());
    }

    let mut t = Table::new(
        "Sec 5.4: parallel data loading, papers100M (scaled), 64 ranks, 16x16 shards",
        &["Loader", "Per-rank bytes", "Per-rank load time (s)", "Paper"],
    );
    t.row(vec![
        "Naive (load everything)".into(),
        format!("{}", naive_bytes),
        format!("{:.3}", naive_secs),
        "146 GB / 139 s".into(),
    ]);
    t.row(vec![
        "Plexus parallel loader".into(),
        format!("{}", max_rank_bytes),
        format!("{:.3}", max_rank_secs),
        "9 GB / 7 s".into(),
    ]);
    t.row(vec![
        "Reduction".into(),
        format!("{:.1}x", naive_bytes as f64 / max_rank_bytes as f64),
        format!("{:.1}x", naive_secs / max_rank_secs.max(1e-9)),
        "16.2x / 19.9x".into(),
    ]);
    t.print();
    t.write_csv("sec54_dataloader");

    assert!(
        (naive_bytes as f64) / (max_rank_bytes as f64) > 4.0,
        "parallel loader must read far less than the naive loader"
    );
    println!("\nTotal store: {} bytes across {} files.", total, 16 * 16 + 16);
    println!("Worst rank skipped {} bytes without opening the files.", skipped_bytes);
    std::fs::remove_dir_all(&dir).unwrap();
    println!("Sec 5.4 reproduced: per-rank I/O shrinks by the shard-window factor.");
}
