//! §4.1: fitting the computational model.
//!
//! The paper fits a linear regression over the three cost terms
//! (√flops, √flops·fwd_penalty, √flops·bwd_penalty) to 67 measured SpMM
//! timings and reports an average train R² of 0.89 / test R² of 0.79 over
//! 1000 random 70-30 splits. Here the SpMM times are *measured on this
//! machine* — every 64-rank configuration's layer-0 shard shape is
//! materialized from a scaled ogbn-products instance and timed — then the
//! same regression methodology runs.

use plexus::grid::GridConfig;
use plexus::perfmodel::comp_cost_features;
use plexus::perfmodel::Workload;
use plexus_bench::Table;
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::LinearModel;
use plexus_simnet::RegressionReport;
use plexus_sparse::spmm;
use plexus_tensor::uniform_matrix;
use std::time::Instant;

fn main() {
    // The paper pools 67 points "across various datasets, configurations,
    // and GPU counts": the √flops term only varies across datasets, so a
    // single-dataset sweep cannot be fit. Three scaled instances of
    // different sizes and feature widths provide that spread.
    let instances: Vec<(LoadedDataset, usize)> = vec![
        (LoadedDataset::generate(OGBN_PRODUCTS, 1 << 13, Some(32), 31), 32),
        (LoadedDataset::generate(OGBN_PRODUCTS, 1 << 14, Some(64), 33), 64),
        (LoadedDataset::generate(OGBN_PRODUCTS, 1 << 15, Some(128), 35), 128),
    ];
    let machine = plexus_simnet::perlmutter();

    // For every (dataset, GPU count, config): the three eq. 4.4 features,
    // the GPU-kernel-model time (regression target — on GPUs the shape
    // penalty dominates), and a real CPU measurement (median of 3,
    // sequential kernel; informational — deep CPU caches mute the shape
    // effect the model exists to capture).
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys_gpu: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut count = 0usize;
    for (ds, d) in &instances {
        let n = ds.num_nodes();
        let d = *d;
        for &g in &[16usize, 64] {
            for cfg in GridConfig::enumerate(g) {
                // Layer-0 shard: rows N/Gz x cols N/Gx; dense N/Gx x D/Gy.
                if n / cfg.gz == 0 || n / cfg.gx == 0 || d / cfg.gy == 0 {
                    continue;
                }
                let a = ds.adjacency.block(0, n / cfg.gz, 0, n / cfg.gx);
                let b = uniform_matrix(n / cfg.gx, (d / cfg.gy).max(1), -1.0, 1.0, 7);
                let mut reps: Vec<f64> = (0..3)
                    .map(|_| {
                        let t0 = Instant::now();
                        let _ = plexus_sparse::spmm_seq(&a, &b);
                        t0.elapsed().as_secs_f64()
                    })
                    .collect();
                reps.sort_by(|x, y| x.partial_cmp(y).unwrap());
                ys.push(reps[1] * 1e3);

                let nnz_shard = ds.adjacency.nnz() as f64 / (cfg.gz * cfg.gx) as f64;
                let flops = 2.0 * nnz_shard * (d / cfg.gy) as f64;
                ys_gpu
                    .push(machine.spmm_time(flops, (n / cfg.gx) as f64, (d / cfg.gy) as f64) * 1e3);

                let w = Workload {
                    nodes: n as f64,
                    nonzeros: ds.adjacency.nnz() as f64,
                    dims: vec![d, d],
                };
                xs.push(comp_cost_features(&w, cfg).to_vec());
                count += 1;
            }
        }
    }
    let _ = spmm; // the parallel kernel is benchmarked in `kernels`
    println!("Collected {} (dataset, GPU count, config) sample points.", count);

    // Primary fit: real measured times, exactly the paper's methodology.
    let model = LinearModel::fit(&xs, &ys);
    let report = RegressionReport::evaluate(&xs, &ys, 0.7, 1000, 4);
    let gpu_model_r2 = LinearModel::fit(&xs, &ys_gpu).r2(&xs, &ys_gpu);

    let mut t = Table::new(
        "Sec 4.1: computational-model regression on measured SpMM times (1000 random 70-30 splits)",
        &["Quantity", "Ours", "Paper"],
    );
    t.row(vec!["Samples".into(), format!("{}", count), "67".into()]);
    t.row(vec!["Train R^2".into(), format!("{:.3}", report.train_r2), "0.89".into()]);
    t.row(vec!["Test R^2".into(), format!("{:.3}", report.test_r2), "0.79".into()]);
    t.row(vec!["Train RMSE (ms)".into(), format!("{:.2}", report.train_rmse), "16.8".into()]);
    t.row(vec!["Test RMSE (ms)".into(), format!("{:.2}", report.test_rmse), "20.1".into()]);
    for (i, c) in model.coefficients.iter().enumerate() {
        t.row(vec![
            format!("coef[{}]", i),
            format!("{:.3e}", c),
            ["7.8e-4", "7.8e-10", "-2.6e-10"][i].into(),
        ]);
    }
    t.row(vec![
        "GPU-kernel-model fit R^2 (info)".into(),
        format!("{:.3}", gpu_model_r2),
        "n/a".into(),
    ]);
    t.print();
    t.write_csv("sec41_model_fit");

    assert!(
        report.train_r2 > 0.55,
        "the 3-term model should explain measured SpMM time variance: {:.3}",
        report.train_r2
    );
    println!("\nSec 4.1 methodology reproduced: the 3-term features fit real measured SpMM");
    println!("times across datasets, configurations and GPU counts.");
}
