//! Fig. 8: strong scaling of Plexus vs SA, SA+GVB and BNS-GCN on
//! Perlmutter for Reddit, Isolate-3-8M and products-14M.
//!
//! Plexus times come from the §4 performance model at the model-chosen
//! grid config. Baseline times come from the cost models in
//! `plexus-baselines`, parameterized by statistics *measured* on scaled
//! instances — BNS boundary fractions from real BFS partitionings, SA
//! needed-fractions from real adjacency column-coverage — extrapolated to
//! paper-scale GPU counts with a fitted power law.
//!
//! Paper shapes to reproduce: SA/BNS competitive (or winning) at <= 32
//! GPUs; BNS collapsing beyond 64; Plexus scaling to 1024 with the lowest
//! absolute epoch times; SA and SA+GVB absent on Isolate-3-8M (OOM in the
//! paper).

use plexus::perfmodel::{rank_configs, Workload};
use plexus_baselines::{bns_epoch_time, paper_boundary_frac, partition_graph, sa_epoch_time};
use plexus_bench::{fit_power_law, Table};
use plexus_graph::{
    datasets::{ISOLATE_3_8M, PRODUCTS_14M, REDDIT},
    DatasetKind, DatasetSpec, LoadedDataset,
};
use plexus_simnet::perlmutter;
use std::collections::HashSet;

/// Density scale for the paper-anchored boundary law: how much more (or
/// less) boundary this graph's structure produces than products-14M's,
/// measured by partitioning both *scaled* instances at a common count.
fn boundary_density_scale(ds: &LoadedDataset) -> f64 {
    if ds.spec.kind == DatasetKind::Products14M {
        return 1.0;
    }
    let reference = LoadedDataset::generate(PRODUCTS_14M, ds.num_nodes(), Some(8), 17);
    let mine = partition_graph(&ds.graph, 16).boundary_fraction().max(1e-3);
    let theirs = partition_graph(&reference.graph, 16).boundary_fraction().max(1e-3);
    (mine / theirs).clamp(0.2, 5.0)
}

/// Measure the fraction of feature rows a 1D rank actually needs (unique
/// columns its row block touches / N) and fit a power law in G.
fn sa_needed_law(ds: &LoadedDataset) -> (f64, f64) {
    let n = ds.num_nodes();
    let gs = [4usize, 8, 16, 32];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &g in &gs {
        let rows = n / g;
        let mut needed = 0usize;
        for blk in 0..g {
            let mut cols: HashSet<u32> = HashSet::new();
            for r in blk * rows..((blk + 1) * rows).min(n) {
                let (cs, _) = ds.adjacency.row_entries(r);
                cols.extend(cs.iter().copied());
            }
            needed += cols.len();
        }
        xs.push(g as f64);
        ys.push(needed as f64 / (g as f64 * n as f64));
    }
    fit_power_law(&xs, &ys)
}

fn run_dataset(spec: DatasetSpec, gpus: &[usize], sa_available: bool) {
    let m = perlmutter();
    let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);
    let ds = LoadedDataset::generate(spec, 1 << 14, Some(16), 17);
    let density = boundary_density_scale(&ds);
    let (sa_a, sa_b) = sa_needed_law(&ds);
    println!(
        "\n{}: boundary density scale {:.2} (vs products-14M); sa_needed(G) = {:.3} * G^{:.2}",
        spec.name, density, sa_a, sa_b
    );

    let mut t = Table::new(
        &format!("Fig. 8: strong scaling on {} (Perlmutter, time per epoch, ms)", spec.name),
        &["GPUs", "Plexus", "Plexus config", "BNS-GCN", "SA", "SA+GVB"],
    );
    let mut crossover: Option<usize> = None;
    let mut last_plexus = f64::INFINITY;
    for &g in gpus {
        let (cfg, plexus) = {
            let ranked = rank_configs(&w, g, &m);
            (ranked[0].0, ranked[0].1.total() * 1e3)
        };
        let bfrac = paper_boundary_frac(g, density);
        let bns = bns_epoch_time(&w, g, &m, bfrac).total() * 1e3;
        // Hub rows appear in every block's column set on power-law graphs,
        // so the needed fraction floors out instead of vanishing.
        let needed = (sa_a * (g as f64).powf(sa_b)).clamp(0.15, 1.0);
        let (sa, sagvb) = if !sa_available {
            ("OOM".into(), "OOM".into())
        } else if g > 128 {
            // §7.1: SA timed out at 256 GPUs on products-14M.
            ("TIMEOUT".into(), "TIMEOUT".into())
        } else {
            let sa = sa_epoch_time(&w, g, &m, needed).total() * 1e3;
            // GVB partitioning improves the needed-row locality further.
            let sagvb = sa_epoch_time(&w, g, &m, (needed * 0.7).min(1.0)).total() * 1e3;
            (format!("{:.1}", sa), format!("{:.1}", sagvb))
        };
        if crossover.is_none() && plexus < bns {
            crossover = Some(g);
        }
        t.row(vec![
            format!("{}", g),
            format!("{:.1}", plexus),
            cfg.label(),
            format!("{:.1}", bns),
            sa,
            sagvb,
        ]);
        last_plexus = plexus;
    }
    t.print();
    t.write_csv(&format!("fig8_{}", spec.name.replace('-', "_")));
    match crossover {
        Some(g) => println!("Plexus overtakes BNS-GCN at {} GPUs.", g),
        None => println!("WARNING: no Plexus/BNS crossover observed in this range."),
    }
    assert!(last_plexus.is_finite());
}

fn main() {
    run_dataset(REDDIT, &[4, 8, 16, 32, 64, 128], true);
    run_dataset(ISOLATE_3_8M, &[16, 32, 64, 128, 256, 512, 1024], false);
    run_dataset(PRODUCTS_14M, &[8, 16, 32, 64, 128, 256, 512, 1024], true);
    println!("\nFig. 8 regenerated (SA/SA+GVB marked OOM where the paper reports failures).");
}
