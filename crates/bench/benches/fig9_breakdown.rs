//! Fig. 9: communication/computation breakdown of BNS-GCN vs Plexus on
//! products-14M, 32–256 GPUs of Perlmutter.
//!
//! Shapes to reproduce (§7.1): at 32 GPUs BNS-GCN finishes epochs faster
//! thanks to fine-grained communication; at 64+ its all-to-all pattern and
//! growing boundary work flip the ordering; BNS computation *increases*
//! with GPU count while Plexus computation keeps scaling down.

use plexus::perfmodel::{rank_configs, Workload};
use plexus_baselines::{bns_epoch_time, paper_boundary_frac};
use plexus_bench::Table;
use plexus_graph::datasets::PRODUCTS_14M;
use plexus_simnet::perlmutter;

fn main() {
    let m = perlmutter();
    let spec = PRODUCTS_14M;
    let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);

    let mut t = Table::new(
        "Fig. 9: epoch breakdown, BNS-GCN vs Plexus, products-14M (Perlmutter, ms)",
        &["GPUs", "System", "Comm", "Comp", "Total"],
    );
    let mut bns_comp_series = Vec::new();
    let mut plexus_comp_series = Vec::new();
    let mut totals: Vec<(usize, f64, f64)> = Vec::new();
    for &g in &[32usize, 64, 128, 256] {
        // The paper's own §7.1 boundary measurement (18M -> 22M total
        // nodes between 32 and 256 partitions) anchors the fraction.
        let bfrac = paper_boundary_frac(g, 1.0);
        let bns = bns_epoch_time(&w, g, &m, bfrac);
        let plexus = rank_configs(&w, g, &m)[0].1;
        t.row(vec![
            format!("{}", g),
            "BNS-GCN".into(),
            format!("{:.1}", bns.comm_s * 1e3),
            format!("{:.1}", bns.comp_s * 1e3),
            format!("{:.1}", bns.total() * 1e3),
        ]);
        t.row(vec![
            format!("{}", g),
            "Plexus".into(),
            format!("{:.1}", plexus.comm_s * 1e3),
            format!("{:.1}", plexus.comp_s * 1e3),
            format!("{:.1}", plexus.total() * 1e3),
        ]);
        bns_comp_series.push(bns.comp_s);
        plexus_comp_series.push(plexus.comp_s);
        totals.push((g, bns.total(), plexus.total()));
    }
    t.print();
    t.write_csv("fig9_breakdown");

    // §7.1's two observations.
    let (g0, bns0, plexus0) = totals[0];
    let (gl, bnsl, plexusl) = *totals.last().unwrap();
    println!(
        "\nAt {} GPUs: BNS {:.1} ms vs Plexus {:.1} ms; at {} GPUs: BNS {:.1} ms vs Plexus {:.1} ms",
        g0,
        bns0 * 1e3,
        plexus0 * 1e3,
        gl,
        bnsl * 1e3,
        plexusl * 1e3
    );
    assert!(bns0 < plexus0, "BNS should win at 32 GPUs (fine-grained communication)");
    assert!(plexusl < bnsl, "Plexus should win at 256 GPUs");
    assert!(
        plexus_comp_series.last().unwrap() < &plexus_comp_series[0],
        "Plexus computation must scale down"
    );
    assert!(
        bns_comp_series.last().unwrap() > &(bns_comp_series[0] / 8.0 * 0.9),
        "BNS computation must scale sublinearly (boundary growth)"
    );
    println!("Fig. 9 shape reproduced: crossover between 32 and 256 GPUs, BNS computation stalls.");
}
