//! Criterion microbenchmarks for the computational substrates: SpMM,
//! GEMM transpose modes (the §5.3 effect at kernel granularity),
//! permutation application, and the thread-world collectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plexus_comm::{run_world, Communicator, ReduceOp};
use plexus_graph::rmat_graph;
use plexus_sparse::permute::{apply_permutation, random_permutation};
use plexus_sparse::{spmm, spmm_into};
use plexus_tensor::{gemm, gemm_reference_tn, uniform_matrix, Matrix, Trans};

fn bench_spmm(c: &mut Criterion) {
    let g = rmat_graph(13, 8, 1);
    let a = g.normalized_adjacency();
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    for &cols in &[16usize, 64, 128] {
        let b = uniform_matrix(a.cols(), cols, -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("rmat_8k", cols), &cols, |bench, _| {
            bench.iter(|| spmm(&a, &b));
        });
        // The engine path: output buffer owned by a workspace and reused
        // across calls — isolates the kernel from the allocator.
        let mut out = Matrix::zeros(a.rows(), cols);
        group.bench_with_input(BenchmarkId::new("rmat_8k_into", cols), &cols, |bench, _| {
            bench.iter(|| {
                spmm_into(&a, &b, &mut out);
                out.as_slice()[0]
            });
        });
    }
    group.finish();
}

fn bench_gemm_modes(c: &mut Criterion) {
    // The dW shape: (N_loc x D)^T * (N_loc x D') — the reference strided
    // TN kernel is the §5.3 slow path, the reordered transpose+NN is the
    // paper's tuned path, and packed_tn is what the production `gemm` now
    // does with a TN operand (panel packing absorbs the strided reads).
    let n_loc = 4096;
    let h = uniform_matrix(n_loc, 128, -1.0, 1.0, 3);
    let dq = uniform_matrix(n_loc, 64, -1.0, 1.0, 4);
    let mut group = c.benchmark_group("gemm_dw");
    group.sample_size(10);
    group.bench_function("tn_default", |b| {
        b.iter(|| {
            let mut dw = Matrix::zeros(128, 64);
            gemm_reference_tn(&mut dw, &h, &dq, 1.0, 0.0);
            dw
        });
    });
    group.bench_function("reordered_transpose_nn", |b| {
        b.iter(|| {
            let ht = h.transposed();
            let mut dw = Matrix::zeros(128, 64);
            gemm(&mut dw, &ht, Trans::N, &dq, Trans::N, 1.0, 0.0);
            dw
        });
    });
    group.bench_function("packed_tn", |b| {
        b.iter(|| {
            let mut dw = Matrix::zeros(128, 64);
            gemm(&mut dw, &h, Trans::T, &dq, Trans::N, 1.0, 0.0);
            dw
        });
    });
    group.finish();
}

fn bench_multicore(c: &mut Criterion) {
    // First multi-core arms: the same SpMM and packed-TN GEMM workloads
    // run inside explicitly sized pools. On a single-core host the t > 1
    // arms measure time-sliced threads, not parallel speedup — the BENCH
    // machine block records `logical_cores` so readers can tell which.
    let g = rmat_graph(13, 8, 1);
    let a = g.normalized_adjacency();
    let b = uniform_matrix(a.cols(), 128, -1.0, 1.0, 2);
    let n_loc = 4096;
    let h = uniform_matrix(n_loc, 128, -1.0, 1.0, 3);
    let dq = uniform_matrix(n_loc, 64, -1.0, 1.0, 4);
    let mut group = c.benchmark_group("multicore");
    group.sample_size(10);
    for &t in &[1usize, 2, 4] {
        let pool = rayon::ThreadPool::new(t);
        group.bench_with_input(BenchmarkId::new("spmm_rmat_8k_128", t), &t, |bench, _| {
            bench.iter(|| pool.install(|| spmm(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("gemm_packed_tn", t), &t, |bench, _| {
            bench.iter(|| {
                pool.install(|| {
                    let mut dw = Matrix::zeros(128, 64);
                    gemm(&mut dw, &h, Trans::T, &dq, Trans::N, 1.0, 0.0);
                    dw
                })
            });
        });
    }
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let g = rmat_graph(13, 8, 5);
    let a = g.normalized_adjacency();
    let pr = random_permutation(a.rows(), 1);
    let pc = random_permutation(a.rows(), 2);
    let mut group = c.benchmark_group("permutation");
    group.sample_size(20);
    group.bench_function("double_permutation_8k", |b| {
        b.iter(|| apply_permutation(&a, &pr, &pc));
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("all_reduce_1m", ranks), &ranks, |b, &r| {
            b.iter(|| {
                run_world(r, |comm| {
                    let mut buf = vec![comm.rank() as f32; 1 << 18];
                    comm.all_reduce(&mut buf, ReduceOp::Sum);
                    buf[0]
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_gemm_modes,
    bench_multicore,
    bench_permutation,
    bench_collectives
);
criterion_main!(benches);
