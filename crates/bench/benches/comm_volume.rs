//! Dense all-gather vs `CommPlan::SparseRows` for the layer-0 feature
//! exchange: real epoch time on the thread backend, plus the exact
//! per-rank gather bytes the two plans put on the wire.
//!
//! Timing arms run the full 3D trainer on a 2x1x4 thread world over a
//! low-degree RMAT graph (average directed degree 4, the sparse end of
//! the paper's Table 4 range) and differ only in `comm_plan`; losses are
//! bitwise identical between them. After the timed arms, one
//! instrumented run per plan reads the `TrafficLedger` back and prints a
//! dense-vs-sparse byte table — on the thread backend with its
//! served-union accounting, and on the cost-only `SimComm` backend at
//! 8x8x8 (512 ranks) where the per-rank charge reflects each rank's own
//! request set (the number the §4 model cares about at scale).

use criterion::{criterion_group, criterion_main, Criterion};
use plexus::grid::GridConfig;
use plexus::layer::CommPlan;
use plexus::setup::{GlobalProblem, PermutationMode};
use plexus::trainer::{simulate_epochs, train_distributed, DistTrainOptions, RankTrainer};
use plexus::DistContext;
use plexus_comm::{run_world, CollOp, CommEvent, Communicator};
use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};
use plexus_simnet::SimCostModel;
use std::sync::Arc;

fn lowdeg_rmat(nodes: usize, features: usize, seed: u64) -> LoadedDataset {
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "rmat-lowdeg",
        nodes,
        edges: nodes * 4, // degree 4 -> RMAT edge factor 2
        nonzeros: nodes * 9,
        features,
        classes: 8,
    };
    LoadedDataset::generate(spec, nodes, Some(features), seed)
}

fn feature_gather_bytes(traffic: &[CommEvent]) -> (usize, usize) {
    let dense: usize = traffic
        .iter()
        .filter(|e| e.op == CollOp::AllGather && e.group == "z")
        .map(|e| e.bytes)
        .sum();
    let sparse: usize =
        traffic.iter().filter(|e| e.op == CollOp::AllGatherRows).map(|e| e.bytes).sum();
    (dense, sparse)
}

fn bench_comm_volume(c: &mut Criterion) {
    let ds = lowdeg_rmat(2048, 32, 13);
    let grid = GridConfig::new(2, 1, 4);
    let opts_for = |plan: CommPlan| DistTrainOptions {
        hidden_dim: 32,
        model_seed: 3,
        permutation: PermutationMode::Double,
        comm_plan: plan,
        ..Default::default()
    };

    let mut group = c.benchmark_group("comm_volume");
    group.sample_size(10);
    for (plan, name) in [(CommPlan::Dense, "dense_epoch"), (CommPlan::SparseRows, "sparse_epoch")] {
        let opts = opts_for(plan);
        let gp = Arc::new(GlobalProblem::build(
            &ds,
            grid,
            opts.hidden_dim,
            opts.num_layers,
            opts.model_seed,
            opts.permutation,
            opts.perm_seed,
        ));
        group.bench_function(name, |b| {
            b.iter(|| {
                let losses = run_world(grid.total(), |comm| {
                    let world = comm.split(0, comm.rank() as u64, "world");
                    let ctx = DistContext::with_spec(world, opts.grid_spec(grid));
                    let mut rt = RankTrainer::new(&gp, ctx, &opts);
                    rt.train_epoch().loss
                });
                losses[0]
            });
        });
    }
    group.finish();

    // Byte accounting: one instrumented epoch per plan, read back from the
    // ledger. Thread backend (rank 0, served-union convention) and the
    // 512-rank SimComm study (own-request convention).
    let thread_dense = train_distributed(&ds, grid, &opts_for(CommPlan::Dense), 1);
    let thread_sparse = train_distributed(&ds, grid, &opts_for(CommPlan::SparseRows), 1);
    assert_eq!(thread_dense.losses(), thread_sparse.losses(), "plans must be bitwise identical");
    let (td, _) = feature_gather_bytes(&thread_dense.traffic[0]);
    let (tw, ts) = feature_gather_bytes(&thread_sparse.traffic[0]);

    let sim_grid = GridConfig::new(8, 8, 8);
    let sim = |plan: CommPlan| {
        simulate_epochs(&ds, sim_grid, &opts_for(plan), 1, SimCostModel::new(25e9, 1e-6))
    };
    let (sd, _) = feature_gather_bytes(&sim(CommPlan::Dense).traffic);
    let (sw, ss) = feature_gather_bytes(&sim(CommPlan::SparseRows).traffic);

    println!();
    println!("comm_volume: layer-0 feature-gather bytes per epoch (rank 0)");
    println!(
        "  thread {}: dense {} B vs sparse {} B (indexed, served-union)",
        grid.label(),
        td - tw,
        ts
    );
    println!(
        "  sim    {}: dense {} B vs sparse {} B ({:.2}x less on the wire)",
        sim_grid.label(),
        sd - sw,
        ss,
        (sd - sw) as f64 / ss as f64
    );
}

criterion_group!(benches, bench_comm_volume);
criterion_main!(benches);
