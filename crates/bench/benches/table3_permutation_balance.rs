//! Table 3: load balance of adjacency nonzeros over an 8x8 shard grid on
//! europe_osm — Original 7.70, Single permutation 3.24, Double
//! permutation 1.001 (max/mean).
//!
//! A scaled europe_osm stand-in (road network in spatial node order) is
//! sharded 8x8 under the three §5.1 schemes. The absolute numbers depend
//! on the instance, but the ordering and the "double permutation is
//! near-perfect" endpoint must reproduce.

use plexus::setup::PermutationMode;
use plexus_bench::Table;
use plexus_graph::{datasets::EUROPE_OSM, LoadedDataset};
use plexus_sparse::permute::{apply_permutation, random_permutation};
use plexus_sparse::{nnz_balance, Csr};

fn balance_for(a: &Csr, mode: PermutationMode, seed: u64) -> f64 {
    let n = a.rows();
    let permuted = match mode {
        PermutationMode::None => a.clone(),
        PermutationMode::Single => {
            let p = random_permutation(n, seed);
            apply_permutation(a, &p, &p)
        }
        PermutationMode::Double => {
            let pr = random_permutation(n, seed);
            let pc = random_permutation(n, seed.wrapping_add(0x9e3779b97f4a7c15));
            apply_permutation(a, &pr, &pc)
        }
    };
    nnz_balance(&permuted, 8, 8).max_over_mean
}

fn main() {
    let ds = LoadedDataset::generate(EUROPE_OSM, 1 << 16, Some(8), 7);
    let a = &ds.adjacency;
    println!(
        "europe_osm (scaled): {} nodes, {} nonzeros, avg degree {:.2}",
        ds.num_nodes(),
        a.nnz(),
        ds.graph.avg_degree()
    );

    let original = balance_for(a, PermutationMode::None, 11);
    let single = balance_for(a, PermutationMode::Single, 11);
    let double = balance_for(a, PermutationMode::Double, 11);

    let mut t = Table::new(
        "Table 3: max/mean nonzeros across 8x8 shards, europe_osm",
        &["Method", "Max/Mean (ours)", "Max/Mean (paper)"],
    );
    t.row(vec!["Original".into(), format!("{:.3}", original), "7.70".into()]);
    t.row(vec!["Single permutation".into(), format!("{:.3}", single), "3.24".into()]);
    t.row(vec!["Double permutation".into(), format!("{:.3}", double), "1.001".into()]);
    t.print();
    t.write_csv("table3_permutation_balance");

    assert!(original > single, "single permutation must improve on the original order");
    assert!(single > double, "double permutation must improve on single");
    assert!(double < 1.05, "double permutation should be near-perfect, got {:.3}", double);
    println!("\nTable 3 shape reproduced: Original > Single > Double ~= 1.0.");
}
