//! Fig. 10: strong scaling of Plexus across all six datasets on both
//! Perlmutter (up to 2048 GPUs) and Frontier (up to 2048 GCDs).
//!
//! Shapes to reproduce:
//! * denser graphs scale further (Reddit vs ogbn-products on Perlmutter:
//!   "Plexus scales better with Reddit, a denser graph");
//! * Isolate-3-8M is slower than products-14M at small GPU counts
//!   (denser -> computation-bound) but crosses over once communication
//!   dominates;
//! * Frontier curves scale *better* because its SpMM is ~10x slower
//!   (§7.2), keeping runs computation-bound longer;
//! * ogbn-papers100M keeps scaling to 2048 with diminishing returns at
//!   the end ("scaling starts to slow down at 2048 GPUs").

use plexus::perfmodel::{rank_configs, Workload};
use plexus_bench::Table;
use plexus_graph::paper_datasets;
use plexus_simnet::{frontier, perlmutter, MachineSpec};

fn sweep(machine: &MachineSpec, unit: &str) -> Table {
    let gpus = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
    let mut t = Table::new(
        &format!("Fig. 10: Plexus strong scaling on {} (time per epoch, ms)", machine.name),
        &{
            let mut h = vec![unit];
            for spec in paper_datasets() {
                h.push(Box::leak(spec.name.to_string().into_boxed_str()));
            }
            h
        },
    );
    for &g in &gpus {
        let mut row = vec![format!("{}", g)];
        for spec in paper_datasets() {
            let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);
            // Respect memory feasibility the way the paper's plots start
            // at different GPU counts: adjacency shards (CSR + transpose,
            // ~16 B/nnz) plus ~10 activation/gradient copies of the node
            // block must fit a 40 GB A100 (with headroom).
            let per_gpu_bytes = spec.nonzeros as f64 / g as f64 * 16.0
                + 10.0 * (spec.nodes as f64 / g as f64) * 128.0 * 4.0;
            if per_gpu_bytes > 35.0e9 {
                row.push("-".into());
                continue;
            }
            let best = rank_configs(&w, g, machine)[0].1.total();
            row.push(format!("{:.1}", best * 1e3));
        }
        t.row(row);
    }
    t
}

fn column(t: &Table, name: &str) -> Vec<f64> {
    let idx = t.headers.iter().position(|h| h == name).expect("dataset column");
    t.rows.iter().filter_map(|r| r[idx].parse::<f64>().ok()).collect()
}

fn parallel_efficiency(series: &[f64]) -> f64 {
    // Efficiency over the series' span assuming 2x GPUs per step.
    let steps = (series.len() - 1) as f64;
    let ideal = series[0] / 2f64.powf(steps);
    ideal / series[series.len() - 1]
}

fn main() {
    let perl = sweep(&perlmutter(), "GPUs");
    perl.print();
    perl.write_csv("fig10_perlmutter");
    let fron = sweep(&frontier(), "GCDs");
    fron.print();
    fron.write_csv("fig10_frontier");

    // Shape checks.
    let reddit_p = column(&perl, "Reddit");
    let products_p = column(&perl, "ogbn-products");
    let eff_reddit = parallel_efficiency(&reddit_p[..8.min(reddit_p.len())]);
    let eff_products = parallel_efficiency(&products_p[..8.min(products_p.len())]);
    println!(
        "\nPerlmutter efficiency over the sweep: Reddit {:.2}, ogbn-products {:.2}",
        eff_reddit, eff_products
    );
    assert!(
        eff_reddit > eff_products,
        "denser Reddit should scale better than ogbn-products on Perlmutter"
    );

    let reddit_f = column(&fron, "Reddit");
    let eff_reddit_f = parallel_efficiency(&reddit_f[..8.min(reddit_f.len())]);
    println!("Frontier efficiency: Reddit {:.2} (Perlmutter: {:.2})", eff_reddit_f, eff_reddit);
    assert!(
        eff_reddit_f > eff_reddit,
        "slower SpMM on Frontier must extend the computation-bound regime"
    );

    let papers = column(&perl, "ogbn-papers100M");
    // All doublings except possibly the last must improve; the final one
    // may flatten (the paper: "scaling starts to slow down at 2048").
    assert!(
        papers.windows(2).take(papers.len().saturating_sub(2)).all(|w| w[1] < w[0]),
        "papers100M should keep improving before the last doubling: {:?}",
        papers
    );
    let last_speedup = papers[papers.len() - 2] / papers[papers.len() - 1];
    println!(
        "papers100M final doubling speedup: {:.2}x (diminishing, paper reports the same)",
        last_speedup
    );
    assert!(last_speedup < 1.9, "the last doubling should show diminishing returns");
    println!("Fig. 10 shapes reproduced on both machine models.");
}
