//! Table 2: Nsight Compute metrics for SpMM(A, H) under two 64-GPU
//! configurations of Plexus on ogbn-products — U (Gz=1, Gx=64, Gy=1) vs
//! V (Gz=1, Gx=1, Gy=64).
//!
//! The paper's measurement: V launches ~64x more blocks, issues ~46x more
//! uncoalesced global sectors, and collapses L2 (61.31 -> 12.65) and DRAM
//! (72.83 -> 8.24) throughput. Here the GPU memory-access simulator
//! replays the actual CSR access trace of both shard shapes on a scaled
//! ogbn-products instance; we also wall-clock the real CPU SpMM for both
//! shapes, which shows the same asymmetry (the paper observed V ~8x
//! slower end to end).

use plexus_bench::Table;
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::simulate_spmm_kernel;
use plexus_sparse::spmm;
use plexus_tensor::uniform_matrix;
use std::time::Instant;

fn main() {
    let scale_nodes = 1 << 15; // 32k-node scaled ogbn-products
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, scale_nodes, Some(128), 42);
    let n = ds.num_nodes();
    let d = 128usize;
    let g = 64usize;

    // Config U: Gx = 64 shards the common dimension; the local SpMM is
    // (N x N/64) * (N/64 x D).
    let a_u = ds.adjacency.block(0, n, 0, n / g);
    let b_u_cols = d;
    // Config V: Gy = 64 shards the dense columns; the local SpMM is
    // (N x N) * (N x D/64).
    let a_v = ds.adjacency.block(0, n, 0, n);
    let b_v_cols = d / g;

    // 512 KiB model L2: both configs' dense operands hold the same 256 KiB
    // of useful bytes, but V's 8-byte rows occupy whole 32-byte sectors, so
    // its effective footprint is 4x and no longer fits — the same relative
    // geometry as the paper's 40 MB L2 vs the real operands.
    let l2 = 1 << 19;
    let mu = simulate_spmm_kernel(&a_u, b_u_cols, l2);
    let mv = simulate_spmm_kernel(&a_v, b_v_cols, l2);

    // Real kernel wall-clock on this machine for the same shapes
    // (sequential kernel: scheduler noise would swamp sub-ms differences).
    let bu = uniform_matrix(n / g, b_u_cols, -1.0, 1.0, 1);
    let bv = uniform_matrix(n, b_v_cols, -1.0, 1.0, 2);
    let t0 = Instant::now();
    let _ = plexus_sparse::spmm_seq(&a_u, &bu);
    let t_u = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let _ = plexus_sparse::spmm_seq(&a_v, &bv);
    let t_v = t0.elapsed().as_secs_f64() * 1e3;
    let _ = spmm; // parallel kernel exercised elsewhere

    let mut t = Table::new(
        "Table 2: SpMM kernel metrics, config U (Gx=64) vs V (Gy=64), scaled ogbn-products",
        &["Metric", "U", "V", "V/U", "paper V/U"],
    );
    let ratio = |a: f64, b: f64| if a > 0.0 { format!("{:.1}x", b / a) } else { "-".into() };
    t.row(vec![
        "Grid Size".into(),
        format!("{}", mu.grid_size),
        format!("{}", mv.grid_size),
        ratio(mu.grid_size as f64, mv.grid_size as f64),
        "64.9x".into(),
    ]);
    t.row(vec![
        "Uncoalesced Sectors".into(),
        format!("{}", mu.uncoalesced_sectors),
        format!("{}", mv.uncoalesced_sectors),
        ratio(mu.uncoalesced_sectors.max(1) as f64, mv.uncoalesced_sectors as f64),
        "46.4x".into(),
    ]);
    t.row(vec![
        "L2 Hit Rate (%)".into(),
        format!("{:.2}", mu.l2_hit_rate * 100.0),
        format!("{:.2}", mv.l2_hit_rate * 100.0),
        ratio(mv.l2_hit_rate, mu.l2_hit_rate), // inverted: U better
        "4.8x (U/V)".into(),
    ]);
    t.row(vec![
        "DRAM Useful Fraction (%)".into(),
        format!("{:.2}", mu.dram_useful_fraction * 100.0),
        format!("{:.2}", mv.dram_useful_fraction * 100.0),
        ratio(mv.dram_useful_fraction, mu.dram_useful_fraction),
        "8.8x (U/V)".into(),
    ]);
    t.row(vec![
        "Measured CPU SpMM (ms)".into(),
        format!("{:.2}", t_u),
        format!("{:.2}", t_v),
        ratio(t_u, t_v),
        "~8x slower (V)".into(),
    ]);
    t.print();
    t.write_csv("table2_spmm_configs");

    // The CPU wall-clock row is informational: a deep CPU cache hierarchy
    // mutes the GPU asymmetry; the simulator metrics are the Table 2
    // substitute and must reproduce the paper's directions.
    assert!(mv.grid_size >= mu.grid_size * 32, "V must launch far more blocks");
    assert!(mv.uncoalesced_sectors > mu.uncoalesced_sectors, "V must be uncoalesced");
    assert!(mv.l2_hit_rate < mu.l2_hit_rate, "V must have worse L2 behavior");
    assert!(mv.dram_useful_fraction < mu.dram_useful_fraction, "V must waste DRAM traffic");
    println!("\nTable 2 shape reproduced: config V pays the tall-skinny SpMM penalty.");
}
