//! Fig. 6 — both panels.
//!
//! Left: impact of blocked aggregation (§5.2) on Isolate-3-8M. The paper
//! shows epoch time dropping from 836.7 -> 535.6 ms (16 GPUs) and
//! 575.5 -> 452.8 ms (32 GPUs), mostly from communication smoothing. Here
//! the functional engine runs a scaled Isolate instance with and without
//! blocking, reporting the same communication/computation split; at-scale
//! times additionally come from the machine model with the measured
//! variability multiplier.
//!
//! Right: impact of the dW GEMM-order tuning (§5.3) on products-14M-like
//! shapes. The paper reduces the Grad_W GEMM from ~50 ms to negligible on
//! Frontier at 512+ GCDs by reordering the multiplication. Here the TN
//! kernel vs the reordered (transpose + NN) path is *measured* on this
//! machine for the exact per-rank shard shapes.

use plexus::grid::GridConfig;
use plexus::layer::{Aggregation, CommOverlap, GemmTuning};
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_bench::Table;
use plexus_graph::{datasets::ISOLATE_3_8M, LoadedDataset};
use plexus_tensor::{gemm, gemm_reference_tn, uniform_matrix, Matrix, Trans};
use std::time::Instant;

fn left_panel() {
    let ds = LoadedDataset::generate(ISOLATE_3_8M, 2048, Some(32), 5);
    let mut t = Table::new(
        "Fig. 6 (left): blocked aggregation, Isolate-3-8M (scaled, functional run)",
        &["Ranks", "Mode", "Comm (ms)", "Comp (ms)", "Total (ms)"],
    );
    for ranks in [8usize, 16] {
        let grid = match ranks {
            8 => GridConfig::new(2, 2, 2),
            _ => GridConfig::new(4, 2, 2),
        };
        for (mode, label) in
            [(Aggregation::Unblocked, "Default"), (Aggregation::Blocked(8), "Blocking")]
        {
            let opts = DistTrainOptions {
                hidden_dim: 32,
                permutation: PermutationMode::Double,
                aggregation: mode,
                // Fig. 6 isolates aggregation granularity on the blocking
                // engine; the overlapped engine is measured separately by
                // the overlap_allreduce bench.
                overlap: CommOverlap::Blocking,
                ..Default::default()
            };
            let res = train_distributed(&ds, grid, &opts, 3);
            // Average the post-warmup epochs, as the paper does.
            let comm: f64 =
                res.epochs[1..].iter().map(|e| e.timing.comm_s).sum::<f64>() / 2.0 * 1e3;
            let comp: f64 =
                res.epochs[1..].iter().map(|e| e.timing.compute_s).sum::<f64>() / 2.0 * 1e3;
            t.row(vec![
                format!("{}", ranks),
                label.into(),
                format!("{:.1}", comm),
                format!("{:.1}", comp),
                format!("{:.1}", comm + comp),
            ]);
        }
    }
    t.print();
    t.write_csv("fig6_left_blocking");
    println!("(paper, at scale: 16 GPUs 836.7 -> 535.6 ms; 32 GPUs 575.5 -> 452.8 ms)");
}

fn right_panel() {
    // Per-rank dW GEMM shapes for products-14M on 512/1024 GCDs: the
    // paper's Grad_W computation is H^T (N_loc x D_loc) times dQ
    // (N_loc x D_out_loc).
    let mut t = Table::new(
        "Fig. 6 (right): dW GEMM-order tuning (measured on this machine)",
        &["GCDs", "N_local", "Default TN (ms)", "Reordered (ms)", "Speedup"],
    );
    for (gcds, n_local) in [(512usize, 14_249_639usize / 512), (1024, 14_249_639 / 1024)] {
        let d_in = 128;
        let d_out = 64;
        let h = uniform_matrix(n_local, d_in, -1.0, 1.0, 1);
        let dq = uniform_matrix(n_local, d_out, -1.0, 1.0, 2);

        // The reference strided TN kernel — the production `gemm` now
        // packs TN operands, so only the preserved reference path still
        // measures the §5.3 effect.
        let mut dw = Matrix::zeros(d_in, d_out);
        let t0 = Instant::now();
        gemm_reference_tn(&mut dw, &h, &dq, 1.0, 0.0);
        let tn_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let ht = h.transposed();
        let mut dw2 = Matrix::zeros(d_in, d_out);
        gemm(&mut dw2, &ht, Trans::N, &dq, Trans::N, 1.0, 0.0);
        let tuned_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Same math, different kernel path.
        let max_diff = plexus_tensor::max_abs_diff(&dw, &dw2);
        assert!(max_diff < 1e-2, "tuned dW diverged: {}", max_diff);
        t.row(vec![
            format!("{}", gcds),
            format!("{}", n_local),
            format!("{:.1}", tn_ms),
            format!("{:.1}", tuned_ms),
            format!("{:.1}x", tn_ms / tuned_ms),
        ]);
    }
    t.print();
    t.write_csv("fig6_right_gemm_tuning");
    println!("(paper, Frontier: Grad_W drops from ~50 ms to negligible; epoch 291.0 -> 248.2 ms");
    println!(" at 512 GCDs and 241.2 -> 198.7 ms at 1024 GCDs)");
    let _ = GemmTuning::Reordered; // the engine flag exercised by this experiment
}

fn main() {
    left_panel();
    right_panel();
}
