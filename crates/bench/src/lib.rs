//! Shared harness utilities for the per-table/per-figure benchmarks.
//!
//! Every bench target prints an aligned text table (the paper's rows) and
//! writes the same data as CSV under `results/`, so the series can be
//! re-plotted outside the harness.

use std::fs;
use std::path::PathBuf;

/// Directory where bench harnesses drop their CSVs (`<repo>/results`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// A simple aligned table that mirrors the paper's presentation and
/// doubles as a CSV writer.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{:>width$}", c, width = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV into `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let path = results_dir().join(format!("{}.csv", name));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out).expect("cannot write CSV");
        println!("[csv] {}", path.display());
    }
}

/// Fit `y = a * x^b` by least squares in log-log space; returns `(a, b)`.
/// Used to extrapolate measured boundary fractions / sparsity factors from
/// scaled instances to paper-scale GPU counts.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "fit_power_law: need >= 2 points");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let sx: f64 = lx.iter().sum();
    let sy: f64 = ly.iter().sum();
    let sxx: f64 = lx.iter().map(|v| v * v).sum();
    let sxy: f64 = lx.iter().zip(&ly).map(|(a, b)| a * b).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

/// Deterministic per-key jitter in `[1-amp, 1+amp]` — stands in for run-to-
/// run variance when "observing" simulated epoch times (Fig. 5 scatter).
pub fn jitter(key: u64, amp: f64) -> f64 {
    // SplitMix64 scramble.
    let mut z = key.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

/// Pearson R² between two series.
pub fn r_squared(pred: &[f64], obs: &[f64]) -> f64 {
    assert_eq!(pred.len(), obs.len());
    let n = pred.len() as f64;
    let mp = pred.iter().sum::<f64>() / n;
    let mo = obs.iter().sum::<f64>() / n;
    let cov: f64 = pred.iter().zip(obs).map(|(p, o)| (p - mp) * (o - mo)).sum();
    let vp: f64 = pred.iter().map(|p| (p - mp).powi(2)).sum();
    let vo: f64 = obs.iter().map(|o| (o - mo).powi(2)).sum();
    if vp == 0.0 || vo == 0.0 {
        return 1.0;
    }
    let r = cov / (vp * vo).sqrt();
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_recovers_exponent() {
        let xs = [4.0f64, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x.powf(0.7)).collect();
        let (a, b) = fit_power_law(&xs, &ys);
        assert!((a - 0.5).abs() < 1e-9 && (b - 0.7).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        for k in 0..100u64 {
            let j = jitter(k, 0.15);
            assert!((0.85..=1.15).contains(&j));
            assert_eq!(j, jitter(k, 0.15));
        }
    }

    #[test]
    fn r_squared_of_identical_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()])
        }));
        assert!(r.is_err());
    }
}
