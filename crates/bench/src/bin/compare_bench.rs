//! Diff two `BENCH_*.json` baseline files and flag regressions.
//!
//! ```text
//! compare_bench <baseline.json> <candidate.json> [--max-regress <pct>]
//! ```
//!
//! Compares `median_ms` for every benchmark id present in both files,
//! prints a speedup table (candidate vs baseline), and exits nonzero if
//! any shared id regressed by more than the threshold (default 20%).
//! Ids present in only one file are listed but never fail the run, so
//! adding benchmarks does not break the gate.
//!
//! The baseline files are the hand-recorded snapshots produced from
//! `cargo bench -p plexus-bench --bench kernels` output (see
//! `BENCH_seed.json` for the format); this tool only needs the `"id"` and
//! `"median_ms"` fields and parses them with a deliberately small scanner
//! instead of a JSON dependency.

use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Entry {
    id: String,
    median_ms: f64,
}

/// Extract the string value of `"key": "..."` starting at (or after)
/// `from` in `line`.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{}\"", key);
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extract the numeric value of `"key": 1.234` in `line`.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{}\"", key);
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse every result line carrying both an `"id"` and a `"median_ms"`.
fn parse_entries(text: &str) -> Vec<Entry> {
    text.lines()
        .filter_map(|line| {
            let id = string_field(line, "id")?;
            let median_ms = number_field(line, "median_ms")?;
            Some(Entry { id, median_ms })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress_pct = 20.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regress" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => max_regress_pct = v,
                None => {
                    eprintln!("--max-regress needs a numeric percentage");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: compare_bench <baseline.json> <candidate.json> [--max-regress <pct>]");
        return ExitCode::from(2);
    }
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("cannot read {}: {}", p, e);
            None
        }
    };
    let (Some(base_text), Some(cand_text)) = (read(&paths[0]), read(&paths[1])) else {
        return ExitCode::from(2);
    };
    let baseline = parse_entries(&base_text);
    let candidate = parse_entries(&cand_text);
    if baseline.is_empty() || candidate.is_empty() {
        eprintln!(
            "no parsable results ({} baseline, {} candidate entries)",
            baseline.len(),
            candidate.len()
        );
        return ExitCode::from(2);
    }

    println!("comparing {} (baseline) -> {} (candidate)", paths[0], paths[1]);
    println!("{:<42} {:>12} {:>12} {:>9}", "id", "base ms", "cand ms", "speedup");
    let mut regressions = Vec::new();
    for b in &baseline {
        match candidate.iter().find(|c| c.id == b.id) {
            Some(c) => {
                let speedup = b.median_ms / c.median_ms;
                println!(
                    "{:<42} {:>12.3} {:>12.3} {:>8.2}x",
                    b.id, b.median_ms, c.median_ms, speedup
                );
                let regress_pct = (c.median_ms / b.median_ms - 1.0) * 100.0;
                if regress_pct > max_regress_pct {
                    regressions.push((b.id.clone(), regress_pct));
                }
            }
            None => println!("{:<42} {:>12.3} {:>12} {:>9}", b.id, b.median_ms, "-", "gone"),
        }
    }
    for c in &candidate {
        if !baseline.iter().any(|b| b.id == c.id) {
            println!("{:<42} {:>12} {:>12.3} {:>9}", c.id, "-", c.median_ms, "new");
        }
    }

    if regressions.is_empty() {
        println!("no shared id regressed by more than {:.0}%", max_regress_pct);
        ExitCode::SUCCESS
    } else {
        for (id, pct) in &regressions {
            eprintln!("REGRESSION: {} is {:.1}% slower than baseline", id, pct);
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_format() {
        let text = r#"
  "results": [
    { "id": "spmm/rmat_8k/16", "min_ms": 1.210, "mean_ms": 1.434, "median_ms": 1.358, "samples": 20 },
    { "id": "gemm_dw/tn_default", "min_ms": 147.324, "mean_ms": 151.028, "median_ms": 151.105, "samples": 10 }
  ]"#;
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "spmm/rmat_8k/16");
        assert!((entries[0].median_ms - 1.358).abs() < 1e-9);
        assert!((entries[1].median_ms - 151.105).abs() < 1e-9);
    }

    #[test]
    fn ignores_lines_without_both_fields() {
        let text = r#"{ "id": "x" }
{ "median_ms": 1.0 }
{ "description": "id: not a field", "recorded": "2026-01-01" }"#;
        assert!(parse_entries(text).is_empty());
    }
}
