//! The multi-layer GCN used throughout the evaluation: "a GNN with three
//! GCN layers and a hidden dimension of 128" (paper §6.2). The layer count
//! and dimensions are configurable; the last layer emits raw logits.

use crate::layer::{
    gcn_layer_backward_ws, gcn_layer_forward_ws, gcn_layer_recompute_cache_ws, LayerCache,
};
use plexus_sparse::{spmm_into, Csr};
use plexus_tensor::ops::relu_into;
use plexus_tensor::{gemm_nn_cached_b, glorot_uniform, KernelWorkspace, Matrix};

/// Model hyperparameters.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    pub input_dim: usize,
    pub hidden_dim: usize,
    pub num_classes: usize,
    pub num_layers: usize,
    pub seed: u64,
}

impl GcnConfig {
    /// The paper's standard model: 3 layers, hidden 128.
    pub fn paper_default(input_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self { input_dim, hidden_dim: 128, num_classes, num_layers: 3, seed }
    }

    /// Per-layer (in, out) dimensions.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        assert!(self.num_layers >= 1, "GcnConfig: need at least one layer");
        (0..self.num_layers)
            .map(|l| {
                let din = if l == 0 { self.input_dim } else { self.hidden_dim };
                let dout =
                    if l + 1 == self.num_layers { self.num_classes } else { self.hidden_dim };
                (din, dout)
            })
            .collect()
    }
}

/// A GCN: weight matrices plus the forward/backward orchestration.
pub struct Gcn {
    pub config: GcnConfig,
    pub weights: Vec<Matrix>,
}

/// Caches from a full forward pass (one per layer).
pub struct ForwardCaches {
    pub caches: Vec<LayerCache>,
    pub logits: Matrix,
}

/// All gradients from a full backward pass.
pub struct Gradients {
    pub dweights: Vec<Matrix>,
    /// Gradient of the trainable input features.
    pub dfeatures: Matrix,
}

impl Gcn {
    /// Glorot-initialized model; layer `l` uses seed `config.seed + l` so
    /// serial and distributed trainers initialize bit-identically.
    pub fn new(config: GcnConfig) -> Self {
        let weights = config
            .layer_dims()
            .iter()
            .enumerate()
            .map(|(l, &(din, dout))| glorot_uniform(din, dout, config.seed + l as u64))
            .collect();
        Self { config, weights }
    }

    /// Wrap externally provided (frozen) weights — e.g. decoded from a
    /// serving artifact — without touching an RNG. Shapes are validated
    /// against `config.layer_dims()`.
    pub fn from_parts(config: GcnConfig, weights: Vec<Matrix>) -> Self {
        let dims = config.layer_dims();
        assert_eq!(dims.len(), weights.len(), "Gcn::from_parts: layer count mismatch");
        for (l, (w, &(din, dout))) in weights.iter().zip(&dims).enumerate() {
            assert_eq!(w.shape(), (din, dout), "Gcn::from_parts: layer {l} weight shape mismatch");
        }
        Self { config, weights }
    }

    /// Full forward pass over the (normalized) adjacency.
    pub fn forward(&self, a: &Csr, features: &Matrix) -> ForwardCaches {
        self.forward_ws(&mut KernelWorkspace::new(), a, features)
    }

    /// Inference forward over per-layer extracted sub-adjacencies — the
    /// serving engine's batch (and single-query) entry point. `subs[l]` is
    /// layer `l`'s k-hop sub-CSR (rows = that layer's output nodes, cols =
    /// its input nodes) and `x0` holds the gathered input-feature rows for
    /// `subs[0]`'s columns. Returns the logits, one row per row of the
    /// last sub-adjacency.
    ///
    /// Uses one workspace per layer so each layer's packed weight panels
    /// stay cached under `weights_version` across batches: at steady state
    /// a batch runs with zero allocations and zero repacking. Every row of
    /// the result is bitwise identical to the same node's row under
    /// [`Gcn::forward`] on the full graph — the kernels, their dispatch
    /// (which looks only at operand shapes) and the per-row accumulation
    /// order (ascending CSR entries, preserved by the monotone k-hop
    /// column remap) are all identical.
    pub fn forward_extracted_ws(
        &self,
        layer_ws: &mut [KernelWorkspace],
        subs: &[Csr],
        x0: &Matrix,
        weights_version: u64,
    ) -> Matrix {
        let num_layers = self.weights.len();
        assert_eq!(subs.len(), num_layers, "forward_extracted_ws: one sub-CSR per layer");
        assert_eq!(layer_ws.len(), num_layers, "forward_extracted_ws: one workspace per layer");
        assert_eq!(subs[0].cols(), x0.rows(), "forward_extracted_ws: layer 0 input mismatch");
        let mut h0 = layer_ws[0].take_scratch(subs[0].rows(), x0.cols());
        spmm_into(&subs[0], x0, &mut h0);
        let logits = self.forward_from_aggregated_ws(layer_ws, subs, &h0, weights_version);
        layer_ws[0].recycle(h0);
        logits
    }

    /// [`Gcn::forward_extracted_ws`] from layer 0's *aggregated* features
    /// onward: `h0` is the precomputed `subs[0] · X0` block (the serving
    /// extraction cache stores it per hot query set, since it depends only
    /// on the frozen graph, the sorted query set, and the model version's
    /// trained features). The remaining kernel calls are exactly the ones
    /// the uncached path runs — same shapes, same dispatch, same
    /// accumulation order — so cached and uncached logits are bitwise
    /// identical.
    pub fn forward_from_aggregated_ws(
        &self,
        layer_ws: &mut [KernelWorkspace],
        subs: &[Csr],
        h0: &Matrix,
        weights_version: u64,
    ) -> Matrix {
        let num_layers = self.weights.len();
        assert_eq!(subs.len(), num_layers, "forward_from_aggregated_ws: one sub-CSR per layer");
        assert_eq!(layer_ws.len(), num_layers, "one workspace per layer");
        assert_eq!(subs[0].rows(), h0.rows(), "forward_from_aggregated_ws: h0 row mismatch");
        // Layer 0's combine straight off the aggregated block.
        let w0 = &self.weights[0];
        let ws = &mut layer_ws[0];
        let mut q = ws.take_scratch(h0.rows(), w0.cols());
        gemm_nn_cached_b(ws, &mut q, h0, w0, weights_version, 1.0, 0.0);
        let mut x = if num_layers > 1 {
            let mut out = ws.take_scratch(q.rows(), q.cols());
            relu_into(&q, &mut out);
            ws.recycle(q);
            out
        } else {
            q
        };
        // Pool that owns `x` right now: recycling a buffer back into the
        // pool it was taken from keeps every per-layer pool self-contained
        // at steady state (no cross-pool migration, no repeat allocations).
        let mut src = 0;
        for l in 1..num_layers {
            let (a, w) = (&subs[l], &self.weights[l]);
            assert_eq!(a.cols(), x.rows(), "forward_from_aggregated_ws: layer {l} input mismatch");
            let mut h = layer_ws[l].take_scratch(a.rows(), x.cols());
            spmm_into(a, &x, &mut h);
            layer_ws[src].recycle(x);
            src = l;
            let ws = &mut layer_ws[l];
            let mut q = ws.take_scratch(h.rows(), w.cols());
            gemm_nn_cached_b(ws, &mut q, &h, w, weights_version, 1.0, 0.0);
            ws.recycle(h);
            if l + 1 < num_layers {
                let mut out = ws.take_scratch(q.rows(), q.cols());
                relu_into(&q, &mut out);
                ws.recycle(q);
                x = out;
            } else {
                x = q;
            }
        }
        x
    }

    /// [`Gcn::forward`] with caller-owned kernel buffers: every layer's
    /// `H`, `Q` and activation come from `ws`, and each consumed
    /// intermediate activation is recycled immediately.
    pub fn forward_ws(
        &self,
        ws: &mut KernelWorkspace,
        a: &Csr,
        features: &Matrix,
    ) -> ForwardCaches {
        let num_layers = self.weights.len();
        let mut caches = Vec::with_capacity(num_layers);
        let mut x = ws.take_scratch(features.rows(), features.cols());
        x.as_mut_slice().copy_from_slice(features.as_slice());
        for (l, w) in self.weights.iter().enumerate() {
            let activated = l + 1 < num_layers;
            let (out, cache) = gcn_layer_forward_ws(ws, a, &x, w, activated);
            caches.push(cache);
            ws.recycle(std::mem::replace(&mut x, out));
        }
        ForwardCaches { caches, logits: x }
    }

    /// Full backward pass given `∂L/∂logits`.
    pub fn backward(&self, a_t: &Csr, caches: &ForwardCaches, dlogits: Matrix) -> Gradients {
        self.backward_ws(&mut KernelWorkspace::new(), a_t, caches, dlogits)
    }

    /// [`Gcn::backward`] with caller-owned kernel buffers. Borrows the
    /// caches (the trainer recycles the whole [`ForwardCaches`] afterwards
    /// via [`ForwardCaches::recycle_into`]).
    pub fn backward_ws(
        &self,
        ws: &mut KernelWorkspace,
        a_t: &Csr,
        caches: &ForwardCaches,
        dlogits: Matrix,
    ) -> Gradients {
        let mut dweights = vec![Matrix::zeros(1, 1); self.weights.len()];
        let mut dout = dlogits;
        for l in (0..self.weights.len()).rev() {
            let grads = gcn_layer_backward_ws(ws, a_t, &self.weights[l], &caches.caches[l], dout);
            dweights[l] = grads.dw;
            dout = grads.df;
        }
        Gradients { dweights, dfeatures: dout }
    }
}

impl ForwardCaches {
    /// Return every cached buffer (per-layer `H`/`Q` and the logits) to a
    /// workspace pool once the backward pass is done with them.
    pub fn recycle_into(self, ws: &mut KernelWorkspace) {
        for cache in self.caches {
            ws.recycle(cache.h);
            ws.recycle(cache.q);
        }
        ws.recycle(self.logits);
    }
}

/// The recompute-residency counterpart of [`ForwardCaches`]: only each
/// layer's *input* is retained (`inputs[l]` feeds layer `l`); the `H`/`Q`
/// intermediates were recycled during forward and are re-derived per layer
/// in [`Gcn::backward_recompute_ws`]. Peak residency drops from
/// `L x (|H| + |Q|)` to `L x |F|` — for equal-width layers roughly half.
pub struct InputCaches {
    pub inputs: Vec<Matrix>,
    pub logits: Matrix,
}

impl InputCaches {
    /// Return every retained buffer to a workspace pool once backward is
    /// done with them.
    pub fn recycle_into(self, ws: &mut KernelWorkspace) {
        for input in self.inputs {
            ws.recycle(input);
        }
        ws.recycle(self.logits);
    }
}

impl Gcn {
    /// [`Gcn::forward_ws`] under recompute residency: identical kernel
    /// calls (so identical logits bit for bit), but each layer's `H`/`Q`
    /// go straight back to the pool and the layer *inputs* are retained
    /// instead for [`Gcn::backward_recompute_ws`] to re-derive from.
    pub fn forward_recompute_ws(
        &self,
        ws: &mut KernelWorkspace,
        a: &Csr,
        features: &Matrix,
    ) -> InputCaches {
        let num_layers = self.weights.len();
        let mut inputs = Vec::with_capacity(num_layers);
        let mut x = ws.take_scratch(features.rows(), features.cols());
        x.as_mut_slice().copy_from_slice(features.as_slice());
        for (l, w) in self.weights.iter().enumerate() {
            let activated = l + 1 < num_layers;
            let (out, cache) = gcn_layer_forward_ws(ws, a, &x, w, activated);
            ws.recycle(cache.h);
            ws.recycle(cache.q);
            inputs.push(std::mem::replace(&mut x, out));
        }
        InputCaches { inputs, logits: x }
    }

    /// [`Gcn::backward_ws`] driven from retained inputs: each layer's
    /// `H = SpMM(A, F)` and `Q = SGEMM(H, W)` are recomputed through the
    /// same kernels the forward pass ran — same shapes, same accumulation
    /// order, bitwise-identical values — then the standard backward math
    /// consumes them and the rebuilt buffers return to the pool.
    pub fn backward_recompute_ws(
        &self,
        ws: &mut KernelWorkspace,
        a: &Csr,
        a_t: &Csr,
        caches: &InputCaches,
        dlogits: Matrix,
    ) -> Gradients {
        let num_layers = self.weights.len();
        let mut dweights = vec![Matrix::zeros(1, 1); num_layers];
        let mut dout = dlogits;
        for l in (0..num_layers).rev() {
            let activated = l + 1 < num_layers;
            let cache =
                gcn_layer_recompute_cache_ws(ws, a, &caches.inputs[l], &self.weights[l], activated);
            let grads = gcn_layer_backward_ws(ws, a_t, &self.weights[l], &cache, dout);
            ws.recycle(cache.h);
            ws.recycle(cache.q);
            dweights[l] = grads.dw;
            dout = grads.df;
        }
        Gradients { dweights, dfeatures: dout }
    }
}

impl Gradients {
    /// Return every gradient buffer to a workspace pool after the
    /// optimizer step has consumed the values.
    pub fn recycle_into(self, ws: &mut KernelWorkspace) {
        for dw in self.dweights {
            ws.recycle(dw);
        }
        ws.recycle(self.dfeatures);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::normalized_adjacency;
    use plexus_tensor::uniform_matrix;

    fn setup() -> (Csr, Csr, Matrix, Gcn) {
        let a = normalized_adjacency(
            6,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3), (4, 5), (5, 4)],
        );
        let a_t = a.transposed();
        let f = uniform_matrix(6, 5, -1.0, 1.0, 10);
        let gcn = Gcn::new(GcnConfig {
            input_dim: 5,
            hidden_dim: 7,
            num_classes: 3,
            num_layers: 3,
            seed: 42,
        });
        (a, a_t, f, gcn)
    }

    #[test]
    fn layer_dims_chain_correctly() {
        let cfg =
            GcnConfig { input_dim: 10, hidden_dim: 8, num_classes: 4, num_layers: 3, seed: 0 };
        assert_eq!(cfg.layer_dims(), vec![(10, 8), (8, 8), (8, 4)]);
        let one = GcnConfig { num_layers: 1, ..cfg };
        assert_eq!(one.layer_dims(), vec![(10, 4)]);
    }

    #[test]
    fn forward_produces_logit_shape() {
        let (a, _, f, gcn) = setup();
        let fwd = gcn.forward(&a, &f);
        assert_eq!(fwd.logits.shape(), (6, 3));
        assert_eq!(fwd.caches.len(), 3);
        // Last layer unactivated, inner layers activated.
        assert!(!fwd.caches[2].activated);
        assert!(fwd.caches[0].activated && fwd.caches[1].activated);
    }

    #[test]
    fn backward_produces_all_gradients() {
        let (a, a_t, f, gcn) = setup();
        let fwd = gcn.forward(&a, &f);
        let dlogits = Matrix::full(6, 3, 0.1);
        let grads = gcn.backward(&a_t, &fwd, dlogits);
        assert_eq!(grads.dweights.len(), 3);
        for (l, (dw, w)) in grads.dweights.iter().zip(&gcn.weights).enumerate() {
            assert_eq!(dw.shape(), w.shape(), "layer {} dW shape", l);
        }
        assert_eq!(grads.dfeatures.shape(), f.shape());
    }

    #[test]
    fn end_to_end_gradcheck_through_three_layers() {
        let (a, a_t, f, gcn) = setup();
        let loss_of = |f_: &Matrix, gcn_: &Gcn| -> f64 {
            let fwd = gcn_.forward(&a, f_);
            0.5 * fwd.logits.as_slice().iter().map(|&x| (x as f64).powi(2)).sum::<f64>()
        };
        let fwd = gcn.forward(&a, &f);
        let grads = gcn.backward(&a_t, &fwd, fwd.logits.clone());
        let eps = 1e-2f32;
        // Feature gradient through all three layers.
        for &(i, j) in &[(0usize, 0usize), (5, 4), (3, 2)] {
            let mut fp = f.clone();
            fp[(i, j)] += eps;
            let mut fm = f.clone();
            fm[(i, j)] -= eps;
            let num = (loss_of(&fp, &gcn) - loss_of(&fm, &gcn)) / (2.0 * eps as f64);
            let ana = grads.dfeatures[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 0.05 * num.abs().max(0.5),
                "dF[{},{}] numeric {:.4} vs analytic {:.4}",
                i,
                j,
                num,
                ana
            );
        }
        // First-layer weight gradient (flows through layers 1 and 2).
        let mut gcn2 = Gcn::new(gcn.config.clone());
        for &(i, j) in &[(0usize, 0usize), (4, 6)] {
            let orig = gcn2.weights[0][(i, j)];
            gcn2.weights[0][(i, j)] = orig + eps;
            let fp = loss_of(&f, &gcn2);
            gcn2.weights[0][(i, j)] = orig - eps;
            let fm = loss_of(&f, &gcn2);
            gcn2.weights[0][(i, j)] = orig;
            let num = (fp - fm) / (2.0 * eps as f64);
            let ana = grads.dweights[0][(i, j)] as f64;
            assert!(
                (num - ana).abs() < 0.05 * num.abs().max(0.5),
                "dW0[{},{}] numeric {:.4} vs analytic {:.4}",
                i,
                j,
                num,
                ana
            );
        }
    }

    #[test]
    fn same_seed_same_weights() {
        let (_, _, _, gcn) = setup();
        let gcn2 = Gcn::new(gcn.config.clone());
        for (w1, w2) in gcn.weights.iter().zip(&gcn2.weights) {
            assert_eq!(w1, w2);
        }
    }
}
