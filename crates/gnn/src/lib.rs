//! GCN model and serial full-graph training — the reference implementation
//! every parallel engine in this workspace is validated against.
//!
//! The math follows §2.1 of the paper exactly:
//!
//! * forward per layer: `H = SpMM(A, F)` (eq. 2.1), `Q = SGEMM(H, W)`
//!   (eq. 2.2), `F' = σ(Q)` (eq. 2.3);
//! * backward per layer: eqs. 2.4–2.7, including `∂L/∂F = SpMM(Aᵀ, ∂L/∂H)`;
//! * the input features are **trainable** ("the gradient ∂L/∂F_L0 at the
//!   first layer is then used to update the input features and learn
//!   meaningful node embeddings") — so the optimizer carries state for
//!   features as well as weights, which is why the 3D engine shards them
//!   over the Z dimension;
//! * loss: masked softmax cross-entropy over training nodes (node
//!   classification, §2.1).
//!
//! The serial trainer here plays the role PyTorch Geometric plays in the
//! paper's Fig. 7 validation.

pub mod adam;
pub mod gin;
pub mod layer;
pub mod loss;
pub mod model;
pub mod spill;
pub mod trainer;

pub use adam::{Adam, AdamConfig};
pub use layer::{
    gcn_layer_backward, gcn_layer_backward_ws, gcn_layer_forward, gcn_layer_forward_ws,
    gcn_layer_recompute_cache_ws, LayerCache, LayerGrads,
};
pub use loss::{accuracy, masked_cross_entropy, LossOutput};
pub use model::{Gcn, GcnConfig, InputCaches};
pub use trainer::{EpochStats, SerialResidency, SerialTrainer, TrainConfig};
