//! A single GCN layer: forward (paper eqs. 2.1–2.3) and backward
//! (eqs. 2.4–2.7).
//!
//! The `_ws` variants thread a [`KernelWorkspace`] through every kernel
//! call, so a long-lived owner (the serial trainer) runs its epoch loop
//! without per-call allocations for kernel outputs; the plain functions
//! are convenience wrappers over a throwaway workspace.

use plexus_sparse::{spmm_into, Csr};
use plexus_tensor::ops::{relu_backward_inplace, relu_into};
use plexus_tensor::{gemm_ws, KernelWorkspace, Matrix, Trans};

/// Intermediates cached by the forward pass for use in the backward pass.
#[derive(Debug)]
pub struct LayerCache {
    /// Aggregation output `H = A · F` (needed by eq. 2.5).
    pub h: Matrix,
    /// Pre-activation `Q = H · W` (needed by eq. 2.4).
    pub q: Matrix,
    /// Whether σ was applied (the final layer emits raw logits).
    pub activated: bool,
}

/// Gradients produced by a layer's backward pass.
#[derive(Debug)]
pub struct LayerGrads {
    /// `∂L/∂W` (eq. 2.5).
    pub dw: Matrix,
    /// `∂L/∂F` (eq. 2.7) — the gradient flowing to the previous layer (or
    /// to the trainable input features).
    pub df: Matrix,
}

/// Forward pass of one GCN layer. Returns the layer output and the cache.
///
/// `activated == false` skips σ (used for the last layer, whose output
/// feeds softmax cross-entropy directly).
pub fn gcn_layer_forward(a: &Csr, f: &Matrix, w: &Matrix, activated: bool) -> (Matrix, LayerCache) {
    gcn_layer_forward_ws(&mut KernelWorkspace::new(), a, f, w, activated)
}

/// [`gcn_layer_forward`] with caller-owned kernel buffers: `h`, `q` and
/// the output all come from (and can be recycled back into) `ws`.
///
/// Composed from [`gcn_layer_recompute_cache_ws`] plus the activation
/// step, so forward and the recompute-residency rebuild share one code
/// path and cannot drift apart bitwise.
pub fn gcn_layer_forward_ws(
    ws: &mut KernelWorkspace,
    a: &Csr,
    f: &Matrix,
    w: &Matrix,
    activated: bool,
) -> (Matrix, LayerCache) {
    // (1)+(2) Aggregation and combination                   [eqs. 2.1–2.2]
    let cache = gcn_layer_recompute_cache_ws(ws, a, f, w, activated);
    // (3) Activation: F' = σ(Q)                                  [eq. 2.3]
    let mut out = ws.take_scratch(cache.q.rows(), cache.q.cols());
    if activated {
        relu_into(&cache.q, &mut out);
    } else {
        out.as_mut_slice().copy_from_slice(cache.q.as_slice());
    }
    (out, cache)
}

/// Rebuild just the `H`/`Q` intermediates of one layer from its input —
/// the recompute-residency recipe. Runs the same kernels in the same
/// accumulation order as [`gcn_layer_forward_ws`], so the rebuilt cache is
/// bitwise identical to the one forward produced; the activation output
/// is skipped because backward never reads it.
pub fn gcn_layer_recompute_cache_ws(
    ws: &mut KernelWorkspace,
    a: &Csr,
    f: &Matrix,
    w: &Matrix,
    activated: bool,
) -> LayerCache {
    let mut h = ws.take_scratch(a.rows(), f.cols());
    spmm_into(a, f, &mut h);
    let mut q = ws.take_scratch(h.rows(), w.cols());
    gemm_ws(ws, &mut q, &h, Trans::N, w, Trans::N, 1.0, 0.0);
    LayerCache { h, q, activated }
}

/// Backward pass of one GCN layer given `∂L/∂F'` (the gradient of the
/// layer's output). `a_t` is `Aᵀ` — passed in pre-transposed because the
/// trainers build it once, not per step.
pub fn gcn_layer_backward(a_t: &Csr, w: &Matrix, cache: &LayerCache, dout: Matrix) -> LayerGrads {
    gcn_layer_backward_ws(&mut KernelWorkspace::new(), a_t, w, cache, dout)
}

/// [`gcn_layer_backward`] with caller-owned kernel buffers. `dout` is
/// consumed and recycled; the cache is borrowed (the model recycles it
/// after the full backward sweep).
pub fn gcn_layer_backward_ws(
    ws: &mut KernelWorkspace,
    a_t: &Csr,
    w: &Matrix,
    cache: &LayerCache,
    mut dout: Matrix,
) -> LayerGrads {
    // (1) ∂L/∂Q = ∂L/∂F' ⊙ σ'(Q)                                 [eq. 2.4]
    if cache.activated {
        relu_backward_inplace(&mut dout, &cache.q);
    }
    let dq = dout;
    // (2) ∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q)  [eq. 2.5] — the packed kernel routes
    // the transposed operand through panel packing, so this runs at the
    // same speed as the reordered dW trick in the distributed engine (and
    // produces bitwise-identical values to it: the packed panels contain
    // the same operand values in the same accumulation order).
    let mut dw = ws.take_scratch(w.rows(), w.cols());
    gemm_ws(ws, &mut dw, &cache.h, Trans::T, &dq, Trans::N, 1.0, 0.0);
    // (3) ∂L/∂H = SGEMM(∂L/∂Q, Wᵀ)                               [eq. 2.6]
    let mut dh = ws.take_scratch(cache.h.rows(), cache.h.cols());
    gemm_ws(ws, &mut dh, &dq, Trans::N, w, Trans::T, 1.0, 0.0);
    ws.recycle(dq);
    // (4) ∂L/∂F = SpMM(Aᵀ, ∂L/∂H)                                [eq. 2.7]
    let mut df = ws.take_scratch(a_t.rows(), dh.cols());
    spmm_into(a_t, &dh, &mut df);
    ws.recycle(dh);
    LayerGrads { dw, df }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::normalized_adjacency;
    use plexus_tensor::{assert_close, uniform_matrix};

    fn tiny_setup() -> (Csr, Csr, Matrix, Matrix) {
        let a = normalized_adjacency(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let a_t = a.transposed();
        let f = uniform_matrix(4, 3, -1.0, 1.0, 1);
        let w = uniform_matrix(3, 2, -1.0, 1.0, 2);
        (a, a_t, f, w)
    }

    #[test]
    fn forward_shapes() {
        let (a, _, f, w) = tiny_setup();
        let (out, cache) = gcn_layer_forward(&a, &f, &w, true);
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(cache.h.shape(), (4, 3));
        assert_eq!(cache.q.shape(), (4, 2));
    }

    #[test]
    fn unactivated_output_equals_preactivation() {
        let (a, _, f, w) = tiny_setup();
        let (out, cache) = gcn_layer_forward(&a, &f, &w, false);
        assert_close(&out, &cache.q, 0.0, "logits == Q");
    }

    #[test]
    fn activated_output_is_nonnegative() {
        let (a, _, f, w) = tiny_setup();
        let (out, _) = gcn_layer_forward(&a, &f, &w, true);
        assert!(out.as_slice().iter().all(|&x| x >= 0.0));
    }

    /// Finite-difference check of dW and dF through a single layer with a
    /// quadratic loss L = 0.5 * ||out||².
    #[test]
    fn gradients_match_finite_differences() {
        let (a, a_t, f, w) = tiny_setup();
        let loss_of = |f_: &Matrix, w_: &Matrix| -> f64 {
            let (out, _) = gcn_layer_forward(&a, f_, w_, true);
            0.5 * out.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
        };
        let (out, cache) = gcn_layer_forward(&a, &f, &w, true);
        // dL/dout = out for the quadratic loss.
        let grads = gcn_layer_backward(&a_t, &w, &cache, out.clone());

        let eps = 1e-3f32;
        // Check a sample of W entries.
        for &(i, j) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut wp = w.clone();
            wp[(i, j)] += eps;
            let mut wm = w.clone();
            wm[(i, j)] -= eps;
            let num = (loss_of(&f, &wp) - loss_of(&f, &wm)) / (2.0 * eps as f64);
            let ana = grads.dw[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * num.abs().max(1.0),
                "dW[{},{}] numeric {:.5} vs analytic {:.5}",
                i,
                j,
                num,
                ana
            );
        }
        // Check a sample of F entries.
        for &(i, j) in &[(0usize, 0usize), (3, 2), (2, 1)] {
            let mut fp = f.clone();
            fp[(i, j)] += eps;
            let mut fm = f.clone();
            fm[(i, j)] -= eps;
            let num = (loss_of(&fp, &w) - loss_of(&fm, &w)) / (2.0 * eps as f64);
            let ana = grads.df[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * num.abs().max(1.0),
                "dF[{},{}] numeric {:.5} vs analytic {:.5}",
                i,
                j,
                num,
                ana
            );
        }
    }
}
