//! A single GCN layer: forward (paper eqs. 2.1–2.3) and backward
//! (eqs. 2.4–2.7).

use plexus_sparse::{spmm, Csr};
use plexus_tensor::ops::{relu, relu_backward_inplace};
use plexus_tensor::{gemm, Matrix, Trans};

/// Intermediates cached by the forward pass for use in the backward pass.
#[derive(Debug)]
pub struct LayerCache {
    /// Aggregation output `H = A · F` (needed by eq. 2.5).
    pub h: Matrix,
    /// Pre-activation `Q = H · W` (needed by eq. 2.4).
    pub q: Matrix,
    /// Whether σ was applied (the final layer emits raw logits).
    pub activated: bool,
}

/// Gradients produced by a layer's backward pass.
#[derive(Debug)]
pub struct LayerGrads {
    /// `∂L/∂W` (eq. 2.5).
    pub dw: Matrix,
    /// `∂L/∂F` (eq. 2.7) — the gradient flowing to the previous layer (or
    /// to the trainable input features).
    pub df: Matrix,
}

/// Forward pass of one GCN layer. Returns the layer output and the cache.
///
/// `activated == false` skips σ (used for the last layer, whose output
/// feeds softmax cross-entropy directly).
pub fn gcn_layer_forward(a: &Csr, f: &Matrix, w: &Matrix, activated: bool) -> (Matrix, LayerCache) {
    // (1) Aggregation: H = SpMM(A, F)                            [eq. 2.1]
    let h = spmm(a, f);
    // (2) Combination: Q = SGEMM(H, W)                           [eq. 2.2]
    let mut q = Matrix::zeros(h.rows(), w.cols());
    gemm(&mut q, &h, Trans::N, w, Trans::N, 1.0, 0.0);
    // (3) Activation: F' = σ(Q)                                  [eq. 2.3]
    let out = if activated { relu(&q) } else { q.clone() };
    (out, LayerCache { h, q, activated })
}

/// Backward pass of one GCN layer given `∂L/∂F'` (the gradient of the
/// layer's output). `a_t` is `Aᵀ` — passed in pre-transposed because the
/// trainers build it once, not per step.
pub fn gcn_layer_backward(
    a_t: &Csr,
    w: &Matrix,
    cache: &LayerCache,
    mut dout: Matrix,
) -> LayerGrads {
    // (1) ∂L/∂Q = ∂L/∂F' ⊙ σ'(Q)                                 [eq. 2.4]
    if cache.activated {
        relu_backward_inplace(&mut dout, &cache.q);
    }
    let dq = dout;
    // (2) ∂L/∂W = SGEMM(Hᵀ, ∂L/∂Q)                               [eq. 2.5]
    let mut dw = Matrix::zeros(w.rows(), w.cols());
    gemm(&mut dw, &cache.h, Trans::T, &dq, Trans::N, 1.0, 0.0);
    // (3) ∂L/∂H = SGEMM(∂L/∂Q, Wᵀ)                               [eq. 2.6]
    let mut dh = Matrix::zeros(cache.h.rows(), cache.h.cols());
    gemm(&mut dh, &dq, Trans::N, w, Trans::T, 1.0, 0.0);
    // (4) ∂L/∂F = SpMM(Aᵀ, ∂L/∂H)                                [eq. 2.7]
    let df = spmm(a_t, &dh);
    LayerGrads { dw, df }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sparse::normalized_adjacency;
    use plexus_tensor::{assert_close, uniform_matrix};

    fn tiny_setup() -> (Csr, Csr, Matrix, Matrix) {
        let a = normalized_adjacency(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let a_t = a.transposed();
        let f = uniform_matrix(4, 3, -1.0, 1.0, 1);
        let w = uniform_matrix(3, 2, -1.0, 1.0, 2);
        (a, a_t, f, w)
    }

    #[test]
    fn forward_shapes() {
        let (a, _, f, w) = tiny_setup();
        let (out, cache) = gcn_layer_forward(&a, &f, &w, true);
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(cache.h.shape(), (4, 3));
        assert_eq!(cache.q.shape(), (4, 2));
    }

    #[test]
    fn unactivated_output_equals_preactivation() {
        let (a, _, f, w) = tiny_setup();
        let (out, cache) = gcn_layer_forward(&a, &f, &w, false);
        assert_close(&out, &cache.q, 0.0, "logits == Q");
    }

    #[test]
    fn activated_output_is_nonnegative() {
        let (a, _, f, w) = tiny_setup();
        let (out, _) = gcn_layer_forward(&a, &f, &w, true);
        assert!(out.as_slice().iter().all(|&x| x >= 0.0));
    }

    /// Finite-difference check of dW and dF through a single layer with a
    /// quadratic loss L = 0.5 * ||out||².
    #[test]
    fn gradients_match_finite_differences() {
        let (a, a_t, f, w) = tiny_setup();
        let loss_of = |f_: &Matrix, w_: &Matrix| -> f64 {
            let (out, _) = gcn_layer_forward(&a, f_, w_, true);
            0.5 * out.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
        };
        let (out, cache) = gcn_layer_forward(&a, &f, &w, true);
        // dL/dout = out for the quadratic loss.
        let grads = gcn_layer_backward(&a_t, &w, &cache, out.clone());

        let eps = 1e-3f32;
        // Check a sample of W entries.
        for &(i, j) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut wp = w.clone();
            wp[(i, j)] += eps;
            let mut wm = w.clone();
            wm[(i, j)] -= eps;
            let num = (loss_of(&f, &wp) - loss_of(&f, &wm)) / (2.0 * eps as f64);
            let ana = grads.dw[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * num.abs().max(1.0),
                "dW[{},{}] numeric {:.5} vs analytic {:.5}",
                i,
                j,
                num,
                ana
            );
        }
        // Check a sample of F entries.
        for &(i, j) in &[(0usize, 0usize), (3, 2), (2, 1)] {
            let mut fp = f.clone();
            fp[(i, j)] += eps;
            let mut fm = f.clone();
            fm[(i, j)] -= eps;
            let num = (loss_of(&fp, &w) - loss_of(&fm, &w)) / (2.0 * eps as f64);
            let ana = grads.df[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * num.abs().max(1.0),
                "dF[{},{}] numeric {:.5} vs analytic {:.5}",
                i,
                j,
                num,
                ana
            );
        }
    }
}
