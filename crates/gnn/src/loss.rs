//! Masked softmax cross-entropy for node classification, plus accuracy.
//!
//! Only training-mask nodes contribute to the loss; the gradient of a
//! non-training node's logits is zero. Loss is averaged over the number of
//! training nodes, matching the convention of PyG's
//! `F.cross_entropy(out[mask], y[mask])` that the paper validates against.

use plexus_tensor::ops::{argmax_rows, logsumexp_rows, softmax_rows};
use plexus_tensor::Matrix;

/// Loss value and gradient w.r.t. the logits.
pub struct LossOutput {
    pub loss: f64,
    /// `∂L/∂logits`, already divided by the number of masked nodes.
    pub dlogits: Matrix,
    pub num_masked: usize,
}

/// Masked softmax cross-entropy.
///
/// `mask[i]` selects whether node `i` contributes. Rows of `logits` beyond
/// `mask.len()` (padding rows added by the distributed engine) never
/// contribute.
pub fn masked_cross_entropy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> LossOutput {
    assert!(labels.len() <= logits.rows(), "masked_cross_entropy: more labels than rows");
    assert_eq!(labels.len(), mask.len(), "masked_cross_entropy: labels/mask length mismatch");
    let num_masked = mask.iter().filter(|&&b| b).count();
    assert!(num_masked > 0, "masked_cross_entropy: empty mask");
    let lse = logsumexp_rows(logits);
    let probs = softmax_rows(logits);
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let inv = 1.0 / num_masked as f32;
    let mut loss = 0.0f64;
    for i in 0..labels.len() {
        if !mask[i] {
            continue;
        }
        let y = labels[i] as usize;
        assert!(y < logits.cols(), "label {} out of {} classes", y, logits.cols());
        loss += (lse[i] - logits[(i, y)]) as f64;
        let drow = dlogits.row_mut(i);
        drow.copy_from_slice(probs.row(i));
        for v in drow.iter_mut() {
            *v *= inv;
        }
        drow[y] -= inv;
    }
    LossOutput { loss: loss / num_masked as f64, dlogits, num_masked }
}

/// Fraction of masked nodes whose argmax prediction matches the label.
pub fn accuracy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> f64 {
    let preds = argmax_rows(logits);
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..labels.len().min(preds.len()) {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] as usize {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_give_small_loss_and_full_accuracy() {
        let mut logits = Matrix::zeros(3, 2);
        logits[(0, 0)] = 10.0;
        logits[(1, 1)] = 10.0;
        logits[(2, 0)] = 10.0;
        let labels = vec![0, 1, 0];
        let mask = vec![true, true, true];
        let out = masked_cross_entropy(&logits, &labels, &mask);
        assert!(out.loss < 1e-3, "loss {}", out.loss);
        assert_eq!(accuracy(&logits, &labels, &mask), 1.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(2, 4);
        let out = masked_cross_entropy(&logits, &[1, 2], &[true, true]);
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn masked_nodes_have_zero_gradient() {
        let logits = Matrix::from_fn(3, 2, |i, j| (i + j) as f32);
        let out = masked_cross_entropy(&logits, &[0, 1, 0], &[true, false, true]);
        assert_eq!(out.num_masked, 2);
        assert!(out.dlogits.row(1).iter().all(|&x| x == 0.0));
        assert!(out.dlogits.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // d/dlogits of CE per row: softmax - onehot, which sums to 0.
        let logits = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f32 * 0.37).sin());
        let out = masked_cross_entropy(&logits, &[0, 2, 1, 1], &[true; 4]);
        for i in 0..4 {
            let s: f32 = out.dlogits.row(i).iter().sum();
            assert!(s.abs() < 1e-6, "row {} grad sums to {}", i, s);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_fn(3, 4, |i, j| ((i + 2 * j) as f32 * 0.21).cos());
        let labels = vec![1, 3, 0];
        let mask = vec![true, true, false];
        let out = masked_cross_entropy(&logits, &labels, &mask);
        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 1usize), (1, 3), (1, 0), (0, 2)] {
            let mut lp = logits.clone();
            lp[(i, j)] += eps;
            let mut lm = logits.clone();
            lm[(i, j)] -= eps;
            let fp = masked_cross_entropy(&lp, &labels, &mask).loss;
            let fm = masked_cross_entropy(&lm, &labels, &mask).loss;
            let num = (fp - fm) / (2.0 * eps as f64);
            let ana = out.dlogits[(i, j)] as f64;
            assert!((num - ana).abs() < 1e-3, "({}, {}): {} vs {}", i, j, num, ana);
        }
    }

    #[test]
    fn padded_rows_are_ignored() {
        // Logits matrix taller than labels: the extra rows (distributed
        // padding) must not influence loss or gradient.
        let logits = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f32);
        let out = masked_cross_entropy(&logits, &[0, 1, 0], &[true, true, true]);
        assert!(out.dlogits.row(3).iter().all(|&x| x == 0.0));
        assert!(out.dlogits.row(4).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty mask")]
    fn empty_mask_rejected() {
        let logits = Matrix::zeros(2, 2);
        let _ = masked_cross_entropy(&logits, &[0, 1], &[false, false]);
    }
}
