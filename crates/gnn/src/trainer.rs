//! The serial full-graph trainer — this workspace's equivalent of the
//! PyTorch Geometric baseline the paper validates against (Fig. 7).
//!
//! Every epoch: forward over the whole graph, masked cross-entropy,
//! backward, Adam step on all weights *and* on the trainable input
//! features. No sampling, no mini-batching, no approximations.

use crate::adam::{Adam, AdamConfig};
use crate::loss::{accuracy, masked_cross_entropy};
use crate::model::{Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::Csr;
use plexus_tensor::{KernelWorkspace, Matrix};
use std::time::Instant;

/// How the serial trainer keeps per-layer forward intermediates between
/// forward and backward. Both settings produce bitwise-identical losses;
/// `Recompute` trades one extra forward's compute for roughly halving
/// activation residency (the serial counterpart of the distributed
/// engine's `ResidencyPolicy::Recompute`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SerialResidency {
    /// Cache every layer's `H`/`Q` until backward consumes them.
    #[default]
    Cached,
    /// Retain only layer inputs; re-derive `H`/`Q` during backward.
    Recompute,
}

/// Trainer hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub adam: AdamConfig,
    pub hidden_dim: usize,
    pub num_layers: usize,
    pub seed: u64,
    pub residency: SerialResidency,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            adam: AdamConfig::default(),
            hidden_dim: 128,
            num_layers: 3,
            seed: 0,
            residency: SerialResidency::default(),
        }
    }
}

/// Per-epoch measurements.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    pub loss: f64,
    pub train_accuracy: f64,
    /// Wall time of the epoch in seconds.
    pub seconds: f64,
}

/// Serial full-graph GCN trainer.
pub struct SerialTrainer {
    pub model: Gcn,
    pub features: Matrix,
    adjacency: Csr,
    adjacency_t: Csr,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    weight_opts: Vec<Adam>,
    feature_opt: Adam,
    residency: SerialResidency,
    /// Reusable kernel buffers for the epoch loop; sized by the first
    /// epoch, allocation-free after.
    ws: KernelWorkspace,
}

impl SerialTrainer {
    /// Build from a loaded dataset. Model weights use `cfg.seed`; the
    /// dataset's features become the trainable input embedding.
    pub fn new(ds: &LoadedDataset, cfg: &TrainConfig) -> Self {
        let model = Gcn::new(GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim: cfg.hidden_dim,
            num_classes: ds.num_classes,
            num_layers: cfg.num_layers,
            seed: cfg.seed,
        });
        let mut t = Self::from_parts(
            model,
            ds.features.clone(),
            ds.adjacency.clone(),
            ds.labels.clone(),
            ds.split.train.clone(),
            cfg.adam,
        );
        t.residency = cfg.residency;
        t
    }

    /// Assemble from explicit parts (used by equivalence tests that need
    /// full control over every input).
    pub fn from_parts(
        model: Gcn,
        features: Matrix,
        adjacency: Csr,
        labels: Vec<u32>,
        train_mask: Vec<bool>,
        adam: AdamConfig,
    ) -> Self {
        assert_eq!(adjacency.rows(), features.rows(), "trainer: A and F row mismatch");
        assert_eq!(labels.len(), features.rows(), "trainer: labels length mismatch");
        let adjacency_t = adjacency.transposed();
        let weight_opts =
            model.weights.iter().map(|w| Adam::new(w.rows(), w.cols(), adam)).collect();
        let feature_opt = Adam::new(features.rows(), features.cols(), adam);
        Self {
            model,
            features,
            adjacency,
            adjacency_t,
            labels,
            train_mask,
            weight_opts,
            feature_opt,
            residency: SerialResidency::Cached,
            ws: KernelWorkspace::new(),
        }
    }

    /// One full-graph training epoch. Returns loss/accuracy *before* the
    /// parameter update (the loss of the forward pass just computed).
    /// Under [`SerialResidency::Recompute`] the epoch runs the
    /// retain-inputs/re-derive variant — bitwise identical.
    pub fn train_epoch(&mut self) -> EpochStats {
        let start = Instant::now();
        let (loss, train_accuracy, grads) = match self.residency {
            SerialResidency::Cached => {
                let fwd = self.model.forward_ws(&mut self.ws, &self.adjacency, &self.features);
                let loss_out = masked_cross_entropy(&fwd.logits, &self.labels, &self.train_mask);
                let acc = accuracy(&fwd.logits, &self.labels, &self.train_mask);
                let grads =
                    self.model.backward_ws(&mut self.ws, &self.adjacency_t, &fwd, loss_out.dlogits);
                fwd.recycle_into(&mut self.ws);
                (loss_out.loss, acc, grads)
            }
            SerialResidency::Recompute => {
                let fwd =
                    self.model.forward_recompute_ws(&mut self.ws, &self.adjacency, &self.features);
                let loss_out = masked_cross_entropy(&fwd.logits, &self.labels, &self.train_mask);
                let acc = accuracy(&fwd.logits, &self.labels, &self.train_mask);
                let grads = self.model.backward_recompute_ws(
                    &mut self.ws,
                    &self.adjacency,
                    &self.adjacency_t,
                    &fwd,
                    loss_out.dlogits,
                );
                fwd.recycle_into(&mut self.ws);
                (loss_out.loss, acc, grads)
            }
        };
        for ((w, opt), dw) in
            self.model.weights.iter_mut().zip(&mut self.weight_opts).zip(&grads.dweights)
        {
            opt.step(w, dw);
        }
        self.feature_opt.step(&mut self.features, &grads.dfeatures);
        grads.recycle_into(&mut self.ws);
        EpochStats { loss, train_accuracy, seconds: start.elapsed().as_secs_f64() }
    }

    /// Train for `epochs`, returning per-epoch stats.
    pub fn train(&mut self, epochs: usize) -> Vec<EpochStats> {
        (0..epochs).map(|_| self.train_epoch()).collect()
    }

    /// Loss/accuracy of the current parameters without updating them.
    pub fn evaluate(&self, mask: &[bool]) -> (f64, f64) {
        let fwd = self.model.forward(&self.adjacency, &self.features);
        let loss = masked_cross_entropy(&fwd.logits, &self.labels, mask).loss;
        let acc = accuracy(&fwd.logits, &self.labels, mask);
        (loss, acc)
    }

    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    pub fn train_mask(&self) -> &[bool] {
        &self.train_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_dataset() -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes: 256,
            edges: 2048,
            nonzeros: 4352,
            features: 16,
            classes: 8,
        };
        LoadedDataset::generate(spec, 256, Some(16), 77)
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let stats = trainer.train(30);
        let first = stats[0].loss;
        let last = stats.last().unwrap().loss;
        assert!(
            last < first * 0.7,
            "training did not converge: first {:.4}, last {:.4}",
            first,
            last
        );
    }

    #[test]
    fn accuracy_improves_over_training() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let stats = trainer.train(40);
        let final_acc = stats.last().unwrap().train_accuracy;
        assert!(final_acc > 0.4, "final train accuracy only {:.3}", final_acc);
    }

    #[test]
    fn recompute_residency_is_bitwise_identical() {
        // The serial counterpart of the distributed residency contract:
        // dropping H/Q and re-deriving them in backward replays the exact
        // kernels, so the loss trajectory matches bit for bit.
        let ds = tiny_dataset();
        let losses = |residency: SerialResidency| {
            let cfg = TrainConfig { hidden_dim: 16, residency, ..Default::default() };
            let mut t = SerialTrainer::new(&ds, &cfg);
            t.train(5).iter().map(|s| s.loss).collect::<Vec<_>>()
        };
        assert_eq!(losses(SerialResidency::Cached), losses(SerialResidency::Recompute));
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 8, ..Default::default() };
        let losses = |_: ()| {
            let mut t = SerialTrainer::new(&ds, &cfg);
            t.train(5).iter().map(|s| s.loss).collect::<Vec<_>>()
        };
        assert_eq!(losses(()), losses(()));
    }

    #[test]
    fn first_epoch_loss_is_near_log_c() {
        // With random init the initial loss should be ~ln(num_classes).
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let s = trainer.train_epoch();
        let lnc = (ds.num_classes as f64).ln();
        assert!(
            (s.loss - lnc).abs() < 1.0,
            "initial loss {:.3} far from ln(C) = {:.3}",
            s.loss,
            lnc
        );
    }

    #[test]
    fn evaluate_does_not_mutate() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 8, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        trainer.train(2);
        let (l1, _) = trainer.evaluate(&ds.split.val);
        let (l2, _) = trainer.evaluate(&ds.split.val);
        assert_eq!(l1, l2);
    }
}
