//! The serial full-graph trainer — this workspace's equivalent of the
//! PyTorch Geometric baseline the paper validates against (Fig. 7).
//!
//! Every epoch: forward over the whole graph, masked cross-entropy,
//! backward, Adam step on all weights *and* on the trainable input
//! features. No sampling, no mini-batching, no approximations.

use crate::adam::{Adam, AdamConfig};
use crate::layer::{gcn_layer_backward_ws, gcn_layer_forward_ws, LayerCache};
use crate::loss::{accuracy, masked_cross_entropy};
use crate::model::{Gcn, GcnConfig, Gradients};
use crate::spill::SpillFile;
use plexus_graph::LoadedDataset;
use plexus_sparse::Csr;
use plexus_tensor::{KernelWorkspace, Matrix};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How the serial trainer keeps per-layer forward intermediates between
/// forward and backward. Every setting produces bitwise-identical losses;
/// `Spill` trades disk I/O and `Recompute` trades one extra forward's
/// compute for reduced activation residency (the serial counterparts of
/// the distributed engine's `ResidencyPolicy::Spill`/`Recompute`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SerialResidency {
    /// Cache every layer's `H`/`Q` until backward consumes them.
    #[default]
    Cached,
    /// Cache `H`/`Q` in RAM up to `budget_bytes`; spill the rest to
    /// checksummed temp files during forward and reload them during
    /// backward. `budget_bytes: 0` spills every layer.
    Spill { budget_bytes: u64 },
    /// Retain only layer inputs; re-derive `H`/`Q` during backward.
    Recompute,
}

/// Trainer hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub adam: AdamConfig,
    pub hidden_dim: usize,
    pub num_layers: usize,
    pub seed: u64,
    pub residency: SerialResidency,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            adam: AdamConfig::default(),
            hidden_dim: 128,
            num_layers: 3,
            seed: 0,
            residency: SerialResidency::default(),
        }
    }
}

/// Per-epoch measurements.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    pub loss: f64,
    pub train_accuracy: f64,
    /// Wall time of the epoch in seconds.
    pub seconds: f64,
}

/// Serial full-graph GCN trainer.
pub struct SerialTrainer {
    pub model: Gcn,
    pub features: Matrix,
    adjacency: Csr,
    adjacency_t: Csr,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    weight_opts: Vec<Adam>,
    feature_opt: Adam,
    residency: SerialResidency,
    /// Reusable kernel buffers for the epoch loop; sized by the first
    /// epoch, allocation-free after.
    ws: KernelWorkspace,
    /// Per-instance directory for `Spill`-mode activation files.
    spill_dir: PathBuf,
    /// Matrices written to disk by `Spill` mode so far (reloads mirror it).
    spill_events: u64,
}

/// Distinguishes concurrently-live trainers' spill directories within one
/// process (tests run trainers in parallel).
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

impl SerialTrainer {
    /// Build from a loaded dataset. Model weights use `cfg.seed`; the
    /// dataset's features become the trainable input embedding.
    pub fn new(ds: &LoadedDataset, cfg: &TrainConfig) -> Self {
        let model = Gcn::new(GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim: cfg.hidden_dim,
            num_classes: ds.num_classes,
            num_layers: cfg.num_layers,
            seed: cfg.seed,
        });
        let mut t = Self::from_parts(
            model,
            ds.features.clone(),
            ds.adjacency.clone(),
            ds.labels.clone(),
            ds.split.train.clone(),
            cfg.adam,
        );
        t.residency = cfg.residency;
        t
    }

    /// Assemble from explicit parts (used by equivalence tests that need
    /// full control over every input).
    pub fn from_parts(
        model: Gcn,
        features: Matrix,
        adjacency: Csr,
        labels: Vec<u32>,
        train_mask: Vec<bool>,
        adam: AdamConfig,
    ) -> Self {
        assert_eq!(adjacency.rows(), features.rows(), "trainer: A and F row mismatch");
        assert_eq!(labels.len(), features.rows(), "trainer: labels length mismatch");
        let adjacency_t = adjacency.transposed();
        let weight_opts =
            model.weights.iter().map(|w| Adam::new(w.rows(), w.cols(), adam)).collect();
        let feature_opt = Adam::new(features.rows(), features.cols(), adam);
        Self {
            model,
            features,
            adjacency,
            adjacency_t,
            labels,
            train_mask,
            weight_opts,
            feature_opt,
            residency: SerialResidency::Cached,
            ws: KernelWorkspace::new(),
            spill_dir: std::env::temp_dir().join(format!(
                "plexus_serial_spill_{}_{}",
                std::process::id(),
                SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
            spill_events: 0,
        }
    }

    /// One full-graph training epoch. Returns loss/accuracy *before* the
    /// parameter update (the loss of the forward pass just computed).
    /// Under [`SerialResidency::Recompute`] the epoch runs the
    /// retain-inputs/re-derive variant — bitwise identical.
    pub fn train_epoch(&mut self) -> EpochStats {
        let start = Instant::now();
        let (loss, train_accuracy, grads) = match self.residency {
            SerialResidency::Spill { budget_bytes } => self.spill_epoch(budget_bytes),
            SerialResidency::Cached => {
                let fwd = self.model.forward_ws(&mut self.ws, &self.adjacency, &self.features);
                let loss_out = masked_cross_entropy(&fwd.logits, &self.labels, &self.train_mask);
                let acc = accuracy(&fwd.logits, &self.labels, &self.train_mask);
                let grads =
                    self.model.backward_ws(&mut self.ws, &self.adjacency_t, &fwd, loss_out.dlogits);
                fwd.recycle_into(&mut self.ws);
                (loss_out.loss, acc, grads)
            }
            SerialResidency::Recompute => {
                let fwd =
                    self.model.forward_recompute_ws(&mut self.ws, &self.adjacency, &self.features);
                let loss_out = masked_cross_entropy(&fwd.logits, &self.labels, &self.train_mask);
                let acc = accuracy(&fwd.logits, &self.labels, &self.train_mask);
                let grads = self.model.backward_recompute_ws(
                    &mut self.ws,
                    &self.adjacency,
                    &self.adjacency_t,
                    &fwd,
                    loss_out.dlogits,
                );
                fwd.recycle_into(&mut self.ws);
                (loss_out.loss, acc, grads)
            }
        };
        for ((w, opt), dw) in
            self.model.weights.iter_mut().zip(&mut self.weight_opts).zip(&grads.dweights)
        {
            opt.step(w, dw);
        }
        self.feature_opt.step(&mut self.features, &grads.dfeatures);
        grads.recycle_into(&mut self.ws);
        EpochStats { loss, train_accuracy, seconds: start.elapsed().as_secs_f64() }
    }

    /// The [`SerialResidency::Spill`] epoch body: forward keeps each
    /// layer's `H`/`Q` in RAM while the running total fits `budget_bytes`
    /// and writes the overflow to checksummed temp files; backward reloads
    /// (or takes) each cache in reverse order. Same kernels, same values —
    /// bitwise identical to `Cached`.
    fn spill_epoch(&mut self, budget_bytes: u64) -> (f64, f64, Gradients) {
        enum Slot {
            Ram(LayerCache),
            Disk { h: SpillFile, q: SpillFile, activated: bool },
        }
        let num_layers = self.model.weights.len();
        let mut x = self.ws.take_scratch(self.features.rows(), self.features.cols());
        x.as_mut_slice().copy_from_slice(self.features.as_slice());
        let mut slots: Vec<Slot> = Vec::with_capacity(num_layers);
        let mut resident = 0u64;
        for (l, w) in self.model.weights.iter().enumerate() {
            let activated = l + 1 < num_layers;
            let (out, cache) =
                gcn_layer_forward_ws(&mut self.ws, &self.adjacency, &x, w, activated);
            self.ws.recycle(std::mem::replace(&mut x, out));
            let bytes = (cache.h.as_slice().len() + cache.q.as_slice().len()) as u64 * 4;
            if resident + bytes <= budget_bytes {
                resident += bytes;
                slots.push(Slot::Ram(cache));
            } else {
                let h = SpillFile::write(&self.spill_dir, &format!("l{}_h", l), &cache.h)
                    .unwrap_or_else(|e| panic!("serial spill of layer {} H failed: {}", l, e));
                let q = SpillFile::write(&self.spill_dir, &format!("l{}_q", l), &cache.q)
                    .unwrap_or_else(|e| panic!("serial spill of layer {} Q failed: {}", l, e));
                self.ws.recycle(cache.h);
                self.ws.recycle(cache.q);
                self.spill_events += 2;
                slots.push(Slot::Disk { h, q, activated: cache.activated });
            }
        }
        let logits = x;
        let loss_out = masked_cross_entropy(&logits, &self.labels, &self.train_mask);
        let acc = accuracy(&logits, &self.labels, &self.train_mask);
        self.ws.recycle(logits);

        let mut dweights = vec![Matrix::zeros(1, 1); num_layers];
        let mut dout = loss_out.dlogits;
        for l in (0..num_layers).rev() {
            let cache = match slots.pop().expect("one slot per layer") {
                Slot::Ram(c) => c,
                Slot::Disk { h, q, activated } => LayerCache {
                    h: h.read(&mut self.ws).unwrap_or_else(|e| {
                        panic!("serial spill reload of layer {} H failed: {}", l, e)
                    }),
                    q: q.read(&mut self.ws).unwrap_or_else(|e| {
                        panic!("serial spill reload of layer {} Q failed: {}", l, e)
                    }),
                    activated,
                },
            };
            let grads = gcn_layer_backward_ws(
                &mut self.ws,
                &self.adjacency_t,
                &self.model.weights[l],
                &cache,
                dout,
            );
            self.ws.recycle(cache.h);
            self.ws.recycle(cache.q);
            dweights[l] = grads.dw;
            dout = grads.df;
        }
        (loss_out.loss, acc, Gradients { dweights, dfeatures: dout })
    }

    /// Matrices `Spill` mode has written to disk so far.
    pub fn spill_events(&self) -> u64 {
        self.spill_events
    }

    /// Train for `epochs`, returning per-epoch stats.
    pub fn train(&mut self, epochs: usize) -> Vec<EpochStats> {
        (0..epochs).map(|_| self.train_epoch()).collect()
    }

    /// Loss/accuracy of the current parameters without updating them.
    pub fn evaluate(&self, mask: &[bool]) -> (f64, f64) {
        let fwd = self.model.forward(&self.adjacency, &self.features);
        let loss = masked_cross_entropy(&fwd.logits, &self.labels, mask).loss;
        let acc = accuracy(&fwd.logits, &self.labels, mask);
        (loss, acc)
    }

    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    pub fn train_mask(&self) -> &[bool] {
        &self.train_mask
    }
}

impl Drop for SerialTrainer {
    fn drop(&mut self) {
        // Spill reloads delete their files; this clears the directory
        // itself (and anything a panic left behind).
        let _ = std::fs::remove_dir_all(&self.spill_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_dataset() -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes: 256,
            edges: 2048,
            nonzeros: 4352,
            features: 16,
            classes: 8,
        };
        LoadedDataset::generate(spec, 256, Some(16), 77)
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let stats = trainer.train(30);
        let first = stats[0].loss;
        let last = stats.last().unwrap().loss;
        assert!(
            last < first * 0.7,
            "training did not converge: first {:.4}, last {:.4}",
            first,
            last
        );
    }

    #[test]
    fn accuracy_improves_over_training() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let stats = trainer.train(40);
        let final_acc = stats.last().unwrap().train_accuracy;
        assert!(final_acc > 0.4, "final train accuracy only {:.3}", final_acc);
    }

    #[test]
    fn recompute_residency_is_bitwise_identical() {
        // The serial counterpart of the distributed residency contract:
        // dropping H/Q and re-deriving them in backward replays the exact
        // kernels, so the loss trajectory matches bit for bit.
        let ds = tiny_dataset();
        let losses = |residency: SerialResidency| {
            let cfg = TrainConfig { hidden_dim: 16, residency, ..Default::default() };
            let mut t = SerialTrainer::new(&ds, &cfg);
            t.train(5).iter().map(|s| s.loss).collect::<Vec<_>>()
        };
        assert_eq!(losses(SerialResidency::Cached), losses(SerialResidency::Recompute));
    }

    #[test]
    fn spill_residency_is_bitwise_identical() {
        // Same contract as Recompute, for the disk path: caches written to
        // checksummed files and reloaded in backward reproduce the Cached
        // loss trajectory bit for bit. budget 0 spills every layer; a
        // partial budget keeps what fits and spills the rest.
        let ds = tiny_dataset();
        let run = |residency: SerialResidency| {
            let cfg = TrainConfig { hidden_dim: 16, residency, ..Default::default() };
            let mut t = SerialTrainer::new(&ds, &cfg);
            let losses = t.train(5).iter().map(|s| s.loss).collect::<Vec<_>>();
            (losses, t.spill_events())
        };
        let (cached, none) = run(SerialResidency::Cached);
        assert_eq!(none, 0);
        let (all_spilled, full) = run(SerialResidency::Spill { budget_bytes: 0 });
        assert_eq!(cached, all_spilled);
        // 3 layers x (H, Q) x 5 epochs, everything over budget.
        assert_eq!(full, 30);
        // Budget sized to hold roughly one layer's H+Q (256 nodes x 16
        // wide x 2 matrices x 4 bytes = 32 KiB): some layers stay in RAM,
        // at least one spills.
        let (partial, some) = run(SerialResidency::Spill { budget_bytes: 40 * 1024 });
        assert_eq!(cached, partial);
        assert!(some > 0 && some < full, "partial budget spilled {} of {}", some, full);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 8, ..Default::default() };
        let losses = |_: ()| {
            let mut t = SerialTrainer::new(&ds, &cfg);
            t.train(5).iter().map(|s| s.loss).collect::<Vec<_>>()
        };
        assert_eq!(losses(()), losses(()));
    }

    #[test]
    fn first_epoch_loss_is_near_log_c() {
        // With random init the initial loss should be ~ln(num_classes).
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 16, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        let s = trainer.train_epoch();
        let lnc = (ds.num_classes as f64).ln();
        assert!(
            (s.loss - lnc).abs() < 1.0,
            "initial loss {:.3} far from ln(C) = {:.3}",
            s.loss,
            lnc
        );
    }

    #[test]
    fn evaluate_does_not_mutate() {
        let ds = tiny_dataset();
        let cfg = TrainConfig { hidden_dim: 8, ..Default::default() };
        let mut trainer = SerialTrainer::new(&ds, &cfg);
        trainer.train(2);
        let (l1, _) = trainer.evaluate(&ds.split.val);
        let (l2, _) = trainer.evaluate(&ds.split.val);
        assert_eq!(l1, l2);
    }
}
