//! GIN — the Graph Isomorphism Network (Xu et al.), one of the GCN
//! extensions the paper's §1 names ("including the Graph Attention Network
//! and the Graph Isomorphism Network"). Included to demonstrate the §2.1
//! claim that the training stack "can easily be adapted": GIN swaps the
//! normalized aggregation for `(1+ε)·F + A_sum·F` followed by a two-layer
//! MLP, and everything else (loss, Adam, trainers) is reused unchanged.
//!
//! The aggregation uses the *unnormalized* adjacency (sum aggregator, no
//! self-loops — the (1+ε) term plays that role), which is still one SpMM,
//! so the 3D parallelization strategy applies to it verbatim.

use plexus_sparse::{spmm, Coo, Csr};
use plexus_tensor::ops::{relu, relu_backward_inplace};
use plexus_tensor::{gemm, glorot_uniform, Matrix, Trans};

/// Build the binary sum-aggregation adjacency (no normalization, no
/// self-loops) from an edge list.
pub fn sum_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for &(u, v) in edges {
        coo.push(u, v, 1.0);
    }
    let mut a = coo.to_csr();
    for v in a.values_mut() {
        *v = 1.0; // collapse duplicate edges
    }
    a
}

/// One GIN layer: `out = W2 · σ(W1 · ((1+ε)F + A·F))` (operators applied
/// row-wise; W1: d_in x d_hidden, W2: d_hidden x d_out).
pub struct GinLayer {
    pub eps: f32,
    pub w1: Matrix,
    pub w2: Matrix,
}

/// Cached intermediates for the backward pass.
pub struct GinCache {
    /// `(1+ε)F + A·F`
    pub s: Matrix,
    /// Pre-activation of the first MLP layer.
    pub z1: Matrix,
    /// Activation `σ(z1)`.
    pub a1: Matrix,
}

/// Gradients of one GIN layer.
pub struct GinGrads {
    pub dw1: Matrix,
    pub dw2: Matrix,
    pub df: Matrix,
}

impl GinLayer {
    pub fn new(d_in: usize, d_hidden: usize, d_out: usize, eps: f32, seed: u64) -> Self {
        Self {
            eps,
            w1: glorot_uniform(d_in, d_hidden, seed),
            w2: glorot_uniform(d_hidden, d_out, seed + 1),
        }
    }

    /// Forward pass; the final activation is left to the caller (inner
    /// layers apply σ outside, the last layer feeds logits to the loss).
    pub fn forward(&self, a: &Csr, f: &Matrix) -> (Matrix, GinCache) {
        // s = (1+ε)F + A·F — one SpMM plus an axpy.
        let mut s = spmm(a, f);
        for (sv, &fv) in s.as_mut_slice().iter_mut().zip(f.as_slice()) {
            *sv += (1.0 + self.eps) * fv;
        }
        let mut z1 = Matrix::zeros(s.rows(), self.w1.cols());
        gemm(&mut z1, &s, Trans::N, &self.w1, Trans::N, 1.0, 0.0);
        let a1 = relu(&z1);
        let mut out = Matrix::zeros(a1.rows(), self.w2.cols());
        gemm(&mut out, &a1, Trans::N, &self.w2, Trans::N, 1.0, 0.0);
        (out, GinCache { s, z1, a1 })
    }

    /// Backward pass given `∂L/∂out` and the transposed adjacency.
    pub fn backward(&self, a_t: &Csr, cache: &GinCache, dout: &Matrix) -> GinGrads {
        // dW2 = a1ᵀ · dout ; da1 = dout · W2ᵀ.
        let mut dw2 = Matrix::zeros(self.w2.rows(), self.w2.cols());
        gemm(&mut dw2, &cache.a1, Trans::T, dout, Trans::N, 1.0, 0.0);
        let mut da1 = Matrix::zeros(cache.a1.rows(), cache.a1.cols());
        gemm(&mut da1, dout, Trans::N, &self.w2, Trans::T, 1.0, 0.0);
        // Through the ReLU.
        relu_backward_inplace(&mut da1, &cache.z1);
        // dW1 = sᵀ · dz1 ; ds = dz1 · W1ᵀ.
        let mut dw1 = Matrix::zeros(self.w1.rows(), self.w1.cols());
        gemm(&mut dw1, &cache.s, Trans::T, &da1, Trans::N, 1.0, 0.0);
        let mut ds = Matrix::zeros(cache.s.rows(), cache.s.cols());
        gemm(&mut ds, &da1, Trans::N, &self.w1, Trans::T, 1.0, 0.0);
        // dF = (1+ε)·ds + Aᵀ·ds.
        let mut df = spmm(a_t, &ds);
        for (dv, &sv) in df.as_mut_slice().iter_mut().zip(ds.as_slice()) {
            *dv += (1.0 + self.eps) * sv;
        }
        GinGrads { dw1, dw2, df }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_tensor::uniform_matrix;

    fn setup() -> (Csr, Csr, Matrix, GinLayer) {
        let edges = [(0u32, 1u32), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)];
        let a = sum_adjacency(4, &edges);
        let a_t = a.transposed();
        let f = uniform_matrix(4, 3, -1.0, 1.0, 1);
        let layer = GinLayer::new(3, 5, 2, 0.1, 7);
        (a, a_t, f, layer)
    }

    #[test]
    fn sum_adjacency_is_binary_without_self_loops() {
        let a = sum_adjacency(3, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn forward_shapes() {
        let (a, _, f, layer) = setup();
        let (out, cache) = layer.forward(&a, &f);
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(cache.s.shape(), (4, 3));
        assert_eq!(cache.a1.shape(), (4, 5));
    }

    #[test]
    fn isolated_node_keeps_scaled_self_features() {
        // A node with no edges: s-row = (1+ε) * f-row.
        let a = sum_adjacency(2, &[]);
        let f = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let layer = GinLayer::new(2, 3, 2, 0.5, 3);
        let (_, cache) = layer.forward(&a, &f);
        assert_eq!(cache.s.row(0), &[1.5, 3.0]);
        assert_eq!(cache.s.row(1), &[4.5, 6.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (a, a_t, f, layer) = setup();
        let loss_of = |f_: &Matrix, l: &GinLayer| -> f64 {
            let (out, _) = l.forward(&a, f_);
            0.5 * out.as_slice().iter().map(|&x| (x as f64).powi(2)).sum::<f64>()
        };
        let (out, cache) = layer.forward(&a, &f);
        let grads = layer.backward(&a_t, &cache, &out);
        let eps = 1e-2f32;
        for &(i, j) in &[(0usize, 0usize), (3, 2), (1, 1)] {
            let mut fp = f.clone();
            fp[(i, j)] += eps;
            let mut fm = f.clone();
            fm[(i, j)] -= eps;
            let num = (loss_of(&fp, &layer) - loss_of(&fm, &layer)) / (2.0 * eps as f64);
            let ana = grads.df[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 0.05 * num.abs().max(0.5),
                "dF[{},{}]: numeric {:.4} vs analytic {:.4}",
                i,
                j,
                num,
                ana
            );
        }
        // W1 gradient.
        let mut l2 = GinLayer::new(3, 5, 2, 0.1, 7);
        for &(i, j) in &[(0usize, 0usize), (2, 4)] {
            let orig = l2.w1[(i, j)];
            l2.w1[(i, j)] = orig + eps;
            let fp = loss_of(&f, &l2);
            l2.w1[(i, j)] = orig - eps;
            let fm = loss_of(&f, &l2);
            l2.w1[(i, j)] = orig;
            let num = (fp - fm) / (2.0 * eps as f64);
            let ana = grads.dw1[(i, j)] as f64;
            assert!(
                (num - ana).abs() < 0.05 * num.abs().max(0.5),
                "dW1[{},{}]: numeric {:.4} vs analytic {:.4}",
                i,
                j,
                num,
                ana
            );
        }
    }

    #[test]
    fn gin_distinguishes_multisets_gcn_blurs() {
        // The GIN motivation: sum aggregation separates neighborhoods that
        // mean aggregation cannot. Node 0 has two neighbors with feature
        // 1.0; node 1 has one. Sum gives different s-rows.
        let a = sum_adjacency(4, &[(0, 2), (0, 3), (1, 2)]);
        let f = Matrix::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]);
        let layer = GinLayer::new(1, 2, 2, 0.0, 1);
        let (_, cache) = layer.forward(&a, &f);
        assert!((cache.s[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((cache.s[(1, 0)] - 1.0).abs() < 1e-6);
    }
}
