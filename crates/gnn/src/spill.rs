//! Minimal matrix spill files for the serial trainer's
//! [`SerialResidency::Spill`](crate::trainer::SerialResidency) mode:
//! little-endian f32 payload behind a checksummed header, one file per
//! spilled matrix. The distributed engine has its own richer spill store;
//! this one exists so the serial baseline can exercise the same
//! keep/spill/reload contract without depending on it.

use plexus_tensor::{KernelWorkspace, Matrix};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: u64 = 0x504c5853_53504c31; // "PLXS SPL1"

/// FNV-1a over the payload bytes — cheap, deterministic, catches the
/// truncation/corruption cases a reload must refuse to silently accept.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One spilled matrix on disk. Created by [`SpillFile::write`]; consumed
/// (verified, loaded into a workspace buffer, deleted) by
/// [`SpillFile::read`].
pub struct SpillFile {
    path: PathBuf,
    rows: usize,
    cols: usize,
}

impl SpillFile {
    /// Serialize `m` to `dir/tag.spill`: magic, shape, payload checksum,
    /// then the values as little-endian f32.
    pub fn write(dir: &Path, tag: &str, m: &Matrix) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.spill", tag));
        let mut payload = Vec::with_capacity(m.as_slice().len() * 4);
        for v in m.as_slice() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut f = fs::File::create(&path)?;
        f.write_all(&MAGIC.to_le_bytes())?;
        f.write_all(&(m.rows() as u64).to_le_bytes())?;
        f.write_all(&(m.cols() as u64).to_le_bytes())?;
        f.write_all(&fnv1a(&payload).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
        Ok(Self { path, rows: m.rows(), cols: m.cols() })
    }

    /// Verify, reload into a buffer drawn from `ws`, and delete the file.
    /// A bad magic, shape or checksum is an `InvalidData` error — a spill
    /// reload must never hand back silently corrupted activations.
    pub fn read(self, ws: &mut KernelWorkspace) -> io::Result<Matrix> {
        let mut f = fs::File::open(&self.path)?;
        let mut head = [0u8; 32];
        f.read_exact(&mut head)?;
        let word = |i: usize| u64::from_le_bytes(head[i * 8..(i + 1) * 8].try_into().unwrap());
        if word(0) != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "spill file: bad magic"));
        }
        if (word(1) as usize, word(2) as usize) != (self.rows, self.cols) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "spill file: shape mismatch"));
        }
        let mut payload = vec![0u8; self.rows * self.cols * 4];
        f.read_exact(&mut payload)?;
        if fnv1a(&payload) != word(3) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "spill file: bad checksum"));
        }
        let mut m = ws.take_scratch(self.rows, self.cols);
        for (dst, src) in m.as_mut_slice().iter_mut().zip(payload.chunks_exact(4)) {
            *dst = f32::from_le_bytes(src.try_into().unwrap());
        }
        fs::remove_file(&self.path)?;
        Ok(m)
    }

    /// Bytes of matrix payload this file holds.
    pub fn payload_bytes(&self) -> u64 {
        (self.rows * self.cols * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        std::env::temp_dir().join(format!(
            "plexus_gnn_spill_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn round_trip_is_bitwise() {
        let dir = tmp();
        let m = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.5 - 2.0).collect());
        let file = SpillFile::write(&dir, "rt", &m).unwrap();
        assert_eq!(file.payload_bytes(), 48);
        let mut ws = KernelWorkspace::new();
        let back = file.read(&mut ws).unwrap();
        assert_eq!(back.as_slice(), m.as_slice());
        assert!(!dir.join("rt.spill").exists(), "read must delete the file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmp();
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let file = SpillFile::write(&dir, "bad", &m).unwrap();
        // Flip one payload byte behind the header.
        let path = dir.join("bad.spill");
        let mut bytes = fs::read(&path).unwrap();
        bytes[32] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        let mut ws = KernelWorkspace::new();
        let err = file.read(&mut ws).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }
}
