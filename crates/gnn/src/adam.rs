//! Adam optimizer.
//!
//! Both the weights and the trainable input features carry Adam state
//! (first/second moments). In the 3D engine these states live only on the
//! *stored shard* of each parameter — the memory argument for why the paper
//! shards F and W over the Z dimension instead of replicating them (§3.1).

use plexus_tensor::Matrix;

/// Adam hyperparameters (PyTorch defaults except the learning rate, which
/// GCN training conventionally sets to 1e-2).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Adam state for one parameter tensor.
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Matrix,
    v: Matrix,
    t: u32,
}

impl Adam {
    pub fn new(rows: usize, cols: usize, cfg: AdamConfig) -> Self {
        Self { cfg, m: Matrix::zeros(rows, cols), v: Matrix::zeros(rows, cols), t: 0 }
    }

    pub fn step_count(&self) -> u32 {
        self.t
    }

    /// Raw optimizer state `(m, v, t)` for checkpoint serialization. The
    /// moments plus the step count fully determine the continuation of a
    /// training run: Adam has no other mutable state, and the bias
    /// corrections are pure functions of `t`.
    pub fn state(&self) -> (&Matrix, &Matrix, u32) {
        (&self.m, &self.v, self.t)
    }

    /// Restore state captured by [`state`](Self::state). Resuming from a
    /// restored `(m, v, t)` continues bitwise-identically to the run that
    /// produced it. Panics if the moment shapes do not match this
    /// optimizer's parameter shape.
    pub fn restore(&mut self, m: Matrix, v: Matrix, t: u32) {
        assert_eq!(m.shape(), self.m.shape(), "Adam::restore: first-moment shape mismatch");
        assert_eq!(v.shape(), self.v.shape(), "Adam::restore: second-moment shape mismatch");
        self.m = m;
        self.v = v;
        self.t = t;
    }

    /// One Adam update: `param -= lr * m̂ / (sqrt(v̂) + eps)`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), self.m.shape(), "Adam: parameter shape changed");
        assert_eq!(param.shape(), grad.shape(), "Adam: gradient shape mismatch");
        self.t += 1;
        let AdamConfig { lr, beta1, beta2, eps } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        let (ps, ms, vs, gs) =
            (param.as_mut_slice(), self.m.as_mut_slice(), self.v.as_mut_slice(), grad.as_slice());
        for i in 0..ps.len() {
            let g = gs[i];
            ms[i] = beta1 * ms[i] + (1.0 - beta1) * g;
            vs[i] = beta2 * vs[i] + (1.0 - beta2) * g * g;
            let m_hat = ms[i] / bc1;
            let v_hat = vs[i] / bc2;
            ps[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_lr_in_gradient_direction() {
        // With zero-initialized moments, step 1 gives m̂ = g, v̂ = g², so
        // the update is ≈ lr * sign(g).
        let cfg = AdamConfig { lr: 0.1, ..Default::default() };
        let mut adam = Adam::new(1, 2, cfg);
        let mut p = Matrix::zeros(1, 2);
        let g = Matrix::from_vec(1, 2, vec![3.0, -0.5]);
        adam.step(&mut p, &g);
        assert!((p[(0, 0)] + 0.1).abs() < 1e-4, "got {}", p[(0, 0)]);
        assert!((p[(0, 1)] - 0.1).abs() < 1e-4, "got {}", p[(0, 1)]);
    }

    #[test]
    fn zero_gradient_leaves_param_unchanged() {
        let mut adam = Adam::new(2, 2, AdamConfig::default());
        let mut p = Matrix::full(2, 2, 1.0);
        adam.step(&mut p, &Matrix::zeros(2, 2));
        assert_eq!(p, Matrix::full(2, 2, 1.0));
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize 0.5*(x - 3)²; gradient = x - 3.
        let mut adam = Adam::new(1, 1, AdamConfig { lr: 0.1, ..Default::default() });
        let mut x = Matrix::zeros(1, 1);
        for _ in 0..500 {
            let g = Matrix::from_vec(1, 1, vec![x[(0, 0)] - 3.0]);
            adam.step(&mut x, &g);
        }
        assert!((x[(0, 0)] - 3.0).abs() < 0.05, "converged to {}", x[(0, 0)]);
    }

    #[test]
    fn restored_state_resumes_bitwise_identically() {
        // Split a 20-step run at step 7 through state()/restore(): the
        // resumed trajectory must match the uninterrupted one bitwise.
        let grad = |k: u32| Matrix::full(2, 3, 0.05 * (k as f32 + 1.0) - 0.2);
        let mut full = Adam::new(2, 3, AdamConfig::default());
        let mut p_full = Matrix::full(2, 3, 0.5);
        for k in 0..20 {
            full.step(&mut p_full, &grad(k));
        }

        let mut first = Adam::new(2, 3, AdamConfig::default());
        let mut p = Matrix::full(2, 3, 0.5);
        for k in 0..7 {
            first.step(&mut p, &grad(k));
        }
        let (m, v, t) = first.state();
        let (m, v, t) = (m.clone(), v.clone(), t);
        let mut resumed = Adam::new(2, 3, AdamConfig::default());
        resumed.restore(m, v, t);
        assert_eq!(resumed.step_count(), 7);
        for k in 7..20 {
            resumed.step(&mut p, &grad(k));
        }
        assert_eq!(p, p_full, "resume must be bitwise-identical");
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut adam = Adam::new(2, 2, AdamConfig::default());
            let mut p = Matrix::full(2, 2, 0.5);
            for k in 0..10 {
                let g = Matrix::full(2, 2, 0.1 * (k as f32 + 1.0));
                adam.step(&mut p, &g);
            }
            p
        };
        assert_eq!(run(), run());
    }
}
