//! The request-batching front end: a bounded submission queue, an
//! adaptive batcher (flush on max-batch-size or max-wait, whichever
//! first), a pool of worker threads each owning its own
//! [`QueryEngine`] workspaces, and a sharded
//! read-mostly prediction cache stamped with the model version so a hot
//! reload invalidates it implicitly — stale entries simply stop matching.
//!
//! Hot reload never drains the server: [`Server::reload_latest`] swaps
//! the model snapshot atomically; batches already in flight finish on the
//! `Arc` they captured, the next batch picks up the new weights.

use crate::artifact::Artifact;
use crate::cache::{ExtractionCache, ExtractionStats, DEFAULT_EXTRACTION_CACHE_BYTES};
use crate::engine::{Prediction, QueryEngine};
use parking_lot::{Condvar, Mutex};
use plexus::loader::{LoaderResult, ShardStore};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission control for a full submission queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SubmitPolicy {
    /// Block the submitter until a worker frees queue space.
    #[default]
    Block,
    /// Refuse immediately with [`ServeError::Overloaded`]; the caller
    /// decides whether to retry, degrade, or propagate.
    Shed,
}

/// Typed serving-path errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue was full and the server is configured with
    /// [`SubmitPolicy::Shed`].
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "submission queue full (load shed)"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Front-end tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads; each owns per-layer kernel workspaces.
    pub workers: usize,
    /// Flush a batch once it reaches this many requests.
    pub max_batch: usize,
    /// ... or once the oldest request in it has waited this long.
    pub max_wait: Duration,
    /// Bounded submission-queue capacity; what happens when it fills is
    /// decided by `submit`.
    pub queue_cap: usize,
    /// Shards of the prediction cache (reduces write contention).
    pub cache_shards: usize,
    /// Byte budget of the shared k-hop extraction cache (node sets,
    /// sub-CSR blocks, layer-0 aggregates, per-node 1-hop slices). `0`
    /// disables extraction caching entirely.
    pub extraction_cache_bytes: usize,
    /// Admission control when the queue is full: block (default) or shed.
    pub submit: SubmitPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            queue_cap: 1024,
            cache_shards: 16,
            extraction_cache_bytes: DEFAULT_EXTRACTION_CACHE_BYTES,
            submit: SubmitPolicy::Block,
        }
    }
}

/// Counters exported by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Predictions computed by workers (cache hits not included).
    pub served: u64,
    /// Batches flushed; `served / batches` is the realized batch size.
    pub batches: u64,
    /// Queries answered from the prediction cache.
    pub cache_hits: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Submissions refused under [`SubmitPolicy::Shed`].
    pub shed: u64,
    /// Extraction-cache hits (whole blocks + per-node 1-hop slices).
    pub extraction_hits: u64,
    /// Extraction-cache misses.
    pub extraction_misses: u64,
    /// Extraction-cache entries evicted by the byte-budget LRU.
    pub extraction_evicted: u64,
    /// Bytes currently held by the extraction cache (its ledger).
    pub extraction_bytes: u64,
}

struct Request {
    node: u32,
    tx: mpsc::Sender<Prediction>,
}

struct Shared {
    artifact: Artifact,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Request>>,
    not_empty: Condvar,
    not_full: Condvar,
    closed: AtomicBool,
    /// Version-stamped prediction cache: a hit counts only when the entry
    /// was computed by the currently served model version.
    cache: Vec<RwLock<HashMap<u32, Prediction>>>,
    /// K-hop extraction cache, shared by every worker's engine.
    extraction: Arc<ExtractionCache>,
    served: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    reloads: AtomicU64,
    shed: AtomicU64,
}

/// A running serving instance over one frozen artifact.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Open (and fully verify) the artifact at `dir` and start the worker
    /// pool.
    pub fn start(dir: &Path, cfg: ServeConfig) -> LoaderResult<Server> {
        assert!(cfg.workers > 0 && cfg.max_batch > 0 && cfg.queue_cap > 0 && cfg.cache_shards > 0);
        let artifact = Artifact::open(dir)?;
        let shared = Arc::new(Shared {
            artifact,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            closed: AtomicBool::new(false),
            cache: (0..cfg.cache_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            extraction: Arc::new(ExtractionCache::new(cfg.extraction_cache_bytes)),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("plexus-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// The artifact being served (read-only).
    pub fn artifact(&self) -> &Artifact {
        &self.shared.artifact
    }

    /// Answer one query, blocking until a worker flushes the batch it
    /// lands in (or a cache entry from the current model version hits).
    /// Panics if `node` is out of range, or on [`ServeError::Overloaded`]
    /// under [`SubmitPolicy::Shed`] — use [`Server::try_query`] when the
    /// server sheds load.
    pub fn query(&self, node: u32) -> Prediction {
        self.try_query(node).expect("submission shed under SubmitPolicy::Shed; use try_query")
    }

    /// [`Server::query`], but surfaces admission control as a typed
    /// error: under [`SubmitPolicy::Shed`], a full queue returns
    /// [`ServeError::Overloaded`] immediately instead of blocking.
    pub fn try_query(&self, node: u32) -> Result<Prediction, ServeError> {
        assert!((node as usize) < self.shared.artifact.num_nodes(), "query node out of range");
        if let Some(hit) = self.cache_lookup(node) {
            return Ok(hit);
        }
        let (tx, rx) = mpsc::channel();
        self.try_enqueue(Request { node, tx })?;
        Ok(rx.recv().expect("serve worker dropped a request"))
    }

    /// Submit a group of queries at once and collect the answers in
    /// order. All cache misses enter the queue together, so they tend to
    /// be batched together. Panics on [`ServeError::Overloaded`] under
    /// [`SubmitPolicy::Shed`] — use [`Server::try_query_many`] then.
    pub fn query_many(&self, nodes: &[u32]) -> Vec<Prediction> {
        self.try_query_many(nodes)
            .expect("submission shed under SubmitPolicy::Shed; use try_query_many")
    }

    /// [`Server::query_many`] with typed admission control: the first
    /// shed submission aborts the call with [`ServeError::Overloaded`].
    /// Requests already enqueued still run (their answers warm the
    /// prediction cache); their receivers are simply dropped.
    pub fn try_query_many(&self, nodes: &[u32]) -> Result<Vec<Prediction>, ServeError> {
        let n = self.shared.artifact.num_nodes();
        let mut pending: Vec<(usize, mpsc::Receiver<Prediction>)> = Vec::new();
        let mut out: Vec<Option<Prediction>> = Vec::with_capacity(nodes.len());
        for (i, &node) in nodes.iter().enumerate() {
            assert!((node as usize) < n, "query node out of range");
            if let Some(hit) = self.cache_lookup(node) {
                out.push(Some(hit));
            } else {
                let (tx, rx) = mpsc::channel();
                self.try_enqueue(Request { node, tx })?;
                pending.push((i, rx));
                out.push(None);
            }
        }
        for (i, rx) in pending {
            out[i] = Some(rx.recv().expect("serve worker dropped a request"));
        }
        Ok(out.into_iter().map(|p| p.expect("every slot answered")).collect())
    }

    /// Pick up a newly [`publish`](crate::publish)ed model version, if
    /// any, without draining in-flight work. Returns the new version.
    pub fn reload_latest(&self) -> LoaderResult<Option<u64>> {
        let swapped = self.shared.artifact.reload_latest()?;
        if swapped.is_some() {
            // Stale-version extraction entries can never hit again (every
            // lookup carries the live version); drop them eagerly so the
            // byte budget is free for the new version's working set.
            self.shared.extraction.invalidate();
            self.shared.reloads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(swapped)
    }

    /// The model version currently being served.
    pub fn current_version(&self) -> u64 {
        self.shared.artifact.snapshot().version
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        let ext = self.shared.extraction.stats();
        ServerStats {
            served: self.shared.served.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            reloads: self.shared.reloads.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            extraction_hits: ext.block_hits + ext.support_hits,
            extraction_misses: ext.block_misses + ext.support_misses,
            extraction_evicted: ext.evicted,
            extraction_bytes: ext.bytes,
        }
    }

    /// Detailed extraction-cache counters (block vs per-node slice
    /// breakdown); [`Server::stats`] carries the aggregates.
    pub fn extraction_stats(&self) -> ExtractionStats {
        self.shared.extraction.stats()
    }

    fn cache_lookup(&self, node: u32) -> Option<Prediction> {
        let current = self.shared.artifact.snapshot().version;
        let shard = &self.shared.cache[node as usize % self.shared.cache.len()];
        let hit = shard
            .read()
            .expect("cache lock poisoned")
            .get(&node)
            .filter(|p| p.model_version == current)
            .cloned();
        if hit.is_some() {
            self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn try_enqueue(&self, req: Request) -> Result<(), ServeError> {
        let mut q = self.shared.queue.lock();
        match self.shared.cfg.submit {
            SubmitPolicy::Block => {
                while q.len() >= self.shared.cfg.queue_cap
                    && !self.shared.closed.load(Ordering::Acquire)
                {
                    self.shared.not_full.wait(&mut q);
                }
            }
            SubmitPolicy::Shed => {
                if q.len() >= self.shared.cfg.queue_cap
                    && !self.shared.closed.load(Ordering::Acquire)
                {
                    drop(q);
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded);
                }
            }
        }
        q.push_back(req);
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl Drop for Server {
    /// Graceful shutdown: workers drain everything already queued, then
    /// exit.
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let depth = shared.artifact.snapshot().gcn.config.num_layers;
    let mut engine = QueryEngine::with_cache(depth, Arc::clone(&shared.extraction));
    let mut batch: Vec<Request> = Vec::with_capacity(shared.cfg.max_batch);
    let mut nodes: Vec<u32> = Vec::with_capacity(shared.cfg.max_batch);
    loop {
        batch.clear();
        {
            let mut q = shared.queue.lock();
            while q.is_empty() {
                if shared.closed.load(Ordering::Acquire) {
                    return;
                }
                shared.not_empty.wait(&mut q);
            }
            // Adaptive batching: take whatever is queued; while under
            // max_batch, linger up to max_wait for stragglers.
            let deadline = Instant::now() + shared.cfg.max_wait;
            loop {
                while batch.len() < shared.cfg.max_batch {
                    match q.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if batch.len() >= shared.cfg.max_batch || shared.closed.load(Ordering::Acquire) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if q.is_empty() {
                    let res = shared.not_empty.wait_for(&mut q, deadline - now);
                    if res.timed_out() && q.is_empty() {
                        break;
                    }
                }
            }
        }
        shared.not_full.notify_all();
        if batch.is_empty() {
            continue;
        }
        // Snapshot once per batch: a concurrent reload never tears it.
        let snap = shared.artifact.snapshot();
        nodes.clear();
        nodes.extend(batch.iter().map(|r| r.node));
        let preds = engine.predict_batch(&shared.artifact, &snap, &nodes);
        shared.served.fetch_add(preds.len() as u64, Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        for (req, pred) in batch.drain(..).zip(preds) {
            let shard = &shared.cache[pred.node as usize % shared.cache.len()];
            shard.write().expect("cache lock poisoned").insert(pred.node, pred.clone());
            // The submitter may have given up (dropped receiver); fine.
            let _ = req.tx.send(pred);
        }
    }
}

/// Convenience for smoke tests and examples: how many adjacency shard
/// files an artifact at `dir` has (`p*q`, Even parity).
pub fn shard_count(dir: &Path) -> LoaderResult<usize> {
    let store = ShardStore::open(dir)?;
    Ok(store.grid_p * store.grid_q)
}
