//! The query engine: answer node-classification requests by extracting
//! the k-hop receptive field of the batch straight from the mapped
//! adjacency and running it through the trainer's own kernel path.
//!
//! Bitwise parity with training is the core contract. The packed GEMM and
//! the CSR SpMM both produce output row `i` through an operation sequence
//! that depends only on the operand *row contents* — SpMM accumulates
//! per-row in ascending-entry order, GEMM dispatch looks only at `k·n`.
//! K-hop node sets are kept sorted ascending, so the column remap in
//! [`extract_sub_csr`](plexus_graph::extract_sub_csr) is monotone and
//! preserves entry order; every extracted row is therefore elementwise
//! identical to the corresponding full-graph row, and the served logits
//! come out bitwise equal to the trainer's forward on the same nodes.
//!
//! The extraction itself runs through two reuse layers:
//!
//! * a per-worker [`KhopWorkspace`] (merge-union + scatter-remap kernels
//!   with pooled, epoch-stamped tables), so a cold extraction allocates
//!   only the sets and blocks it returns;
//! * a shared [`ExtractionCache`] (enabled by default) holding whole
//!   [`Extraction`] blocks — node sets, sub-CSRs, and the layer-0
//!   aggregated feature block — plus per-node 1-hop slices. A warm batch
//!   skips the k-hop walk, the sub-CSR builds, the feature gather, *and*
//!   the layer-0 SpMM, entering the forward at
//!   [`forward_from_aggregated_ws`](plexus_gnn::Gcn::forward_from_aggregated_ws).
//!   Cached inputs are the same bits the cold path computes, and the
//!   remaining kernel calls are the same calls, so warm answers stay
//!   bitwise identical (asserted by `tests/serving.rs`).

use crate::artifact::{Artifact, ModelSnapshot};
use crate::cache::{CachedRows, Extraction, ExtractionCache, DEFAULT_EXTRACTION_CACHE_BYTES};
use plexus_graph::KhopWorkspace;
use plexus_sparse::{spmm_into, Csr};
use plexus_tensor::{KernelWorkspace, Matrix};
use std::sync::Arc;

/// One answered query.
#[derive(Clone, Debug)]
pub struct Prediction {
    pub node: u32,
    /// Argmax class (ties break to the lowest class id).
    pub class: u32,
    /// The model version that produced this answer.
    pub model_version: u64,
    /// Raw output-layer logits for the node.
    pub logits: Vec<f32>,
}

/// Per-worker inference state: one [`KernelWorkspace`] per layer plus a
/// pooled [`KhopWorkspace`], so packed-B panels, scratch matrices and the
/// extraction tables are all reused across batches — after a warmup batch
/// of each shape class, steady-state serving does no kernel allocations
/// and no weight repacking. Engines may additionally share an
/// [`ExtractionCache`]; [`QueryEngine::new`] gives each engine a private
/// one so caching is on by default.
pub struct QueryEngine {
    layer_ws: Vec<KernelWorkspace>,
    khop: KhopWorkspace,
    cache: Option<Arc<ExtractionCache>>,
}

impl QueryEngine {
    /// A fresh engine for a `num_layers`-deep model, with a private
    /// extraction cache at the default byte budget.
    pub fn new(num_layers: usize) -> Self {
        Self::with_cache(num_layers, Arc::new(ExtractionCache::new(DEFAULT_EXTRACTION_CACHE_BYTES)))
    }

    /// An engine using `cache` — the server passes one cache to every
    /// worker so hot query sets warm across the whole pool.
    pub fn with_cache(num_layers: usize, cache: Arc<ExtractionCache>) -> Self {
        assert!(num_layers > 0, "QueryEngine: need at least one layer");
        let cache = if cache.budget() == 0 { None } else { Some(cache) };
        QueryEngine {
            layer_ws: (0..num_layers).map(|_| KernelWorkspace::new()).collect(),
            khop: KhopWorkspace::new(),
            cache,
        }
    }

    /// An engine with extraction caching disabled — every batch runs the
    /// full cold path (benchmarks use this as the before side).
    pub fn without_cache(num_layers: usize) -> Self {
        Self::with_cache(num_layers, Arc::new(ExtractionCache::new(0)))
    }

    /// The shared extraction cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<ExtractionCache>> {
        self.cache.as_ref()
    }

    /// Total workspace allocation events across all layers — flat between
    /// two calls means the batch ran zero-alloc.
    pub fn alloc_events(&self) -> u64 {
        self.layer_ws.iter().map(|ws| ws.alloc_events()).sum()
    }

    /// Answer a batch of node-classification queries. Returns one
    /// [`Prediction`] per entry of `nodes`, in request order (duplicates
    /// allowed). Panics if a node id is out of range — the server front
    /// end validates ids before they reach the engine.
    pub fn predict_batch(
        &mut self,
        artifact: &Artifact,
        snap: &ModelSnapshot,
        nodes: &[u32],
    ) -> Vec<Prediction> {
        assert_eq!(
            self.layer_ws.len(),
            snap.gcn.config.num_layers,
            "QueryEngine depth does not match the model"
        );
        let layers = snap.gcn.config.num_layers;
        let mut top: Vec<u32> = nodes.to_vec();
        top.sort_unstable();
        top.dedup();
        let ext = match self.cache.as_ref().and_then(|c| c.lookup_block(snap.version, layers, &top))
        {
            Some(ext) => ext,
            None => {
                let ext = Arc::new(self.build_extraction(artifact, snap, top, layers));
                if let Some(cache) = &self.cache {
                    cache.insert_block(snap.version, layers, Arc::clone(&ext));
                }
                ext
            }
        };
        let logits = snap.gcn.forward_from_aggregated_ws(
            &mut self.layer_ws,
            &ext.subs,
            &ext.h0,
            snap.version,
        );
        let top = &ext.queries;
        let out = nodes
            .iter()
            .map(|&v| {
                let row = top.binary_search(&v).expect("query node present in its own k-hop set");
                let lrow = logits.row(row);
                Prediction {
                    node: v,
                    class: argmax(lrow),
                    model_version: snap.version,
                    logits: lrow.to_vec(),
                }
            })
            .collect();
        self.layer_ws[layers - 1].recycle(logits);
        out
    }

    /// The cold path: walk the receptive field, build the per-layer
    /// blocks, gather the innermost features and aggregate them through
    /// layer 0's sub-adjacency. Row fetches go through [`CachedRows`], so
    /// hot per-node 1-hop slices skip the mmap decode; queried nodes'
    /// slices are admitted for the next overlapping batch.
    fn build_extraction(
        &mut self,
        artifact: &Artifact,
        snap: &ModelSnapshot,
        top: Vec<u32>,
        layers: usize,
    ) -> Extraction {
        if let Some(cache) = &self.cache {
            // Admit the query nodes' own rows (their 1-hop slices): the
            // LRU stays scoped to *queried* nodes rather than flooding
            // with every expansion row of a hub's receptive field.
            let (mut cols, mut vals) = (Vec::new(), Vec::new());
            for &v in &top {
                if !cache.has_support(snap.version, v) {
                    cols.clear();
                    vals.clear();
                    plexus_graph::RowSource::row_entries(artifact, v, &mut cols, &mut vals);
                    cache.insert_support(snap.version, v, cols.clone(), vals.clone());
                }
            }
        }
        let rows = CachedRows {
            src: artifact,
            cache: self.cache.as_deref(),
            version: snap.version,
            candidates: &top,
        };
        let sets = self.khop.khop_node_sets(&rows, &top, layers);
        let subs: Vec<Csr> =
            (0..layers).map(|l| self.khop.extract_sub_csr(&rows, &sets[l + 1], &sets[l])).collect();
        // Gather the innermost hop's feature rows into pooled scratch and
        // aggregate through layer 0's block; the cache keeps `h0` (an
        // owned matrix) rather than the gathered features — it is smaller
        // whenever hidden ≤ input width and saves the widest SpMM too.
        let feat = &snap.features;
        let mut x0 = self.layer_ws[0].take_scratch(sets[0].len(), feat.cols());
        for (i, &v) in sets[0].iter().enumerate() {
            x0.row_mut(i).copy_from_slice(feat.row(v as usize));
        }
        let mut h0 = Matrix::zeros(subs[0].rows(), feat.cols());
        spmm_into(&subs[0], &x0, &mut h0);
        self.layer_ws[0].recycle(x0);
        Extraction { queries: top, sets, subs, h0 }
    }
}

/// Index of the largest logit; ties break to the lowest index, matching
/// the trainer's accuracy accounting.
pub fn argmax(row: &[f32]) -> u32 {
    let mut best = 0;
    for (i, &x) in row.iter().enumerate() {
        if x > row[best] {
            best = i;
        }
    }
    best as u32
}
