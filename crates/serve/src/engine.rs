//! The query engine: answer node-classification requests by extracting
//! the k-hop receptive field of the batch straight from the mapped
//! adjacency and running it through the trainer's own kernel path.
//!
//! Bitwise parity with training is the core contract. The packed GEMM and
//! the CSR SpMM both produce output row `i` through an operation sequence
//! that depends only on the operand *row contents* — SpMM accumulates
//! per-row in ascending-entry order, GEMM dispatch looks only at `k·n`.
//! K-hop node sets are kept sorted ascending, so the column remap in
//! [`extract_sub_csr`] is monotone and preserves entry order; every
//! extracted row is therefore elementwise identical to the corresponding
//! full-graph row, and the served logits come out bitwise equal to the
//! trainer's forward on the same nodes.

use crate::artifact::{Artifact, ModelSnapshot};
use plexus_graph::{extract_sub_csr, khop_node_sets};
use plexus_sparse::Csr;
use plexus_tensor::KernelWorkspace;

/// One answered query.
#[derive(Clone, Debug)]
pub struct Prediction {
    pub node: u32,
    /// Argmax class (ties break to the lowest class id).
    pub class: u32,
    /// The model version that produced this answer.
    pub model_version: u64,
    /// Raw output-layer logits for the node.
    pub logits: Vec<f32>,
}

/// Per-worker inference state: one [`KernelWorkspace`] per layer, so the
/// cached packed-B panels and the scratch pool are reused across batches
/// — after a warmup batch of each shape class, steady-state serving does
/// no kernel allocations and no weight repacking.
pub struct QueryEngine {
    layer_ws: Vec<KernelWorkspace>,
}

impl QueryEngine {
    /// A fresh engine for a `num_layers`-deep model.
    pub fn new(num_layers: usize) -> Self {
        assert!(num_layers > 0, "QueryEngine: need at least one layer");
        QueryEngine { layer_ws: (0..num_layers).map(|_| KernelWorkspace::new()).collect() }
    }

    /// Total workspace allocation events across all layers — flat between
    /// two calls means the batch ran zero-alloc.
    pub fn alloc_events(&self) -> u64 {
        self.layer_ws.iter().map(|ws| ws.alloc_events()).sum()
    }

    /// Answer a batch of node-classification queries. Returns one
    /// [`Prediction`] per entry of `nodes`, in request order (duplicates
    /// allowed). Panics if a node id is out of range — the server front
    /// end validates ids before they reach the engine.
    pub fn predict_batch(
        &mut self,
        artifact: &Artifact,
        snap: &ModelSnapshot,
        nodes: &[u32],
    ) -> Vec<Prediction> {
        assert_eq!(
            self.layer_ws.len(),
            snap.gcn.config.num_layers,
            "QueryEngine depth does not match the model"
        );
        let layers = snap.gcn.config.num_layers;
        // Receptive field: sets[layers] = sorted unique queries,
        // sets[l] = union of row supports of sets[l+1].
        let sets = khop_node_sets(artifact, nodes, layers);
        let subs: Vec<Csr> =
            (0..layers).map(|l| extract_sub_csr(artifact, &sets[l + 1], &sets[l])).collect();
        // Gather the innermost hop's feature rows into pooled scratch.
        let feat = &snap.features;
        let mut x0 = self.layer_ws[0].take_scratch(sets[0].len(), feat.cols());
        for (i, &v) in sets[0].iter().enumerate() {
            x0.row_mut(i).copy_from_slice(feat.row(v as usize));
        }
        let logits = snap.gcn.forward_extracted_ws(&mut self.layer_ws, &subs, &x0, snap.version);
        self.layer_ws[0].recycle(x0);
        let top = &sets[layers];
        let out = nodes
            .iter()
            .map(|&v| {
                let row = top.binary_search(&v).expect("query node present in its own k-hop set");
                let lrow = logits.row(row);
                Prediction {
                    node: v,
                    class: argmax(lrow),
                    model_version: snap.version,
                    logits: lrow.to_vec(),
                }
            })
            .collect();
        self.layer_ws[layers - 1].recycle(logits);
        out
    }
}

/// Index of the largest logit; ties break to the lowest index, matching
/// the trainer's accuracy accounting.
pub fn argmax(row: &[f32]) -> u32 {
    let mut best = 0;
    for (i, &x) in row.iter().enumerate() {
        if x > row[best] {
            best = i;
        }
    }
    best as u32
}
