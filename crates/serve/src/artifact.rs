//! The frozen serving artifact: an immutable, versioned, checksummed
//! snapshot of a trained model plus its graph, opened read-only via mmap.
//!
//! On disk an artifact is a raw [`ShardStore`] (the normalized adjacency,
//! 2D-sharded with the usual `[MAGIC][FORMAT_VERSION]` headers and
//! manifest checksums) plus one `model_<v>.plx` file per published model
//! version (layer config + weights + the trained feature matrix — features
//! are trainable parameters in this reproduction, so a model snapshot
//! must carry them) and a `serve.txt` manifest naming the current
//! version. [`freeze`] writes version 1; [`publish`] appends a new
//! version and atomically repoints `serve.txt`, which a running
//! [`Artifact::reload_latest`] picks up without ever unmapping the graph.
//!
//! [`Artifact::open`] checksum-verifies and maps every adjacency shard
//! once, then serves adjacency rows by decoding them in place from the
//! mappings ([`RowSource`]); at no point is a shard file copied through
//! the heap. Corrupted, truncated, or version-mismatched files surface as
//! the loader's typed [`LoaderError`]s, never as panics or garbage.

use plexus::loader::{
    verify_shard_bytes, CsrPayload, Cursor, HashingWriter, LoadStats, LoaderError, LoaderResult,
    Parity, ShardStore, FORMAT_VERSION,
};
use plexus_gnn::{Gcn, GcnConfig};
use plexus_graph::{khop::RowSource, MappedFile};
use plexus_sparse::shard::split_range;
use plexus_sparse::Csr;
use plexus_tensor::Matrix;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

fn model_name(version: u64) -> String {
    format!("model_{:04}.plx", version)
}

const SERVE_MANIFEST: &str = "serve.txt";

/// One published model version: the network plus its trained features,
/// decoded from a verified `model_<v>.plx`. Snapshots are immutable and
/// shared by `Arc` — in-flight batches keep serving the version they
/// started with across a hot reload.
pub struct ModelSnapshot {
    pub version: u64,
    pub gcn: Gcn,
    pub features: Matrix,
}

/// The `serve.txt` manifest: model-version files and the current pointer.
struct ServeManifest {
    current: u64,
    models: BTreeMap<u64, (u64, u64)>,
}

impl ServeManifest {
    fn path(dir: &Path) -> PathBuf {
        dir.join(SERVE_MANIFEST)
    }

    fn read(dir: &Path) -> LoaderResult<ServeManifest> {
        let path = Self::path(dir);
        let text = fs::read_to_string(&path).map_err(|e| LoaderError::BadManifest {
            reason: format!("{}: {}", path.display(), e),
        })?;
        let mut format = None;
        let mut current = None;
        let mut models = BTreeMap::new();
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else { continue };
            let (key, value) = (key.trim(), value.trim());
            if let Some(v) = key.strip_prefix("model ") {
                let version: u64 = v.trim().parse().map_err(|_| LoaderError::BadManifest {
                    reason: format!("unparsable model version {}", v),
                })?;
                let mut parts = value.split_whitespace();
                let entry = (|| {
                    let ck = u64::from_str_radix(parts.next()?, 16).ok()?;
                    let len: u64 = parts.next()?.parse().ok()?;
                    Some((ck, len))
                })()
                .ok_or_else(|| LoaderError::BadManifest {
                    reason: format!("unparsable entry for model {}", version),
                })?;
                models.insert(version, entry);
            } else if key == "format" {
                format = value.parse::<u64>().ok();
            } else if key == "current" {
                current = value.parse::<u64>().ok();
            }
        }
        let format = format.ok_or_else(|| LoaderError::BadManifest {
            reason: "serve.txt: missing format".into(),
        })?;
        if format != FORMAT_VERSION {
            return Err(LoaderError::VersionMismatch {
                file: path,
                found: format,
                expected: FORMAT_VERSION,
            });
        }
        let current = current.ok_or_else(|| LoaderError::BadManifest {
            reason: "serve.txt: missing current".into(),
        })?;
        if !models.contains_key(&current) {
            return Err(LoaderError::BadManifest {
                reason: format!("serve.txt: current version {} has no model entry", current),
            });
        }
        Ok(ServeManifest { current, models })
    }

    /// Write via temp file + rename, so a concurrently reloading server
    /// only ever sees a complete manifest.
    fn write(&self, dir: &Path) -> LoaderResult<()> {
        let tmp = dir.join(format!("{}.tmp", SERVE_MANIFEST));
        let mut text = format!("format = {}\ncurrent = {}\n", FORMAT_VERSION, self.current);
        for (v, (ck, len)) in &self.models {
            text.push_str(&format!("model {} = {:016x} {}\n", v, ck, len));
        }
        fs::write(&tmp, text)?;
        fs::rename(&tmp, Self::path(dir))?;
        Ok(())
    }
}

/// Serialize one model version (config + weights + features) in the
/// shard-file format; returns the manifest entry.
fn write_model(
    dir: &Path,
    version: u64,
    model: &Gcn,
    features: &Matrix,
) -> LoaderResult<(u64, u64)> {
    let mut w = HashingWriter::create(&dir.join(model_name(version)))?;
    w.header()?;
    for v in [
        model.config.num_layers as u64,
        model.config.input_dim as u64,
        model.config.hidden_dim as u64,
        model.config.num_classes as u64,
        model.config.seed,
    ] {
        w.put(&v.to_le_bytes())?;
    }
    for m in model.weights.iter().chain(std::iter::once(features)) {
        w.put(&(m.rows() as u64).to_le_bytes())?;
        w.put(&(m.cols() as u64).to_le_bytes())?;
        for &x in m.as_slice() {
            w.put(&x.to_le_bytes())?;
        }
    }
    Ok(w.finish()?)
}

fn parse_model(payload: &[u8], path: &Path, version: u64) -> LoaderResult<ModelSnapshot> {
    let mut cur = Cursor { bytes: payload, pos: 0, path };
    let num_layers = cur.u64()? as usize;
    let input_dim = cur.u64()? as usize;
    let hidden_dim = cur.u64()? as usize;
    let num_classes = cur.u64()? as usize;
    let seed = cur.u64()?;
    let config = GcnConfig { input_dim, hidden_dim, num_classes, num_layers, seed };
    let mut mats = Vec::with_capacity(num_layers + 1);
    for _ in 0..num_layers + 1 {
        let rows = cur.u64()? as usize;
        let cols = cur.u64()? as usize;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(cur.f32()?);
        }
        mats.push(Matrix::from_vec(rows, cols, data));
    }
    let features = mats.pop().expect("num_layers + 1 matrices decoded");
    Ok(ModelSnapshot { version, gcn: Gcn::from_parts(config, mats), features })
}

/// Freeze a trained model and its graph into a serving artifact at `dir`:
/// writes the adjacency (+ a feature copy) as a raw `p x q` [`ShardStore`]
/// and the model (config + weights + `features`) as version 1. `a_hat` is
/// the normalized adjacency the model was trained on — unpermuted, so
/// query node ids are the caller's node ids.
pub fn freeze(
    dir: &Path,
    a_hat: &Csr,
    model: &Gcn,
    features: &Matrix,
    p: usize,
    q: usize,
) -> LoaderResult<u64> {
    assert_eq!(a_hat.rows(), features.rows(), "freeze: adjacency/features row mismatch");
    assert_eq!(model.config.input_dim, features.cols(), "freeze: feature dim mismatch");
    ShardStore::create(dir, a_hat, features, p, q)?;
    let entry = write_model(dir, 1, model, features)?;
    let manifest = ServeManifest { current: 1, models: BTreeMap::from([(1, entry)]) };
    manifest.write(dir)?;
    Ok(1)
}

/// Publish a retrained model into an existing artifact as the next
/// version. The new `model_<v>.plx` lands before `serve.txt` is atomically
/// repointed, so a serving process either sees the old version or the
/// complete new one — never a torn state. Returns the new version.
pub fn publish(dir: &Path, model: &Gcn, features: &Matrix) -> LoaderResult<u64> {
    let mut manifest = ServeManifest::read(dir)?;
    let version = manifest.current + 1;
    let entry = write_model(dir, version, model, features)?;
    manifest.models.insert(version, entry);
    manifest.current = version;
    manifest.write(dir)?;
    Ok(version)
}

/// One mapped adjacency shard: the verified mapping plus the payload
/// geometry and the shard's global column offset.
struct MappedShard {
    map: MappedFile,
    payload_at: usize,
    geom: CsrPayload,
    sc0: usize,
}

impl MappedShard {
    fn payload(&self) -> &[u8] {
        &self.map.bytes()[self.payload_at..]
    }
}

/// An opened serving artifact: every adjacency shard checksum-verified and
/// mapped once, the current model snapshot decoded, the graph served row
/// by row straight out of the mappings for the engine's k-hop extraction.
pub struct Artifact {
    dir: PathBuf,
    rows: usize,
    /// `[band i][shard j]`, bands covering `split_range(rows, p, i)`.
    shards: Vec<Vec<MappedShard>>,
    /// Global first row of each band, plus a trailing `rows` sentinel.
    band_starts: Vec<usize>,
    model: RwLock<Arc<ModelSnapshot>>,
    open_stats: LoadStats,
}

impl Artifact {
    /// Open and fully verify an artifact. Every shard and the current
    /// model file are checksummed against their manifests here; failures
    /// are typed [`LoaderError`]s.
    pub fn open(dir: &Path) -> LoaderResult<Artifact> {
        let store = ShardStore::open(dir)?;
        if store.perm_mode.is_some() {
            return Err(LoaderError::BadManifest {
                reason: "serving artifacts are frozen from raw (unpermuted) stores".into(),
            });
        }
        let mut stats = LoadStats::default();
        let mut shards = Vec::with_capacity(store.grid_p);
        let mut band_starts = Vec::with_capacity(store.grid_p + 1);
        for i in 0..store.grid_p {
            let (sr0, sr1) = split_range(store.rows, store.grid_p, i);
            band_starts.push(sr0);
            let mut row = Vec::with_capacity(store.grid_q);
            for j in 0..store.grid_q {
                let name = ShardStore::shard_name(Parity::Even, i, j);
                let (map, payload_at) = store.map_verified(&name)?;
                note_read(&mut stats, &map);
                let geom = CsrPayload::parse(&map.bytes()[payload_at..], &dir.join(&name))?;
                let (sc0, sc1) = split_range(store.cols, store.grid_q, j);
                if geom.rows != sr1 - sr0 || geom.cols != sc1 - sc0 {
                    return Err(LoaderError::BadManifest {
                        reason: format!("{}: shard shape disagrees with the grid", name),
                    });
                }
                row.push(MappedShard { map, payload_at, geom, sc0 });
            }
            shards.push(row);
        }
        band_starts.push(store.rows);
        let manifest = ServeManifest::read(dir)?;
        let snapshot = Self::load_model(dir, &manifest, manifest.current, &mut stats)?;
        if snapshot.features.rows() != store.rows {
            return Err(LoaderError::BadManifest {
                reason: "model feature rows disagree with the store".into(),
            });
        }
        Ok(Artifact {
            dir: dir.to_path_buf(),
            rows: store.rows,
            shards,
            band_starts,
            model: RwLock::new(Arc::new(snapshot)),
            open_stats: stats,
        })
    }

    fn load_model(
        dir: &Path,
        manifest: &ServeManifest,
        version: u64,
        stats: &mut LoadStats,
    ) -> LoaderResult<ModelSnapshot> {
        let &(ck, len) = manifest.models.get(&version).ok_or_else(|| LoaderError::BadManifest {
            reason: format!("no entry for model version {}", version),
        })?;
        let path = dir.join(model_name(version));
        let map = MappedFile::open(&path)?;
        let payload_at = verify_shard_bytes(map.bytes(), &path, ck, len)?;
        note_read(stats, &map);
        parse_model(&map.bytes()[payload_at..], &path, version)
    }

    /// The current model snapshot. Cheap (one read-lock + `Arc` clone);
    /// workers grab one per batch so a concurrent reload never tears a
    /// batch between versions.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    /// Re-read `serve.txt` and, when it points at a newer version, verify
    /// and decode that model and swap it in atomically. Queries already
    /// in flight keep their snapshot; new batches see the new weights. No
    /// draining, and the mapped graph is untouched. Returns the new
    /// version, or `None` when already current.
    pub fn reload_latest(&self) -> LoaderResult<Option<u64>> {
        let manifest = ServeManifest::read(&self.dir)?;
        if manifest.current <= self.snapshot().version {
            return Ok(None);
        }
        let mut stats = LoadStats::default();
        let snapshot = Self::load_model(&self.dir, &manifest, manifest.current, &mut stats)?;
        if snapshot.features.rows() != self.rows {
            return Err(LoaderError::BadManifest {
                reason: "reloaded model feature rows disagree with the store".into(),
            });
        }
        let version = snapshot.version;
        *self.model.write().expect("model lock poisoned") = Arc::new(snapshot);
        Ok(Some(version))
    }

    /// I/O accounting of [`Artifact::open`]: on mmap-capable targets every
    /// byte is `bytes_mapped` and none are `bytes_copied` — the acceptance
    /// check that serving never copies shard files through the heap.
    pub fn open_stats(&self) -> &LoadStats {
        &self.open_stats
    }

    /// Number of nodes (adjacency rows) served.
    pub fn num_nodes(&self) -> usize {
        self.rows
    }

    /// Directory this artifact lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn band_of(&self, v: u32) -> (usize, usize) {
        let v = v as usize;
        debug_assert!(v < self.rows, "node {} out of range", v);
        // band_starts is sorted ascending; find the band containing v.
        let mut lo = 0;
        let mut hi = self.band_starts.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.band_starts[mid] <= v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo, v - self.band_starts[lo])
    }
}

fn note_read(stats: &mut LoadStats, map: &MappedFile) {
    stats.files_read += 1;
    stats.bytes_read += map.len() as u64;
    if map.is_mapped() {
        stats.bytes_mapped += map.len() as u64;
    } else {
        stats.bytes_copied += map.len() as u64;
    }
}

impl RowSource for Artifact {
    fn num_nodes(&self) -> usize {
        self.rows
    }

    fn row_support(&self, v: u32, out: &mut Vec<u32>) {
        let (band, r) = self.band_of(v);
        for shard in &self.shards[band] {
            let payload = shard.payload();
            let p0 = shard.geom.row_start(payload, r);
            let p1 = shard.geom.row_start(payload, r + 1);
            for k in p0..p1 {
                out.push(shard.geom.col(payload, k) + shard.sc0 as u32);
            }
        }
    }

    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>) {
        let (band, r) = self.band_of(v);
        for shard in &self.shards[band] {
            let payload = shard.payload();
            let p0 = shard.geom.row_start(payload, r);
            let p1 = shard.geom.row_start(payload, r + 1);
            for k in p0..p1 {
                cols.push(shard.geom.col(payload, k) + shard.sc0 as u32);
                vals.push(shard.geom.val(payload, k));
            }
        }
    }
}
