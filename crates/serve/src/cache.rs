//! The k-hop extraction cache: the serve-side fast path for hot query
//! sets and hot nodes.
//!
//! BENCH_serve showed extraction, not the forward, dominates serving
//! (`khop_extract_32` was 8.2ms of `predict_batch_32`'s 11.2ms, and a
//! single hub query costs as much as a 32-batch because its 3-hop field
//! reaches most of the graph). This cache removes that cost for repeated
//! work:
//!
//! * **Extraction blocks** — per sorted-unique query set, the full
//!   [`Extraction`]: the per-layer node sets, the per-layer sub-CSR
//!   blocks, and the layer-0 *aggregated* feature block
//!   `h0 = subs[0] · X0` (a pure function of the frozen graph, the query
//!   set, and the model version's trained features — so caching it is as
//!   bitwise-safe as caching the sub-CSRs, and it lets a warm query skip
//!   the feature gather and the widest SpMM too). Keyed by
//!   `(model version, layers, query-set digest)`, with the sorted set
//!   stored in the entry and compared on every hit so a digest collision
//!   degrades to a miss, never a wrong answer.
//! * **Per-node 1-hop support slices** — the decoded adjacency row
//!   (columns + values) of each *queried* node, so overlapping query
//!   streams stop re-decoding hot hub rows out of the mmapped shards.
//!
//! Entries are stamped with the model version they were built under; a
//! lookup for any other version is a miss, and
//! [`ExtractionCache::invalidate`] (called by the server's
//! `reload_latest`) drops everything eagerly. The cache is shared across
//! workers behind one mutex — entries are coarse (whole extraction
//! blocks), so the hold time is a map probe, not a computation — and is
//! LRU-bounded by bytes: every entry's byte size joins a ledger-style
//! total, and inserts evict least-recently-used entries until the total
//! is back under budget. A zero budget disables caching outright.

use plexus_graph::khop::RowSource;
use plexus_sparse::Csr;
use plexus_tensor::Matrix;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default per-server extraction-cache budget (bytes).
pub const DEFAULT_EXTRACTION_CACHE_BYTES: usize = 32 << 20;

/// One cached extraction: everything the forward needs that depends only
/// on `(frozen graph, sorted query set, model version)`.
pub struct Extraction {
    /// The sorted-unique query set this block was built for.
    pub queries: Vec<u32>,
    /// `layers + 1` sorted node sets (see `khop_node_sets`).
    pub sets: Vec<Vec<u32>>,
    /// Per-layer sub-CSR blocks.
    pub subs: Vec<Csr>,
    /// Layer-0 aggregated features: `subs[0] ·` (gathered feature rows).
    pub h0: Matrix,
}

impl Extraction {
    /// Resident bytes, for the cache ledger.
    pub fn bytes(&self) -> usize {
        let sets: usize = self.sets.iter().map(|s| s.len() * 4).sum();
        let subs: usize = self.subs.iter().map(|s| s.mem_bytes() as usize).sum();
        self.queries.len() * 4 + sets + subs + self.h0.as_slice().len() * 4
    }
}

/// A cached per-node 1-hop slice: the node's adjacency row, decoded once.
struct SupportSlice {
    cols: Vec<u32>,
    vals: Vec<f32>,
}

enum Slot {
    Block(std::sync::Arc<Extraction>),
    Support(std::sync::Arc<SupportSlice>),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    /// Digest of `(layers, sorted query set)`.
    Block(u64),
    /// Node id.
    Support(u32),
}

struct Entry {
    version: u64,
    tick: u64,
    bytes: usize,
    slot: Slot,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    /// LRU order: tick → key. Ticks are unique (monotone counter).
    order: BTreeMap<u64, Key>,
    tick: u64,
    bytes: usize,
}

/// Counter snapshot of an [`ExtractionCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtractionStats {
    /// Whole-extraction block hits (the batch skipped k-hop + sub-CSR
    /// build + feature gather + layer-0 SpMM entirely).
    pub block_hits: u64,
    /// Block lookups that missed (cold or stale-version query sets).
    pub block_misses: u64,
    /// Per-node 1-hop slice hits during set expansion / extraction.
    pub support_hits: u64,
    /// Per-node slice lookups that missed.
    pub support_misses: u64,
    /// Entries evicted by the byte-budget LRU.
    pub evicted: u64,
    /// Bytes currently resident (the cache ledger).
    pub bytes: u64,
}

/// The shared, version-stamped, byte-bounded extraction cache. See the
/// module docs for semantics.
pub struct ExtractionCache {
    budget: usize,
    inner: Mutex<Inner>,
    block_hits: AtomicU64,
    block_misses: AtomicU64,
    support_hits: AtomicU64,
    support_misses: AtomicU64,
    evicted: AtomicU64,
}

impl ExtractionCache {
    /// A cache bounded at `budget` bytes; `0` disables caching (every
    /// lookup misses, every insert is dropped).
    pub fn new(budget: usize) -> Self {
        ExtractionCache {
            budget,
            inner: Mutex::new(Inner::default()),
            block_hits: AtomicU64::new(0),
            block_misses: AtomicU64::new(0),
            support_hits: AtomicU64::new(0),
            support_misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counter snapshot (bytes included — the cache's memory ledger).
    pub fn stats(&self) -> ExtractionStats {
        let bytes = self.inner.lock().expect("extraction cache poisoned").bytes as u64;
        ExtractionStats {
            block_hits: self.block_hits.load(Ordering::Relaxed),
            block_misses: self.block_misses.load(Ordering::Relaxed),
            support_hits: self.support_hits.load(Ordering::Relaxed),
            support_misses: self.support_misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes,
        }
    }

    /// Drop every entry (hot reload: a new model version is being
    /// served, and stale-version entries can never hit again).
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().expect("extraction cache poisoned");
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }

    /// Look up the extraction block for `(version, layers, queries)`.
    /// `queries` must be sorted-unique; the stored set is compared on a
    /// digest hit so collisions read as misses.
    pub fn lookup_block(
        &self,
        version: u64,
        layers: usize,
        queries: &[u32],
    ) -> Option<std::sync::Arc<Extraction>> {
        let key = Key::Block(block_digest(layers, queries));
        let mut inner = self.inner.lock().expect("extraction cache poisoned");
        let hit = match inner.map.get(&key) {
            Some(e) if e.version == version => match &e.slot {
                Slot::Block(ext) if ext.queries == queries => Some(std::sync::Arc::clone(ext)),
                _ => None,
            },
            _ => None,
        };
        match hit {
            Some(ext) => {
                touch(&mut inner, key);
                self.block_hits.fetch_add(1, Ordering::Relaxed);
                Some(ext)
            }
            None => {
                self.block_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an extraction block computed under `version`.
    pub fn insert_block(&self, version: u64, layers: usize, ext: std::sync::Arc<Extraction>) {
        let bytes = ext.bytes();
        let key = Key::Block(block_digest(layers, &ext.queries));
        self.insert(key, version, bytes, Slot::Block(ext));
    }

    /// Serve node `v`'s cached 1-hop slice into `cols`/`vals` (pass
    /// `None` for `vals` when only the support is needed). Returns false
    /// on a miss.
    fn lookup_support_into(
        &self,
        version: u64,
        v: u32,
        cols: &mut Vec<u32>,
        vals: Option<&mut Vec<f32>>,
    ) -> bool {
        let key = Key::Support(v);
        let mut inner = self.inner.lock().expect("extraction cache poisoned");
        let hit = match inner.map.get(&key) {
            Some(e) if e.version == version => match &e.slot {
                Slot::Support(s) => Some(std::sync::Arc::clone(s)),
                _ => None,
            },
            _ => None,
        };
        match hit {
            Some(slice) => {
                touch(&mut inner, key);
                drop(inner);
                self.support_hits.fetch_add(1, Ordering::Relaxed);
                cols.extend_from_slice(&slice.cols);
                if let Some(vals) = vals {
                    vals.extend_from_slice(&slice.vals);
                }
                true
            }
            None => {
                self.support_misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Whether node `v` already has a live slice under `version` (probe
    /// without touching counters or LRU order).
    pub fn has_support(&self, version: u64, v: u32) -> bool {
        let inner = self.inner.lock().expect("extraction cache poisoned");
        matches!(inner.map.get(&Key::Support(v)), Some(e) if e.version == version)
    }

    /// Admit node `v`'s decoded 1-hop slice.
    pub fn insert_support(&self, version: u64, v: u32, cols: Vec<u32>, vals: Vec<f32>) {
        let bytes = cols.len() * 4 + vals.len() * 4;
        let slot = Slot::Support(std::sync::Arc::new(SupportSlice { cols, vals }));
        self.insert(Key::Support(v), version, bytes, slot);
    }

    fn insert(&self, key: Key, version: u64, bytes: usize, slot: Slot) {
        if self.budget == 0 || bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock().expect("extraction cache poisoned");
        if let Some(old) = inner.map.remove(&key) {
            inner.order.remove(&old.tick);
            inner.bytes -= old.bytes;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Entry { version, tick, bytes, slot });
        inner.order.insert(tick, key);
        inner.bytes += bytes;
        // LRU eviction back under budget. The just-inserted entry has the
        // newest tick, so it goes last — and only if it alone overflows.
        let mut evicted = 0;
        while inner.bytes > self.budget {
            let (&oldest, &victim) = inner.order.iter().next().expect("bytes>0 implies entries");
            inner.order.remove(&oldest);
            let gone = inner.map.remove(&victim).expect("order/map in sync");
            inner.bytes -= gone.bytes;
            evicted += 1;
        }
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

/// Move `key` to the most-recently-used position.
fn touch(inner: &mut Inner, key: Key) {
    inner.tick += 1;
    let tick = inner.tick;
    let entry = inner.map.get_mut(&key).expect("touch on live entry");
    let old = std::mem::replace(&mut entry.tick, tick);
    inner.order.remove(&old);
    inner.order.insert(tick, key);
}

/// FNV-1a over the layer count and the sorted query set.
fn block_digest(layers: usize, queries: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(layers as u64);
    mix(queries.len() as u64);
    for &q in queries {
        mix(q as u64);
    }
    h
}

/// A [`RowSource`] view over the artifact that serves hot per-node 1-hop
/// slices from the cache and falls through to mmap decoding otherwise.
/// The underlying source and the cached slices hold identical bytes, so
/// extraction through this wrapper is bitwise-identical to extraction
/// straight off the source.
///
/// Only rows in `candidates` (the batch's sorted query set — the only
/// nodes the engine admits slices for) probe the cache at all: a k-hop
/// expansion touches orders of magnitude more rows than it queries, and
/// probing the shared mutex per expansion row would cost more in lock
/// traffic than the guaranteed misses could ever return.
pub(crate) struct CachedRows<'a, S: RowSource> {
    pub src: &'a S,
    pub cache: Option<&'a ExtractionCache>,
    pub version: u64,
    pub candidates: &'a [u32],
}

impl<S: RowSource> CachedRows<'_, S> {
    fn cache_for(&self, v: u32) -> Option<&ExtractionCache> {
        self.cache.filter(|_| self.candidates.binary_search(&v).is_ok())
    }
}

impl<S: RowSource> RowSource for CachedRows<'_, S> {
    fn num_nodes(&self) -> usize {
        self.src.num_nodes()
    }

    fn row_support(&self, v: u32, out: &mut Vec<u32>) {
        if let Some(cache) = self.cache_for(v) {
            if cache.lookup_support_into(self.version, v, out, None) {
                return;
            }
        }
        self.src.row_support(v, out);
    }

    fn row_entries(&self, v: u32, cols: &mut Vec<u32>, vals: &mut Vec<f32>) {
        if let Some(cache) = self.cache_for(v) {
            if cache.lookup_support_into(self.version, v, cols, Some(vals)) {
                return;
            }
        }
        self.src.row_entries(v, cols, vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(nq: usize, bytes_per_set: usize) -> std::sync::Arc<Extraction> {
        std::sync::Arc::new(Extraction {
            queries: (0..nq as u32).collect(),
            sets: vec![vec![0; bytes_per_set / 4]],
            subs: vec![],
            h0: Matrix::zeros(1, 1),
        })
    }

    #[test]
    fn block_roundtrip_is_version_stamped() {
        let cache = ExtractionCache::new(1 << 20);
        let ext = block(4, 64);
        cache.insert_block(7, 3, std::sync::Arc::clone(&ext));
        assert!(cache.lookup_block(7, 3, &ext.queries).is_some());
        assert!(cache.lookup_block(8, 3, &ext.queries).is_none(), "new version must miss");
        assert!(cache.lookup_block(7, 2, &ext.queries).is_none(), "layer count keys the digest");
        let stats = cache.stats();
        assert_eq!(stats.block_hits, 1);
        assert_eq!(stats.block_misses, 2);
        assert_eq!(stats.bytes, ext.bytes() as u64);
    }

    #[test]
    fn invalidate_clears_everything() {
        let cache = ExtractionCache::new(1 << 20);
        cache.insert_block(1, 3, block(4, 64));
        cache.insert_support(1, 9, vec![1, 2, 3], vec![0.5; 3]);
        cache.invalidate();
        assert_eq!(cache.stats().bytes, 0);
        assert!(cache.lookup_block(1, 3, &[0, 1, 2, 3]).is_none());
        assert!(!cache.has_support(1, 9));
    }

    #[test]
    fn lru_evicts_oldest_under_byte_pressure() {
        // Each block ~> 1KiB of sets; budget fits about three.
        let one = block(1, 1024).bytes();
        let cache = ExtractionCache::new(3 * one + one / 2);
        for v in 0..4u32 {
            let mut ext = block(1, 1024);
            std::sync::Arc::get_mut(&mut ext).unwrap().queries = vec![v];
            cache.insert_block(1, 3, ext);
        }
        let stats = cache.stats();
        assert!(stats.evicted >= 1, "budget pressure must evict");
        assert!(stats.bytes <= cache.budget() as u64);
        // The most recent insert survives; the oldest is gone.
        assert!(cache.lookup_block(1, 3, &[3]).is_some());
        assert!(cache.lookup_block(1, 3, &[0]).is_none());
    }

    #[test]
    fn touch_protects_recently_used_entries() {
        let one = block(1, 1024).bytes();
        let cache = ExtractionCache::new(2 * one + one / 2);
        for v in 0..2u32 {
            let mut ext = block(1, 1024);
            std::sync::Arc::get_mut(&mut ext).unwrap().queries = vec![v];
            cache.insert_block(1, 3, ext);
        }
        // Touch the older entry, then overflow: the untouched one dies.
        assert!(cache.lookup_block(1, 3, &[0]).is_some());
        let mut ext = block(1, 1024);
        std::sync::Arc::get_mut(&mut ext).unwrap().queries = vec![9];
        cache.insert_block(1, 3, ext);
        assert!(cache.lookup_block(1, 3, &[0]).is_some(), "recently used entry evicted");
        assert!(cache.lookup_block(1, 3, &[1]).is_none());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ExtractionCache::new(0);
        cache.insert_block(1, 3, block(4, 64));
        assert!(cache.lookup_block(1, 3, &[0, 1, 2, 3]).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn oversized_entry_is_refused_not_thrashed() {
        let cache = ExtractionCache::new(128);
        cache.insert_block(1, 3, block(1, 4096));
        let stats = cache.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.evicted, 0, "an oversized entry must be refused up front");
    }
}
