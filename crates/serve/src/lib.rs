//! plexus-serve: an inference serving engine over frozen [`ShardStore`]
//! artifacts.
//!
//! The paper trains full-graph GNNs at billion-edge scale; this crate
//! closes the loop by *serving* the trained model without ever rebuilding
//! the training topology. A trained model (weights + layer config +
//! trained features) is [`freeze`]-dried together with its normalized
//! adjacency into an immutable, versioned, checksummed artifact that
//! reuses the shard-file format (`MAGIC`/`FORMAT_VERSION` headers,
//! FNV-1a manifest checksums). [`Artifact::open`] verifies everything
//! once and maps the shards read-only; queries are answered by
//! extracting the batch's k-hop receptive field in place from the
//! mappings and running it through the trainer's own packed-GEMM/SpMM
//! kernel path, so served logits are **bitwise identical** to the
//! trainer's forward pass on the same nodes.
//!
//! Layers of the subsystem:
//!
//! - [`freeze`] / [`publish`] — write version 1 of an artifact; append
//!   retrained versions with an atomic manifest repoint.
//! - [`Artifact`] — verified, mmap-backed read view; implements
//!   [`RowSource`](plexus_graph::khop::RowSource) so k-hop extraction
//!   walks adjacency rows straight out of the mappings.
//! - [`QueryEngine`] — per-worker kernel + k-hop workspaces; batched
//!   k-hop-extract + forward, zero-alloc at steady state.
//! - [`ExtractionCache`] — version-stamped, byte-bounded LRU over whole
//!   extraction blocks (node sets + sub-CSRs + the layer-0 aggregated
//!   feature block) and hot per-node 1-hop slices; shared across
//!   workers, invalidated on hot reload, on by default.
//! - [`Server`] — bounded queue, adaptive batcher, worker pool,
//!   version-stamped prediction cache, hot reload without draining.
//!
//! [`ShardStore`]: plexus::loader::ShardStore

pub mod artifact;
pub mod cache;
pub mod engine;
pub mod server;

pub use artifact::{freeze, publish, Artifact, ModelSnapshot};
pub use cache::{Extraction, ExtractionCache, ExtractionStats, DEFAULT_EXTRACTION_CACHE_BYTES};
pub use engine::{argmax, Prediction, QueryEngine};
pub use server::{shard_count, ServeConfig, ServeError, Server, ServerStats, SubmitPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use plexus::loader::LoaderError;
    use plexus_gnn::{Gcn, GcnConfig};
    use plexus_graph::datasets::{LoadedDataset, OGBN_PRODUCTS};
    use std::fs;
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plexus_serve_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A small trained-ish setup: synthetic graph + a freshly initialized
    /// model (weights are arbitrary; parity is about the computation, not
    /// accuracy).
    fn small_setup(seed: u64) -> (LoadedDataset, Gcn) {
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 220, Some(12), seed);
        let config = GcnConfig {
            input_dim: ds.features.cols(),
            hidden_dim: 9,
            num_classes: ds.num_classes,
            num_layers: 3,
            seed: seed + 7,
        };
        let gcn = Gcn::new(config);
        (ds, gcn)
    }

    #[test]
    fn freeze_open_roundtrip_with_mapped_accounting() {
        let dir = temp_dir("roundtrip");
        let (ds, gcn) = small_setup(11);
        let v = freeze(&dir, &ds.adjacency, &gcn, &ds.features, 3, 2).unwrap();
        assert_eq!(v, 1);
        let art = Artifact::open(&dir).unwrap();
        assert_eq!(art.num_nodes(), ds.adjacency.rows());
        let snap = art.snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.features.shape(), ds.features.shape());
        assert_eq!(snap.features.as_slice(), ds.features.as_slice());
        let stats = art.open_stats();
        assert!(stats.files_read >= 7, "6 shards + model, got {}", stats.files_read);
        assert_eq!(stats.bytes_mapped + stats.bytes_copied, stats.bytes_read);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(stats.bytes_copied, 0, "serving must not copy shard files through the heap");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn served_logits_bitwise_equal_trainer_forward() {
        let dir = temp_dir("parity");
        let (ds, gcn) = small_setup(23);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 3).unwrap();
        let art = Artifact::open(&dir).unwrap();
        let snap = art.snapshot();
        let full = gcn.forward(&ds.adjacency, &ds.features).logits;
        let nodes: Vec<u32> = vec![0, 7, 7, 33, 101, (ds.adjacency.rows() - 1) as u32];
        let mut engine = QueryEngine::new(gcn.config.num_layers);
        for pred in engine.predict_batch(&art, &snap, &nodes) {
            let expect = full.row(pred.node as usize);
            assert_eq!(pred.logits.len(), expect.len());
            for (a, b) in pred.logits.iter().zip(expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "node {} logit differs", pred.node);
            }
            assert_eq!(pred.class, argmax(expect));
            assert_eq!(pred.model_version, 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_batches_are_zero_alloc_after_warmup() {
        let dir = temp_dir("steady");
        let (ds, gcn) = small_setup(31);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        let art = Artifact::open(&dir).unwrap();
        let snap = art.snapshot();
        let nodes: Vec<u32> = vec![3, 50, 77, 120];
        let mut engine = QueryEngine::new(gcn.config.num_layers);
        engine.predict_batch(&art, &snap, &nodes); // warmup
        let warm = engine.alloc_events();
        engine.predict_batch(&art, &snap, &nodes);
        engine.predict_batch(&art, &snap, &nodes);
        assert_eq!(engine.alloc_events(), warm, "steady-state batch allocated kernel buffers");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_and_reload_swap_versions_atomically() {
        let dir = temp_dir("reload");
        let (ds, gcn) = small_setup(43);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        let art = Artifact::open(&dir).unwrap();
        assert_eq!(art.reload_latest().unwrap(), None, "already current");
        // Retrain stand-in: same shapes, different weights.
        let gcn2 = Gcn::new(GcnConfig { seed: 999, ..gcn.config.clone() });
        assert_eq!(publish(&dir, &gcn2, &ds.features).unwrap(), 2);
        assert_eq!(art.snapshot().version, 1, "reload is explicit, not implicit");
        assert_eq!(art.reload_latest().unwrap(), Some(2));
        let snap = art.snapshot();
        assert_eq!(snap.version, 2);
        let full = gcn2.forward(&ds.adjacency, &ds.features).logits;
        let mut engine = QueryEngine::new(gcn2.config.num_layers);
        let pred = &engine.predict_batch(&art, &snap, &[42])[0];
        for (a, b) in pred.logits.iter().zip(full.row(42)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_and_truncated_artifacts_are_typed_errors() {
        let dir = temp_dir("corrupt");
        let (ds, gcn) = small_setup(53);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        // Flip one payload byte of a shard: checksum mismatch, not a panic.
        let shard = dir.join("adj_e_1_0.plx");
        let mut bytes = fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&shard, &bytes).unwrap();
        assert!(matches!(Artifact::open(&dir), Err(LoaderError::ChecksumMismatch { .. })));
        bytes[mid] ^= 0x40;
        fs::write(&shard, &bytes).unwrap();
        Artifact::open(&dir).unwrap();
        // Truncate the model file.
        let model = dir.join("model_0001.plx");
        let bytes = fs::read(&model).unwrap();
        fs::write(&model, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(Artifact::open(&dir), Err(LoaderError::Truncated { .. })));
        fs::write(&model, &bytes).unwrap();
        // Bump the manifest format: version mismatch.
        let manifest = dir.join("serve.txt");
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, text.replace("format = 2", "format = 3")).unwrap();
        assert!(matches!(
            Artifact::open(&dir),
            Err(LoaderError::VersionMismatch { found: 3, expected: 2, .. })
        ));
        // Remove it entirely: bad manifest.
        fs::remove_file(&manifest).unwrap();
        assert!(matches!(Artifact::open(&dir), Err(LoaderError::BadManifest { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn server_batches_caches_and_hot_reloads() {
        let dir = temp_dir("server");
        let (ds, gcn) = small_setup(61);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        let cfg = ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_cap: 64,
            cache_shards: 4,
            ..Default::default()
        };
        let server = Server::start(&dir, cfg).unwrap();
        let full = gcn.forward(&ds.adjacency, &ds.features).logits;
        let nodes: Vec<u32> = (0..40).map(|i| (i * 5) as u32).collect();
        for pred in server.query_many(&nodes) {
            for (a, b) in pred.logits.iter().zip(full.row(pred.node as usize)) {
                assert_eq!(a.to_bits(), b.to_bits(), "node {}", pred.node);
            }
        }
        let stats = server.stats();
        assert_eq!(stats.served, 40);
        assert!(stats.batches >= 1);
        // Re-query: answered from the version-stamped cache.
        let again = server.query(nodes[0]);
        assert_eq!(again.model_version, 1);
        assert!(server.stats().cache_hits >= 1);
        // Hot reload: publish v2, swap in without restarting workers.
        let gcn2 = Gcn::new(GcnConfig { seed: 4242, ..gcn.config.clone() });
        publish(&dir, &gcn2, &ds.features).unwrap();
        assert_eq!(server.reload_latest().unwrap(), Some(2));
        assert_eq!(server.current_version(), 2);
        let full2 = gcn2.forward(&ds.adjacency, &ds.features).logits;
        let pred = server.query(nodes[0]);
        assert_eq!(pred.model_version, 2, "stale cache entry must not satisfy a new version");
        for (a, b) in pred.logits.iter().zip(full2.row(pred.node as usize)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(server.stats().reloads, 1);
        assert_eq!(server.stats().shed, 0, "Block admission must never shed");
        drop(server);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shed_policy_returns_overloaded_under_saturation() {
        let dir = temp_dir("shed");
        let (ds, gcn) = small_setup(71);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(50),
            queue_cap: 1,
            cache_shards: 2,
            submit: SubmitPolicy::Shed,
            ..Default::default()
        };
        let server = Server::start(&dir, cfg).unwrap();
        // A single-slot queue behind a single worker: burst-submitting
        // distinct (uncached) nodes must overflow it. Each attempt uses a
        // fresh chunk so cache hits from completed answers can't mask the
        // overload; a handful of attempts absorbs scheduler luck.
        let n = ds.adjacency.rows() as u32;
        let mut shed_seen = false;
        for attempt in 0..6u32 {
            let nodes: Vec<u32> = (0..32).map(|i| (attempt * 32 + i) % n).collect();
            match server.try_query_many(&nodes) {
                Err(ServeError::Overloaded) => {
                    shed_seen = true;
                    break;
                }
                Ok(preds) => assert_eq!(preds.len(), nodes.len()),
            }
        }
        assert!(shed_seen, "burst submissions against a 1-slot queue never shed");
        assert!(server.stats().shed >= 1, "shed counter must record the refusal");
        // The server stays healthy after shedding: a blocking-free retry
        // of a single query eventually succeeds.
        let mut answered = false;
        for _ in 0..1000 {
            if let Ok(pred) = server.try_query(5) {
                assert_eq!(pred.node, 5);
                answered = true;
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(answered, "server wedged after shedding");
        drop(server);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn block_policy_never_sheds_under_saturation() {
        let dir = temp_dir("block");
        let (ds, gcn) = small_setup(79);
        freeze(&dir, &ds.adjacency, &gcn, &ds.features, 2, 2).unwrap();
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_micros(50),
            queue_cap: 2,
            cache_shards: 2,
            submit: SubmitPolicy::Block,
            ..Default::default()
        };
        let server = Server::start(&dir, cfg).unwrap();
        let nodes: Vec<u32> = (0..64).collect();
        let preds = server.query_many(&nodes);
        assert_eq!(preds.len(), 64);
        let stats = server.stats();
        assert_eq!(stats.shed, 0, "Block admission must never shed");
        assert_eq!(stats.served, 64);
        drop(server);
        fs::remove_dir_all(&dir).unwrap();
    }
}
