//! Deterministic fault injection for robustness tests.
//!
//! A [`FaultPlan`] is an immutable list of armed faults shared (via `Arc`)
//! by every rank thread of a world. Subsystems consult it at well-defined
//! *fault sites* — the trainer at each epoch boundary, the distributed
//! layer's forward, every `ThreadComm` collective, and the shard/spill read
//! paths — through `#[inline]` hooks that are a single `Option` check when
//! no plan is installed, so production runs pay nothing.
//!
//! Faults are **consumable**: each carries a `times` budget decremented
//! atomically when it fires, so an injected failure models a *transient*
//! fault — the retry/recovery machinery under test sees the failure once
//! (or `times` times) and then a healthy system. This is what makes
//! kill-and-resume tests terminate: after recovery the same plan no longer
//! re-kills the rank.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable failure mode. Ranks are always *world* ranks, even when
/// the fault fires inside a subgroup collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic rank `rank` at the start of epoch `epoch` (0-based).
    RankPanic { rank: usize, epoch: usize },
    /// Panic rank `rank` entering the forward pass of layer `layer`.
    LayerPanic { rank: usize, layer: usize },
    /// Panic rank `rank` on its `nth` collective call (1-based over every
    /// group handle the rank uses, in program order).
    CollectiveAbort { rank: usize, nth: u64 },
    /// Fail a shard/spill read whose file name contains `file_substr` with
    /// an injected checksum mismatch.
    ShardRead { file_substr: String },
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    /// Remaining firings; the fault is inert at zero.
    remaining: AtomicU32,
    /// Per-fault observation counter (collective calls seen on the target
    /// rank for [`Fault::CollectiveAbort`]).
    seen: AtomicU64,
}

impl Armed {
    /// Consume one firing; false when the budget is exhausted.
    fn consume(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// A deterministic, seedable set of armed faults. See the module docs for
/// the consumption semantics.
#[derive(Debug, Default)]
pub struct FaultPlan {
    armed: Vec<Armed>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `fault` to fire once.
    pub fn with(self, fault: Fault) -> Self {
        self.with_times(fault, 1)
    }

    /// Arm `fault` to fire `times` times before going inert.
    pub fn with_times(mut self, fault: Fault, times: u32) -> Self {
        self.armed.push(Armed { fault, remaining: AtomicU32::new(times), seen: AtomicU64::new(0) });
        self
    }

    /// Convenience: kill `rank` at the start of `epoch`, once.
    pub fn kill_rank(rank: usize, epoch: usize) -> Self {
        Self::new().with(Fault::RankPanic { rank, epoch })
    }

    /// Seed-derived rank kill: picks `(rank, epoch)` from `seed` via
    /// splitmix64 so property tests can draw reproducible fault points.
    pub fn seeded_kill(seed: u64, world: usize, epochs: usize) -> Self {
        assert!(world > 0 && epochs > 0, "seeded_kill: empty world or run");
        let a = splitmix64(seed);
        let b = splitmix64(a);
        Self::kill_rank((a % world as u64) as usize, (b % epochs as u64) as usize)
    }

    /// Parse a plan from the `PLEXUS_FAULT` environment variable. The spec
    /// is a comma-separated list of:
    ///
    /// * `kill:<rank>@<epoch>` — [`Fault::RankPanic`]
    /// * `layer:<rank>@<layer>` — [`Fault::LayerPanic`]
    /// * `coll:<rank>@<nth>` — [`Fault::CollectiveAbort`]
    /// * `shard:<substr>` — [`Fault::ShardRead`], optionally `xN` for a
    ///   firing budget (`shard:feat x2` → fails two reads).
    ///
    /// Returns `None` when unset or empty; panics on a malformed spec so a
    /// typo'd injection never silently tests nothing.
    pub fn from_env() -> Option<Arc<Self>> {
        let spec = std::env::var("PLEXUS_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(Arc::new(Self::parse(&spec)))
    }

    /// Parse a `PLEXUS_FAULT`-format spec (see [`FaultPlan::from_env`]).
    pub fn parse(spec: &str) -> Self {
        let mut plan = Self::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once(':')
                .unwrap_or_else(|| panic!("FaultPlan: bad fault spec '{part}'"));
            let at = |s: &str| -> (usize, usize) {
                let (a, b) = s
                    .split_once('@')
                    .unwrap_or_else(|| panic!("FaultPlan: '{part}' needs <a>@<b>"));
                let parse = |v: &str| {
                    v.trim().parse().unwrap_or_else(|_| panic!("FaultPlan: bad number in '{part}'"))
                };
                (parse(a), parse(b))
            };
            match kind.trim() {
                "kill" => {
                    let (rank, epoch) = at(rest);
                    plan = plan.with(Fault::RankPanic { rank, epoch });
                }
                "layer" => {
                    let (rank, layer) = at(rest);
                    plan = plan.with(Fault::LayerPanic { rank, layer });
                }
                "coll" => {
                    let (rank, nth) = at(rest);
                    plan = plan.with(Fault::CollectiveAbort { rank, nth: nth as u64 });
                }
                "shard" => {
                    let (substr, times) = match rest.rsplit_once('x') {
                        Some((s, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                            (s.trim(), n.parse().unwrap())
                        }
                        _ => (rest.trim(), 1),
                    };
                    plan = plan
                        .with_times(Fault::ShardRead { file_substr: substr.to_string() }, times);
                }
                other => panic!("FaultPlan: unknown fault kind '{other}' in '{part}'"),
            }
        }
        plan
    }

    /// Trainer hook: called by each rank at the start of every epoch.
    /// Panics if a [`Fault::RankPanic`] for this `(rank, epoch)` is armed.
    #[inline]
    pub fn epoch_tick(&self, rank: usize, epoch: usize) {
        for a in &self.armed {
            if let Fault::RankPanic { rank: r, epoch: e } = a.fault {
                if r == rank && e == epoch && a.consume() {
                    panic!("FaultPlan: injected panic on rank {rank} at epoch {epoch}");
                }
            }
        }
    }

    /// Layer hook: called entering `DistLayer::forward`.
    #[inline]
    pub fn layer_tick(&self, rank: usize, layer: usize) {
        for a in &self.armed {
            if let Fault::LayerPanic { rank: r, layer: l } = a.fault {
                if r == rank && l == layer && a.consume() {
                    panic!(
                        "FaultPlan: injected panic on rank {rank} entering layer {layer} forward"
                    );
                }
            }
        }
    }

    /// Collective hook: called by `ThreadComm` once per collective with the
    /// rank's *world* rank. Counts calls per armed fault and panics when
    /// the `nth` call on the target rank arrives.
    #[inline]
    pub fn collective_tick(&self, world_rank: usize, op: &'static str, group: &'static str) {
        for a in &self.armed {
            if let Fault::CollectiveAbort { rank, nth } = a.fault {
                if rank == world_rank {
                    let seen = a.seen.fetch_add(1, Ordering::AcqRel) + 1;
                    if seen == nth && a.consume() {
                        panic!(
                            "FaultPlan: injected abort on rank {world_rank}, collective #{nth} \
                             ({op} on group '{group}')"
                        );
                    }
                }
            }
        }
    }

    /// Read hook: returns true when a read of `name` should be failed with
    /// a synthetic checksum mismatch (consuming one firing).
    #[inline]
    pub fn shard_read_fails(&self, name: &str) -> bool {
        for a in &self.armed {
            if let Fault::ShardRead { file_substr } = &a.fault {
                if name.contains(file_substr.as_str()) && a.consume() {
                    return true;
                }
            }
        }
        false
    }

    /// True when no armed fault has firings left (useful for asserting a
    /// plan was fully exercised).
    pub fn exhausted(&self) -> bool {
        self.armed.iter().all(|a| a.remaining.load(Ordering::Acquire) == 0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn faults_are_consumed_once() {
        let plan = FaultPlan::kill_rank(1, 2);
        // Wrong rank / wrong epoch: inert.
        plan.epoch_tick(0, 2);
        plan.epoch_tick(1, 1);
        assert!(!plan.exhausted());
        let r = catch_unwind(AssertUnwindSafe(|| plan.epoch_tick(1, 2)));
        assert!(r.is_err(), "armed fault must fire");
        assert!(plan.exhausted());
        // Second visit to the same (rank, epoch): the fault is spent.
        plan.epoch_tick(1, 2);
    }

    #[test]
    fn shard_read_budget_counts_down() {
        let plan = FaultPlan::new().with_times(Fault::ShardRead { file_substr: "feat".into() }, 2);
        assert!(!plan.shard_read_fails("adj_e_0_0.plx"));
        assert!(plan.shard_read_fails("feat_0.plx"));
        assert!(plan.shard_read_fails("feat_0.plx"));
        assert!(!plan.shard_read_fails("feat_0.plx"), "budget of 2 exhausted");
        assert!(plan.exhausted());
    }

    #[test]
    fn nth_collective_fires_exactly_once() {
        let plan = FaultPlan::new().with(Fault::CollectiveAbort { rank: 0, nth: 3 });
        plan.collective_tick(0, "AllReduce", "world");
        plan.collective_tick(1, "AllReduce", "world"); // other rank: not counted
        plan.collective_tick(0, "AllGather", "x");
        let r = catch_unwind(AssertUnwindSafe(|| plan.collective_tick(0, "Barrier", "world")));
        assert!(r.is_err(), "3rd collective on rank 0 must abort");
        plan.collective_tick(0, "Barrier", "world"); // spent
    }

    #[test]
    fn env_spec_round_trips() {
        let plan = FaultPlan::parse("kill:1@2, coll:0@5, shard:feat x2, layer:3@1");
        assert_eq!(plan.armed.len(), 4);
        assert_eq!(plan.armed[0].fault, Fault::RankPanic { rank: 1, epoch: 2 });
        assert_eq!(plan.armed[1].fault, Fault::CollectiveAbort { rank: 0, nth: 5 });
        assert_eq!(plan.armed[2].fault, Fault::ShardRead { file_substr: "feat".into() });
        assert_eq!(plan.armed[2].remaining.load(Ordering::Acquire), 2);
        assert_eq!(plan.armed[3].fault, Fault::LayerPanic { rank: 3, layer: 1 });
    }

    #[test]
    fn seeded_kill_is_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded_kill(seed, 4, 6);
            let b = FaultPlan::seeded_kill(seed, 4, 6);
            assert_eq!(a.armed[0].fault, b.armed[0].fault);
            if let Fault::RankPanic { rank, epoch } = a.armed[0].fault {
                assert!(rank < 4 && epoch < 6);
            } else {
                panic!("seeded_kill must arm a RankPanic");
            }
        }
    }
}
