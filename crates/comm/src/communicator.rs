//! The backend-agnostic communicator API: the [`Communicator`] trait and
//! the [`PendingCollective`] handle for nonblocking collectives.
//!
//! # The SPMD contract
//!
//! Every method of [`Communicator`] is a *collective*: it must be called by
//! **every** rank of the group, in the same order, with compatible
//! arguments (same element type, matching buffer lengths where the
//! collective requires them). Programs are written once and executed by all
//! ranks — exactly the `torch.distributed`/MPI model the paper's engine
//! assumes. What happens on misuse is backend-defined, but conforming
//! backends must fail loudly (the thread backend panics with a descriptive
//! message and poisons the world so sibling ranks unwind too; the simnet
//! backend panics on shape errors it can detect locally).
//!
//! # Blocking and nonblocking collectives
//!
//! Each reduction/gather collective exists in two forms:
//!
//! * the nonblocking form (`start_all_reduce`, `start_all_gather`,
//!   `start_reduce_scatter`, `start_all_gather_rows`,
//!   `start_all_to_all_rows`) *launches* the collective and returns a
//!   [`PendingCollective`] immediately; the caller overlaps local compute
//!   with the in-flight collective and calls [`PendingCollective::wait`]
//!   when it needs the result. This is the §5.2 comm/compute-overlap seam:
//!   `DistLayer` launches the axis all-reduce of one tile while the next
//!   tile's GEMM/SpMM is still running.
//! * the blocking form (`all_reduce`, `all_gather`, `reduce_scatter`,
//!   `all_gather_rows`, `all_to_all_rows`) returns only when the result is
//!   available on this rank. Blocking forms are default-implemented as
//!   `start_*(...).wait()`, so a backend implements exactly one data path
//!   per collective — the nonblocking one.
//!
//! # Sparse (row-indexed) collectives
//!
//! Dense all-gathers ship every rank's full padded block even when the
//! consumer only reads a few rows of it. The sparse collectives carry only
//! the rows the adjacency structure demands (the CAGNET/"reducing
//! communication in GNN training" observation):
//!
//! * [`all_gather_rows`](Communicator::all_gather_rows) is a *pull*
//!   gather over a row space sharded equally across the group: each rank
//!   names the global rows it wants and receives exactly those, in request
//!   order. Different ranks may request different row sets.
//! * [`all_to_all_rows`](Communicator::all_to_all_rows) is the
//!   request-driven exchange underneath: per-peer row-index lists (built
//!   once per epoch by a `RowRequestPlan`) select which of each owner's
//!   local rows travel to this rank.
//!
//! Both record ledger events with their *indexed* sizes — the rows this
//! rank actually served plus the index upload — so cost-model replay and
//! the simulated studies see honest sparse message volumes, directly
//! comparable with the dense events' contributed-payload convention.
//!
//! Nonblocking calls count as collectives for ordering purposes *at their
//! start call*: all ranks must start them at the same point of the
//! collective sequence. At most one collective may be in flight per group
//! per rank — `wait()` the pending handle before issuing the next
//! collective on the *same* group (collectives on *other* groups may run
//! while it is pending; the overlap paths in `DistLayer` rely on that).
//! Results are bitwise identical to the blocking form: `start_x(...).wait()
//! == x(...)` on every backend, which the conformance suite checks.
//!
//! # Determinism
//!
//! Conforming backends reduce contributions in ascending rank order, so an
//! all-reduce produces bitwise-identical results on every rank and across
//! runs even for non-associative `f32` sums. The Fig. 7 serial-equivalence
//! tests depend on this.

use crate::types::{CommElem, ReduceOp, TrafficLedger};

/// A pending nonblocking collective: the future of a `Vec<T>` result.
///
/// Obtained from the `start_*` methods of [`Communicator`]; redeem it with
/// [`wait`](PendingCollective::wait). The handle borrows the communicator
/// that issued it, so the communicator cannot be dropped (or used mutably)
/// while a collective is in flight.
///
/// Dropping a handle whose completion is still deferred is a protocol
/// violation — on backends that move real data the siblings would block
/// forever waiting for this rank to run the read phase — so `Drop` panics
/// (unless the thread is already unwinding), which the thread world turns
/// into a clean world-wide poison. Always `wait()`.
pub struct PendingCollective<'c, T> {
    state: PendingState<'c, T>,
}

enum PendingState<'c, T> {
    /// Result already materialized (cost-model backends, trivial worlds).
    Ready(Vec<T>),
    /// Completion deferred to `wait()` (the thread backend posts its
    /// contribution at start time and runs the read phase here).
    Deferred(Box<dyn FnOnce() -> Vec<T> + 'c>),
}

impl<'c, T> PendingCollective<'c, T> {
    /// A collective that already completed at start time.
    pub fn ready(result: Vec<T>) -> Self {
        Self { state: PendingState::Ready(result) }
    }

    /// A collective whose completion runs inside `wait()`.
    pub fn deferred(complete: impl FnOnce() -> Vec<T> + 'c) -> Self {
        Self { state: PendingState::Deferred(Box::new(complete)) }
    }

    /// Block until the collective completes and return its result.
    pub fn wait(mut self) -> Vec<T> {
        match std::mem::replace(&mut self.state, PendingState::Ready(Vec::new())) {
            PendingState::Ready(v) => v,
            PendingState::Deferred(f) => f(),
        }
    }
}

impl<T> Drop for PendingCollective<'_, T> {
    fn drop(&mut self) {
        if matches!(self.state, PendingState::Deferred(_)) && !std::thread::panicking() {
            panic!(
                "PendingCollective dropped without wait(): the collective never completed \
                 on this rank and sibling ranks would deadlock"
            );
        }
    }
}

/// The collective-communication backend interface.
///
/// Implementors provide the collective set the paper's algorithms use, the
/// MPI-style `split_by` for building the X/Y/Z axis groups of the 3D grid,
/// and a shared [`TrafficLedger`] for cost-model replay. See the
/// [module docs](self) for the SPMD contract, the nonblocking rules and
/// the determinism requirement — they are part of this trait's contract
/// and hold for every backend.
///
/// Two backends ship with the workspace:
///
/// * [`ThreadComm`](crate::ThreadComm) — every rank is an OS thread,
///   collectives move real data through shared memory;
/// * `SimComm` (in `plexus-simnet`) — a single-process, cost-only world
///   that executes collectives logically on this rank's data shapes and
///   charges the §4 ring-cost equations, so thousand-rank grids run as
///   perf-model studies without a thousand threads.
pub trait Communicator: Sized {
    /// Rank within this group (`0..size()`).
    fn rank(&self) -> usize;

    /// Number of ranks in this group.
    fn size(&self) -> usize;

    /// Label given at creation ("world") or split time ("x", "y", "z"...).
    fn label(&self) -> &'static str;

    /// This rank's traffic ledger (shared across all groups derived on
    /// this rank).
    fn ledger(&self) -> &TrafficLedger;

    /// Synchronize all ranks of the group.
    fn barrier(&self);

    /// All-reduce in place: after the call every rank's `buf` holds the
    /// elementwise reduction over all ranks' inputs.
    ///
    /// Default: `start_all_reduce(buf, op).wait()` copied back into `buf`.
    fn all_reduce<T: CommElem>(&self, buf: &mut [T], op: ReduceOp) {
        let out = self.start_all_reduce(buf, op).wait();
        buf.copy_from_slice(&out);
    }

    /// All-gather equal-size shards: the concatenation of every rank's
    /// `src` in rank order (length `src.len() * size()`).
    ///
    /// Default: `start_all_gather(src).wait()`.
    fn all_gather<T: CommElem>(&self, src: &[T]) -> Vec<T> {
        self.start_all_gather(src).wait()
    }

    /// All-gather with per-rank lengths preserved (ragged).
    fn all_gather_varlen<T: CommElem>(&self, src: &[T]) -> Vec<Vec<T>>;

    /// Reduce all ranks' equal-length buffers elementwise, then return
    /// this rank's `1/size()` chunk of the result. `buf.len()` must be
    /// divisible by the group size.
    ///
    /// Default: `start_reduce_scatter(buf, op).wait()`.
    fn reduce_scatter<T: CommElem>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        self.start_reduce_scatter(buf, op).wait()
    }

    /// Row-indexed sparse all-gather over a row space sharded equally
    /// across the group.
    ///
    /// Every rank holds `local_rows = src.len() / row_width` rows; the
    /// *global* row space is the concatenation of all ranks' blocks in
    /// rank order (`rows_total = local_rows * size()`), so global row `g`
    /// lives on rank `g / local_rows` at local index `g % local_rows`.
    /// `row_ids` names the global rows **this** rank wants — a *pull*:
    /// different ranks may request different (even empty) sets, but every
    /// rank must still make the call (it is a collective). Returns the
    /// requested rows concatenated in `row_ids` order
    /// (`row_ids.len() * row_width` elements).
    ///
    /// Requesting every global row in ascending order reproduces the dense
    /// [`all_gather`](Communicator::all_gather) bitwise — the conformance
    /// suite holds backends to that.
    ///
    /// Default: `start_all_gather_rows(...).wait()`.
    fn all_gather_rows<T: CommElem>(&self, src: &[T], row_ids: &[u32], row_width: usize) -> Vec<T> {
        self.start_all_gather_rows(src, row_ids, row_width).wait()
    }

    /// Request-driven sparse all-to-all: `requests[p]` lists the *local*
    /// row indices of rank `p`'s `src` this rank wants (`requests.len() ==
    /// size()`; self-requests allowed). Returns the rows flattened
    /// owner-major — rank 0's rows in `requests[0]` order, then rank 1's,
    /// and so on (`sum(requests[p].len()) * row_width` elements).
    ///
    /// Unlike [`all_gather_rows`](Communicator::all_gather_rows) the `src`
    /// blocks need not be equal-sized across ranks; indices are validated
    /// against each owner's actual block.
    ///
    /// Default: `start_all_to_all_rows(...).wait()`.
    fn all_to_all_rows<T: CommElem>(
        &self,
        src: &[T],
        requests: &[Vec<u32>],
        row_width: usize,
    ) -> Vec<T> {
        self.start_all_to_all_rows(src, requests, row_width).wait()
    }

    /// Broadcast `buf` from `root` to every rank.
    fn broadcast<T: CommElem>(&self, buf: &mut Vec<T>, root: usize);

    /// All-to-all: `sends[d]` goes to rank `d`; returns `recv` where
    /// `recv[s]` came from rank `s`. Chunks may be ragged (the BNS-GCN
    /// boundary exchange needs that).
    fn all_to_all<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>>;

    /// MPI_Comm_split with the color/key assignment given as a pure
    /// function of the *group* rank: ranks whose `f(rank).0` (color) match
    /// form a new group, ordered by `(key, parent rank)`.
    ///
    /// Taking the whole rank→(color, key) map instead of just this rank's
    /// pair is what lets a single-process backend compute subgroup
    /// membership without peers; in SPMD programs the assignment is a pure
    /// function of rank anyway (the 3D grid's axis groups are index
    /// arithmetic on grid coordinates).
    fn split_by<F>(&self, f: F, label: &'static str) -> Self
    where
        F: Fn(usize) -> (u64, u64);

    /// Nonblocking [`all_reduce`](Communicator::all_reduce): launches the
    /// collective over `src` and returns a handle; `wait()` yields the
    /// reduced vector. This is the collective a backend *implements*; the
    /// blocking form is derived from it.
    fn start_all_reduce<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T>;

    /// Nonblocking [`all_gather`](Communicator::all_gather); the blocking
    /// form is derived from it.
    fn start_all_gather<'c, T: CommElem>(&'c self, src: &[T]) -> PendingCollective<'c, T>;

    /// Nonblocking [`reduce_scatter`](Communicator::reduce_scatter); the
    /// blocking form is derived from it.
    fn start_reduce_scatter<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T>;

    /// Nonblocking [`all_gather_rows`](Communicator::all_gather_rows); the
    /// blocking form is derived from it. Launching posts this rank's
    /// request (and makes its block servable); `wait()` completes the
    /// exchange, which lets the trainer prepare the scatter target while
    /// rows are in flight.
    fn start_all_gather_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        row_ids: &[u32],
        row_width: usize,
    ) -> PendingCollective<'c, T>;

    /// Nonblocking [`all_to_all_rows`](Communicator::all_to_all_rows); the
    /// blocking form is derived from it.
    fn start_all_to_all_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        requests: &[Vec<u32>],
        row_width: usize,
    ) -> PendingCollective<'c, T>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_pending_returns_value() {
        let p = PendingCollective::ready(vec![1u32, 2, 3]);
        assert_eq!(p.wait(), vec![1, 2, 3]);
    }

    #[test]
    fn deferred_pending_runs_on_wait() {
        let mut ran = false;
        let p = PendingCollective::deferred(|| {
            ran = true;
            vec![7.0f32]
        });
        assert_eq!(p.wait(), vec![7.0]);
        assert!(ran, "completion closure must run inside wait()");
    }

    #[test]
    fn dropping_deferred_pending_panics() {
        let caught = std::panic::catch_unwind(|| {
            let p = PendingCollective::deferred(|| vec![0.0f32]);
            drop(p);
        });
        assert!(caught.is_err(), "deferred handle dropped without wait() must fail loudly");
    }

    #[test]
    fn dropping_ready_pending_is_harmless() {
        // Eager backends complete at start time; discarding the result is
        // not a protocol violation.
        drop(PendingCollective::ready(vec![1u32]));
    }
}
