//! A reusable sense-reversing barrier with poison support.
//!
//! `std::sync::Barrier` deadlocks the world if one rank dies before
//! arriving. Training ranks can legitimately panic (shape assertions,
//! failure-injection tests), so this barrier can be *poisoned* from outside:
//! all current and future waiters unwind with a descriptive panic instead
//! of blocking forever.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct State {
    /// Ranks arrived in the current generation.
    count: usize,
    /// Incremented when a generation completes; waiters key off it.
    generation: u64,
    poisoned: bool,
    /// Who/what poisoned the barrier, for the unwinding panic message.
    origin: Option<Arc<str>>,
}

/// Reusable barrier for a fixed number of participants.
pub struct PoisonBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl PoisonBarrier {
    pub fn new(n: usize) -> Arc<Self> {
        assert!(n > 0, "PoisonBarrier: zero participants");
        Arc::new(Self {
            n,
            state: Mutex::new(State { count: 0, generation: 0, poisoned: false, origin: None }),
            cv: Condvar::new(),
        })
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` participants arrive (or the barrier is
    /// poisoned, in which case this panics).
    pub fn wait(&self) {
        let mut st = self.state.lock();
        if st.poisoned {
            let origin = st.origin.clone();
            drop(st);
            Self::poison_panic(origin);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            self.cv.wait(&mut st);
        }
        let poisoned = st.poisoned;
        let origin = st.origin.clone();
        drop(st);
        if poisoned {
            Self::poison_panic(origin);
        }
    }

    fn poison_panic(origin: Option<Arc<str>>) -> ! {
        // The "poisoned" substring is load-bearing: `run_world` uses it to
        // tell secondary poison unwinds from the original panic.
        match origin {
            Some(o) => panic!("PoisonBarrier: poisoned ({o})"),
            None => panic!("PoisonBarrier: poisoned (another rank panicked)"),
        }
    }

    /// Poison the barrier: wake every waiter with a panic and make all
    /// future `wait` calls panic immediately.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Like [`poison`](Self::poison), recording where the failure came from
    /// so unwinding waiters name the origin rank/collective. The first
    /// recorded origin wins (a poison cascade keeps the root cause).
    pub fn poison_with(&self, origin: &Arc<str>) {
        let mut st = self.state.lock();
        st.poisoned = true;
        if st.origin.is_none() {
            st.origin = Some(Arc::clone(origin));
        }
        self.cv.notify_all();
    }

    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn releases_all_participants() {
        let b = PoisonBarrier::new(4);
        let after = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                let after = Arc::clone(&after);
                s.spawn(move || {
                    b.wait();
                    after.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(after.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn is_reusable_across_generations() {
        let b = PoisonBarrier::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..2 {
                let b = Arc::clone(&b);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for round in 0..50 {
                        b.wait();
                        // Both threads must be in the same round: the count
                        // observed right after a barrier is a multiple of 2
                        // only at quiescence, so instead check monotonicity.
                        counter.fetch_add(1, Ordering::SeqCst);
                        assert!(counter.load(Ordering::SeqCst) > 2 * round);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn poison_unblocks_waiter() {
        let b = PoisonBarrier::new(2);
        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait()));
            assert!(r.is_err(), "poisoned wait must panic");
        });
        thread::sleep(Duration::from_millis(50));
        b.poison();
        waiter.join().unwrap();
    }

    #[test]
    fn poisoned_barrier_rejects_future_waits() {
        let b = PoisonBarrier::new(2);
        b.poison();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()));
        assert!(r.is_err());
    }
}
