//! Element traits, reduction operators and the traffic ledger.

use parking_lot::Mutex;

/// Reduction operator for all-reduce / reduce-scatter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

/// Element types that can travel through collectives.
///
/// The reduce is defined here rather than via `std::ops` bounds so integer
/// and float types share one code path and `Max`/`Min` need no `Ord`
/// (floats aren't `Ord`).
pub trait CommElem: Copy + Send + 'static {
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
    /// Size in bytes (for the traffic ledger).
    const BYTES: usize = std::mem::size_of::<Self>();
}

macro_rules! impl_comm_elem_float {
    ($($t:ty),*) => {$(
        impl CommElem for $t {
            #[inline]
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Max => if b > a { b } else { a },
                    ReduceOp::Min => if b < a { b } else { a },
                }
            }
        }
    )*};
}

macro_rules! impl_comm_elem_int {
    ($($t:ty),*) => {$(
        impl CommElem for $t {
            #[inline]
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

impl_comm_elem_float!(f32, f64);
impl_comm_elem_int!(u32, u64, usize, i32, i64);

/// Which collective produced a traffic event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollOp {
    AllGather,
    AllReduce,
    ReduceScatter,
    Broadcast,
    AllToAll,
    Barrier,
    /// Row-indexed sparse all-gather: only requested rows travel.
    AllGatherRows,
    /// Request-driven sparse all-to-all over row indices.
    AllToAllRows,
}

impl CollOp {
    /// Static name for diagnostics (poison payloads, fault injection).
    pub fn name(self) -> &'static str {
        match self {
            CollOp::AllGather => "all_gather",
            CollOp::AllReduce => "all_reduce",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::Broadcast => "broadcast",
            CollOp::AllToAll => "all_to_all",
            CollOp::Barrier => "barrier",
            CollOp::AllGatherRows => "all_gather_rows",
            CollOp::AllToAllRows => "all_to_all_rows",
        }
    }
}

/// One recorded collective call on one rank.
#[derive(Clone, Debug)]
pub struct CommEvent {
    pub op: CollOp,
    /// Per-rank payload bytes (the buffer this rank contributed).
    pub bytes: usize,
    pub group_size: usize,
    /// Label of the process group ("world", "x", "y", "z", ...).
    pub group: &'static str,
}

/// Per-rank log of collective calls; the performance model replays this
/// against the ring-collective cost equations.
///
/// Uses a mutex (not `RefCell`) so communicators derived via `split` on the
/// same rank can share one `Arc<TrafficLedger>` while the whole bundle stays
/// `Send`. Contention is nil: only one thread ever touches a rank's ledger.
#[derive(Default)]
pub struct TrafficLedger {
    events: Mutex<Vec<CommEvent>>,
    enabled: Mutex<bool>,
}

impl TrafficLedger {
    pub fn new(enabled: bool) -> Self {
        Self { events: Mutex::new(Vec::new()), enabled: Mutex::new(enabled) }
    }

    pub fn record(&self, ev: CommEvent) {
        if *self.enabled.lock() {
            self.events.lock().push(ev);
        }
    }

    pub fn set_enabled(&self, on: bool) {
        *self.enabled.lock() = on;
    }

    pub fn take(&self) -> Vec<CommEvent> {
        std::mem::take(&mut self.events.lock())
    }

    pub fn snapshot(&self) -> Vec<CommEvent> {
        self.events.lock().clone()
    }

    pub fn total_bytes(&self) -> usize {
        self.events.lock().iter().map(|e| e.bytes).sum()
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_reduce_ops() {
        assert_eq!(f32::reduce(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(f32::reduce(ReduceOp::Max, 1.5, 2.5), 2.5);
        assert_eq!(f32::reduce(ReduceOp::Min, 1.5, 2.5), 1.5);
    }

    #[test]
    fn int_reduce_ops() {
        assert_eq!(u64::reduce(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(i32::reduce(ReduceOp::Max, -3, -4), -3);
        assert_eq!(usize::reduce(ReduceOp::Min, 3, 4), 3);
    }

    #[test]
    fn ledger_records_when_enabled() {
        let ledger = TrafficLedger::new(true);
        ledger.record(CommEvent { op: CollOp::AllReduce, bytes: 1024, group_size: 4, group: "x" });
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.total_bytes(), 1024);
        ledger.set_enabled(false);
        ledger.record(CommEvent { op: CollOp::Barrier, bytes: 0, group_size: 4, group: "x" });
        assert_eq!(ledger.len(), 1);
        let taken = ledger.take();
        assert_eq!(taken.len(), 1);
        assert!(ledger.is_empty());
    }
}
