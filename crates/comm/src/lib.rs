//! Collective-communication runtime for the Plexus reproduction.
//!
//! The paper runs on NCCL/RCCL process groups spanning up to 2048 GPUs.
//! Here the programming model is kept identical to `torch.distributed` —
//! a world communicator, MPI-style splits to build the X/Y/Z process
//! groups of the 3D grid, and the collective set the paper's algorithms
//! use — but the *backend* is pluggable behind the [`Communicator`] trait:
//!
//! * [`ThreadComm`] — every rank is an OS thread and collectives move real
//!   data through shared memory; [`run_world`] is its `mpirun`;
//! * `SimComm` (in `plexus-simnet`) — a single-process, cost-only world
//!   that charges the §4 ring-cost equations instead of moving data, so
//!   thousand-rank grids run as perf-model studies without a thousand
//!   threads.
//!
//! The SPMD calling contract, the nonblocking `start_*` /
//! [`PendingCollective`] rules and the determinism requirement are
//! documented once, on the [`communicator`] module and the
//! [`Communicator`] trait — they bind every backend.
//!
//! Backend-specific design notes for the thread world:
//!
//! * **Determinism** — every rank reduces contributions in ascending rank
//!   order, so an all-reduce produces *bitwise identical* results on all
//!   ranks and across runs. The Fig. 7 serial-equivalence tests depend on
//!   this.
//! * **Poison safety** — a panicking rank would deadlock naive barriers, so
//!   [`barrier::PoisonBarrier`] supports external poisoning and
//!   [`world::run_world`] poisons every barrier in the world when any rank
//!   panics, turning a crash into a clean propagated panic.
//! * **Traffic ledger** — each communicator records (collective, bytes,
//!   group size) events; the performance model replays these against the
//!   ring-collective cost equations (paper eq. 4.5) to predict epoch times
//!   at scales this machine cannot execute.

pub mod barrier;
pub mod communicator;
pub mod fault;
pub mod group;
pub mod types;
pub mod world;

pub use communicator::{Communicator, PendingCollective};
pub use fault::{Fault, FaultPlan};
pub use group::ThreadComm;
pub use types::{CollOp, CommElem, CommEvent, ReduceOp, TrafficLedger};
pub use world::{run_world, run_world_faulted, run_world_with};
