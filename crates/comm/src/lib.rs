//! Collective-communication runtime for the Plexus reproduction.
//!
//! The paper runs on NCCL/RCCL process groups spanning up to 2048 GPUs.
//! Here every *rank is an OS thread* and collectives move real data through
//! shared memory, but the programming model is kept identical to
//! `torch.distributed`: a world communicator, MPI-style `split(color, key)`
//! to build the X/Y/Z process groups of the 3D grid, and the collective set
//! the algorithms in the paper use (all-gather, all-reduce, reduce-scatter,
//! broadcast, all-to-all, barrier).
//!
//! Design notes:
//!
//! * **Determinism** — every rank reduces contributions in ascending rank
//!   order, so an all-reduce produces *bitwise identical* results on all
//!   ranks and across runs. The Fig. 7 serial-equivalence tests depend on
//!   this.
//! * **Poison safety** — a panicking rank would deadlock naive barriers, so
//!   [`barrier::PoisonBarrier`] supports external poisoning and
//!   [`world::run_world`] poisons every barrier in the world when any rank
//!   panics, turning a crash into a clean propagated panic.
//! * **Traffic ledger** — each communicator records (collective, bytes,
//!   group size) events; the performance model replays these against the
//!   ring-collective cost equations (paper eq. 4.5) to predict epoch times
//!   at scales this machine cannot execute.

pub mod barrier;
pub mod group;
pub mod types;
pub mod world;

pub use group::ThreadComm;
pub use types::{CollOp, CommElem, CommEvent, ReduceOp, TrafficLedger};
pub use world::{run_world, run_world_with};
