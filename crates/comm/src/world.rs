//! World construction and rank-thread lifecycle.
//!
//! [`run_world`] is the `mpirun` of this runtime: it spawns one thread per
//! rank, hands each a world [`ThreadComm`], and joins them. If any rank
//! panics, every barrier in the world is poisoned so sibling ranks unwind
//! instead of deadlocking, and the original panic is re-raised on the
//! caller's thread.

use crate::barrier::PoisonBarrier;
use crate::fault::FaultPlan;
use crate::group::{GroupShared, ThreadComm};
use crate::types::{CollOp, CommEvent, TrafficLedger};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Weak};

/// World-global state: the registry of every barrier ever created in this
/// world (so a crash can poison all of them) plus each rank's last recorded
/// collective (so the poison panic can name where the failure happened).
pub(crate) struct WorldState {
    barriers: Mutex<Vec<Weak<PoisonBarrier>>>,
    /// Per world-rank `(op, group label)` of the most recent collective.
    last_ops: Mutex<Vec<Option<(CollOp, &'static str)>>>,
}

impl WorldState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { barriers: Mutex::new(Vec::new()), last_ops: Mutex::new(Vec::new()) })
    }

    pub(crate) fn register_barrier(&self, b: &Arc<PoisonBarrier>) {
        self.barriers.lock().push(Arc::downgrade(b));
    }

    /// Record rank `world_rank`'s most recent collective for diagnostics.
    pub(crate) fn note_op(&self, world_rank: usize, op: CollOp, group: &'static str) {
        let mut ops = self.last_ops.lock();
        if ops.len() <= world_rank {
            ops.resize(world_rank + 1, None);
        }
        ops[world_rank] = Some((op, group));
    }

    /// Poison every barrier, attributing the failure to `world_rank` and
    /// its last recorded collective so sibling ranks unwind with a message
    /// that names the origin instead of an anonymous "another rank".
    pub(crate) fn poison_all_from(&self, world_rank: usize) {
        let last = self.last_ops.lock().get(world_rank).copied().flatten();
        let origin: Arc<str> = match last {
            Some((op, group)) => format!(
                "rank {world_rank} panicked; its last collective was {} on group '{group}'",
                op.name()
            )
            .into(),
            None => format!("rank {world_rank} panicked before its first collective").into(),
        };
        for weak in self.barriers.lock().iter() {
            if let Some(b) = weak.upgrade() {
                b.poison_with(&origin);
            }
        }
    }
}

/// Run an SPMD closure on `size` rank-threads and return the per-rank
/// results in rank order.
///
/// The closure receives this rank's world communicator. Panics on any rank
/// poison the world (unblocking the others) and are re-raised here.
pub fn run_world<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ThreadComm) -> R + Send + Sync,
{
    run_world_with(size, f).0
}

/// Like [`run_world`] but also returns each rank's collective-traffic
/// ledger, which the performance model replays against the ring cost
/// equations.
pub fn run_world_with<R, F>(size: usize, f: F) -> (Vec<R>, Vec<Vec<CommEvent>>)
where
    R: Send,
    F: Fn(&ThreadComm) -> R + Send + Sync,
{
    run_world_faulted(size, None, f)
}

/// Like [`run_world_with`] but installs an optional [`FaultPlan`] on every
/// rank's communicator (and all groups split from it), arming deterministic
/// fault injection in the collectives. `None` is the production path and
/// costs nothing.
pub fn run_world_faulted<R, F>(
    size: usize,
    faults: Option<Arc<FaultPlan>>,
    f: F,
) -> (Vec<R>, Vec<Vec<CommEvent>>)
where
    R: Send,
    F: Fn(&ThreadComm) -> R + Send + Sync,
{
    assert!(size > 0, "run_world: world size must be positive");
    let world = WorldState::new();
    let root = GroupShared::new(&world, size, "world");

    type RankOutcome<R> = Result<(R, Vec<CommEvent>), Box<dyn std::any::Any + Send>>;

    let outcomes: Vec<RankOutcome<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let root = Arc::clone(&root);
                let world = Arc::clone(&world);
                let faults = faults.clone();
                let f = &f;
                s.spawn(move || {
                    let ledger = Arc::new(TrafficLedger::new(true));
                    let comm = ThreadComm::new(
                        rank,
                        root,
                        Arc::clone(&world),
                        Arc::clone(&ledger),
                        rank,
                        faults,
                    );
                    let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    match result {
                        Ok(r) => Ok((r, ledger.take())),
                        Err(e) => {
                            world.poison_all_from(rank);
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread died outside catch_unwind"))
            .collect()
    });

    // Prefer re-raising an original panic over a downstream poison panic.
    let mut poison_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut results = Vec::with_capacity(size);
    let mut ledgers = Vec::with_capacity(size);
    for outcome in outcomes {
        match outcome {
            Ok((r, l)) => {
                results.push(r);
                ledgers.push(l);
            }
            Err(payload) => {
                if is_poison_panic(&payload) {
                    poison_panic.get_or_insert(payload);
                } else {
                    resume_unwind(payload);
                }
            }
        }
    }
    if let Some(p) = poison_panic {
        resume_unwind(p);
    }
    (results, ledgers)
}

fn is_poison_panic(payload: &Box<dyn std::any::Any + Send>) -> bool {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s.contains("poisoned")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.contains("poisoned")
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::Communicator;
    use crate::types::ReduceOp;

    #[test]
    fn world_all_reduce_sums() {
        let results = run_world(4, |comm| {
            let mut buf = vec![comm.rank() as f32 + 1.0; 3];
            comm.all_reduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn all_reduce_bitwise_identical_across_ranks() {
        // f32 addition is non-associative; identical results across ranks
        // require the fixed reduction order the implementation promises.
        let results = run_world(8, |comm| {
            let mut buf = vec![0.1f32 * (comm.rank() as f32 + 1.0); 1000];
            comm.all_reduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for r in 1..8 {
            assert_eq!(results[0], results[r], "rank {} differs bitwise", r);
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let results = run_world(3, |comm| comm.all_gather(&[comm.rank() as u32 * 10]));
        for r in &results {
            assert_eq!(r, &vec![0, 10, 20]);
        }
    }

    #[test]
    fn reduce_scatter_returns_own_chunk() {
        let results = run_world(4, |comm| {
            let buf: Vec<f32> = (0..8).map(|i| (i + comm.rank()) as f32).collect();
            comm.reduce_scatter(&buf, ReduceOp::Sum)
        });
        // Sum over ranks of (i + rank) = 4*i + 6.
        for (rank, r) in results.iter().enumerate() {
            let expect: Vec<f32> = (2 * rank..2 * rank + 2).map(|i| 4.0 * i as f32 + 6.0).collect();
            assert_eq!(r, &expect, "rank {} chunk", rank);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_world(4, |comm| {
            let mut buf = if comm.rank() == 2 { vec![7u64, 8, 9] } else { vec![] };
            comm.broadcast(&mut buf, 2);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![7, 8, 9]);
        }
    }

    #[test]
    fn all_to_all_transposes_chunks() {
        let results = run_world(3, |comm| {
            let sends: Vec<Vec<u32>> =
                (0..3).map(|d| vec![(comm.rank() * 10 + d) as u32]).collect();
            comm.all_to_all(sends)
        });
        for (rank, r) in results.iter().enumerate() {
            let expect: Vec<Vec<u32>> = (0..3).map(|s| vec![(s * 10 + rank) as u32]).collect();
            assert_eq!(r, &expect, "rank {} received", rank);
        }
    }

    #[test]
    fn all_to_all_supports_ragged_chunks() {
        let results = run_world(2, |comm| {
            let sends: Vec<Vec<f32>> = if comm.rank() == 0 {
                vec![vec![], vec![1.0, 2.0, 3.0]]
            } else {
                vec![vec![9.0], vec![]]
            };
            comm.all_to_all(sends)
        });
        assert_eq!(results[0], vec![vec![], vec![9.0]]);
        assert_eq!(results[1], vec![vec![1.0, 2.0, 3.0], vec![]]);
    }

    #[test]
    fn split_builds_row_groups() {
        // 2x3 grid: color = row, key = column.
        let results = run_world(6, |comm| {
            let row = comm.rank() / 3;
            let col = comm.rank() % 3;
            let rowc = comm.split(row as u64, col as u64, "row");
            let mut v = vec![comm.rank() as u32];
            let gathered = rowc.all_gather(&v);
            v[0] = 0;
            (rowc.rank(), rowc.size(), gathered)
        });
        assert_eq!(results[0], (0, 3, vec![0, 1, 2]));
        assert_eq!(results[4], (1, 3, vec![3, 4, 5]));
        assert_eq!(results[5], (2, 3, vec![3, 4, 5]));
    }

    #[test]
    fn nested_splits_work() {
        // 8 ranks -> 2 groups of 4 -> 4 groups of 2; reduce within leaves.
        let results = run_world(8, |comm| {
            let g4 = comm.split((comm.rank() / 4) as u64, comm.rank() as u64, "g4");
            let g2 = g4.split((g4.rank() / 2) as u64, g4.rank() as u64, "g2");
            let mut v = vec![comm.rank() as u64];
            g2.all_reduce(&mut v, ReduceOp::Sum);
            v[0]
        });
        assert_eq!(results, vec![1, 1, 5, 5, 9, 9, 13, 13]);
    }

    #[test]
    fn varlen_gather_preserves_shapes() {
        let results = run_world(3, |comm| {
            let data: Vec<u32> = (0..comm.rank() as u32).collect();
            comm.all_gather_varlen(&data)
        });
        assert_eq!(results[0], vec![vec![], vec![0], vec![0, 1]]);
    }

    #[test]
    fn ledger_tracks_traffic() {
        let (_, ledgers) = run_world_with(2, |comm| {
            let mut v = vec![0.0f32; 256];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            let _ = comm.all_gather(&v[..16]);
        });
        assert_eq!(ledgers[0].len(), 2);
        assert_eq!(ledgers[0][0].bytes, 1024);
        assert_eq!(ledgers[0][1].bytes, 64);
        assert_eq!(ledgers[1][0].group_size, 2);
    }

    #[test]
    fn rank_panic_poisons_world_instead_of_deadlocking() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world(3, |comm| {
                if comm.rank() == 1 {
                    panic!("injected failure on rank 1");
                }
                // Ranks 0 and 2 would deadlock here without poisoning.
                comm.barrier();
            });
        }));
        let payload = caught.expect_err("must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "got panic message: {}", msg);
    }

    #[test]
    fn panic_in_axis_subgroup_unwinds_other_axis_groups() {
        // Satellite for the 3D grid: a 2x2 grid split into row ("x") and
        // column ("y") groups. Rank 3 panics *inside its x group's
        // collective* while ranks 0 and 1 are blocked in a collective of a
        // *different* group (their y groups, which rank 3 is not a member
        // of). Without world-wide poisoning those y-group barriers would
        // never release: the whole world must unwind instead.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world(4, |comm| {
                let row = comm.split((comm.rank() / 2) as u64, comm.rank() as u64, "x");
                let col = comm.split((comm.rank() % 2) as u64, comm.rank() as u64, "y");
                if comm.rank() == 3 {
                    panic!("injected failure inside x group");
                }
                if comm.rank() == 2 {
                    // Rank 2 waits for rank 3 in their shared x group.
                    row.barrier();
                }
                // Ranks 0 and 1 block in y groups {0,2} and {1,3}, whose
                // missing member is stuck (2) or dead (3).
                let mut v = vec![comm.rank() as f32];
                col.all_reduce(&mut v, ReduceOp::Sum);
            });
        }));
        let payload = caught.expect_err("panic must propagate, not deadlock");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "got panic message: {}", msg);
    }

    #[test]
    fn poison_origin_is_observable_by_siblings() {
        // Drive the barrier directly: rank 1's failure must surface in
        // rank 0's poison panic with the origin rank and collective name.
        use std::sync::Mutex as StdMutex;
        let sibling_msg = Arc::new(StdMutex::new(String::new()));
        let sm = Arc::clone(&sibling_msg);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world(2, move |comm| {
                let mut v = vec![comm.rank() as f32];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                if comm.rank() == 1 {
                    panic!("injected failure on rank 1");
                }
                let r = catch_unwind(AssertUnwindSafe(|| comm.barrier()));
                if let Err(p) = r {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_default();
                    *sm.lock().unwrap() = msg.clone();
                    std::panic::resume_unwind(Box::new(msg));
                }
            });
        }));
        assert!(caught.is_err());
        let msg = sibling_msg.lock().unwrap().clone();
        assert!(msg.contains("poisoned"), "poison marker kept: {msg}");
        assert!(msg.contains("rank 1"), "origin rank named: {msg}");
        assert!(msg.contains("all_reduce"), "last collective named: {msg}");
    }

    #[test]
    fn fault_plan_aborts_nth_collective() {
        use crate::fault::{Fault, FaultPlan};
        // Rank 1's 2nd collective is the all_gather; the plan must abort
        // exactly there and the world must unwind, not deadlock.
        let plan = Arc::new(FaultPlan::new().with(Fault::CollectiveAbort { rank: 1, nth: 2 }));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world_faulted(3, Some(Arc::clone(&plan)), |comm| {
                let mut v = vec![comm.rank() as f32];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                let _ = comm.all_gather(&[comm.rank() as u32]);
                comm.barrier();
            });
        }));
        let payload = caught.expect_err("injected collective abort must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected abort"), "got: {msg}");
        assert!(msg.contains("collective #2"), "got: {msg}");
        assert!(plan.exhausted(), "the armed fault must have been consumed");
    }

    #[test]
    fn fault_plan_rides_through_splits() {
        use crate::fault::{Fault, FaultPlan};
        // The abort targets world rank 3 even though the faulting call
        // happens on a subgroup handle where its group rank is 1.
        let plan = Arc::new(FaultPlan::new().with(Fault::CollectiveAbort { rank: 3, nth: 2 }));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world_faulted(4, Some(plan), |comm| {
                let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64, "sub");
                comm.barrier(); // collective #1 on every rank
                let mut v = vec![comm.rank() as f32];
                sub.all_reduce(&mut v, ReduceOp::Sum); // collective #2: fires on world rank 3
            });
        }));
        let payload = caught.expect_err("fault must fire on the subgroup handle");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("rank 3"), "world rank named: {msg}");
        assert!(msg.contains("group 'sub'"), "subgroup named: {msg}");
    }

    #[test]
    fn no_fault_plan_is_the_default_and_harmless() {
        let (results, _) = run_world_faulted(2, None, |comm| {
            let mut v = vec![1.0f32];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            v[0]
        });
        assert_eq!(results, vec![2.0, 2.0]);
    }

    #[test]
    fn nonblocking_matches_blocking_with_overlap() {
        // Start an all-reduce, run "local compute", gather on a *different*
        // group while it is pending, then wait: the deferred result must
        // equal the blocking one bitwise.
        let results = run_world(4, |comm| {
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64, "sub");
            let src: Vec<f32> = (0..64).map(|i| (i + comm.rank()) as f32 * 0.1).collect();
            let pending = comm.start_all_reduce(&src, ReduceOp::Sum);
            let local: f32 = src.iter().sum(); // overlapped local compute
            let gathered = sub.all_gather(&[comm.rank() as u32]);
            let nonblocking = pending.wait();
            let mut blocking = src.clone();
            comm.all_reduce(&mut blocking, ReduceOp::Sum);
            (nonblocking, blocking, local, gathered)
        });
        for (nonblocking, blocking, _, _) in &results {
            assert_eq!(nonblocking, blocking);
        }
        assert_eq!(results[0].3, vec![0, 2]);
    }

    #[test]
    fn start_reduce_scatter_matches_blocking() {
        let results = run_world(4, |comm| {
            let buf: Vec<f32> = (0..8).map(|i| (i * (comm.rank() + 1)) as f32).collect();
            let pending = comm.start_reduce_scatter(&buf, ReduceOp::Sum);
            let nonblocking = pending.wait();
            let blocking = comm.reduce_scatter(&buf, ReduceOp::Sum);
            (nonblocking, blocking)
        });
        for (nonblocking, blocking) in &results {
            assert_eq!(nonblocking, blocking);
        }
    }

    #[test]
    fn type_mismatch_is_detected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_world(2, |comm| {
                if comm.rank() == 0 {
                    let mut v = vec![0.0f32; 4];
                    comm.all_reduce(&mut v, ReduceOp::Sum);
                } else {
                    let mut v = vec![0u32; 4];
                    comm.all_reduce(&mut v, ReduceOp::Sum);
                }
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn single_rank_world_is_trivially_correct() {
        let results = run_world(1, |comm| {
            let mut v = vec![5.0f32];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            let g = comm.all_gather(&v);
            (v[0], g)
        });
        assert_eq!(results[0], (5.0, vec![5.0]));
    }
}
