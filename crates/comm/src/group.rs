//! Process groups and the thread-backed [`Communicator`] implementation.
//!
//! [`ThreadComm`] is the per-rank handle onto a process group. Collectives
//! follow a post / barrier / read-all / barrier / clear-own protocol over a
//! shared slot table:
//!
//! 1. each rank posts its contribution into its own slot;
//! 2. barrier — all contributions visible;
//! 3. each rank reads every slot (in ascending rank order, which makes
//!    reductions deterministic and identical across ranks);
//! 4. barrier — nobody may overwrite a slot before all ranks finished
//!    reading;
//! 5. each rank clears its own slot, ready for the next collective.
//!
//! The nonblocking `start_*` collectives split the protocol at the obvious
//! seam: the *start* call runs step 1 (post) and returns immediately, and
//! [`PendingCollective::wait`] runs steps 2–5 — so a rank that posted early
//! keeps computing instead of idling in the barrier while stragglers
//! arrive. Results are bitwise identical to the blocking forms (the
//! blocking forms are literally `start_*(..).wait()`).
//!
//! This is O(G·M) per rank instead of a ring's O(M), which is irrelevant
//! for correctness runs (G ≤ 64 threads) — the *cost* of the real ring
//! algorithm is accounted separately by the performance model from the
//! traffic ledger.

use crate::barrier::PoisonBarrier;
use crate::communicator::{Communicator, PendingCollective};
use crate::types::{CollOp, CommElem, CommEvent, ReduceOp, TrafficLedger};
use crate::world::WorldState;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

type Slot = Option<Box<dyn Any + Send>>;

/// State shared by all ranks of one process group.
pub(crate) struct GroupShared {
    size: usize,
    label: &'static str,
    barrier: Arc<PoisonBarrier>,
    slots: Mutex<Vec<Slot>>,
    /// Subgroups created by `split`, keyed by (split sequence number, color).
    children: Mutex<HashMap<(u64, u64), Arc<GroupShared>>>,
}

impl GroupShared {
    pub(crate) fn new(world: &Arc<WorldState>, size: usize, label: &'static str) -> Arc<Self> {
        let barrier = PoisonBarrier::new(size);
        world.register_barrier(&barrier);
        Arc::new(Self {
            size,
            label,
            barrier,
            slots: Mutex::new((0..size).map(|_| None).collect()),
            children: Mutex::new(HashMap::new()),
        })
    }
}

/// Per-rank handle for one process group of the thread-world backend:
/// every rank is an OS thread and collectives move real data through
/// shared memory.
///
/// The SPMD calling contract is documented once, on [`Communicator`].
/// Misuse (mismatched element types or buffer lengths) panics with a
/// descriptive message; [`run_world`](crate::run_world) then poisons the
/// world so sibling ranks unwind too.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    shared: Arc<GroupShared>,
    world: Arc<WorldState>,
    ledger: Arc<TrafficLedger>,
    /// Number of `split` calls made through this handle (must advance in
    /// lockstep across ranks; SPMD guarantees it).
    split_seq: Cell<u64>,
}

impl ThreadComm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<GroupShared>,
        world: Arc<WorldState>,
        ledger: Arc<TrafficLedger>,
    ) -> Self {
        assert!(rank < shared.size, "ThreadComm: rank {} out of {}", rank, shared.size);
        Self { rank, size: shared.size, shared, world, ledger, split_seq: Cell::new(0) }
    }

    fn record(&self, op: CollOp, bytes: usize) {
        self.ledger.record(CommEvent {
            op,
            bytes,
            group_size: self.size,
            group: self.shared.label,
        });
    }

    fn post(&self, value: Box<dyn Any + Send>) {
        let mut slots = self.shared.slots.lock();
        assert!(
            slots[self.rank].is_none(),
            "collective protocol violation on rank {} of group '{}': slot still occupied \
             (mismatched collective sequence across ranks, or a PendingCollective that was \
             never waited?)",
            self.rank,
            self.shared.label
        );
        slots[self.rank] = Some(value);
    }

    fn clear_own_slot(&self) {
        self.shared.slots.lock()[self.rank] = None;
    }

    /// Read phase helper: runs `f` over each rank's posted value in
    /// ascending rank order, under the slot lock.
    fn read_all<T: 'static, R>(&self, mut f: impl FnMut(usize, &T) -> R) -> Vec<R> {
        let slots = self.shared.slots.lock();
        (0..self.size)
            .map(|r| {
                let boxed = slots[r].as_ref().unwrap_or_else(|| {
                    panic!(
                        "collective on group '{}': rank {} posted nothing (mismatched calls)",
                        self.shared.label, r
                    )
                });
                let v = boxed.downcast_ref::<T>().unwrap_or_else(|| {
                    panic!(
                        "collective type mismatch on group '{}': rank {} posted a different \
                         element type",
                        self.shared.label, r
                    )
                });
                f(r, v)
            })
            .collect()
    }

    /// Steps 2–5 of the protocol for the equal-length collectives: barrier,
    /// feed every rank's posted `Vec<T>` to `sink` in ascending rank order
    /// (after a uniform type/length check), barrier, clear own slot. All
    /// reduction/gather variants share this loop so the deterministic order
    /// and the diagnostics cannot drift apart.
    fn consume_slots<T: CommElem>(
        &self,
        what: &str,
        len: usize,
        mut sink: impl FnMut(usize, &[T]),
    ) {
        self.shared.barrier.wait();
        {
            let slots = self.shared.slots.lock();
            for r in 0..self.size {
                let v = slots[r]
                    .as_ref()
                    .unwrap_or_else(|| {
                        panic!(
                            "{} on group '{}': rank {} posted nothing (mismatched calls)",
                            what, self.shared.label, r
                        )
                    })
                    .downcast_ref::<Vec<T>>()
                    .unwrap_or_else(|| {
                        panic!(
                            "{} type mismatch on group '{}' (rank {})",
                            what, self.shared.label, r
                        )
                    });
                assert_eq!(
                    v.len(),
                    len,
                    "{} length mismatch on group '{}': rank {} sent {}, rank {} sent {}",
                    what,
                    self.shared.label,
                    r,
                    v.len(),
                    self.rank,
                    len
                );
                sink(r, v);
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
    }

    /// Completion of an in-flight all-reduce, folding into `out` (which
    /// already holds this rank's contribution — overwritten by rank 0's).
    fn finish_all_reduce_into<T: CommElem>(&self, out: &mut [T], op: ReduceOp) {
        self.consume_slots::<T>("all_reduce", out.len(), |r, v| {
            if r == 0 {
                out.copy_from_slice(v);
            } else {
                for (acc, &x) in out.iter_mut().zip(v.iter()) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
    }

    /// Completion of an in-flight all-reduce, building the result vector.
    fn finish_all_reduce<T: CommElem>(&self, len: usize, op: ReduceOp) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(len);
        self.consume_slots::<T>("all_reduce", len, |r, v| {
            if r == 0 {
                out.extend_from_slice(v);
            } else {
                for (acc, &x) in out.iter_mut().zip(v.iter()) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
        out
    }

    /// Completion of an in-flight all-gather.
    fn finish_all_gather<T: CommElem>(&self, len: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(len * self.size);
        self.consume_slots::<T>("all_gather", len, |_, v| out.extend_from_slice(v));
        out
    }

    /// Completion of an in-flight reduce-scatter.
    fn finish_reduce_scatter<T: CommElem>(&self, len: usize, op: ReduceOp) -> Vec<T> {
        let chunk = len / self.size;
        let lo = self.rank * chunk;
        let hi = lo + chunk;
        let mut out: Vec<T> = Vec::with_capacity(chunk);
        self.consume_slots::<T>("reduce_scatter", len, |r, v| {
            if r == 0 {
                out.extend_from_slice(&v[lo..hi]);
            } else {
                for (acc, &x) in out.iter_mut().zip(&v[lo..hi]) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
        out
    }

    /// MPI_Comm_split with this rank's concrete color/key pair: ranks with
    /// equal `color` form a new group, ordered by `(key, parent rank)`.
    /// Must be called collectively. The returned communicator shares this
    /// rank's traffic ledger.
    ///
    /// This is the exchange-based primitive; [`Communicator::split_by`]
    /// delegates here with `f(self.rank())`.
    pub fn split(&self, color: u64, key: u64, label: &'static str) -> ThreadComm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);

        self.post(Box::new((color, key)));
        self.shared.barrier.wait();
        // Determine members of my color, ordered by (key, parent rank).
        let pairs = self.read_all::<(u64, u64), (u64, u64)>(|_, &(c, k)| (c, k));
        let mut members: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        let group_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: own rank missing from its color group");
        // The group leader materializes the shared state.
        if group_rank == 0 {
            let child = GroupShared::new(&self.world, members.len(), label);
            self.shared.children.lock().insert((seq, color), child);
        }
        self.shared.barrier.wait();
        let child = Arc::clone(
            self.shared
                .children
                .lock()
                .get(&(seq, color))
                .expect("split: leader did not publish the subgroup"),
        );
        self.shared.barrier.wait();
        self.clear_own_slot();
        ThreadComm::new(group_rank, child, Arc::clone(&self.world), Arc::clone(&self.ledger))
    }
}

impl Communicator for ThreadComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn label(&self) -> &'static str {
        self.shared.label
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn barrier(&self) {
        self.record(CollOp::Barrier, 0);
        self.shared.barrier.wait();
    }

    fn all_reduce<T: CommElem>(&self, buf: &mut [T], op: ReduceOp) {
        // In-place twin of `start_all_reduce(..).wait()`: same protocol,
        // same reduction order, but reduces into the caller's buffer
        // instead of allocating a result vector — this is the trainer's
        // hottest collective.
        self.record(CollOp::AllReduce, buf.len() * T::BYTES);
        self.post(Box::new(buf.to_vec()));
        self.finish_all_reduce_into(buf, op);
    }

    fn all_gather<T: CommElem>(&self, src: &[T]) -> Vec<T> {
        self.start_all_gather(src).wait()
    }

    fn all_gather_varlen<T: CommElem>(&self, src: &[T]) -> Vec<Vec<T>> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<T>, Vec<T>>(|_, v| v.clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    fn reduce_scatter<T: CommElem>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        self.start_reduce_scatter(buf, op).wait()
    }

    fn broadcast<T: CommElem>(&self, buf: &mut Vec<T>, root: usize) {
        assert!(root < self.size, "broadcast: root {} out of {}", root, self.size);
        self.record(CollOp::Broadcast, buf.len() * T::BYTES);
        if self.rank == root {
            self.post(Box::new(buf.clone()));
        }
        self.shared.barrier.wait();
        if self.rank != root {
            let slots = self.shared.slots.lock();
            let v = slots[root]
                .as_ref()
                .expect("broadcast: root posted nothing")
                .downcast_ref::<Vec<T>>()
                .expect("broadcast type mismatch");
            buf.clear();
            buf.extend_from_slice(v);
        }
        self.shared.barrier.wait();
        if self.rank == root {
            self.clear_own_slot();
        }
    }

    fn all_to_all<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size,
            "all_to_all: expected {} destination chunks, got {}",
            self.size,
            sends.len()
        );
        let bytes: usize = sends.iter().map(|s| s.len() * T::BYTES).sum();
        self.record(CollOp::AllToAll, bytes);
        self.post(Box::new(sends));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<Vec<T>>, Vec<T>>(|_, per_dest| per_dest[self.rank].clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    fn split_by<F>(&self, f: F, label: &'static str) -> Self
    where
        F: Fn(usize) -> (u64, u64),
    {
        let (color, key) = f(self.rank);
        self.split(color, key, label)
    }

    fn start_all_reduce<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        self.record(CollOp::AllReduce, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_all_reduce(len, op))
    }

    fn start_all_gather<'c, T: CommElem>(&'c self, src: &[T]) -> PendingCollective<'c, T> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_all_gather(len))
    }

    fn start_reduce_scatter<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        assert_eq!(
            src.len() % self.size,
            0,
            "reduce_scatter: buffer length {} not divisible by group size {}",
            src.len(),
            self.size
        );
        self.record(CollOp::ReduceScatter, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_reduce_scatter(len, op))
    }
}
