//! Process groups and collectives.
//!
//! [`ThreadComm`] is the per-rank handle onto a process group. Collectives
//! follow a post / barrier / read-all / barrier / clear-own protocol over a
//! shared slot table:
//!
//! 1. each rank posts its contribution into its own slot;
//! 2. barrier — all contributions visible;
//! 3. each rank reads every slot (in ascending rank order, which makes
//!    reductions deterministic and identical across ranks);
//! 4. barrier — nobody may overwrite a slot before all ranks finished
//!    reading;
//! 5. each rank clears its own slot, ready for the next collective.
//!
//! This is O(G·M) per rank instead of a ring's O(M), which is irrelevant
//! for correctness runs (G ≤ 64 threads) — the *cost* of the real ring
//! algorithm is accounted separately by the performance model from the
//! traffic ledger.

use crate::barrier::PoisonBarrier;
use crate::types::{CollOp, CommElem, CommEvent, ReduceOp, TrafficLedger};
use crate::world::WorldState;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

type Slot = Option<Box<dyn Any + Send>>;

/// State shared by all ranks of one process group.
pub(crate) struct GroupShared {
    size: usize,
    label: &'static str,
    barrier: Arc<PoisonBarrier>,
    slots: Mutex<Vec<Slot>>,
    /// Subgroups created by `split`, keyed by (split sequence number, color).
    children: Mutex<HashMap<(u64, u64), Arc<GroupShared>>>,
}

impl GroupShared {
    pub(crate) fn new(world: &Arc<WorldState>, size: usize, label: &'static str) -> Arc<Self> {
        let barrier = PoisonBarrier::new(size);
        world.register_barrier(&barrier);
        Arc::new(Self {
            size,
            label,
            barrier,
            slots: Mutex::new((0..size).map(|_| None).collect()),
            children: Mutex::new(HashMap::new()),
        })
    }
}

/// Per-rank communicator handle for one process group.
///
/// All collectives must be called by **every** rank of the group, in the
/// same order, with compatible arguments — the usual SPMD contract. Misuse
/// (mismatched element types or buffer lengths) panics with a descriptive
/// message and poisons the world so sibling ranks unwind too.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    shared: Arc<GroupShared>,
    world: Arc<WorldState>,
    ledger: Arc<TrafficLedger>,
    /// Number of `split` calls made through this handle (must advance in
    /// lockstep across ranks; SPMD guarantees it).
    split_seq: Cell<u64>,
}

impl ThreadComm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<GroupShared>,
        world: Arc<WorldState>,
        ledger: Arc<TrafficLedger>,
    ) -> Self {
        assert!(rank < shared.size, "ThreadComm: rank {} out of {}", rank, shared.size);
        Self { rank, size: shared.size, shared, world, ledger, split_seq: Cell::new(0) }
    }

    /// Rank within this group.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this group.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Label given at creation ("world") or `split` time ("x", "y", "z"...).
    pub fn label(&self) -> &'static str {
        self.shared.label
    }

    /// The rank's traffic ledger (shared across all groups derived on this
    /// rank).
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn record(&self, op: CollOp, bytes: usize) {
        self.ledger.record(CommEvent {
            op,
            bytes,
            group_size: self.size,
            group: self.shared.label,
        });
    }

    /// Synchronize all ranks of the group.
    pub fn barrier(&self) {
        self.record(CollOp::Barrier, 0);
        self.shared.barrier.wait();
    }

    fn post(&self, value: Box<dyn Any + Send>) {
        let mut slots = self.shared.slots.lock();
        assert!(
            slots[self.rank].is_none(),
            "collective protocol violation on rank {} of group '{}': slot still occupied \
             (mismatched collective sequence across ranks?)",
            self.rank,
            self.shared.label
        );
        slots[self.rank] = Some(value);
    }

    fn clear_own_slot(&self) {
        self.shared.slots.lock()[self.rank] = None;
    }

    /// Read phase helper: runs `f` over each rank's posted value in
    /// ascending rank order, under the slot lock.
    fn read_all<T: 'static, R>(&self, mut f: impl FnMut(usize, &T) -> R) -> Vec<R> {
        let slots = self.shared.slots.lock();
        (0..self.size)
            .map(|r| {
                let boxed = slots[r].as_ref().unwrap_or_else(|| {
                    panic!(
                        "collective on group '{}': rank {} posted nothing (mismatched calls)",
                        self.shared.label, r
                    )
                });
                let v = boxed.downcast_ref::<T>().unwrap_or_else(|| {
                    panic!(
                        "collective type mismatch on group '{}': rank {} posted a different \
                         element type",
                        self.shared.label, r
                    )
                });
                f(r, v)
            })
            .collect()
    }

    /// All-reduce in place: after the call every rank's `buf` holds the
    /// elementwise reduction over all ranks' inputs (bitwise identical on
    /// every rank).
    pub fn all_reduce<T: CommElem>(&self, buf: &mut [T], op: ReduceOp) {
        self.record(CollOp::AllReduce, buf.len() * T::BYTES);
        self.post(Box::new(buf.to_vec()));
        self.shared.barrier.wait();
        {
            let slots = self.shared.slots.lock();
            for r in 0..self.size {
                let v = slots[r]
                    .as_ref()
                    .expect("all_reduce: missing contribution")
                    .downcast_ref::<Vec<T>>()
                    .unwrap_or_else(|| {
                        panic!(
                            "all_reduce type mismatch on group '{}' (rank {})",
                            self.shared.label, r
                        )
                    });
                assert_eq!(
                    v.len(),
                    buf.len(),
                    "all_reduce length mismatch on group '{}': rank {} sent {}, rank {} sent {}",
                    self.shared.label,
                    r,
                    v.len(),
                    self.rank,
                    buf.len()
                );
                if r == 0 {
                    buf.copy_from_slice(v);
                } else {
                    for (acc, &x) in buf.iter_mut().zip(v.iter()) {
                        *acc = T::reduce(op, *acc, x);
                    }
                }
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
    }

    /// All-gather equal-size shards: returns the concatenation of every
    /// rank's `src` in rank order (length `src.len() * group size`).
    pub fn all_gather<T: CommElem>(&self, src: &[T]) -> Vec<T> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        self.shared.barrier.wait();
        let mut out = Vec::with_capacity(src.len() * self.size);
        {
            let slots = self.shared.slots.lock();
            for r in 0..self.size {
                let v = slots[r]
                    .as_ref()
                    .expect("all_gather: missing contribution")
                    .downcast_ref::<Vec<T>>()
                    .expect("all_gather type mismatch");
                assert_eq!(
                    v.len(),
                    src.len(),
                    "all_gather: unequal shard sizes (rank {} sent {}, rank {} sent {}); \
                     use all_gather_varlen for ragged data",
                    r,
                    v.len(),
                    self.rank,
                    src.len()
                );
                out.extend_from_slice(v);
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// All-gather with per-rank sizes preserved (ragged).
    pub fn all_gather_varlen<T: CommElem>(&self, src: &[T]) -> Vec<Vec<T>> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<T>, Vec<T>>(|_, v| v.clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// Reduce-scatter: reduce all ranks' equal-length buffers elementwise,
    /// then return this rank's 1/G chunk of the result. `buf.len()` must be
    /// divisible by the group size.
    pub fn reduce_scatter<T: CommElem>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        assert_eq!(
            buf.len() % self.size,
            0,
            "reduce_scatter: buffer length {} not divisible by group size {}",
            buf.len(),
            self.size
        );
        self.record(CollOp::ReduceScatter, buf.len() * T::BYTES);
        self.post(Box::new(buf.to_vec()));
        self.shared.barrier.wait();
        let chunk = buf.len() / self.size;
        let lo = self.rank * chunk;
        let hi = lo + chunk;
        let mut out = vec![buf[0]; chunk];
        {
            let slots = self.shared.slots.lock();
            for r in 0..self.size {
                let v = slots[r]
                    .as_ref()
                    .expect("reduce_scatter: missing contribution")
                    .downcast_ref::<Vec<T>>()
                    .expect("reduce_scatter type mismatch");
                assert_eq!(v.len(), buf.len(), "reduce_scatter: length mismatch");
                if r == 0 {
                    out.copy_from_slice(&v[lo..hi]);
                } else {
                    for (acc, &x) in out.iter_mut().zip(&v[lo..hi]) {
                        *acc = T::reduce(op, *acc, x);
                    }
                }
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// Broadcast `buf` from `root` to every rank.
    pub fn broadcast<T: CommElem>(&self, buf: &mut Vec<T>, root: usize) {
        assert!(root < self.size, "broadcast: root {} out of {}", root, self.size);
        self.record(CollOp::Broadcast, buf.len() * T::BYTES);
        if self.rank == root {
            self.post(Box::new(buf.clone()));
        }
        self.shared.barrier.wait();
        if self.rank != root {
            let slots = self.shared.slots.lock();
            let v = slots[root]
                .as_ref()
                .expect("broadcast: root posted nothing")
                .downcast_ref::<Vec<T>>()
                .expect("broadcast type mismatch");
            buf.clear();
            buf.extend_from_slice(v);
        }
        self.shared.barrier.wait();
        if self.rank == root {
            self.clear_own_slot();
        }
    }

    /// All-to-all: `sends[d]` goes to rank `d`; returns `recv` where
    /// `recv[s]` came from rank `s`. Chunks may be ragged (BNS-GCN boundary
    /// exchange needs that).
    pub fn all_to_all<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size,
            "all_to_all: expected {} destination chunks, got {}",
            self.size,
            sends.len()
        );
        let bytes: usize = sends.iter().map(|s| s.len() * T::BYTES).sum();
        self.record(CollOp::AllToAll, bytes);
        self.post(Box::new(sends));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<Vec<T>>, Vec<T>>(|_, per_dest| per_dest[self.rank].clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// MPI_Comm_split: ranks with equal `color` form a new group, ordered
    /// by `(key, parent rank)`. Must be called collectively. The returned
    /// communicator shares this rank's traffic ledger.
    pub fn split(&self, color: u64, key: u64, label: &'static str) -> ThreadComm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);

        self.post(Box::new((color, key)));
        self.shared.barrier.wait();
        // Determine members of my color, ordered by (key, parent rank).
        let pairs = self.read_all::<(u64, u64), (u64, u64)>(|_, &(c, k)| (c, k));
        let mut members: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        let group_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: own rank missing from its color group");
        // The group leader materializes the shared state.
        if group_rank == 0 {
            let child = GroupShared::new(&self.world, members.len(), label);
            self.shared.children.lock().insert((seq, color), child);
        }
        self.shared.barrier.wait();
        let child = Arc::clone(
            self.shared
                .children
                .lock()
                .get(&(seq, color))
                .expect("split: leader did not publish the subgroup"),
        );
        self.shared.barrier.wait();
        self.clear_own_slot();
        ThreadComm::new(group_rank, child, Arc::clone(&self.world), Arc::clone(&self.ledger))
    }
}
