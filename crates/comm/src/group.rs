//! Process groups and the thread-backed [`Communicator`] implementation.
//!
//! [`ThreadComm`] is the per-rank handle onto a process group. Collectives
//! follow a post / barrier / read-all / barrier / clear-own protocol over a
//! shared slot table:
//!
//! 1. each rank posts its contribution into its own slot;
//! 2. barrier — all contributions visible;
//! 3. each rank reads every slot (in ascending rank order, which makes
//!    reductions deterministic and identical across ranks);
//! 4. barrier — nobody may overwrite a slot before all ranks finished
//!    reading;
//! 5. each rank clears its own slot, ready for the next collective.
//!
//! The nonblocking `start_*` collectives split the protocol at the obvious
//! seam: the *start* call runs step 1 (post) and returns immediately, and
//! [`PendingCollective::wait`] runs steps 2–5 — so a rank that posted early
//! keeps computing instead of idling in the barrier while stragglers
//! arrive. The blocking forms are the trait defaults, literally
//! `start_*(..).wait()`, so this backend implements exactly one data path
//! per collective.
//!
//! The sparse collectives (`start_all_gather_rows`,
//! `start_all_to_all_rows`) run the protocol *twice* inside one
//! collective: phase one exchanges the row-index requests (posted at start
//! time), phase two ships only the requested rows. Their ledger events
//! record the indexed sizes — the rows this rank actually served plus its
//! index upload — which is what makes the dense-vs-sparse volume studies
//! honest.
//!
//! This is O(G·M) per rank instead of a ring's O(M), which is irrelevant
//! for correctness runs (G ≤ 64 threads) — the *cost* of the real ring
//! algorithm is accounted separately by the performance model from the
//! traffic ledger.

use crate::barrier::PoisonBarrier;
use crate::communicator::{Communicator, PendingCollective};
use crate::fault::FaultPlan;
use crate::types::{CollOp, CommElem, CommEvent, ReduceOp, TrafficLedger};
use crate::world::WorldState;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

type Slot = Option<Box<dyn Any + Send>>;

/// State shared by all ranks of one process group.
pub(crate) struct GroupShared {
    size: usize,
    label: &'static str,
    barrier: Arc<PoisonBarrier>,
    slots: Mutex<Vec<Slot>>,
    /// Subgroups created by `split`, keyed by (split sequence number, color).
    children: Mutex<HashMap<(u64, u64), Arc<GroupShared>>>,
}

impl GroupShared {
    pub(crate) fn new(world: &Arc<WorldState>, size: usize, label: &'static str) -> Arc<Self> {
        let barrier = PoisonBarrier::new(size);
        world.register_barrier(&barrier);
        Arc::new(Self {
            size,
            label,
            barrier,
            slots: Mutex::new((0..size).map(|_| None).collect()),
            children: Mutex::new(HashMap::new()),
        })
    }
}

/// Per-rank handle for one process group of the thread-world backend:
/// every rank is an OS thread and collectives move real data through
/// shared memory.
///
/// The SPMD calling contract is documented once, on [`Communicator`].
/// Misuse (mismatched element types or buffer lengths) panics with a
/// descriptive message; [`run_world`](crate::run_world) then poisons the
/// world so sibling ranks unwind too.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    shared: Arc<GroupShared>,
    world: Arc<WorldState>,
    ledger: Arc<TrafficLedger>,
    /// This thread's rank in the *world* group, stable across splits;
    /// poison diagnostics and fault injection key off it.
    world_rank: usize,
    /// Armed fault-injection plan, if any (see [`FaultPlan`]).
    faults: Option<Arc<FaultPlan>>,
    /// Number of `split` calls made through this handle (must advance in
    /// lockstep across ranks; SPMD guarantees it).
    split_seq: Cell<u64>,
}

impl ThreadComm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<GroupShared>,
        world: Arc<WorldState>,
        ledger: Arc<TrafficLedger>,
        world_rank: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(rank < shared.size, "ThreadComm: rank {} out of {}", rank, shared.size);
        Self {
            rank,
            size: shared.size,
            shared,
            world,
            ledger,
            world_rank,
            faults,
            split_seq: Cell::new(0),
        }
    }

    /// This rank's position in the world group (invariant under `split`).
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// The fault plan installed by `run_world_faulted`, if any.
    #[inline]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    fn record(&self, op: CollOp, bytes: usize) {
        self.world.note_op(self.world_rank, op, self.shared.label);
        if let Some(plan) = &self.faults {
            plan.collective_tick(self.world_rank, op.name(), self.shared.label);
        }
        self.ledger.record(CommEvent {
            op,
            bytes,
            group_size: self.size,
            group: self.shared.label,
        });
    }

    fn post(&self, value: Box<dyn Any + Send>) {
        let mut slots = self.shared.slots.lock();
        assert!(
            slots[self.rank].is_none(),
            "collective protocol violation on rank {} of group '{}': slot still occupied \
             (mismatched collective sequence across ranks, or a PendingCollective that was \
             never waited?)",
            self.rank,
            self.shared.label
        );
        slots[self.rank] = Some(value);
    }

    fn clear_own_slot(&self) {
        self.shared.slots.lock()[self.rank] = None;
    }

    /// Read phase helper: runs `f` over each rank's posted value in
    /// ascending rank order, under the slot lock.
    fn read_all<T: 'static, R>(&self, mut f: impl FnMut(usize, &T) -> R) -> Vec<R> {
        let slots = self.shared.slots.lock();
        (0..self.size)
            .map(|r| {
                let boxed = slots[r].as_ref().unwrap_or_else(|| {
                    panic!(
                        "collective on group '{}': rank {} posted nothing (mismatched calls)",
                        self.shared.label, r
                    )
                });
                let v = boxed.downcast_ref::<T>().unwrap_or_else(|| {
                    panic!(
                        "collective type mismatch on group '{}': rank {} posted a different \
                         element type",
                        self.shared.label, r
                    )
                });
                f(r, v)
            })
            .collect()
    }

    /// Steps 2–5 of the protocol for the equal-length collectives: barrier,
    /// feed every rank's posted `Vec<T>` to `sink` in ascending rank order
    /// (after a uniform type/length check), barrier, clear own slot. All
    /// reduction/gather variants share this loop so the deterministic order
    /// and the diagnostics cannot drift apart.
    fn consume_slots<T: CommElem>(
        &self,
        what: &str,
        len: usize,
        mut sink: impl FnMut(usize, &[T]),
    ) {
        self.shared.barrier.wait();
        {
            let slots = self.shared.slots.lock();
            for r in 0..self.size {
                let v = slots[r]
                    .as_ref()
                    .unwrap_or_else(|| {
                        panic!(
                            "{} on group '{}': rank {} posted nothing (mismatched calls)",
                            what, self.shared.label, r
                        )
                    })
                    .downcast_ref::<Vec<T>>()
                    .unwrap_or_else(|| {
                        panic!(
                            "{} type mismatch on group '{}' (rank {})",
                            what, self.shared.label, r
                        )
                    });
                assert_eq!(
                    v.len(),
                    len,
                    "{} length mismatch on group '{}': rank {} sent {}, rank {} sent {}",
                    what,
                    self.shared.label,
                    r,
                    v.len(),
                    self.rank,
                    len
                );
                sink(r, v);
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
    }

    /// Completion of an in-flight all-reduce, building the result vector.
    fn finish_all_reduce<T: CommElem>(&self, len: usize, op: ReduceOp) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(len);
        self.consume_slots::<T>("all_reduce", len, |r, v| {
            if r == 0 {
                out.extend_from_slice(v);
            } else {
                for (acc, &x) in out.iter_mut().zip(v.iter()) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
        out
    }

    /// Completion of an in-flight all-gather.
    fn finish_all_gather<T: CommElem>(&self, len: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(len * self.size);
        self.consume_slots::<T>("all_gather", len, |_, v| out.extend_from_slice(v));
        out
    }

    /// Completion of an in-flight reduce-scatter.
    fn finish_reduce_scatter<T: CommElem>(&self, len: usize, op: ReduceOp) -> Vec<T> {
        let chunk = len / self.size;
        let lo = self.rank * chunk;
        let hi = lo + chunk;
        let mut out: Vec<T> = Vec::with_capacity(chunk);
        self.consume_slots::<T>("reduce_scatter", len, |r, v| {
            if r == 0 {
                out.extend_from_slice(&v[lo..hi]);
            } else {
                for (acc, &x) in out.iter_mut().zip(&v[lo..hi]) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
        out
    }

    /// Completion of an in-flight sparse row gather. Phase one (index
    /// exchange) was posted at start time; this runs: barrier → read every
    /// rank's `row_ids` and derive each owner's *serve list* (the sorted,
    /// deduplicated local rows anyone requested of it — every rank derives
    /// all `size` lists identically from the same index table, so owners
    /// and readers agree on row placement without another exchange) →
    /// barrier → repost this rank's served rows → barrier → copy each
    /// requested row out of its owner's served block → barrier → clear.
    fn finish_all_gather_rows<T: CommElem>(
        &self,
        src: Vec<T>,
        row_ids: Vec<u32>,
        row_width: usize,
    ) -> Vec<T> {
        let local_rows = src.len() / row_width;
        self.shared.barrier.wait();
        let all_ids = self.read_all::<Vec<u32>, Vec<u32>>(|_, v| v.clone());
        let mut serve: Vec<Vec<u32>> = vec![Vec::new(); self.size];
        for ids in &all_ids {
            for &g in ids {
                assert!(
                    (g as usize) < local_rows * self.size,
                    "all_gather_rows on group '{}': row id {} out of {} global rows",
                    self.shared.label,
                    g,
                    local_rows * self.size
                );
                serve[g as usize / local_rows].push(g % local_rows as u32);
            }
        }
        for s in &mut serve {
            s.sort_unstable();
            s.dedup();
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
        let mut mine: Vec<T> = Vec::with_capacity(serve[self.rank].len() * row_width);
        for &l in &serve[self.rank] {
            mine.extend_from_slice(&src[l as usize * row_width..][..row_width]);
        }
        // Indexed sizes: the rows this rank actually serves plus its index
        // upload — never the dense block.
        self.record(
            CollOp::AllGatherRows,
            mine.len() * T::BYTES + row_ids.len() * std::mem::size_of::<u32>(),
        );
        self.post(Box::new(mine));
        self.shared.barrier.wait();
        let mut out: Vec<T> = Vec::with_capacity(row_ids.len() * row_width);
        {
            let slots = self.shared.slots.lock();
            for &g in &row_ids {
                let owner = g as usize / local_rows;
                let local = g % local_rows as u32;
                let served = slots[owner]
                    .as_ref()
                    .expect("all_gather_rows: owner posted no rows")
                    .downcast_ref::<Vec<T>>()
                    .expect("all_gather_rows row-phase type mismatch");
                let pos = serve[owner]
                    .binary_search(&local)
                    .expect("all_gather_rows: requested row missing from serve list");
                out.extend_from_slice(&served[pos * row_width..][..row_width]);
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// Completion of an in-flight request-driven row exchange. The request
    /// table (`requests[p]` = local rows of rank `p` this rank wants) was
    /// posted at start time; each owner reads what every peer wants *from
    /// it*, reposts per-requester row chunks, and each requester takes its
    /// chunk from every owner in ascending owner order.
    fn finish_all_to_all_rows<T: CommElem>(
        &self,
        src: Vec<T>,
        requests: Vec<Vec<u32>>,
        row_width: usize,
    ) -> Vec<T> {
        let local_rows = src.len() / row_width;
        self.shared.barrier.wait();
        let wants_from_me =
            self.read_all::<Vec<Vec<u32>>, Vec<u32>>(|_, per_owner| per_owner[self.rank].clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        let chunks: Vec<Vec<T>> = wants_from_me
            .iter()
            .enumerate()
            .map(|(r, ids)| {
                let mut rows = Vec::with_capacity(ids.len() * row_width);
                for &l in ids {
                    assert!(
                        (l as usize) < local_rows,
                        "all_to_all_rows on group '{}': rank {} requested local row {} of a \
                         {}-row block",
                        self.shared.label,
                        r,
                        l,
                        local_rows
                    );
                    rows.extend_from_slice(&src[l as usize * row_width..][..row_width]);
                }
                rows
            })
            .collect();
        let outgoing_rows: usize = chunks.iter().map(|c| c.len() * T::BYTES).sum();
        let outgoing_ids: usize =
            requests.iter().map(|r| r.len() * std::mem::size_of::<u32>()).sum();
        self.record(CollOp::AllToAllRows, outgoing_rows + outgoing_ids);
        self.post(Box::new(chunks));
        self.shared.barrier.wait();
        let out_len: usize = requests.iter().map(|r| r.len() * row_width).sum();
        let mut out: Vec<T> = Vec::with_capacity(out_len);
        {
            let slots = self.shared.slots.lock();
            for owner in 0..self.size {
                let per_requester = slots[owner]
                    .as_ref()
                    .expect("all_to_all_rows: owner posted no rows")
                    .downcast_ref::<Vec<Vec<T>>>()
                    .expect("all_to_all_rows row-phase type mismatch");
                out.extend_from_slice(&per_requester[self.rank]);
            }
        }
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    /// MPI_Comm_split with this rank's concrete color/key pair: ranks with
    /// equal `color` form a new group, ordered by `(key, parent rank)`.
    /// Must be called collectively. The returned communicator shares this
    /// rank's traffic ledger.
    ///
    /// This is the exchange-based primitive; [`Communicator::split_by`]
    /// delegates here with `f(self.rank())`.
    pub fn split(&self, color: u64, key: u64, label: &'static str) -> ThreadComm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);

        self.post(Box::new((color, key)));
        self.shared.barrier.wait();
        // Determine members of my color, ordered by (key, parent rank).
        let pairs = self.read_all::<(u64, u64), (u64, u64)>(|_, &(c, k)| (c, k));
        let mut members: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        let group_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: own rank missing from its color group");
        // The group leader materializes the shared state.
        if group_rank == 0 {
            let child = GroupShared::new(&self.world, members.len(), label);
            self.shared.children.lock().insert((seq, color), child);
        }
        self.shared.barrier.wait();
        let child = Arc::clone(
            self.shared
                .children
                .lock()
                .get(&(seq, color))
                .expect("split: leader did not publish the subgroup"),
        );
        self.shared.barrier.wait();
        self.clear_own_slot();
        ThreadComm::new(
            group_rank,
            child,
            Arc::clone(&self.world),
            Arc::clone(&self.ledger),
            self.world_rank,
            self.faults.clone(),
        )
    }
}

impl Communicator for ThreadComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn label(&self) -> &'static str {
        self.shared.label
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn barrier(&self) {
        self.record(CollOp::Barrier, 0);
        self.shared.barrier.wait();
    }

    // Specializes the trait's `start_all_reduce().wait()` default: the
    // hottest collective reduces straight into `buf`, skipping the
    // default's result allocation and copy-back. Semantics are identical
    // (same ascending-rank fold `consume_slots` drives everywhere).
    fn all_reduce<T: CommElem>(&self, buf: &mut [T], op: ReduceOp) {
        self.record(CollOp::AllReduce, buf.len() * T::BYTES);
        self.post(Box::new(buf.to_vec()));
        let len = buf.len();
        self.consume_slots::<T>("all_reduce", len, |r, v| {
            if r == 0 {
                buf.copy_from_slice(v);
            } else {
                for (acc, &x) in buf.iter_mut().zip(v.iter()) {
                    *acc = T::reduce(op, *acc, x);
                }
            }
        });
    }

    fn all_gather_varlen<T: CommElem>(&self, src: &[T]) -> Vec<Vec<T>> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<T>, Vec<T>>(|_, v| v.clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    fn broadcast<T: CommElem>(&self, buf: &mut Vec<T>, root: usize) {
        assert!(root < self.size, "broadcast: root {} out of {}", root, self.size);
        self.record(CollOp::Broadcast, buf.len() * T::BYTES);
        if self.rank == root {
            self.post(Box::new(buf.clone()));
        }
        self.shared.barrier.wait();
        if self.rank != root {
            let slots = self.shared.slots.lock();
            let v = slots[root]
                .as_ref()
                .expect("broadcast: root posted nothing")
                .downcast_ref::<Vec<T>>()
                .expect("broadcast type mismatch");
            buf.clear();
            buf.extend_from_slice(v);
        }
        self.shared.barrier.wait();
        if self.rank == root {
            self.clear_own_slot();
        }
    }

    fn all_to_all<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size,
            "all_to_all: expected {} destination chunks, got {}",
            self.size,
            sends.len()
        );
        let bytes: usize = sends.iter().map(|s| s.len() * T::BYTES).sum();
        self.record(CollOp::AllToAll, bytes);
        self.post(Box::new(sends));
        self.shared.barrier.wait();
        let out = self.read_all::<Vec<Vec<T>>, Vec<T>>(|_, per_dest| per_dest[self.rank].clone());
        self.shared.barrier.wait();
        self.clear_own_slot();
        out
    }

    fn split_by<F>(&self, f: F, label: &'static str) -> Self
    where
        F: Fn(usize) -> (u64, u64),
    {
        let (color, key) = f(self.rank);
        self.split(color, key, label)
    }

    fn start_all_reduce<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        self.record(CollOp::AllReduce, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_all_reduce(len, op))
    }

    fn start_all_gather<'c, T: CommElem>(&'c self, src: &[T]) -> PendingCollective<'c, T> {
        self.record(CollOp::AllGather, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_all_gather(len))
    }

    fn start_reduce_scatter<'c, T: CommElem>(
        &'c self,
        src: &[T],
        op: ReduceOp,
    ) -> PendingCollective<'c, T> {
        assert_eq!(
            src.len() % self.size,
            0,
            "reduce_scatter: buffer length {} not divisible by group size {}",
            src.len(),
            self.size
        );
        self.record(CollOp::ReduceScatter, src.len() * T::BYTES);
        self.post(Box::new(src.to_vec()));
        let len = src.len();
        PendingCollective::deferred(move || self.finish_reduce_scatter(len, op))
    }

    fn start_all_gather_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        row_ids: &[u32],
        row_width: usize,
    ) -> PendingCollective<'c, T> {
        assert!(row_width > 0, "all_gather_rows: row_width must be positive");
        assert_eq!(
            src.len() % row_width,
            0,
            "all_gather_rows: src length {} not a multiple of row_width {}",
            src.len(),
            row_width
        );
        // Phase one (the index exchange) posts at start time; the ledger
        // event lands at completion, once this rank knows its serve list.
        self.post(Box::new(row_ids.to_vec()));
        let src = src.to_vec();
        let row_ids = row_ids.to_vec();
        PendingCollective::deferred(move || self.finish_all_gather_rows(src, row_ids, row_width))
    }

    fn start_all_to_all_rows<'c, T: CommElem>(
        &'c self,
        src: &[T],
        requests: &[Vec<u32>],
        row_width: usize,
    ) -> PendingCollective<'c, T> {
        assert!(row_width > 0, "all_to_all_rows: row_width must be positive");
        assert_eq!(
            src.len() % row_width,
            0,
            "all_to_all_rows: src length {} not a multiple of row_width {}",
            src.len(),
            row_width
        );
        assert_eq!(
            requests.len(),
            self.size,
            "all_to_all_rows: expected {} per-owner request lists, got {}",
            self.size,
            requests.len()
        );
        self.post(Box::new(requests.to_vec()));
        let src = src.to_vec();
        let requests = requests.to_vec();
        PendingCollective::deferred(move || self.finish_all_to_all_rows(src, requests, row_width))
    }
}
