//! CAGNET's 1D tensor-parallel algorithm (Tripathy et al., SC '20) — the
//! ancestor of the SA baseline the paper compares against.
//!
//! 1D: Â and F are row-partitioned across all G ranks; every layer
//! all-gathers the full feature matrix (this is the volume the
//! sparsity-aware variant later reduces), multiplies the local row block,
//! and keeps weights replicated. The all-gather of N·D values per layer is
//! exactly why 1D stops scaling — Fig. 8's SA curves flatten while Plexus
//! keeps descending.

use plexus_comm::{run_world_with, CommEvent, Communicator, ReduceOp};
use plexus_gnn::{Adam, AdamConfig, Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::Csr;
use plexus_tensor::ops::{logsumexp_rows, relu, relu_backward_inplace, softmax_rows};
use plexus_tensor::{gemm, Matrix, Trans};

/// Result of a CAGNET-1D run.
pub struct CagnetRunResult {
    pub losses: Vec<f64>,
    pub traffic: Vec<Vec<CommEvent>>,
}

/// Train with CAGNET 1D row partitioning on `g` ranks.
pub fn train_cagnet_1d(
    ds: &LoadedDataset,
    g: usize,
    hidden_dim: usize,
    num_layers: usize,
    adam: AdamConfig,
    model_seed: u64,
    epochs: usize,
) -> CagnetRunResult {
    let n_real = ds.num_nodes();
    let n_pad = n_real.div_ceil(g) * g;
    let rows_per = n_pad / g;
    let a_pad = ds.adjacency.zero_padded(n_pad, n_pad);
    let f_pad = ds.features.zero_padded(n_pad, ds.feature_dim());
    let total_train = ds.split.num_train();
    assert!(total_train > 0, "train_cagnet_1d: no training nodes");

    let (per_rank, traffic) = run_world_with(g, |comm| {
        let p = comm.rank();
        let r0 = p * rows_per;
        let r1 = r0 + rows_per;
        let a_block: Csr = a_pad.block(r0, r1, 0, n_pad);
        let a_block_t = a_block.transposed();
        let mut features = f_pad.row_block(r0, r1);
        let labels: Vec<u32> =
            (r0..r1).map(|i| if i < n_real { ds.labels[i] } else { 0 }).collect();
        let mask: Vec<bool> = (r0..r1).map(|i| i < n_real && ds.split.train[i]).collect();

        let mut model = Gcn::new(GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim,
            num_classes: ds.num_classes,
            num_layers,
            seed: model_seed,
        });
        let mut w_opts: Vec<Adam> =
            model.weights.iter().map(|w| Adam::new(w.rows(), w.cols(), adam)).collect();
        let mut f_opt = Adam::new(features.rows(), features.cols(), adam);

        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            // Forward: each layer all-gathers the full F.
            let mut x = features.clone();
            let mut caches = Vec::with_capacity(num_layers);
            for (l, w) in model.weights.iter().enumerate() {
                let gathered = comm.all_gather(x.as_slice());
                let x_full = Matrix::from_vec(n_pad, x.cols(), gathered);
                let h = plexus_sparse::spmm(&a_block, &x_full);
                let mut q = Matrix::zeros(h.rows(), w.cols());
                gemm(&mut q, &h, Trans::N, w, Trans::N, 1.0, 0.0);
                let activated = l + 1 < num_layers;
                x = if activated { relu(&q) } else { q.clone() };
                caches.push((h, q, activated));
            }

            // Local loss over own rows.
            let lse = logsumexp_rows(&x);
            let probs = softmax_rows(&x);
            let inv = 1.0 / total_train as f32;
            let mut dlogits = Matrix::zeros(x.rows(), x.cols());
            let mut loss_sum = 0.0f64;
            for i in 0..rows_per {
                if !mask[i] {
                    continue;
                }
                let y = labels[i] as usize;
                loss_sum += (lse[i] - x[(i, y)]) as f64;
                let drow = dlogits.row_mut(i);
                drow.copy_from_slice(probs.row(i));
                for v in drow.iter_mut() {
                    *v *= inv;
                }
                drow[y] -= inv;
            }
            let mut scalars = [loss_sum];
            comm.all_reduce(&mut scalars, ReduceOp::Sum);
            losses.push(scalars[0] / total_train as f64);

            // Backward.
            let mut dout = dlogits;
            for l in (0..num_layers).rev() {
                let (h, q, activated) = &caches[l];
                if *activated {
                    relu_backward_inplace(&mut dout, q);
                }
                let w = &model.weights[l];
                let mut dw = Matrix::zeros(w.rows(), w.cols());
                gemm(&mut dw, h, Trans::T, &dout, Trans::N, 1.0, 0.0);
                comm.all_reduce(dw.as_mut_slice(), ReduceOp::Sum);
                let mut dh = Matrix::zeros(h.rows(), h.cols());
                gemm(&mut dh, &dout, Trans::N, w, Trans::T, 1.0, 0.0);
                // ∂L/∂F = Aᵀ ∂L/∂H is partial over ranks: reduce-scatter
                // back to row blocks.
                let df_partial = plexus_sparse::spmm(&a_block_t, &dh);
                let chunk = comm.reduce_scatter(df_partial.as_slice(), ReduceOp::Sum);
                dout = Matrix::from_vec(rows_per, df_partial.cols(), chunk);
                w_opts[l].step(&mut model.weights[l], &dw);
            }
            f_opt.step(&mut features, &dout);
        }
        losses
    });

    let reference = per_rank[0].clone();
    for (rank, l) in per_rank.iter().enumerate().skip(1) {
        for (e, (a, b)) in l.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "1D rank {} epoch {} loss disagrees", rank, e);
        }
    }
    CagnetRunResult { losses: reference, traffic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_gnn::{SerialTrainer, TrainConfig};
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_ds(nodes: usize, seed: u64) -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes,
            edges: nodes * 6,
            nonzeros: nodes * 13,
            features: 10,
            classes: 5,
        };
        LoadedDataset::generate(spec, nodes, Some(10), seed)
    }

    #[test]
    fn cagnet_1d_matches_serial() {
        let ds = tiny_ds(100, 3);
        let cfg = TrainConfig { hidden_dim: 8, num_layers: 3, seed: 9, ..Default::default() };
        let mut serial = SerialTrainer::new(&ds, &cfg);
        let serial_losses: Vec<f64> = serial.train(4).iter().map(|s| s.loss).collect();
        let res = train_cagnet_1d(&ds, 4, 8, 3, AdamConfig::default(), 9, 4);
        for (e, (a, b)) in res.losses.iter().zip(&serial_losses).enumerate() {
            let rel = ((a - b) / b.abs().max(1e-9)).abs();
            assert!(rel < 5e-3, "epoch {}: 1D {} vs serial {} (rel {:.2e})", e, a, b, rel);
        }
    }

    #[test]
    fn cagnet_gathers_full_features_each_layer() {
        let ds = tiny_ds(96, 5);
        let res = train_cagnet_1d(&ds, 3, 8, 3, AdamConfig::default(), 1, 1);
        let gathers = res.traffic[0]
            .iter()
            .filter(|e| matches!(e.op, plexus_comm::CollOp::AllGather))
            .count();
        assert_eq!(gathers, 3, "one full-F all-gather per layer");
    }

    #[test]
    fn cagnet_handles_non_divisible_node_counts() {
        let ds = tiny_ds(101, 7);
        let res = train_cagnet_1d(&ds, 4, 8, 2, AdamConfig::default(), 3, 2);
        assert_eq!(res.losses.len(), 2);
        assert!(res.losses.iter().all(|l| l.is_finite()));
    }
}
