//! BNS-GCN-style partition parallelism with full boundary exchange.
//!
//! Each rank owns one partition of the graph: its rows of Â, its nodes'
//! trainable features, labels and masks. Weights are replicated
//! (data-parallel) with an all-reduce on their gradients. Every layer
//! exchanges boundary-node features with an all-to-all (the communication
//! pattern §7.1 identifies as BNS-GCN's scaling bottleneck), and the
//! backward pass routes boundary gradients back to their owners with the
//! reverse all-to-all.
//!
//! With a boundary sampling rate of 1.0 — the setting the paper compares
//! under — this computes *exactly* full-graph training, so it is validated
//! against the serial trainer like the 3D engine is.

use crate::partition::{partition_graph, PartitionInfo};
use plexus_comm::{run_world_with, CommEvent, Communicator, ReduceOp, ThreadComm};
use plexus_gnn::{Adam, AdamConfig, Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::{Coo, Csr};
use plexus_tensor::ops::{logsumexp_rows, relu, relu_backward_inplace, softmax_rows};
use plexus_tensor::{gemm, Matrix, Trans};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a BNS run.
pub struct BnsRunResult {
    pub losses: Vec<f64>,
    pub partition: PartitionInfo,
    pub traffic: Vec<Vec<CommEvent>>,
}

struct RankSetup {
    a_local: Csr,
    a_local_t: Csr,
    /// For each peer q: local row indices (into own block) to send to q.
    send_rows: Vec<Vec<usize>>,
    /// For each peer q: local x_ext row slots where q's data lands.
    recv_slots: Vec<Vec<usize>>,
    features: Matrix,
    labels: Vec<u32>,
    mask: Vec<bool>,
    own_count: usize,
    ext_count: usize,
}

fn build_rank(ds: &LoadedDataset, info: &PartitionInfo, p: usize) -> RankSetup {
    let own = &info.members[p];
    let halo = &info.halo[p];
    let own_index: HashMap<u32, usize> = own.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let halo_index: HashMap<u32, usize> =
        halo.iter().enumerate().map(|(i, &v)| (v, own.len() + i)).collect();

    // Local adjacency: rows = own nodes (in members order), cols = own ++
    // halo.
    let ext = own.len() + halo.len();
    let mut coo = Coo::new(own.len(), ext);
    for (li, &v) in own.iter().enumerate() {
        let (cols, vals) = ds.adjacency.row_entries(v as usize);
        for (&u, &w) in cols.iter().zip(vals) {
            let lc = own_index
                .get(&u)
                .copied()
                .or_else(|| halo_index.get(&u).copied())
                .expect("neighbor neither owned nor in halo");
            coo.push(li as u32, lc as u32, w);
        }
    }
    let a_local = coo.to_csr();
    let a_local_t = a_local.transposed();

    // Exchange plans: q needs my nodes that sit in q's halo.
    let k = info.num_parts;
    let mut send_rows = vec![Vec::new(); k];
    for (q, qhalo) in info.halo.iter().enumerate() {
        if q == p {
            continue;
        }
        for &u in qhalo {
            if info.part[u as usize] as usize == p {
                send_rows[q].push(own_index[&u]);
            }
        }
    }
    let mut recv_slots = vec![Vec::new(); k];
    for &u in halo {
        recv_slots[info.part[u as usize] as usize].push(halo_index[&u]);
    }

    let perm: Vec<usize> = own.iter().map(|&v| v as usize).collect();
    let features = ds.features.gather_rows(&perm);
    let labels: Vec<u32> = own.iter().map(|&v| ds.labels[v as usize]).collect();
    let mask: Vec<bool> = own.iter().map(|&v| ds.split.train[v as usize]).collect();

    RankSetup {
        a_local,
        a_local_t,
        send_rows,
        recv_slots,
        features,
        labels,
        mask,
        own_count: own.len(),
        ext_count: ext,
    }
}

/// Exchange boundary rows: sends `x[send_rows[q]]` to each q, scatters the
/// replies into the halo section of the returned `ext x d` matrix whose
/// first rows are `x` itself.
fn exchange_boundary(comm: &ThreadComm, setup: &RankSetup, x: &Matrix, forward: bool) -> Matrix {
    let d = x.cols();
    let k = comm.size();
    if forward {
        let sends: Vec<Vec<f32>> = (0..k)
            .map(|q| {
                let mut buf = Vec::with_capacity(setup.send_rows[q].len() * d);
                for &r in &setup.send_rows[q] {
                    buf.extend_from_slice(x.row(r));
                }
                buf
            })
            .collect();
        let recv = comm.all_to_all(sends);
        let mut ext = Matrix::zeros(setup.ext_count, d);
        ext.set_block(0, 0, x);
        for (q, chunk) in recv.iter().enumerate() {
            assert_eq!(chunk.len(), setup.recv_slots[q].len() * d, "boundary shape mismatch");
            for (i, &slot) in setup.recv_slots[q].iter().enumerate() {
                ext.row_mut(slot).copy_from_slice(&chunk[i * d..(i + 1) * d]);
            }
        }
        ext
    } else {
        unreachable!("use return_boundary_grads for the reverse direction")
    }
}

/// Reverse exchange: routes halo gradients in `dx_ext` back to their
/// owners and accumulates them into the own-rows gradient.
fn return_boundary_grads(comm: &ThreadComm, setup: &RankSetup, dx_ext: &Matrix) -> Matrix {
    let d = dx_ext.cols();
    let k = comm.size();
    let sends: Vec<Vec<f32>> = (0..k)
        .map(|q| {
            let mut buf = Vec::with_capacity(setup.recv_slots[q].len() * d);
            for &slot in &setup.recv_slots[q] {
                buf.extend_from_slice(dx_ext.row(slot));
            }
            buf
        })
        .collect();
    let recv = comm.all_to_all(sends);
    let mut dx_own = dx_ext.row_block(0, setup.own_count);
    for (q, chunk) in recv.iter().enumerate() {
        assert_eq!(chunk.len(), setup.send_rows[q].len() * d, "gradient shape mismatch");
        for (i, &r) in setup.send_rows[q].iter().enumerate() {
            let row = dx_own.row_mut(r);
            for (dst, &src) in row.iter_mut().zip(&chunk[i * d..(i + 1) * d]) {
                *dst += src;
            }
        }
    }
    dx_own
}

/// Train `ds` with BNS-style partition parallelism on `num_parts` ranks.
/// Returns per-epoch losses (identical on all ranks) plus the partition
/// statistics the cost model consumes.
pub fn train_bns(
    ds: &LoadedDataset,
    num_parts: usize,
    hidden_dim: usize,
    num_layers: usize,
    adam: AdamConfig,
    model_seed: u64,
    epochs: usize,
) -> BnsRunResult {
    let info = Arc::new(partition_graph(&ds.graph, num_parts));
    let total_train = ds.split.num_train();
    assert!(total_train > 0, "train_bns: no training nodes");
    let info_for_run = Arc::clone(&info);

    let (per_rank, traffic) = run_world_with(num_parts, move |comm| {
        let p = comm.rank();
        let setup = build_rank(ds, &info_for_run, p);
        let model_cfg = GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim,
            num_classes: ds.num_classes,
            num_layers,
            seed: model_seed,
        };
        // Replicated weights: every rank constructs the same model.
        let mut model = Gcn::new(model_cfg);
        let mut w_opts: Vec<Adam> =
            model.weights.iter().map(|w| Adam::new(w.rows(), w.cols(), adam)).collect();
        let mut features = setup.features.clone();
        let mut f_opt = Adam::new(features.rows(), features.cols(), adam);

        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            // Forward.
            let mut x = features.clone();
            let mut caches = Vec::with_capacity(num_layers);
            for (l, w) in model.weights.iter().enumerate() {
                let x_ext = exchange_boundary(comm, &setup, &x, true);
                let h = plexus_sparse::spmm(&setup.a_local, &x_ext);
                let mut q = Matrix::zeros(h.rows(), w.cols());
                gemm(&mut q, &h, Trans::N, w, Trans::N, 1.0, 0.0);
                let activated = l + 1 < num_layers;
                x = if activated { relu(&q) } else { q.clone() };
                caches.push((h, q, activated));
            }

            // Loss over own training nodes, averaged by the global count.
            let lse = logsumexp_rows(&x);
            let probs = softmax_rows(&x);
            let inv = 1.0 / total_train as f32;
            let mut dlogits = Matrix::zeros(x.rows(), x.cols());
            let mut loss_sum = 0.0f64;
            for i in 0..setup.own_count {
                if !setup.mask[i] {
                    continue;
                }
                let y = setup.labels[i] as usize;
                loss_sum += (lse[i] - x[(i, y)]) as f64;
                let drow = dlogits.row_mut(i);
                drow.copy_from_slice(probs.row(i));
                for v in drow.iter_mut() {
                    *v *= inv;
                }
                drow[y] -= inv;
            }
            let mut scalars = [loss_sum];
            comm.all_reduce(&mut scalars, ReduceOp::Sum);
            losses.push(scalars[0] / total_train as f64);

            // Backward.
            let mut dout = dlogits;
            for l in (0..num_layers).rev() {
                let (h, q, activated) = &caches[l];
                if *activated {
                    relu_backward_inplace(&mut dout, q);
                }
                let w = &model.weights[l];
                let mut dw = Matrix::zeros(w.rows(), w.cols());
                gemm(&mut dw, h, Trans::T, &dout, Trans::N, 1.0, 0.0);
                comm.all_reduce(dw.as_mut_slice(), ReduceOp::Sum);
                let mut dh = Matrix::zeros(h.rows(), h.cols());
                gemm(&mut dh, &dout, Trans::N, w, Trans::T, 1.0, 0.0);
                let dx_ext = plexus_sparse::spmm(&setup.a_local_t, &dh);
                dout = return_boundary_grads(comm, &setup, &dx_ext);
                w_opts[l].step(&mut model.weights[l], &dw);
            }
            f_opt.step(&mut features, &dout);
        }
        losses
    });

    let reference = per_rank[0].clone();
    for (rank, l) in per_rank.iter().enumerate().skip(1) {
        for (e, (a, b)) in l.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "BNS rank {} epoch {} loss disagrees", rank, e);
        }
    }
    BnsRunResult {
        losses: reference,
        partition: Arc::try_unwrap(info).unwrap_or_else(|arc| (*arc).clone()),
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_gnn::{SerialTrainer, TrainConfig};
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_ds(nodes: usize, seed: u64) -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes,
            edges: nodes * 8,
            nonzeros: nodes * 17,
            features: 10,
            classes: 5,
        };
        LoadedDataset::generate(spec, nodes, Some(10), seed)
    }

    #[test]
    fn bns_matches_serial_training() {
        let ds = tiny_ds(120, 3);
        let cfg = TrainConfig { hidden_dim: 8, num_layers: 3, seed: 5, ..Default::default() };
        let mut serial = SerialTrainer::new(&ds, &cfg);
        let serial_losses: Vec<f64> = serial.train(4).iter().map(|s| s.loss).collect();
        let res = train_bns(&ds, 4, 8, 3, AdamConfig::default(), 5, 4);
        for (e, (a, b)) in res.losses.iter().zip(&serial_losses).enumerate() {
            let rel = ((a - b) / b.abs().max(1e-9)).abs();
            assert!(rel < 5e-3, "epoch {}: BNS {} vs serial {} (rel {:.2e})", e, a, b, rel);
        }
    }

    #[test]
    fn bns_single_partition_is_serial() {
        let ds = tiny_ds(80, 7);
        let cfg = TrainConfig { hidden_dim: 8, num_layers: 2, seed: 1, ..Default::default() };
        let mut serial = SerialTrainer::new(&ds, &cfg);
        let serial_losses: Vec<f64> = serial.train(3).iter().map(|s| s.loss).collect();
        let res = train_bns(&ds, 1, 8, 2, AdamConfig::default(), 1, 3);
        for (a, b) in res.losses.iter().zip(&serial_losses) {
            assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn bns_traffic_is_all_to_all_heavy() {
        let ds = tiny_ds(120, 11);
        let res = train_bns(&ds, 4, 8, 3, AdamConfig::default(), 2, 1);
        let a2a =
            res.traffic[0].iter().filter(|e| matches!(e.op, plexus_comm::CollOp::AllToAll)).count();
        // 3 layers x (fwd exchange + bwd return) = 6 all-to-alls per epoch.
        assert_eq!(a2a, 6);
    }
}
