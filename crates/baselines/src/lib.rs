//! Baseline distributed full-graph GNN systems the paper compares against
//! (§6.3, Figs. 8–9).
//!
//! * [`partition`] — a BFS-grown balanced graph partitioner standing in
//!   for METIS (only the boundary-node statistics matter for the
//!   comparison, and those reproduce qualitatively);
//! * [`bns`] — BNS-GCN-style partition parallelism with full boundary
//!   exchange (sampling rate 1.0, the setting the paper compares under),
//!   functional over the thread communicator and exactly equivalent to
//!   serial training;
//! * [`cagnet`] — CAGNET's 1D tensor-parallel algorithm, functional, plus
//!   the SA (sparsity-aware) volume reduction as a cost-model knob;
//! * [`costmodels`] — at-scale epoch-time models for both baselines,
//!   driven by measured partition statistics and the shared machine
//!   models, used to regenerate the Fig. 8/9 comparisons.

pub mod bns;
pub mod cagnet;
pub mod costmodels;
pub mod partition;
pub mod sa;

pub use bns::{train_bns, BnsRunResult};
pub use cagnet::{train_cagnet_1d, CagnetRunResult};
pub use costmodels::{
    bns_epoch_time, bns_epoch_time_skewed, cagnet_15d_epoch_time, cagnet_1d_epoch_time,
    paper_boundary_frac, sa_epoch_time,
};
pub use partition::{partition_graph, PartitionInfo};
pub use sa::{train_sa, SaRunResult};
